// Scenario: a port to FMA-capable hardware changes results. Which variables
// are sensitive, and which modules should keep FMA disabled to stay
// statistically consistent with the accepted ensemble? (The paper's AVX2
// investigation, §6.4-6.5, as a library user would run it.)
//
// Build & run:  ./build/examples/fma_sensitivity
#include <cstdio>

#include "engine/pipeline.hpp"
#include "graph/centrality.hpp"

using namespace rca;

int main() {
  engine::PipelineConfig config;
  config.ensemble_members = 30;
  engine::Pipeline pipe(config);

  // 1. KGen-style kernel comparison: run the MG1 kernel with FMA off/on and
  //    flag variables whose normalized RMS moves beyond 1e-12.
  const auto flagged =
      model::kgen_flagged_variables(pipe.control_model(), pipe.metagraph());
  std::printf("FMA-sensitive MG1 variables (normalized RMS diff > 1e-12): "
              "%zu\n", flagged.size());
  for (std::size_t i = 0; i < flagged.size() && i < 10; ++i) {
    std::printf("  %s::%s::%s\n", flagged[i].module.c_str(),
                flagged[i].subprogram.c_str(), flagged[i].name.c_str());
  }

  // 2. Does enabling FMA everywhere fail the consistency test?
  model::RunConfig fma_on = config.base_run;
  fma_on.fma_all = true;
  const auto runs = model::experiment_set(pipe.control_model(), fma_on, 3,
                                          4000, pipe.output_names());
  const auto verdict = pipe.ect().evaluate(runs);
  std::printf("\nUF-ECT with FMA enabled everywhere: %s\n",
              verdict.pass ? "PASS" : "FAIL");

  // 3. Rank modules by quotient-graph eigenvector centrality (§6.5) and
  //    disable FMA only on the top ten.
  const auto& mg = pipe.metagraph();
  const auto classes = mg.module_classes();
  graph::Digraph quotient =
      graph::quotient_graph(mg.graph(), classes, mg.modules().size());
  const auto cin = eigenvector_centrality(quotient, graph::Direction::kIn);
  const auto cout = eigenvector_centrality(quotient, graph::Direction::kOut);
  std::vector<double> centrality(mg.modules().size());
  for (std::size_t i = 0; i < centrality.size(); ++i) {
    centrality[i] = cin[i] + cout[i];
  }
  model::RunConfig selective = fma_on;
  std::printf("\ndisabling FMA on the 10 most central modules:");
  for (graph::NodeId m : graph::top_k(centrality, 10)) {
    std::printf(" %s", mg.modules()[m].c_str());
    selective.fma_disabled_modules.push_back(mg.modules()[m]);
  }
  const auto selective_runs = model::experiment_set(
      pipe.control_model(), selective, 3, 4100, pipe.output_names());
  const auto selective_verdict = pipe.ect().evaluate(selective_runs);
  std::printf("\nUF-ECT with selective disablement: %s\n",
              selective_verdict.pass ? "PASS" : "FAIL");
  std::printf("\n=> selective disablement %s: FMA stays on for %zu of %zu "
              "modules while preserving statistical consistency.\n",
              selective_verdict.pass ? "works" : "is insufficient here",
              mg.modules().size() - 10, mg.modules().size());
  return selective_verdict.pass && !verdict.pass ? 0 : 1;
}
