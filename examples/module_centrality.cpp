// Scenario: rank a large code base's modules by their potential to
// propagate value discrepancies (hardware errors, instruction-set changes),
// using the module quotient graph (graph minor) of the variable digraph —
// the paper's §6.5 viewpoint, applicable beyond FMA.
//
// Build & run:  ./build/examples/module_centrality
#include <cstdio>
#include <iostream>

#include "cov/coverage_filter.hpp"
#include "graph/centrality.hpp"
#include "graph/degree_dist.hpp"
#include "meta/builder.hpp"
#include "model/corpus.hpp"
#include "model/model.hpp"
#include "support/table.hpp"

using namespace rca;

int main() {
  // Build the coverage-filtered metagraph of the synthetic corpus.
  model::CesmModel model(model::CorpusSpec{});
  const auto recorder = model.coverage_run(2);
  cov::CoverageFilter filter(recorder, &model.compiled_modules());
  meta::BuilderOptions opts;
  opts.module_filter = filter.module_predicate();
  opts.subprogram_filter = filter.subprogram_predicate();
  meta::Metagraph mg = meta::build_metagraph(model.compiled_modules(), opts);

  // Collapse variables into modules: the quotient graph (graph minor).
  const auto classes = mg.module_classes();
  graph::Digraph quotient =
      graph::quotient_graph(mg.graph(), classes, mg.modules().size());
  std::printf("variable digraph: %zu nodes / %zu edges\n",
              mg.node_count(), mg.graph().edge_count());
  std::printf("module quotient:  %zu nodes / %zu edges\n\n",
              quotient.node_count(), quotient.edge_count());

  // Rank by combined in+out eigenvector centrality.
  const auto cin = eigenvector_centrality(quotient, graph::Direction::kIn);
  const auto cout = eigenvector_centrality(quotient, graph::Direction::kOut);
  std::vector<double> combined(mg.modules().size());
  for (std::size_t i = 0; i < combined.size(); ++i) {
    combined[i] = cin[i] + cout[i];
  }

  Table table("Modules ranked by information-flow centrality");
  table.set_header({"rank", "module", "in", "out", "combined", "variables"});
  int rank = 1;
  for (graph::NodeId m : graph::top_k(combined, 15)) {
    table.add_row({Table::integer(rank++), mg.modules()[m],
                   Table::num(cin[m], 4), Table::num(cout[m], 4),
                   Table::num(combined[m], 4),
                   Table::integer(static_cast<long long>(
                       mg.by_module(mg.modules()[m]).size()))});
  }
  table.print(std::cout);

  // Degree distribution of the quotient, for a feel of the module topology.
  const auto dist = graph::degree_distribution(quotient, 2);
  std::printf("\nmodule-graph mean degree %.2f, max degree %zu, "
              "power-law MLE exponent %.2f\n",
              dist.mean_degree, dist.max_degree, dist.mle_exponent);
  return 0;
}
