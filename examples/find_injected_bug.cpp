// Scenario: a developer introduced a coefficient typo somewhere in ~80
// modules of the synthetic climate model; the consistency test fails; find
// the bug. This drives the complete paper pipeline end-to-end, using REAL
// runtime sampling (interpreter watchpoints), not just the paper's
// simulated mode.
//
// Build & run:  ./build/examples/find_injected_bug
#include <cstdio>

#include "engine/pipeline.hpp"
#include "support/stopwatch.hpp"

using namespace rca;

int main() {
  Stopwatch sw;
  std::printf("building control model, ensemble and metagraph...\n");
  engine::PipelineConfig config;
  config.ensemble_members = 30;
  engine::Pipeline pipe(config);
  std::printf("  %zu modules compiled, metagraph %zu nodes / %zu edges "
              "(%.1fs)\n\n",
              pipe.control_model().compiled_modules().size(),
              pipe.metagraph().node_count(),
              pipe.metagraph().graph().edge_count(), sw.seconds());

  // The "unknown" bug: GOFFGRATCH's 8.1328e-3 -> 8.1828e-3 typo.
  std::printf("running the GOFFGRATCH experiment with runtime sampling...\n");
  engine::ExperimentOutcome outcome =
      pipe.run_experiment_runtime_sampling(model::ExperimentId::kGoffGratch);

  std::printf("UF-ECT verdict: %s (%zu failing principal components)\n",
              outcome.verdict.pass ? "PASS" : "FAIL",
              outcome.verdict.failing_pcs.size());
  std::printf("most affected outputs:");
  for (const auto& name : outcome.criteria_outputs) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nbackward slice: %zu nodes (of %zu)\n",
              outcome.slice.nodes.size(), pipe.metagraph().node_count());

  for (std::size_t i = 0; i < outcome.refinement.iterations.size(); ++i) {
    const auto& iter = outcome.refinement.iterations[i];
    std::printf("iteration %zu: %zu communities over %zu nodes — %s\n", i + 1,
                iter.communities.size(), iter.subgraph_nodes,
                iter.detected ? "runtime watchpoints saw differing values"
                              : "no differences at the sampled sites");
  }

  // Report the suspect set: differing sampled variables, with locations.
  std::printf("\nsuspect variables (watchpoints with differing normalized "
              "RMS):\n");
  std::size_t shown = 0;
  for (const auto& iter : outcome.refinement.iterations) {
    for (const auto& comm : iter.communities) {
      for (graph::NodeId v : comm.differing) {
        const auto& info = pipe.metagraph().info(v);
        std::printf("  %-28s module %-16s line %d\n",
                    info.unique_name.c_str(), info.module.c_str(), info.line);
        if (++shown >= 12) break;
      }
      if (shown >= 12) break;
    }
    if (shown >= 12) break;
  }

  // Did the procedure keep the true bug location in its final search set?
  bool retained = false;
  for (graph::NodeId b : outcome.bug_nodes) {
    for (graph::NodeId n : outcome.refinement.final_nodes) {
      if (n == b) retained = true;
    }
  }
  std::printf("\nfinal search space: %zu nodes; true bug location %s\n",
              outcome.refinement.final_nodes.size(),
              retained ? "RETAINED (inspect wv_saturation::goffgratch_svp)"
                       : "lost — widen the search");
  std::printf("total elapsed: %.1fs\n", sw.seconds());
  return retained ? 0 : 1;
}
