// Quickstart: from Fortran-subset source text to a variable-dependency
// digraph, a backward slice, communities, and centrality — the paper's
// Figures 2 and 3 in miniature, on code you can read in one screen.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "graph/centrality.hpp"
#include "graph/dot_export.hpp"
#include "graph/girvan_newman.hpp"
#include "lang/parser.hpp"
#include "meta/builder.hpp"
#include "slice/slicer.hpp"

using namespace rca;

// A tiny two-module "model": a saturation function, a state, and an output.
static const char* kSource = R"(
module physics
  real :: temp(4)
  real :: humid(4)
contains
  function saturation(t) result(es)
    real, intent(in) :: t
    real :: es
    es = exp(t * 0.0173)
  end function
  subroutine step()
    integer :: i
    real :: es
    real :: cloud(4)
    do i = 1, 4
      es = saturation(temp(i))
      cloud(i) = max(humid(i) / es - 0.6, 0.0)
      temp(i) = temp(i) * 0.99 + cloud(i) * 0.01
    end do
    call outfld('CLOUD', cloud)
  end subroutine
end module
)";

int main() {
  // 1. Parse (the fparser/KGen substitute).
  lang::Parser parser("quickstart.F90", kSource);
  lang::SourceFile file = parser.parse_file();
  std::printf("parsed %zu module(s); first has %zu subprograms\n",
              file.modules.size(), file.modules[0].subprograms.size());

  // 2. Build the metagraph (paper §4: AST -> digraph with metadata).
  std::vector<const lang::Module*> modules;
  for (const auto& m : file.modules) modules.push_back(&m);
  meta::Metagraph mg = meta::build_metagraph(modules);
  std::printf("metagraph: %zu nodes, %zu edges, %zu assignments processed\n",
              mg.node_count(), mg.graph().edge_count(),
              mg.assignments_processed);
  for (graph::NodeId v = 0; v < mg.node_count(); ++v) {
    std::printf("  node %2u: %-24s (module=%s, subprogram=%s%s)\n", v,
                mg.info(v).unique_name.c_str(), mg.info(v).module.c_str(),
                mg.info(v).subprogram.empty() ? "-"
                                              : mg.info(v).subprogram.c_str(),
                mg.info(v).is_intrinsic ? ", intrinsic site" : "");
  }

  // 3. Map the output label to internal names and take a backward slice
  //    (paper §5.1: hybrid static slicing).
  auto internal = slice::internal_names_for_output(mg, "cloud");
  std::printf("\noutput 'CLOUD' maps to internal name(s):");
  for (const auto& n : internal) std::printf(" %s", n.c_str());
  slice::SliceResult sl = slice::backward_slice(mg, internal);
  std::printf("\nbackward slice: %zu of %zu nodes\n", sl.nodes.size(),
              mg.node_count());

  // 4. Communities + eigenvector in-centrality (paper §5.2-5.3).
  graph::GirvanNewmanResult communities = graph::girvan_newman(sl.subgraph);
  std::printf("communities (>=3 nodes): %zu\n", communities.communities.size());
  auto centrality =
      graph::eigenvector_centrality(sl.subgraph, graph::Direction::kIn);
  std::printf("top sampling sites by in-centrality:\n");
  for (graph::NodeId local : graph::top_k(centrality, 3)) {
    std::printf("  %-24s %.4f\n",
                mg.info(sl.nodes[local]).unique_name.c_str(),
                centrality[local]);
  }

  // 5. Export DOT for visual inspection (Figure 2-style).
  std::vector<std::string> labels;
  for (graph::NodeId v : sl.nodes) labels.push_back(mg.info(v).unique_name);
  std::printf("\nDOT of the slice subgraph:\n%s",
              graph::to_dot(sl.subgraph, &labels).c_str());
  return 0;
}
