#include "lang/printer.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::lang {

namespace {

std::string ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

std::string print_number(double v, bool is_int) {
  if (is_int) return strfmt("%lld", static_cast<long long>(v));
  // %.17g round-trips doubles; normalize exponent case.
  std::string s = strfmt("%.17g", v);
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

int precedence(const Expr& e) {
  if (e.kind == ExprKind::kBinary) {
    switch (e.op) {
      case Op::kOr: return 1;
      case Op::kAnd: return 2;
      case Op::kEq: case Op::kNe: case Op::kLt:
      case Op::kLe: case Op::kGt: case Op::kGe: return 4;
      case Op::kAdd: case Op::kSub: return 5;
      case Op::kMul: case Op::kDiv: return 6;
      case Op::kPow: return 8;
      default: return 9;
    }
  }
  if (e.kind == ExprKind::kUnary) {
    return e.op == Op::kNot ? 3 : 7;
  }
  return 10;  // primaries never need parens
}

std::string print_child(const Expr& child, int parent_prec) {
  std::string s = print_expr(child);
  if (precedence(child) < parent_prec) return "(" + s + ")";
  return s;
}

std::string print_ref(const Expr& e) {
  std::string out;
  for (size_t i = 0; i < e.segments.size(); ++i) {
    const RefSegment& seg = e.segments[i];
    if (i) out += "%";
    out += seg.name;
    if (seg.has_args) {
      out += "(";
      for (size_t j = 0; j < seg.args.size(); ++j) {
        if (j) out += ", ";
        const Expr& a = *seg.args[j];
        if (a.is_ref() && a.segments.size() == 1 &&
            a.segments[0].name == "__slice__") {
          out += ":";
        } else {
          out += print_expr(a);
        }
      }
      out += ")";
    }
  }
  return out;
}

std::string print_type(const TypeSpec& t) {
  switch (t.kind) {
    case TypeKind::kReal: return "real";
    case TypeKind::kInteger: return "integer";
    case TypeKind::kLogical: return "logical";
    case TypeKind::kCharacter: return "character(len=64)";
    case TypeKind::kDerived: return "type(" + t.derived_name + ")";
  }
  return "real";
}

std::string print_decl(const VarDecl& d, int indent) {
  std::string out = ind(indent) + print_type(d.type);
  if (d.is_parameter) out += ", parameter";
  switch (d.intent) {
    case Intent::kIn: out += ", intent(in)"; break;
    case Intent::kOut: out += ", intent(out)"; break;
    case Intent::kInOut: out += ", intent(inout)"; break;
    case Intent::kNone: break;
  }
  out += " :: " + d.name;
  if (!d.dims.empty()) {
    out += "(";
    for (size_t i = 0; i < d.dims.size(); ++i) {
      if (i) out += ", ";
      out += print_expr(*d.dims[i]);
    }
    out += ")";
  }
  if (d.init) out += " = " + print_expr(*d.init);
  out += "\n";
  return out;
}

std::string print_use(const UseStmt& u, int indent) {
  std::string out = ind(indent) + "use " + u.module;
  if (u.has_only) {
    out += ", only: ";
    for (size_t i = 0; i < u.renames.size(); ++i) {
      if (i) out += ", ";
      out += u.renames[i].local;
      if (u.renames[i].local != u.renames[i].remote) {
        out += " => " + u.renames[i].remote;
      }
    }
  }
  out += "\n";
  return out;
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber:
      return print_number(e.number, e.is_int);
    case ExprKind::kString:
      return "'" + e.text + "'";
    case ExprKind::kLogical:
      return e.bool_value ? ".true." : ".false.";
    case ExprKind::kRef:
      return print_ref(e);
    case ExprKind::kUnary: {
      std::string inner = print_child(*e.rhs, precedence(e) + 1);
      if (e.op == Op::kNot) return ".not. " + inner;
      if (e.op == Op::kNeg) return "-" + inner;
      return "+" + inner;
    }
    case ExprKind::kBinary: {
      const int prec = precedence(e);
      // Left-assoc operators: right child needs parens at equal precedence.
      std::string l = print_child(*e.lhs, prec);
      std::string r = print_child(*e.rhs, e.op == Op::kPow ? prec : prec + 1);
      return l + " " + op_name(e.op) + " " + r;
    }
  }
  throw Error("unreachable expression kind");
}

std::string print_stmt(const Stmt& s, int indent) {
  std::string out;
  switch (s.kind) {
    case StmtKind::kAssign:
      out = ind(indent) + print_expr(*s.lhs) + " = " + print_expr(*s.rhs) + "\n";
      break;
    case StmtKind::kCall: {
      out = ind(indent) + "call " + s.callee + "(";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*s.args[i]);
      }
      out += ")\n";
      break;
    }
    case StmtKind::kIf: {
      out = ind(indent) + "if (" + print_expr(*s.cond) + ") then\n";
      for (const auto& st : s.body) out += print_stmt(*st, indent + 1);
      for (const auto& ei : s.elseifs) {
        out += ind(indent) + "else if (" + print_expr(*ei.cond) + ") then\n";
        for (const auto& st : ei.body) out += print_stmt(*st, indent + 1);
      }
      if (!s.else_body.empty()) {
        out += ind(indent) + "else\n";
        for (const auto& st : s.else_body) out += print_stmt(*st, indent + 1);
      }
      out += ind(indent) + "end if\n";
      break;
    }
    case StmtKind::kDo: {
      out = ind(indent) + "do " + s.do_var + " = " + print_expr(*s.from) +
            ", " + print_expr(*s.to);
      if (s.step) out += ", " + print_expr(*s.step);
      out += "\n";
      for (const auto& st : s.body) out += print_stmt(*st, indent + 1);
      out += ind(indent) + "end do\n";
      break;
    }
    case StmtKind::kDoWhile: {
      out = ind(indent) + "do while (" + print_expr(*s.cond) + ")\n";
      for (const auto& st : s.body) out += print_stmt(*st, indent + 1);
      out += ind(indent) + "end do\n";
      break;
    }
    case StmtKind::kReturn:
      out = ind(indent) + "return\n";
      break;
    case StmtKind::kExit:
      out = ind(indent) + "exit\n";
      break;
    case StmtKind::kCycle:
      out = ind(indent) + "cycle\n";
      break;
  }
  return out;
}

std::string print_subprogram(const Subprogram& sp, int indent) {
  std::string out = ind(indent);
  out += sp.kind == Subprogram::kSubroutine ? "subroutine " : "function ";
  out += sp.name + "(";
  for (size_t i = 0; i < sp.params.size(); ++i) {
    if (i) out += ", ";
    out += sp.params[i];
  }
  out += ")";
  if (sp.is_function() && sp.result_name != sp.name) {
    out += " result(" + sp.result_name + ")";
  }
  out += "\n";
  for (const auto& u : sp.uses) out += print_use(u, indent + 1);
  for (const auto& d : sp.decls) out += print_decl(d, indent + 1);
  for (const auto& st : sp.body) out += print_stmt(*st, indent + 1);
  out += ind(indent);
  out += sp.kind == Subprogram::kSubroutine ? "end subroutine " : "end function ";
  out += sp.name + "\n";
  return out;
}

std::string print_module(const Module& mod) {
  std::string out = "module " + mod.name + "\n";
  for (const auto& u : mod.uses) out += print_use(u, 1);
  out += "  implicit none\n";
  for (const auto& t : mod.types) {
    out += "  type " + t.name + "\n";
    for (const auto& c : t.components) out += print_decl(c, 2);
    out += "  end type " + t.name + "\n";
  }
  for (const auto& i : mod.interfaces) {
    out += "  interface " + i.name + "\n";
    out += "    module procedure " + join(i.procedures, ", ") + "\n";
    out += "  end interface\n";
  }
  for (const auto& d : mod.decls) out += print_decl(d, 1);
  if (!mod.subprograms.empty()) {
    out += "contains\n";
    for (const auto& sp : mod.subprograms) out += print_subprogram(sp, 1);
  }
  out += "end module " + mod.name + "\n";
  return out;
}

std::string print_source_file(const SourceFile& file) {
  std::string out;
  for (const auto& mod : file.modules) {
    out += print_module(mod);
    out += "\n";
  }
  return out;
}

}  // namespace rca::lang
