#include "lang/parser.hpp"

#include <algorithm>

#include "lang/lexer.hpp"
#include "support/error.hpp"

namespace rca::lang {

Parser::Parser(std::string filename, std::string source)
    : filename_(std::move(filename)) {
  Lexer lexer(filename_, std::move(source));
  tokens_ = lexer.lex_all();
}

const Token& Parser::peek(int ahead) const {
  std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

const Token& Parser::prev() const {
  return tokens_[pos_ > 0 ? pos_ - 1 : 0];
}

int Parser::token_end_column(const Token& t) {
  if (t.kind == Tok::kIdentifier) {
    return t.column + static_cast<int>(t.text.size());
  }
  if (t.kind == Tok::kString) {  // +2 for the quotes
    return t.column + static_cast<int>(t.text.size()) + 2;
  }
  return t.column + 1;
}

bool Parser::accept(Tok k) {
  if (!at(k)) return false;
  advance();
  return true;
}

bool Parser::accept_kw(const char* kw) {
  if (!at_kw(kw)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok k, const char* context) {
  if (!at(k)) {
    fail(std::string("expected ") + tok_name(k) + " in " + context + ", got " +
         tok_name(peek().kind) +
         (peek().kind == Tok::kIdentifier ? " '" + peek().text + "'" : ""));
  }
  return advance();
}

void Parser::expect_kw(const char* kw, const char* context) {
  if (!at_kw(kw)) {
    fail(std::string("expected '") + kw + "' in " + context);
  }
  advance();
}

void Parser::expect_newline(const char* context) {
  if (!at(Tok::kNewline) && !at(Tok::kEof)) {
    fail(std::string("expected end of statement in ") + context + ", got " +
         tok_name(peek().kind) +
         (peek().kind == Tok::kIdentifier ? " '" + peek().text + "'" : ""));
  }
  if (at(Tok::kNewline)) advance();
}

void Parser::skip_newlines() {
  while (at(Tok::kNewline)) advance();
}

void Parser::skip_to_newline() {
  while (!at(Tok::kNewline) && !at(Tok::kEof)) advance();
  if (at(Tok::kNewline)) advance();
}

void Parser::fail(const std::string& msg) const {
  throw ParseError(msg, filename_, peek().line, peek().column);
}

// ---------------------------------------------------------------------------
// Top level.
// ---------------------------------------------------------------------------

SourceFile Parser::parse_file() {
  SourceFile file;
  file.path = filename_;
  skip_newlines();
  while (!at(Tok::kEof)) {
    if (!at_kw("module")) fail("expected 'module' at file scope");
    file.modules.push_back(parse_module());
    skip_newlines();
  }
  return file;
}

Module Parser::parse_module() {
  Module mod;
  mod.file = filename_;
  mod.line = peek().line;
  expect_kw("module", "module header");
  mod.name = expect(Tok::kIdentifier, "module header").text;
  expect_newline("module header");
  skip_newlines();

  // Specification part: use statements, implicit none, visibility lines,
  // derived types, interfaces, variable declarations.
  for (;;) {
    skip_newlines();
    if (at_kw("use")) {
      mod.uses.push_back(parse_use());
    } else if (at_kw("implicit")) {
      skip_to_newline();
    } else if (at_kw("public") || at_kw("private") || at_kw("save")) {
      skip_to_newline();  // visibility/save attributes do not affect the graph
    } else if (at_kw("interface")) {
      mod.interfaces.push_back(parse_interface());
    } else if (at_kw("type") && !peek(1).is(Tok::kLParen)) {
      mod.types.push_back(parse_type_def());
    } else if (at_decl_start()) {
      parse_var_decls(&mod.decls);
    } else {
      break;
    }
  }

  skip_newlines();
  if (accept_kw("contains")) {
    expect_newline("contains");
    skip_newlines();
    while (at_kw("subroutine") || at_kw("function") ||
           ((at_kw("elemental") || at_kw("pure") || at_kw("recursive")) &&
            (peek(1).is_kw("function") || peek(1).is_kw("subroutine") ||
             peek(2).is_kw("function") || peek(2).is_kw("subroutine")))) {
      mod.subprograms.push_back(parse_subprogram());
      skip_newlines();
    }
  }

  mod.end_line = peek().line;
  expect_kw("end", "module end");
  if (accept_kw("module")) {
    if (at(Tok::kIdentifier)) advance();  // optional repeated module name
  }
  expect_newline("module end");
  return mod;
}

UseStmt Parser::parse_use() {
  UseStmt use;
  use.line = peek().line;
  expect_kw("use", "use statement");
  use.module = expect(Tok::kIdentifier, "use statement").text;
  if (accept(Tok::kComma)) {
    expect_kw("only", "use statement");
    expect(Tok::kColon, "use only list");
    do {
      UseStmt::Rename r;
      r.local = expect(Tok::kIdentifier, "use only list").text;
      r.remote = r.local;
      if (accept(Tok::kArrow)) {
        r.remote = expect(Tok::kIdentifier, "use rename").text;
      }
      use.renames.push_back(std::move(r));
    } while (accept(Tok::kComma));
    use.has_only = true;
  }
  expect_newline("use statement");
  return use;
}

DerivedTypeDef Parser::parse_type_def() {
  DerivedTypeDef def;
  def.line = peek().line;
  expect_kw("type", "type definition");
  accept(Tok::kDoubleColon);
  def.name = expect(Tok::kIdentifier, "type definition").text;
  expect_newline("type definition");
  skip_newlines();
  while (!at_kw("end")) {
    if (!at_decl_start()) fail("expected component declaration in type body");
    parse_var_decls(&def.components);
    skip_newlines();
  }
  expect_kw("end", "type end");
  expect_kw("type", "type end");
  if (at(Tok::kIdentifier)) advance();
  expect_newline("type end");
  return def;
}

bool Parser::at_decl_start() const {
  if (!at(Tok::kIdentifier)) return false;
  const std::string& t = peek().text;
  if (t == "real" || t == "integer" || t == "logical" || t == "character") {
    return true;
  }
  if (t == "type" && peek(1).is(Tok::kLParen)) return true;
  return false;
}

void Parser::parse_var_decls(std::vector<VarDecl>* out) {
  const int line = peek().line;
  TypeSpec type;
  const std::string& tname = expect(Tok::kIdentifier, "declaration").text;
  if (tname == "real") {
    type.kind = TypeKind::kReal;
  } else if (tname == "integer") {
    type.kind = TypeKind::kInteger;
  } else if (tname == "logical") {
    type.kind = TypeKind::kLogical;
  } else if (tname == "character") {
    type.kind = TypeKind::kCharacter;
  } else if (tname == "type") {
    type.kind = TypeKind::kDerived;
  } else {
    fail("unknown type name '" + tname + "'");
  }

  // Kind/length selector: real(r8), character(len=*), type(name).
  if (accept(Tok::kLParen)) {
    if (type.kind == TypeKind::kDerived) {
      type.derived_name = expect(Tok::kIdentifier, "type() declaration").text;
    } else {
      // Swallow kind selector tokens: identifiers, '=', numbers, '*'.
      int depth = 1;
      while (depth > 0 && !at(Tok::kEof)) {
        if (at(Tok::kLParen)) ++depth;
        if (at(Tok::kRParen)) --depth;
        if (depth > 0) advance();
      }
    }
    expect(Tok::kRParen, "type selector");
  }

  bool is_parameter = false;
  Intent intent = Intent::kNone;
  std::vector<ExprPtr> shared_dims;  // from a dimension(...) attribute
  while (accept(Tok::kComma)) {
    const std::string& attr = expect(Tok::kIdentifier, "declaration attribute").text;
    if (attr == "parameter") {
      is_parameter = true;
    } else if (attr == "intent") {
      expect(Tok::kLParen, "intent attribute");
      const std::string& dir = expect(Tok::kIdentifier, "intent attribute").text;
      if (dir == "in") {
        intent = Intent::kIn;
      } else if (dir == "out") {
        intent = Intent::kOut;
      } else if (dir == "inout") {
        intent = Intent::kInOut;
      } else {
        fail("bad intent '" + dir + "'");
      }
      expect(Tok::kRParen, "intent attribute");
    } else if (attr == "dimension") {
      expect(Tok::kLParen, "dimension attribute");
      do {
        if (at(Tok::kColon)) {  // deferred shape, treated as extent-unknown
          advance();
          shared_dims.push_back(make_number(0, true, line));
        } else {
          shared_dims.push_back(parse_expr());
        }
      } while (accept(Tok::kComma));
      expect(Tok::kRParen, "dimension attribute");
    } else if (attr == "public" || attr == "private" || attr == "save" ||
               attr == "allocatable" || attr == "pointer" || attr == "target") {
      // Storage/visibility attributes don't affect dependency structure;
      // pointers are treated as normal variables (paper §4.2).
    } else {
      fail("unknown declaration attribute '" + attr + "'");
    }
  }
  accept(Tok::kDoubleColon);  // tolerated as optional after attributes

  do {
    VarDecl d;
    d.line = line;
    d.type = type;
    d.is_parameter = is_parameter;
    d.intent = intent;
    d.name = expect(Tok::kIdentifier, "declaration name").text;
    if (accept(Tok::kLParen)) {
      do {
        if (at(Tok::kColon)) {
          advance();
          d.dims.push_back(make_number(0, true, line));
        } else {
          d.dims.push_back(parse_expr());
        }
      } while (accept(Tok::kComma));
      expect(Tok::kRParen, "array spec");
    }
    if (d.dims.empty()) {
      for (const auto& dim : shared_dims) d.dims.push_back(clone_expr(*dim));
    }
    if (accept(Tok::kAssign)) {
      d.init = parse_expr();
    }
    out->push_back(std::move(d));
  } while (accept(Tok::kComma));
  expect_newline("declaration");
}

InterfaceBlock Parser::parse_interface() {
  InterfaceBlock block;
  block.line = peek().line;
  expect_kw("interface", "interface block");
  block.name = expect(Tok::kIdentifier, "interface block").text;
  expect_newline("interface header");
  skip_newlines();
  while (at_kw("module")) {
    advance();
    expect_kw("procedure", "interface body");
    do {
      block.procedures.push_back(
          expect(Tok::kIdentifier, "interface procedure").text);
    } while (accept(Tok::kComma));
    expect_newline("interface procedure list");
    skip_newlines();
  }
  expect_kw("end", "interface end");
  expect_kw("interface", "interface end");
  if (at(Tok::kIdentifier)) advance();
  expect_newline("interface end");
  return block;
}

Subprogram Parser::parse_subprogram() {
  Subprogram sp;
  sp.line = peek().line;
  // Swallow prefixes (elemental/pure/recursive) — semantics don't affect us.
  while (at_kw("elemental") || at_kw("pure") || at_kw("recursive")) advance();

  if (accept_kw("subroutine")) {
    sp.kind = Subprogram::kSubroutine;
  } else if (accept_kw("function")) {
    sp.kind = Subprogram::kFunction;
  } else {
    fail("expected 'subroutine' or 'function'");
  }
  sp.name = expect(Tok::kIdentifier, "subprogram header").text;
  if (accept(Tok::kLParen)) {
    if (!at(Tok::kRParen)) {
      do {
        sp.params.push_back(expect(Tok::kIdentifier, "parameter list").text);
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "parameter list");
  }
  if (sp.kind == Subprogram::kFunction) {
    sp.result_name = sp.name;
    if (accept_kw("result")) {
      expect(Tok::kLParen, "result clause");
      sp.result_name = expect(Tok::kIdentifier, "result clause").text;
      expect(Tok::kRParen, "result clause");
    }
  }
  expect_newline("subprogram header");
  skip_newlines();

  for (;;) {
    skip_newlines();
    if (at_kw("use")) {
      sp.uses.push_back(parse_use());
    } else if (at_kw("implicit")) {
      skip_to_newline();
    } else if (at_decl_start()) {
      parse_var_decls(&sp.decls);
    } else {
      break;
    }
  }

  sp.body = parse_stmt_list({"end"});
  sp.end_line = peek().line;
  expect_kw("end", "subprogram end");
  if (accept_kw("subroutine") || accept_kw("function")) {
    if (at(Tok::kIdentifier)) advance();
  }
  expect_newline("subprogram end");
  return sp;
}

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

std::vector<StmtPtr> Parser::parse_stmt_list(
    const std::vector<std::string>& terminators) {
  std::vector<StmtPtr> stmts;
  for (;;) {
    skip_newlines();
    if (at(Tok::kEof)) break;
    bool terminated = false;
    for (const auto& term : terminators) {
      if (at_kw(term.c_str())) {
        terminated = true;
        break;
      }
    }
    // `endif`/`enddo` single-word enders terminate `end`-style lists too.
    if (!terminated &&
        std::find(terminators.begin(), terminators.end(), "end") !=
            terminators.end() &&
        (at_kw("endif") || at_kw("enddo"))) {
      terminated = true;
    }
    if (terminated) break;
    stmts.push_back(parse_stmt());
  }
  return stmts;
}

StmtPtr Parser::parse_stmt() {
  if (at_kw("if")) return parse_if();
  if (at_kw("do")) return parse_do();
  StmtPtr s = parse_simple_stmt();
  expect_newline("statement");
  return s;
}

StmtPtr Parser::parse_simple_stmt() {
  auto s = std::make_unique<Stmt>();
  s->line = peek().line;
  s->column = peek().column;

  if (accept_kw("return")) {
    s->kind = StmtKind::kReturn;
    s->end_line = prev().line;
    return s;
  }
  if (accept_kw("exit")) {
    s->kind = StmtKind::kExit;
    s->end_line = prev().line;
    return s;
  }
  if (accept_kw("cycle")) {
    s->kind = StmtKind::kCycle;
    s->end_line = prev().line;
    return s;
  }
  if (accept_kw("call")) {
    s->kind = StmtKind::kCall;
    s->callee = expect(Tok::kIdentifier, "call statement").text;
    if (accept(Tok::kLParen)) {
      if (!at(Tok::kRParen)) {
        do {
          s->args.push_back(parse_expr());
        } while (accept(Tok::kComma));
      }
      expect(Tok::kRParen, "call statement");
    }
    s->end_line = prev().line;
    return s;
  }

  // Otherwise: assignment `ref = expr`.
  if (!at(Tok::kIdentifier)) fail("expected a statement");
  s->kind = StmtKind::kAssign;
  s->lhs = parse_ref();
  expect(Tok::kAssign, "assignment");
  s->rhs = parse_expr();
  s->end_line = prev().line;
  return s;
}

StmtPtr Parser::parse_if() {
  auto s = std::make_unique<Stmt>();
  s->line = peek().line;
  s->column = peek().column;
  s->kind = StmtKind::kIf;
  expect_kw("if", "if statement");
  expect(Tok::kLParen, "if condition");
  s->cond = parse_expr();
  expect(Tok::kRParen, "if condition");

  if (!accept_kw("then")) {
    // Single-statement logical if: `if (cond) stmt`.
    s->body.push_back(parse_simple_stmt());
    s->end_line = s->body.back()->end_line;
    expect_newline("if statement");
    return s;
  }
  expect_newline("if-then");

  s->body = parse_stmt_list({"else", "elseif", "end", "endif"});
  for (;;) {
    if (at_kw("elseif") ||
        (at_kw("else") && peek(1).is_kw("if"))) {
      if (accept_kw("elseif")) {
        // single token form
      } else {
        advance();  // else
        advance();  // if
      }
      ElseIf branch;
      expect(Tok::kLParen, "elseif condition");
      branch.cond = parse_expr();
      expect(Tok::kRParen, "elseif condition");
      expect_kw("then", "elseif");
      expect_newline("elseif");
      branch.body = parse_stmt_list({"else", "elseif", "end", "endif"});
      s->elseifs.push_back(std::move(branch));
      continue;
    }
    if (at_kw("else")) {
      advance();
      expect_newline("else");
      s->else_body = parse_stmt_list({"end", "endif"});
    }
    break;
  }
  s->end_line = peek().line;
  if (accept_kw("endif")) {
    expect_newline("endif");
  } else {
    expect_kw("end", "end if");
    expect_kw("if", "end if");
    expect_newline("end if");
  }
  return s;
}

StmtPtr Parser::parse_do() {
  auto s = std::make_unique<Stmt>();
  s->line = peek().line;
  s->column = peek().column;
  expect_kw("do", "do statement");

  if (accept_kw("while")) {
    s->kind = StmtKind::kDoWhile;
    expect(Tok::kLParen, "do while");
    s->cond = parse_expr();
    expect(Tok::kRParen, "do while");
    expect_newline("do while");
  } else {
    s->kind = StmtKind::kDo;
    s->do_var = expect(Tok::kIdentifier, "do variable").text;
    expect(Tok::kAssign, "do bounds");
    s->from = parse_expr();
    expect(Tok::kComma, "do bounds");
    s->to = parse_expr();
    if (accept(Tok::kComma)) s->step = parse_expr();
    expect_newline("do header");
  }

  s->body = parse_stmt_list({"end", "enddo"});
  s->end_line = peek().line;
  if (accept_kw("enddo")) {
    expect_newline("enddo");
  } else {
    expect_kw("end", "end do");
    expect_kw("do", "end do");
    expect_newline("end do");
  }
  return s;
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing).
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expr() {
  ExprPtr lhs = parse_and();
  while (at(Tok::kDotOr)) {
    int line = advance().line;
    lhs = make_binary(Op::kOr, std::move(lhs), parse_and(), line);
  }
  return lhs;
}

ExprPtr Parser::parse_and() {
  ExprPtr lhs = parse_not();
  while (at(Tok::kDotAnd)) {
    int line = advance().line;
    lhs = make_binary(Op::kAnd, std::move(lhs), parse_not(), line);
  }
  return lhs;
}

ExprPtr Parser::parse_not() {
  if (at(Tok::kDotNot)) {
    int line = advance().line;
    return make_unary(Op::kNot, parse_not(), line);
  }
  return parse_compare();
}

ExprPtr Parser::parse_compare() {
  ExprPtr lhs = parse_additive();
  for (;;) {
    Op op;
    switch (peek().kind) {
      case Tok::kEq: op = Op::kEq; break;
      case Tok::kNe: op = Op::kNe; break;
      case Tok::kLt: op = Op::kLt; break;
      case Tok::kLe: op = Op::kLe; break;
      case Tok::kGt: op = Op::kGt; break;
      case Tok::kGe: op = Op::kGe; break;
      default: return lhs;
    }
    int line = advance().line;
    lhs = make_binary(op, std::move(lhs), parse_additive(), line);
  }
}

ExprPtr Parser::parse_additive() {
  ExprPtr lhs = parse_term();
  for (;;) {
    if (at(Tok::kPlus)) {
      int line = advance().line;
      lhs = make_binary(Op::kAdd, std::move(lhs), parse_term(), line);
    } else if (at(Tok::kMinus)) {
      int line = advance().line;
      lhs = make_binary(Op::kSub, std::move(lhs), parse_term(), line);
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parse_term() {
  ExprPtr lhs = parse_unary();
  for (;;) {
    if (at(Tok::kStar)) {
      int line = advance().line;
      lhs = make_binary(Op::kMul, std::move(lhs), parse_unary(), line);
    } else if (at(Tok::kSlash)) {
      int line = advance().line;
      lhs = make_binary(Op::kDiv, std::move(lhs), parse_unary(), line);
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parse_unary() {
  if (at(Tok::kMinus)) {
    int line = advance().line;
    return make_unary(Op::kNeg, parse_unary(), line);
  }
  if (at(Tok::kPlus)) {
    int line = advance().line;
    return make_unary(Op::kPlusSign, parse_unary(), line);
  }
  return parse_power();
}

ExprPtr Parser::parse_power() {
  ExprPtr base = parse_primary();
  if (at(Tok::kPower)) {
    int line = advance().line;
    // Right-associative; exponent may itself be a unary minus (a ** -b).
    return make_binary(Op::kPow, std::move(base), parse_unary(), line);
  }
  return base;
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::kNumber: {
      advance();
      ExprPtr e = make_number(t.number, t.is_int, t.line);
      e->column = t.column;
      e->end_column = token_end_column(t);
      return e;
    }
    case Tok::kString: {
      advance();
      ExprPtr e = make_string(t.text, t.line);
      e->column = t.column;
      e->end_column = token_end_column(t);
      return e;
    }
    case Tok::kDotTrue: {
      advance();
      ExprPtr e = make_logical(true, t.line);
      e->column = t.column;
      e->end_column = token_end_column(t);
      return e;
    }
    case Tok::kDotFalse: {
      advance();
      ExprPtr e = make_logical(false, t.line);
      e->column = t.column;
      e->end_column = token_end_column(t);
      return e;
    }
    case Tok::kLParen: {
      advance();
      ExprPtr inner = parse_expr();
      expect(Tok::kRParen, "parenthesized expression");
      return inner;
    }
    case Tok::kIdentifier:
      return parse_ref();
    default:
      fail(std::string("expected expression, got ") + tok_name(t.kind));
  }
}

ExprPtr Parser::parse_ref() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRef;
  e->line = peek().line;
  e->column = peek().column;
  for (;;) {
    RefSegment seg;
    seg.name = expect(Tok::kIdentifier, "reference").text;
    if (accept(Tok::kLParen)) {
      seg.has_args = true;
      seg.args = parse_arg_list();
    }
    e->segments.push_back(std::move(seg));
    if (!accept(Tok::kPercent)) break;
  }
  e->end_line = prev().line;
  e->end_column = token_end_column(prev());
  return e;
}

std::vector<ExprPtr> Parser::parse_arg_list() {
  std::vector<ExprPtr> args;
  if (!at(Tok::kRParen)) {
    do {
      if (at(Tok::kColon)) {  // whole-dimension slice `a(:, k)`
        int line = advance().line;
        args.push_back(make_ref("__slice__", line));
      } else {
        args.push_back(parse_expr());
      }
    } while (accept(Tok::kComma));
  }
  expect(Tok::kRParen, "argument list");
  return args;
}

bool Parser::at_end_of(const char* what) const {
  return at_kw("end") && peek(1).is_kw(what);
}

ExprPtr Parser::parse_expression(const std::string& text) {
  Parser p("<expr>", text);
  ExprPtr e = p.parse_expr();
  return e;
}

}  // namespace rca::lang
