// Token definitions for the Fortran-subset frontend.
//
// The subset ("FS", Fortran-subset) covers the constructs the paper's
// AST-to-digraph rules must handle: modules, use/only/rename, derived types,
// subroutines/functions/interfaces, assignments, calls, intrinsics, arrays,
// do/if control flow, and `call outfld(...)` I/O statements.
#pragma once

#include <string>
#include <vector>

namespace rca::lang {

enum class Tok {
  kEof,
  kNewline,     // statement separator (also ';')
  kIdentifier,  // normalized to lower case
  kNumber,      // integer or real literal, value in `number`
  kString,      // quoted literal, unquoted text in `text`

  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kColon,
  kDoubleColon,
  kPercent,
  kAssign,     // =
  kArrow,      // =>
  kPlus,
  kMinus,
  kStar,
  kPower,      // **
  kSlash,
  kEq,         // ==
  kNe,         // /=
  kLt,
  kLe,
  kGt,
  kGe,
  kDotAnd,     // .and.
  kDotOr,      // .or.
  kDotNot,     // .not.
  kDotTrue,    // .true.
  kDotFalse,   // .false.
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;    // identifier/string payload (identifiers lower-cased)
  double number = 0.0; // numeric payload for kNumber
  bool is_int = false; // literal had no decimal point/exponent
  int line = 0;        // 1-based
  int column = 0;      // 1-based

  bool is(Tok k) const { return kind == k; }
  /// True for an identifier token equal to `kw` (keywords are contextual in
  /// Fortran; the parser checks them where grammar expects them).
  bool is_kw(const char* kw) const {
    return kind == Tok::kIdentifier && text == kw;
  }
};

const char* tok_name(Tok t);

}  // namespace rca::lang
