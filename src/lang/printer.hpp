// AST pretty-printer: regenerates Fortran-subset source text.
//
// The bug injectors (src/model) mutate ASTs and re-emit source through this
// printer, so an "experiment" is a literal source-level change — the same
// thing the paper injects into CESM — which then flows through parsing,
// graph construction and interpretation like any other code.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace rca::lang {

std::string print_expr(const Expr& e);
std::string print_stmt(const Stmt& s, int indent = 0);
std::string print_subprogram(const Subprogram& sp, int indent = 0);
std::string print_module(const Module& mod);
std::string print_source_file(const SourceFile& file);

}  // namespace rca::lang
