// Recursive-descent parser for the Fortran subset.
//
// Produces the lang::SourceFile AST. Keywords are contextual (Fortran has no
// reserved words); the parser checks identifier text where the grammar
// expects a keyword.
#pragma once

#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "lang/token.hpp"

namespace rca::lang {

class Parser {
 public:
  /// Lexes and parses a whole source file. Throws rca::ParseError.
  Parser(std::string filename, std::string source);

  SourceFile parse_file();

  /// Parse a standalone expression (used by tests and the bug injectors).
  static ExprPtr parse_expression(const std::string& text);

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  /// Most recently consumed token (for end-of-extent positions).
  const Token& prev() const;
  /// One past the last character of `t` (exact for identifiers/strings).
  static int token_end_column(const Token& t);
  bool at(Tok k) const { return peek().is(k); }
  bool at_kw(const char* kw) const { return peek().is_kw(kw); }
  bool accept(Tok k);
  bool accept_kw(const char* kw);
  const Token& expect(Tok k, const char* context);
  void expect_kw(const char* kw, const char* context);
  void expect_newline(const char* context);
  void skip_newlines();
  void skip_to_newline();
  [[noreturn]] void fail(const std::string& msg) const;

  Module parse_module();
  UseStmt parse_use();
  DerivedTypeDef parse_type_def();
  bool at_decl_start() const;
  void parse_var_decls(std::vector<VarDecl>* out);
  InterfaceBlock parse_interface();
  Subprogram parse_subprogram();
  std::vector<StmtPtr> parse_stmt_list(
      const std::vector<std::string>& terminators);
  StmtPtr parse_stmt();
  StmtPtr parse_simple_stmt();  // assign/call/return/exit/cycle (no newline)
  StmtPtr parse_if();
  StmtPtr parse_do();

  ExprPtr parse_expr();      // .or.
  ExprPtr parse_and();       // .and.
  ExprPtr parse_not();       // .not.
  ExprPtr parse_compare();   // == /= < <= > >=
  ExprPtr parse_additive();  // + -
  ExprPtr parse_term();      // * /
  ExprPtr parse_unary();     // prefix + -
  ExprPtr parse_power();     // ** (right assoc)
  ExprPtr parse_primary();
  ExprPtr parse_ref();
  std::vector<ExprPtr> parse_arg_list();  // after '('

  /// True when the current token sequence looks like an `end <what>` line.
  bool at_end_of(const char* what) const;

  std::string filename_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace rca::lang
