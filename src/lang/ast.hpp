// Abstract syntax tree for the Fortran subset.
//
// Mirrors the information the paper extracts from fparser ASTs (§4): modules,
// use statements with only-lists and renames, derived types, subprograms,
// assignments whose reference chains carry derived-type component paths and
// (possibly ambiguous) name(...) forms that may be either array indexing or a
// function call — disambiguated later against a hash table of subprogram
// names, exactly as the paper does.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rca::lang {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Types.
// ---------------------------------------------------------------------------

enum class TypeKind { kReal, kInteger, kLogical, kCharacter, kDerived };

struct TypeSpec {
  TypeKind kind = TypeKind::kReal;
  std::string derived_name;  // for kDerived

  bool is_derived() const { return kind == TypeKind::kDerived; }
};

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

enum class ExprKind {
  kNumber,    // literal; `number`, `is_int`
  kString,    // literal; `text`
  kLogical,   // literal; `bool_value`
  kRef,       // reference chain: a, a(i), a%b, a(i)%b%c(j), f(x) [ambiguous]
  kUnary,     // op in `op`, operand in `rhs`
  kBinary,    // op in `op`, operands `lhs`, `rhs`
};

enum class Op {
  kAdd, kSub, kMul, kDiv, kPow,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot, kNeg, kPlusSign,
};

const char* op_name(Op op);

/// One segment of a reference chain: `name` optionally followed by
/// parenthesized arguments (array indices or call arguments).
struct RefSegment {
  std::string name;
  bool has_args = false;       // distinguishes `f()` from bare `f`
  std::vector<ExprPtr> args;
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  int line = 0;
  int column = 0;
  // End of the expression's source extent: the line of its last token and
  // one past that token's final character (identifiers/strings; other token
  // kinds approximate with their start column). Diagnostics and metagraph
  // node metadata both read these fields, so reported positions agree.
  int end_line = 0;
  int end_column = 0;

  // kNumber / kLogical.
  double number = 0.0;
  bool is_int = false;
  bool bool_value = false;

  // kString.
  std::string text;

  // kRef: at least one segment; segments after the first are derived-type
  // component accesses (`%`).
  std::vector<RefSegment> segments;

  // kUnary / kBinary.
  Op op = Op::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;

  bool is_ref() const { return kind == ExprKind::kRef; }

  /// Base (first-segment) name of a reference chain.
  const std::string& base_name() const { return segments.front().name; }

  /// Final component name — the paper's "canonical name" for derived-type
  /// chains (state%omega -> omega); equals base_name for plain variables.
  const std::string& canonical_name() const { return segments.back().name; }

  /// True for a single-segment reference with arguments: the syntactically
  /// ambiguous `name(...)` form (function call or array element).
  bool is_call_or_index() const {
    return kind == ExprKind::kRef && segments.size() == 1 &&
           segments.front().has_args;
  }
};

// Factory helpers (used by the parser, tests, and corpus generator).
ExprPtr make_number(double v, bool is_int, int line = 0);
ExprPtr make_string(std::string s, int line = 0);
ExprPtr make_logical(bool v, int line = 0);
ExprPtr make_ref(std::string name, int line = 0);
ExprPtr make_binary(Op op, ExprPtr lhs, ExprPtr rhs, int line = 0);
ExprPtr make_unary(Op op, ExprPtr operand, int line = 0);
ExprPtr clone_expr(const Expr& e);

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

enum class StmtKind {
  kAssign,   // lhs = rhs (lhs is a kRef expr)
  kCall,     // call name(args)
  kIf,       // if/elseif/else
  kDo,       // counted do loop
  kDoWhile,  // do while (cond)
  kReturn,
  kExit,     // exit innermost loop
  kCycle,    // next loop iteration
};

struct ElseIf {
  ExprPtr cond;
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind = StmtKind::kAssign;
  int line = 0;
  int column = 0;
  int end_line = 0;  // last line of the statement (the `end if` line etc.)

  // kAssign.
  ExprPtr lhs;
  ExprPtr rhs;

  // kCall.
  std::string callee;
  std::vector<ExprPtr> args;

  // kIf / kDoWhile share `cond`.
  ExprPtr cond;
  std::vector<StmtPtr> body;          // then-body / loop body
  std::vector<ElseIf> elseifs;        // kIf only
  std::vector<StmtPtr> else_body;     // kIf only

  // kDo.
  std::string do_var;
  ExprPtr from;
  ExprPtr to;
  ExprPtr step;  // may be null (step 1)
};

// ---------------------------------------------------------------------------
// Declarations and program structure.
// ---------------------------------------------------------------------------

enum class Intent { kNone, kIn, kOut, kInOut };

struct VarDecl {
  std::string name;
  TypeSpec type;
  std::vector<ExprPtr> dims;   // empty = scalar; entries are extent exprs
  bool is_parameter = false;
  ExprPtr init;                // parameter value / initializer (may be null)
  Intent intent = Intent::kNone;
  int line = 0;

  bool is_array() const { return !dims.empty(); }
};

struct DerivedTypeDef {
  std::string name;
  std::vector<VarDecl> components;
  int line = 0;
};

struct UseStmt {
  struct Rename {
    std::string local;   // name visible in the using scope
    std::string remote;  // name in the source module
  };
  std::string module;
  bool has_only = false;
  std::vector<Rename> renames;  // empty + !has_only = import-all
  int line = 0;
};

struct Subprogram {
  enum Kind { kSubroutine, kFunction };
  Kind kind = kSubroutine;
  std::string name;
  std::vector<std::string> params;
  std::string result_name;  // functions; defaults to `name`
  std::vector<UseStmt> uses;
  std::vector<VarDecl> decls;
  std::vector<StmtPtr> body;
  int line = 0;
  int end_line = 0;

  bool is_function() const { return kind == kFunction; }
};

struct InterfaceBlock {
  std::string name;                     // generic name
  std::vector<std::string> procedures;  // module procedures
  int line = 0;
};

struct Module {
  std::string name;
  std::string file;  // source file this module was parsed from
  std::vector<UseStmt> uses;
  std::vector<DerivedTypeDef> types;
  std::vector<VarDecl> decls;
  std::vector<InterfaceBlock> interfaces;
  std::vector<Subprogram> subprograms;
  int line = 0;
  int end_line = 0;

  const Subprogram* find_subprogram(const std::string& n) const;
  const DerivedTypeDef* find_type(const std::string& n) const;
  const VarDecl* find_decl(const std::string& n) const;
};

/// All modules parsed from one source file.
struct SourceFile {
  std::string path;
  std::vector<Module> modules;
};

}  // namespace rca::lang
