#include "lang/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::lang {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kNewline: return "<newline>";
    case Tok::kIdentifier: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kString: return "string";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kComma: return ",";
    case Tok::kColon: return ":";
    case Tok::kDoubleColon: return "::";
    case Tok::kPercent: return "%";
    case Tok::kAssign: return "=";
    case Tok::kArrow: return "=>";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kPower: return "**";
    case Tok::kSlash: return "/";
    case Tok::kEq: return "==";
    case Tok::kNe: return "/=";
    case Tok::kLt: return "<";
    case Tok::kLe: return "<=";
    case Tok::kGt: return ">";
    case Tok::kGe: return ">=";
    case Tok::kDotAnd: return ".and.";
    case Tok::kDotOr: return ".or.";
    case Tok::kDotNot: return ".not.";
    case Tok::kDotTrue: return ".true.";
    case Tok::kDotFalse: return ".false.";
  }
  return "?";
}

Lexer::Lexer(std::string filename, std::string source)
    : filename_(std::move(filename)), src_(std::move(source)) {}

char Lexer::peek(int ahead) const {
  std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  bool continuation = false;  // previous non-blank token was '&'
  while (pos_ < src_.size()) {
    char c = peek();
    // Comments run to end of line.
    if (c == '!') {
      while (pos_ < src_.size() && peek() != '\n') advance();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
      continue;
    }
    if (c == '&') {
      advance();
      continuation = true;
      continue;
    }
    if (c == '\n' || c == ';') {
      advance();
      if (continuation) continue;  // swallow the newline after '&'
      if (!out.empty() && !out.back().is(Tok::kNewline)) {
        Token t;
        t.kind = Tok::kNewline;
        t.line = line_ - (c == '\n' ? 1 : 0);
        out.push_back(t);
      }
      continue;
    }
    continuation = false;
    out.push_back(next());
  }
  if (out.empty() || !out.back().is(Tok::kNewline)) {
    Token nl;
    nl.kind = Tok::kNewline;
    nl.line = line_;
    out.push_back(nl);
  }
  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line_;
  out.push_back(eof);
  return out;
}

Token Lexer::next() {
  Token t;
  t.line = line_;
  t.column = column_;
  char c = advance();

  auto simple = [&t](Tok k) {
    t.kind = k;
    return t;
  };

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string ident(1, c);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      ident.push_back(advance());
    }
    t.kind = Tok::kIdentifier;
    t.text = to_lower(ident);
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
    std::string num(1, c);
    bool is_int = (c != '.');
    while (std::isdigit(static_cast<unsigned char>(peek()))) num.push_back(advance());
    // Decimal point, but not `1.and.`-style dotted operator.
    if (peek() == '.' && !std::isalpha(static_cast<unsigned char>(peek(1)))) {
      is_int = false;
      num.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek()))) num.push_back(advance());
    }
    char e = peek();
    if (e == 'e' || e == 'E' || e == 'd' || e == 'D') {
      char sign = peek(1);
      char digit = (sign == '+' || sign == '-') ? peek(2) : sign;
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        is_int = false;
        advance();           // exponent letter
        num.push_back('e');  // normalize d/D exponents
        if (sign == '+' || sign == '-') num.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek()))) num.push_back(advance());
      }
    }
    // Kind suffix like 1.0_r8: consume and ignore.
    if (peek() == '_') {
      advance();
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') advance();
    }
    t.kind = Tok::kNumber;
    t.number = std::strtod(num.c_str(), nullptr);
    t.is_int = is_int;
    return t;
  }

  switch (c) {
    case '(': return simple(Tok::kLParen);
    case ')': return simple(Tok::kRParen);
    case ',': return simple(Tok::kComma);
    case '%': return simple(Tok::kPercent);
    case '+': return simple(Tok::kPlus);
    case '-': return simple(Tok::kMinus);
    case '*': return simple(match('*') ? Tok::kPower : Tok::kStar);
    case ':': return simple(match(':') ? Tok::kDoubleColon : Tok::kColon);
    case '=':
      if (match('=')) return simple(Tok::kEq);
      if (match('>')) return simple(Tok::kArrow);
      return simple(Tok::kAssign);
    case '/': return simple(match('=') ? Tok::kNe : Tok::kSlash);
    case '<': return simple(match('=') ? Tok::kLe : Tok::kLt);
    case '>': return simple(match('=') ? Tok::kGe : Tok::kGt);
    case '\'':
    case '"': {
      const char quote = c;
      std::string text;
      while (pos_ < src_.size() && peek() != quote && peek() != '\n') {
        text.push_back(advance());
      }
      if (!match(quote)) {
        throw ParseError("unterminated string literal", filename_, t.line, t.column);
      }
      t.kind = Tok::kString;
      t.text = std::move(text);
      return t;
    }
    case '.': {
      // Dotted logical operator or constant: .and. .or. .not. .true. .false.
      std::string word;
      while (std::isalpha(static_cast<unsigned char>(peek()))) word.push_back(advance());
      if (!match('.')) {
        throw ParseError("malformed dotted operator '." + word + "'", filename_,
                         t.line, t.column);
      }
      word = to_lower(word);
      if (word == "and") return simple(Tok::kDotAnd);
      if (word == "or") return simple(Tok::kDotOr);
      if (word == "not") return simple(Tok::kDotNot);
      if (word == "true") return simple(Tok::kDotTrue);
      if (word == "false") return simple(Tok::kDotFalse);
      if (word == "eq") return simple(Tok::kEq);
      if (word == "ne") return simple(Tok::kNe);
      if (word == "lt") return simple(Tok::kLt);
      if (word == "le") return simple(Tok::kLe);
      if (word == "gt") return simple(Tok::kGt);
      if (word == "ge") return simple(Tok::kGe);
      throw ParseError("unknown dotted operator '." + word + ".'", filename_,
                       t.line, t.column);
    }
    default:
      throw ParseError(std::string("unexpected character '") + c + "'",
                       filename_, t.line, t.column);
  }
}

}  // namespace rca::lang
