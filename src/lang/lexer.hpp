// Lexer for the Fortran subset: line-oriented, `!` comments, `&` continuation,
// case-insensitive identifiers (normalized to lower case).
#pragma once

#include <string>
#include <vector>

#include "lang/token.hpp"

namespace rca::lang {

class Lexer {
 public:
  Lexer(std::string filename, std::string source);

  /// Lex the whole buffer. Consecutive newlines are collapsed; a trailing
  /// kNewline and kEof are always present. Throws rca::ParseError on bad
  /// characters or unterminated strings.
  std::vector<Token> lex_all();

  const std::string& filename() const { return filename_; }

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_blanks_and_comments(std::vector<Token>& out);

  std::string filename_;
  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace rca::lang
