#include "lang/ast.hpp"

namespace rca::lang {

const char* op_name(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kPow: return "**";
    case Op::kEq: return "==";
    case Op::kNe: return "/=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kAnd: return ".and.";
    case Op::kOr: return ".or.";
    case Op::kNot: return ".not.";
    case Op::kNeg: return "-";
    case Op::kPlusSign: return "+";
  }
  return "?";
}

ExprPtr make_number(double v, bool is_int, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = v;
  e->is_int = is_int;
  e->line = line;
  e->end_line = line;
  return e;
}

ExprPtr make_string(std::string s, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kString;
  e->text = std::move(s);
  e->line = line;
  e->end_line = line;
  return e;
}

ExprPtr make_logical(bool v, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLogical;
  e->bool_value = v;
  e->line = line;
  e->end_line = line;
  return e;
}

ExprPtr make_ref(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRef;
  RefSegment seg;
  seg.name = std::move(name);
  e->segments.push_back(std::move(seg));
  e->line = line;
  e->end_line = line;
  return e;
}

ExprPtr make_binary(Op op, ExprPtr lhs, ExprPtr rhs, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->line = line;
  e->column = e->lhs ? e->lhs->column : 0;
  e->end_line = e->rhs ? e->rhs->end_line : line;
  e->end_column = e->rhs ? e->rhs->end_column : 0;
  return e;
}

ExprPtr make_unary(Op op, ExprPtr operand, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = op;
  e->rhs = std::move(operand);
  e->line = line;
  e->end_line = e->rhs ? e->rhs->end_line : line;
  e->end_column = e->rhs ? e->rhs->end_column : 0;
  return e;
}

ExprPtr clone_expr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->line = e.line;
  out->column = e.column;
  out->end_line = e.end_line;
  out->end_column = e.end_column;
  out->number = e.number;
  out->is_int = e.is_int;
  out->bool_value = e.bool_value;
  out->text = e.text;
  out->op = e.op;
  for (const auto& seg : e.segments) {
    RefSegment s;
    s.name = seg.name;
    s.has_args = seg.has_args;
    for (const auto& a : seg.args) s.args.push_back(clone_expr(*a));
    out->segments.push_back(std::move(s));
  }
  if (e.lhs) out->lhs = clone_expr(*e.lhs);
  if (e.rhs) out->rhs = clone_expr(*e.rhs);
  return out;
}

const Subprogram* Module::find_subprogram(const std::string& n) const {
  for (const auto& sp : subprograms) {
    if (sp.name == n) return &sp;
  }
  return nullptr;
}

const DerivedTypeDef* Module::find_type(const std::string& n) const {
  for (const auto& t : types) {
    if (t.name == n) return &t;
  }
  return nullptr;
}

const VarDecl* Module::find_decl(const std::string& n) const {
  for (const auto& d : decls) {
    if (d.name == n) return &d;
  }
  return nullptr;
}

}  // namespace rca::lang
