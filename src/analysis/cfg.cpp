#include "analysis/cfg.hpp"

namespace rca::analysis {

using lang::Stmt;
using lang::StmtKind;

std::vector<std::vector<int>> Cfg::predecessors() const {
  std::vector<std::vector<int>> preds(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (int s : blocks[b].succs) preds[s].push_back(static_cast<int>(b));
  }
  return preds;
}

namespace {

class CfgBuilder {
 public:
  explicit CfgBuilder(const lang::Subprogram& sp) {
    cfg_.blocks.resize(2);  // 0 = entry, 1 = exit
    int cur = walk_list(sp.body, cfg_.entry);
    link(cur, cfg_.exit);
  }

  Cfg take() { return std::move(cfg_); }

 private:
  struct LoopTargets {
    int header = 0;  // `cycle` target
    int after = 0;   // `exit` target
  };

  int new_block() {
    cfg_.blocks.emplace_back();
    return static_cast<int>(cfg_.blocks.size()) - 1;
  }

  void link(int from, int to) { cfg_.blocks[from].succs.push_back(to); }

  /// Walks a statement list appending to block `cur`; returns the block the
  /// list falls through to.
  int walk_list(const std::vector<lang::StmtPtr>& stmts, int cur) {
    for (const auto& s : stmts) cur = walk_stmt(*s, cur);
    return cur;
  }

  int walk_stmt(const Stmt& s, int cur) {
    switch (s.kind) {
      case StmtKind::kAssign:
      case StmtKind::kCall:
        cfg_.blocks[cur].stmts.push_back({CfgStmt::Role::kSimple, &s, nullptr});
        return cur;
      case StmtKind::kReturn:
        link(cur, cfg_.exit);
        return new_block();  // fallthrough block is unreachable
      case StmtKind::kExit:
        if (!loops_.empty()) link(cur, loops_.back().after);
        return new_block();
      case StmtKind::kCycle:
        if (!loops_.empty()) link(cur, loops_.back().header);
        return new_block();
      case StmtKind::kIf:
        return walk_if(s, cur);
      case StmtKind::kDo:
      case StmtKind::kDoWhile:
        return walk_loop(s, cur);
    }
    return cur;
  }

  int walk_if(const Stmt& s, int cur) {
    const int join = new_block();
    // Condition chain: each cond block branches into its body and falls
    // through (cond false) to the next condition / else / join.
    cfg_.blocks[cur].stmts.push_back({CfgStmt::Role::kCond, &s, s.cond.get()});
    int cond_block = cur;

    auto add_arm = [this, join](int from, const std::vector<lang::StmtPtr>& body) {
      const int arm = new_block();
      link(from, arm);
      link(walk_list(body, arm), join);
    };

    add_arm(cond_block, s.body);
    for (const auto& ei : s.elseifs) {
      const int next_cond = new_block();
      link(cond_block, next_cond);
      cfg_.blocks[next_cond].stmts.push_back(
          {CfgStmt::Role::kCond, &s, ei.cond.get()});
      cond_block = next_cond;
      add_arm(cond_block, ei.body);
    }
    if (!s.else_body.empty()) {
      add_arm(cond_block, s.else_body);
    } else {
      link(cond_block, join);  // all conditions false: skip
    }
    return join;
  }

  int walk_loop(const Stmt& s, int cur) {
    const int header = new_block();
    const int body = new_block();
    const int after = new_block();
    link(cur, header);
    if (s.kind == StmtKind::kDo) {
      cfg_.blocks[header].stmts.push_back(
          {CfgStmt::Role::kDoHeader, &s, nullptr});
    } else {
      cfg_.blocks[header].stmts.push_back(
          {CfgStmt::Role::kCond, &s, s.cond.get()});
    }
    link(header, body);
    link(header, after);  // zero-trip / loop-done path
    loops_.push_back({header, after});
    link(walk_list(s.body, body), header);  // back edge
    loops_.pop_back();
    return after;
  }

  Cfg cfg_;
  std::vector<LoopTargets> loops_;
};

}  // namespace

Cfg build_cfg(const lang::Subprogram& sp) { return CfgBuilder(sp).take(); }

}  // namespace rca::analysis
