// Program-wide call graph over ProgramSymbols resolution.
//
// One node per subprogram, in module order then subprogram order (both
// deterministic). Call-statement and function-reference edges resolve
// through the same per-module tables the lint passes and the metagraph
// builder use: generic interfaces expand to every candidate, so edges are a
// conservative over-approximation of the dynamic call relation. Tarjan's
// algorithm condenses the graph into strongly connected components whose
// ids come out in reverse topological order — component 0 is a sink — which
// is exactly the bottom-up order the mod/ref summary computation
// (summaries.hpp) needs: every callee's component is finished before any of
// its callers'.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/passes.hpp"
#include "lang/ast.hpp"

namespace rca::analysis {

struct CallGraph {
  struct Node {
    const lang::Module* module = nullptr;
    const lang::Subprogram* sp = nullptr;
  };

  std::vector<Node> nodes;
  std::vector<std::vector<std::size_t>> callees;  // sorted, deduplicated
  std::vector<std::vector<std::size_t>> callers;  // sorted, deduplicated
  // The body contains a call (or ambiguous `name(...)` reference) that no
  // visible procedure, intrinsic or module variable explains. Summaries of
  // such nodes cannot bound the callee's effects on module variables.
  std::vector<bool> has_unknown_call;

  // Tarjan condensation. `scc_of[n]` is in reverse topological order of the
  // condensation DAG: for an edge u -> v with scc_of[u] != scc_of[v],
  // scc_of[v] < scc_of[u].
  std::vector<std::size_t> scc_of;
  std::size_t scc_count = 0;
  std::vector<std::vector<std::size_t>> scc_members;  // ascending node ids
  std::vector<bool> scc_recursive;  // more than one member, or a self edge

  /// -1 when the subprogram is not part of the graph.
  int index_of(const lang::Subprogram* sp) const {
    auto it = index.find(sp);
    return it == index.end() ? -1 : static_cast<int>(it->second);
  }

  std::unordered_map<const lang::Subprogram*, std::size_t> index;
};

/// Builds the call graph and its SCC condensation. `symbols` must have been
/// constructed over the same module list.
CallGraph build_call_graph(const std::vector<const lang::Module*>& modules,
                           const ProgramSymbols& symbols);

}  // namespace rca::analysis
