#include "analysis/fpsense.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "analysis/summaries.hpp"
#include "interp/intrinsics.hpp"
#include "lang/printer.hpp"

namespace rca::analysis {

using lang::Expr;
using lang::ExprKind;
using lang::Module;
using lang::Op;
using lang::Stmt;
using lang::StmtKind;
using lang::Subprogram;
using lang::TypeKind;
using lang::VarDecl;

namespace {

bool is_add_sub(const Expr& e) {
  return e.kind == ExprKind::kBinary && (e.op == Op::kAdd || e.op == Op::kSub);
}

bool is_arithmetic(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kPow:
      return true;
    default:
      return false;
  }
}

// Intrinsics that produce real values regardless of argument types.
bool is_fp_intrinsic(const std::string& name) {
  static const char* const kNames[] = {
      "sqrt", "exp",  "log",  "log10", "sin",  "cos",  "tan",
      "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
  };
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

/// Classifies expressions as floating-point and collects the two site
/// shapes. One instance per subprogram.
class FpScanner {
 public:
  FpScanner(const Subprogram& sp, const ProgramSymbols::ModuleSyms* syms,
            const FpCallOracle& returns_real, std::vector<FpSite>* out)
      : sp_(sp), syms_(syms), returns_real_(returns_real), out_(out) {
    for (const VarDecl& d : sp.decls) decls_.emplace(d.name, &d);
    for (const auto& st : sp.body) walk_stmt(*st);
  }

 private:
  void walk_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
        scan_root(s.rhs.get(), s.lhs ? s.lhs->base_name() : std::string());
        break;
      case StmtKind::kCall:
        for (const auto& a : s.args) scan_root(a.get(), "");
        break;
      case StmtKind::kIf:
        scan_root(s.cond.get(), "");
        for (const auto& st : s.body) walk_stmt(*st);
        for (const auto& ei : s.elseifs) {
          scan_root(ei.cond.get(), "");
          for (const auto& st : ei.body) walk_stmt(*st);
        }
        for (const auto& st : s.else_body) walk_stmt(*st);
        break;
      case StmtKind::kDo:
        scan_root(s.from.get(), "");
        scan_root(s.to.get(), "");
        scan_root(s.step.get(), "");
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      case StmtKind::kDoWhile:
        scan_root(s.cond.get(), "");
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      default:
        break;
    }
  }

  void scan_root(const Expr* e, const std::string& target) {
    target_ = target;
    scan(e, /*parent_is_chain=*/false);
  }

  void scan(const Expr* e, bool parent_is_chain) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kUnary) {
      scan(e->rhs.get(), false);
      return;
    }
    if (e->kind == ExprKind::kRef) {
      for (const auto& seg : e->segments) {
        for (const auto& a : seg.args) scan(a.get(), false);
      }
      return;
    }
    if (e->kind != ExprKind::kBinary) return;
    if (is_add_sub(*e)) {
      // Reassociation: the top of a left-associated +/- chain of three or
      // more FP terms — the compiler's association order changes the sum.
      if (!parent_is_chain && chain_terms(*e) >= 3 && is_fp(*e)) {
        out_->push_back({&sp_, e, FpSite::Kind::kReassociation, target_});
      }
      // Contraction: an FP add/subtract with a multiply operand, the shape
      // FMA contraction fuses with a single rounding.
      const bool mul_child =
          (e->lhs && e->lhs->kind == ExprKind::kBinary &&
           e->lhs->op == Op::kMul) ||
          (e->rhs && e->rhs->kind == ExprKind::kBinary &&
           e->rhs->op == Op::kMul);
      if (mul_child && is_fp(*e)) {
        out_->push_back({&sp_, e, FpSite::Kind::kContraction, target_});
      }
      scan(e->lhs.get(), true);
      scan(e->rhs.get(), true);
      return;
    }
    scan(e->lhs.get(), false);
    scan(e->rhs.get(), false);
  }

  static int chain_terms(const Expr& e) {
    if (!is_add_sub(e)) return 1;
    return (e.lhs ? chain_terms(*e.lhs) : 1) + 1;
  }

  bool is_fp(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return !e.is_int;
      case ExprKind::kString:
      case ExprKind::kLogical:
        return false;
      case ExprKind::kUnary:
        return e.rhs != nullptr && (e.op == Op::kNeg || e.op == Op::kPlusSign)
                   ? is_fp(*e.rhs)
                   : false;
      case ExprKind::kBinary:
        if (!is_arithmetic(e.op)) return false;
        return (e.lhs && is_fp(*e.lhs)) || (e.rhs && is_fp(*e.rhs));
      case ExprKind::kRef:
        break;
    }
    const std::string& base = e.base_name();
    auto dit = decls_.find(base);
    if (dit != decls_.end()) return dit->second->type.kind == TypeKind::kReal;
    if (syms_ != nullptr) {
      auto vit = syms_->vars.find(base);
      if (vit != syms_->vars.end()) {
        const VarDecl* d = vit->second.first->find_decl(vit->second.second);
        return d != nullptr && d->type.kind == TypeKind::kReal;
      }
    }
    if (e.is_call_or_index()) {
      const std::size_t nargs = e.segments[0].args.size();
      if (interp::is_intrinsic_function(base)) {
        if (is_fp_intrinsic(base)) return true;
        // abs/max/min/... follow their arguments.
        for (const auto& a : e.segments[0].args) {
          if (a && is_fp(*a)) return true;
        }
        return false;
      }
      if (returns_real_) return returns_real_(base, nargs);
    }
    return false;
  }

  const Subprogram& sp_;
  const ProgramSymbols::ModuleSyms* syms_;
  const FpCallOracle& returns_real_;
  std::vector<FpSite>* out_;
  std::unordered_map<std::string, const VarDecl*> decls_;
  std::string target_;
};

void json_escape(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

const char* fp_site_kind_name(FpSite::Kind k) {
  return k == FpSite::Kind::kContraction ? "contraction" : "reassociation";
}

std::vector<FpSite> find_fp_sites(const Subprogram& sp,
                                  const ProgramSymbols::ModuleSyms* syms,
                                  const FpCallOracle& returns_real) {
  std::vector<FpSite> out;
  FpScanner(sp, syms, returns_real, &out);
  std::sort(out.begin(), out.end(), [](const FpSite& a, const FpSite& b) {
    if (a.expr->line != b.expr->line) return a.expr->line < b.expr->line;
    if (a.expr->column != b.expr->column) return a.expr->column < b.expr->column;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  return out;
}

std::string fpsense_report_json(const std::vector<const Module*>& modules,
                                const ProgramSymbols& symbols,
                                const ProgramSummaries& summaries) {
  std::string out = "{\"schema\":\"rca.fpsense.v1\",\"sites\":[";
  bool first = true;
  for (const Module* m : modules) {
    const ProgramSymbols::ModuleSyms* syms = symbols.module(m->name);
    FpCallOracle oracle = [&](const std::string& name, std::size_t nargs) {
      if (syms == nullptr) return false;
      auto pit = syms->procs.find(name);
      if (pit == syms->procs.end()) return false;
      for (const ProcRef& c : pit->second) {
        if (!c.sp->is_function() || c.sp->params.size() != nargs) continue;
        const ProcSummary* ps = summaries.find(c.sp);
        if (ps != nullptr && ps->returns_real) return true;
      }
      return false;
    };
    for (const Subprogram& sp : m->subprograms) {
      for (const FpSite& site : find_fp_sites(sp, syms, oracle)) {
        if (!first) out += ',';
        first = false;
        out += "{\"module\":\"";
        json_escape(m->name, &out);
        out += "\",\"subprogram\":\"";
        json_escape(sp.name, &out);
        out += "\",\"line\":";
        out += std::to_string(site.expr->line);
        out += ",\"column\":";
        out += std::to_string(site.expr->column);
        out += ",\"kind\":\"";
        out += fp_site_kind_name(site.kind);
        out += "\",\"expr\":\"";
        json_escape(lang::print_expr(*site.expr), &out);
        out += '"';
        if (!site.target.empty()) {
          out += ",\"target\":\"";
          json_escape(site.target, &out);
          out += '"';
        }
        out += '}';
      }
    }
  }
  out += "],\"fp_sensitive_procedures\":[";
  std::vector<const ProcSummary*> fp;
  for (const ProcSummary& p : summaries.procs) {
    if (p.fp_sensitive) fp.push_back(&p);
  }
  std::sort(fp.begin(), fp.end(), [](const ProcSummary* a, const ProcSummary* b) {
    return a->module != b->module ? a->module < b->module : a->name < b->name;
  });
  first = true;
  for (const ProcSummary* p : fp) {
    if (!first) out += ',';
    first = false;
    out += "{\"module\":\"";
    json_escape(p->module, &out);
    out += "\",\"name\":\"";
    json_escape(p->name, &out);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

}  // namespace rca::analysis
