// Floating-point sensitivity: a forward taint-style pass that finds
// expression sites where compiler value-changing optimizations can perturb
// results — the paper's actual root-cause class (FMA contraction and
// reassociation under -O3, Table 1).
//
// FP-ness propagates from real literals, real-typed variables (local and
// module) and FP intrinsics; calls to user functions extend the taint
// through the mod/ref summaries via the oracle. Two site kinds:
//
//   contraction    an FP add/subtract with a multiply operand — the shape
//                  FMA contraction fuses, changing the rounding;
//   reassociation  an FP chain of three or more +/- terms, where the
//                  compiler's association order changes the sum.
//
// Sites surface as `fp-sensitivity` lint notes (interprocedural mode) and
// as the `rca.fpsense.v1` JSON report the scenario library (ROADMAP item 4)
// plants perturbations at.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/passes.hpp"
#include "lang/ast.hpp"

namespace rca::analysis {

struct ProgramSummaries;

struct FpSite {
  enum class Kind { kContraction, kReassociation };
  const lang::Subprogram* sp = nullptr;
  const lang::Expr* expr = nullptr;
  Kind kind = Kind::kContraction;
  std::string target;  // assigned variable when inside an assignment
};

const char* fp_site_kind_name(FpSite::Kind k);

/// Does `name(...)` with `nargs` arguments resolve to a real-valued user
/// function? Extends the taint through procedure summaries; a null oracle
/// treats unresolved calls as non-FP.
using FpCallOracle =
    std::function<bool(const std::string& name, std::size_t nargs)>;

/// FP-sensitive sites of one subprogram, in statement walk order.
std::vector<FpSite> find_fp_sites(const lang::Subprogram& sp,
                                  const ProgramSymbols::ModuleSyms* syms,
                                  const FpCallOracle& returns_real);

/// Deterministic JSON report, schema `rca.fpsense.v1`: every site across
/// `modules` plus the transitively FP-sensitive procedures from `summaries`.
std::string fpsense_report_json(const std::vector<const lang::Module*>& modules,
                                const ProgramSymbols& symbols,
                                const ProgramSummaries& summaries);

}  // namespace rca::analysis
