#include "analysis/callgraph.hpp"

#include <algorithm>
#include <unordered_set>

#include "interp/intrinsics.hpp"

namespace rca::analysis {

using lang::Expr;
using lang::ExprKind;
using lang::Module;
using lang::Stmt;
using lang::StmtKind;
using lang::Subprogram;

namespace {

// Builtins with dedicated metagraph semantics are not user procedures and
// never contribute call edges (mirrors the builder and CallChecker).
bool is_builtin(const std::string& name) {
  return name == "outfld" || name == "shr_rand_uniform";
}

/// Collects callee edges for one subprogram body.
class EdgeCollector {
 public:
  EdgeCollector(const CallGraph& cg, const ProgramSymbols::ModuleSyms* syms,
                const Subprogram& sp, std::vector<std::size_t>* out,
                bool* unknown)
      : cg_(cg), syms_(syms), out_(out), unknown_(unknown) {
    for (const auto& p : sp.params) locals_.insert(p);
    for (const auto& d : sp.decls) locals_.insert(d.name);
    if (sp.is_function()) locals_.insert(sp.result_name);
    for (const auto& st : sp.body) walk_stmt(*st);
  }

 private:
  void walk_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
        walk_expr(s.lhs.get());
        walk_expr(s.rhs.get());
        break;
      case StmtKind::kCall:
        resolve(s.callee, /*functions_only=*/false);
        for (const auto& a : s.args) walk_expr(a.get());
        break;
      case StmtKind::kIf:
        walk_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        for (const auto& ei : s.elseifs) {
          walk_expr(ei.cond.get());
          for (const auto& st : ei.body) walk_stmt(*st);
        }
        for (const auto& st : s.else_body) walk_stmt(*st);
        break;
      case StmtKind::kDo:
        walk_expr(s.from.get());
        walk_expr(s.to.get());
        walk_expr(s.step.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      case StmtKind::kDoWhile:
        walk_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      default:
        break;
    }
  }

  void walk_expr(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kUnary || e->kind == ExprKind::kBinary) {
      walk_expr(e->lhs.get());
      walk_expr(e->rhs.get());
      return;
    }
    if (e->kind != ExprKind::kRef) return;
    // The ambiguous `name(...)` form is a function call when the base is
    // neither a subprogram variable, a visible module variable, nor an
    // intrinsic — the same discrimination the dataflow walker applies.
    const std::string& base = e->base_name();
    if (e->is_call_or_index() && locals_.count(base) == 0 &&
        (syms_ == nullptr || syms_->vars.find(base) == syms_->vars.end()) &&
        !interp::is_intrinsic_function(base)) {
      resolve(base, /*functions_only=*/true);
    }
    for (const auto& seg : e->segments) {
      for (const auto& a : seg.args) walk_expr(a.get());
    }
  }

  void resolve(const std::string& name, bool functions_only) {
    if (is_builtin(name)) return;
    if (syms_ != nullptr) {
      auto pit = syms_->procs.find(name);
      if (pit != syms_->procs.end()) {
        bool any = false;
        for (const ProcRef& c : pit->second) {
          if (functions_only && !c.sp->is_function()) continue;
          const int idx = cg_.index_of(c.sp);
          if (idx >= 0) {
            out_->push_back(static_cast<std::size_t>(idx));
            any = true;
          }
        }
        if (any) return;
      }
    }
    *unknown_ = true;
  }

  const CallGraph& cg_;
  const ProgramSymbols::ModuleSyms* syms_;
  std::vector<std::size_t>* out_;
  bool* unknown_;
  std::unordered_set<std::string> locals_;
};

void sort_unique(std::vector<std::size_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Iterative Tarjan over `callees`; fills scc_of/scc_count. Component ids
/// come out in completion order, i.e. reverse topological order of the
/// condensation.
void tarjan(CallGraph& cg) {
  const std::size_t n = cg.nodes.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> idx(n, kUnvisited), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  cg.scc_of.assign(n, kUnvisited);
  std::size_t next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t child = 0;
  };
  std::vector<Frame> frames;
  for (std::size_t root = 0; root < n; ++root) {
    if (idx[root] != kUnvisited) continue;
    frames.push_back({root});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t u = f.node;
      if (f.child == 0) {
        idx[u] = low[u] = next_index++;
        stack.push_back(u);
        on_stack[u] = true;
      }
      if (f.child < cg.callees[u].size()) {
        const std::size_t v = cg.callees[u][f.child++];
        if (idx[v] == kUnvisited) {
          frames.push_back({v});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], idx[v]);
        }
        continue;
      }
      if (low[u] == idx[u]) {
        const std::size_t comp = cg.scc_count++;
        std::size_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          cg.scc_of[w] = comp;
        } while (w != u);
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t parent = frames.back().node;
        low[parent] = std::min(low[parent], low[u]);
      }
    }
  }
}

}  // namespace

CallGraph build_call_graph(const std::vector<const Module*>& modules,
                           const ProgramSymbols& symbols) {
  CallGraph cg;
  for (const Module* m : modules) {
    for (const Subprogram& sp : m->subprograms) {
      cg.index.emplace(&sp, cg.nodes.size());
      cg.nodes.push_back({m, &sp});
    }
  }
  const std::size_t n = cg.nodes.size();
  cg.callees.resize(n);
  cg.callers.resize(n);
  cg.has_unknown_call.assign(n, false);

  for (std::size_t i = 0; i < n; ++i) {
    const CallGraph::Node& node = cg.nodes[i];
    const ProgramSymbols::ModuleSyms* syms =
        symbols.module(node.module->name);
    bool unknown = false;
    EdgeCollector(cg, syms, *node.sp, &cg.callees[i], &unknown);
    cg.has_unknown_call[i] = unknown;
    sort_unique(cg.callees[i]);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : cg.callees[u]) cg.callers[v].push_back(u);
  }
  for (std::size_t v = 0; v < n; ++v) sort_unique(cg.callers[v]);

  tarjan(cg);
  cg.scc_members.assign(cg.scc_count, {});
  for (std::size_t i = 0; i < n; ++i) {
    cg.scc_members[cg.scc_of[i]].push_back(i);
  }
  cg.scc_recursive.assign(cg.scc_count, false);
  for (std::size_t c = 0; c < cg.scc_count; ++c) {
    if (cg.scc_members[c].size() > 1) {
      cg.scc_recursive[c] = true;
      continue;
    }
    const std::size_t only = cg.scc_members[c].front();
    cg.scc_recursive[c] = std::binary_search(
        cg.callees[only].begin(), cg.callees[only].end(), only);
  }
  return cg;
}

}  // namespace rca::analysis
