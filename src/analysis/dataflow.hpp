// Per-subprogram dataflow analyses over the CFG (cfg.hpp).
//
// The variable table covers dummies, locals and the function result —
// module-level variables are deliberately excluded: their lifetimes span
// calls, so no intraprocedural fact about them is sound. Three analyses run
// over the use/def facts extracted per CFG statement:
//
//   * reaching definitions (forward may) with a per-variable "uninitialized"
//     pseudo-definition seeded at entry, classifying each read as definitely
//     or maybe before any assignment;
//   * liveness (backward may), whose live-out sets identify dead stores:
//     whole-variable assignments to locals that no path reads again;
//   * flat def/use counts feeding the unused-variable and intent rules.
//
// Calls are modelled conservatively by default: a by-reference argument is
// both a use and a non-killing may-definition of its base variable, so a
// `call` that initializes an argument suppresses use-before-def reports
// downstream. When the context supplies a call-effect resolver (backed by
// the interprocedural mod/ref summaries, summaries.hpp), call sites consult
// the callee's summary instead: an argument the callee never reads is no
// use, one it never writes is no definition, and one it definitely writes
// kills like an assignment. An unresolved or recursive callee falls back to
// the conservative model, so precision only ever increases.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg.hpp"
#include "lang/ast.hpp"

namespace rca::analysis {

enum class VarKind { kDummy, kLocal, kResult };

struct VarInfo {
  std::string name;
  VarKind kind = VarKind::kLocal;
  lang::Intent intent = lang::Intent::kNone;
  bool has_init = false;      // parameter constant or initializer present
  bool is_parameter = false;  // named constant
  bool is_array = false;
  int line = 0;
  const lang::VarDecl* decl = nullptr;  // null for undeclared dummies/results
};

/// Name -> slot table of the variables a subprogram owns.
class VarTable {
 public:
  explicit VarTable(const lang::Subprogram& sp);

  int lookup(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }
  const VarInfo& var(int id) const { return vars_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return vars_.size(); }
  const std::vector<VarInfo>& vars() const { return vars_; }

 private:
  std::vector<VarInfo> vars_;
  std::unordered_map<std::string, int> index_;
};

/// What a resolved callee does with one positional argument, merged over
/// every candidate a generic interface could dispatch to.
struct CallArgEffect {
  // Over-approximation: some candidate may observe the incoming value.
  // `false` is a guarantee — passing the variable is not a read, so a prior
  // store the caller never reads again is dead.
  bool may_read_incoming = true;
  // Under-approximation: every candidate certainly reads the incoming value
  // on some path before writing it. Drives use-before-def reports at the
  // call site; never set speculatively.
  bool observes_incoming = false;
  bool may_write = true;          // some candidate may assign the dummy
  bool definitely_writes = false; // every candidate assigns it on all paths
};

struct CallEffect {
  std::vector<CallArgEffect> args;  // parallel to the call's arguments
};

/// Resolves a call site to the callee's summarized argument effects.
/// `function_context` distinguishes `name(...)` in an expression from a
/// `call name(...)` statement. Returning nullopt (or a null function) keeps
/// the conservative blanket may-def model for that site.
using CallEffectFn = std::function<std::optional<CallEffect>(
    const std::string& name, std::size_t nargs, bool function_context)>;

/// Extra name resolution the dataflow walker uses to classify the ambiguous
/// single-segment `name(...)` form when `name` is not a subprogram variable.
/// All members are optional; absent ones make the walker conservative (treat
/// as a call whose reference arguments may be read and written).
struct DataflowContext {
  const std::unordered_set<std::string>* module_vars = nullptr;  // data names
  const std::unordered_set<std::string>* procedures = nullptr;   // callables
  CallEffectFn call_effects;  // interprocedural mod/ref summaries
};

struct UseSite {
  int var = -1;
  const lang::Expr* expr = nullptr;  // the reference that reads the variable
  // The read is a whole variable passed by reference to a callee. It counts
  // for liveness and use totals, but use-before-def never reports it:
  // `call init(y)` is the canonical initialization idiom, and whether the
  // callee reads the dummy first is not knowable intraprocedurally.
  bool via_call = false;
  // A resolved callee certainly reads the incoming value, so use-before-def
  // may report this site after all (as a maybe, never definite).
  bool summary_read = false;
  // A resolved callee never reads the incoming value: excluded from
  // liveness (a store that only feeds this argument is dead) but still part
  // of the use totals, so unused-variable semantics are unchanged.
  bool summary_ignored = false;
};

/// Use/def facts for one CfgStmt. Uses are evaluated before the def
/// (right-hand side before left, loop bounds before the loop variable).
struct StmtFacts {
  std::vector<UseSite> uses;
  int def = -1;               // assignment target / do variable, -1 if none
  bool kills = false;         // def overwrites the whole variable
  std::vector<int> may_defs;  // by-reference call arguments (never kill)
  // Whole-variable arguments a resolved callee assigns on every path: they
  // kill like assignments, clearing the uninitialized pseudo-def.
  std::vector<int> kill_defs;
  // The subset of `may_defs` that came from a resolved summary (rather than
  // the conservative blanket model) — intent-violation reports these.
  std::vector<int> summary_may_defs;
  // Variables whose conservative may-def was dropped because the resolved
  // callee never writes them. Later reads may now see the uninitialized
  // pseudo-def; classification caps those at maybe (a suppressed clear is
  // summary-derived knowledge, not a syntactic certainty).
  std::vector<int> suppressed_defs;
};

/// A read classified by reaching definitions.
struct UseBeforeDef {
  int var = -1;
  const lang::Expr* expr = nullptr;
  bool definite = false;  // only the uninitialized pseudo-def reaches
};

struct DataflowResult {
  Cfg cfg;
  VarTable vars;
  std::vector<std::vector<StmtFacts>> facts;  // parallel to cfg.blocks[b].stmts
  std::vector<UseBeforeDef> use_before_def;
  std::vector<const lang::Stmt*> dead_stores;  // kAssign stmts, source order
  std::vector<int> def_counts;  // per var, includes may- and kill-defs
  std::vector<int> use_counts;  // per var, includes declaration expressions
  std::size_t calls_resolved = 0;  // call sites answered by a summary

  explicit DataflowResult(const lang::Subprogram& sp)
      : cfg(build_cfg(sp)), vars(sp) {}
};

DataflowResult analyze_dataflow(const lang::Subprogram& sp,
                                const DataflowContext& ctx = {});

/// The assignment statements `prune_dead_stores` may drop: whole-variable
/// stores to plain locals (no initializer, not the result, not a dummy) that
/// are never live afterwards.
std::unordered_set<const lang::Stmt*> dead_store_stmts(
    const lang::Subprogram& sp, const DataflowContext& ctx = {});
std::unordered_set<const lang::Stmt*> dead_store_stmts(
    const lang::Module& m, const DataflowContext& ctx = {});

}  // namespace rca::analysis
