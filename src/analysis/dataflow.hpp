// Per-subprogram dataflow analyses over the CFG (cfg.hpp).
//
// The variable table covers dummies, locals and the function result —
// module-level variables are deliberately excluded: their lifetimes span
// calls, so no intraprocedural fact about them is sound. Three analyses run
// over the use/def facts extracted per CFG statement:
//
//   * reaching definitions (forward may) with a per-variable "uninitialized"
//     pseudo-definition seeded at entry, classifying each read as definitely
//     or maybe before any assignment;
//   * liveness (backward may), whose live-out sets identify dead stores:
//     whole-variable assignments to locals that no path reads again;
//   * flat def/use counts feeding the unused-variable and intent rules.
//
// Calls are modelled conservatively: a by-reference argument is both a use
// and a non-killing may-definition of its base variable, so a `call` that
// initializes an argument suppresses use-before-def reports downstream.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg.hpp"
#include "lang/ast.hpp"

namespace rca::analysis {

enum class VarKind { kDummy, kLocal, kResult };

struct VarInfo {
  std::string name;
  VarKind kind = VarKind::kLocal;
  lang::Intent intent = lang::Intent::kNone;
  bool has_init = false;      // parameter constant or initializer present
  bool is_parameter = false;  // named constant
  bool is_array = false;
  int line = 0;
  const lang::VarDecl* decl = nullptr;  // null for undeclared dummies/results
};

/// Name -> slot table of the variables a subprogram owns.
class VarTable {
 public:
  explicit VarTable(const lang::Subprogram& sp);

  int lookup(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }
  const VarInfo& var(int id) const { return vars_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return vars_.size(); }
  const std::vector<VarInfo>& vars() const { return vars_; }

 private:
  std::vector<VarInfo> vars_;
  std::unordered_map<std::string, int> index_;
};

/// Extra name resolution the dataflow walker uses to classify the ambiguous
/// single-segment `name(...)` form when `name` is not a subprogram variable.
/// Both sets are optional; absent sets make the walker conservative (treat as
/// a call whose reference arguments may be written).
struct DataflowContext {
  const std::unordered_set<std::string>* module_vars = nullptr;  // data names
  const std::unordered_set<std::string>* procedures = nullptr;   // callables
};

struct UseSite {
  int var = -1;
  const lang::Expr* expr = nullptr;  // the reference that reads the variable
  // The read is a whole variable passed by reference to a callee. It counts
  // for liveness and use totals, but use-before-def never reports it:
  // `call init(y)` is the canonical initialization idiom, and whether the
  // callee reads the dummy first is not knowable intraprocedurally.
  bool via_call = false;
};

/// Use/def facts for one CfgStmt. Uses are evaluated before the def
/// (right-hand side before left, loop bounds before the loop variable).
struct StmtFacts {
  std::vector<UseSite> uses;
  int def = -1;               // assignment target / do variable, -1 if none
  bool kills = false;         // def overwrites the whole variable
  std::vector<int> may_defs;  // by-reference call arguments (never kill)
};

/// A read classified by reaching definitions.
struct UseBeforeDef {
  int var = -1;
  const lang::Expr* expr = nullptr;
  bool definite = false;  // only the uninitialized pseudo-def reaches
};

struct DataflowResult {
  Cfg cfg;
  VarTable vars;
  std::vector<std::vector<StmtFacts>> facts;  // parallel to cfg.blocks[b].stmts
  std::vector<UseBeforeDef> use_before_def;
  std::vector<const lang::Stmt*> dead_stores;  // kAssign stmts, source order
  std::vector<int> def_counts;  // per var, includes may-defs
  std::vector<int> use_counts;  // per var, includes declaration expressions

  explicit DataflowResult(const lang::Subprogram& sp)
      : cfg(build_cfg(sp)), vars(sp) {}
};

DataflowResult analyze_dataflow(const lang::Subprogram& sp,
                                const DataflowContext& ctx = {});

/// The assignment statements `prune_dead_stores` may drop: whole-variable
/// stores to plain locals (no initializer, not the result, not a dummy) that
/// are never live afterwards.
std::unordered_set<const lang::Stmt*> dead_store_stmts(
    const lang::Subprogram& sp, const DataflowContext& ctx = {});
std::unordered_set<const lang::Stmt*> dead_store_stmts(
    const lang::Module& m, const DataflowContext& ctx = {});

}  // namespace rca::analysis
