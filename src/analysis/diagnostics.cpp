#include "analysis/diagnostics.hpp"

#include <tuple>

#include "support/json.hpp"
#include "support/strings.hpp"

namespace rca::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.module, a.line, a.column, a.rule, a.name, a.message) <
         std::tie(b.module, b.line, b.column, b.rule, b.name, b.message);
}

std::string diagnostics_to_text(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += strfmt("%s:%d:%d: %s: %s [%s]", d.file.c_str(), d.line, d.column,
                  severity_name(d.severity), d.message.c_str(),
                  d.rule.c_str());
    if (!d.module.empty()) {
      out += " (" + d.module;
      if (!d.subprogram.empty()) out += "::" + d.subprogram;
      out += ")";
    }
    out += "\n";
  }
  return out;
}

std::string diagnostics_to_json(const std::vector<Diagnostic>& diags) {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++errors;
    else if (d.severity == Severity::kWarning) ++warnings;
    else ++notes;
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string_value("rca.diagnostics.v1");
  w.key("counts");
  w.begin_object();
  w.key("error");
  w.integer(static_cast<long long>(errors));
  w.key("warning");
  w.integer(static_cast<long long>(warnings));
  w.key("note");
  w.integer(static_cast<long long>(notes));
  w.end_object();
  w.key("diagnostics");
  w.begin_array();
  for (const Diagnostic& d : diags) {
    w.begin_object();
    w.key("rule");
    w.string_value(d.rule);
    w.key("severity");
    w.string_value(severity_name(d.severity));
    w.key("module");
    w.string_value(d.module);
    w.key("subprogram");
    w.string_value(d.subprogram);
    w.key("name");
    w.string_value(d.name);
    w.key("file");
    w.string_value(d.file);
    w.key("line");
    w.integer(d.line);
    w.key("column");
    w.integer(d.column);
    w.key("end_line");
    w.integer(d.end_line);
    w.key("message");
    w.string_value(d.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string diagnostics_to_tsv(const std::vector<Diagnostic>& diags) {
  std::string out = "# rca-lint 1\n";
  out += "# rule\tseverity\tmodule\tsubprogram\tline\tcolumn\tname\tmessage\n";
  for (const Diagnostic& d : diags) {
    out += strfmt("%s\t%s\t%s\t%s\t%d\t%d\t%s\t%s\n", d.rule.c_str(),
                  severity_name(d.severity), d.module.c_str(),
                  d.subprogram.c_str(), d.line, d.column, d.name.c_str(),
                  d.message.c_str());
  }
  return out;
}

}  // namespace rca::analysis
