// Lint pass manager: named analysis passes over parsed modules.
//
// A pass sees one module at a time plus (a) the per-subprogram dataflow
// results computed once up front (cfg.hpp / dataflow.hpp) and (b) the
// program-wide symbol tables, which mirror the metagraph builder's name
// resolution: own subprograms, interface blocks expanded to their module
// procedures, and use-imports with only-lists and renames (direct imports
// only, matching the builder). Passes append structured Diagnostic records;
// the manager sorts them deterministically and feeds the `lint.*` counters
// and per-pass spans in the observability registry.
//
// Default rules:
//   use-before-def   read of a variable no assignment reaches (error when
//                    only the uninitialized state reaches, warning when
//                    some path assigns first)
//   dead-store       whole-variable assignment to a local never read after
//   unused-variable  local declared (or assigned) but never read
//   intent-violation assignment to an intent(in) dummy; intent(out) dummy
//                    never assigned
//   shadowing        local/dummy hiding a visible module variable/procedure
//   call-mismatch    no candidate of a resolved callee matches the call's
//                    arity, or none is type-viable for its arguments
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/diagnostics.hpp"
#include "lang/ast.hpp"

namespace rca::analysis {

/// One candidate procedure a name may resolve to.
struct ProcRef {
  const lang::Module* module = nullptr;
  const lang::Subprogram* sp = nullptr;
};

/// Program-wide name resolution, one entry per module (builder-compatible).
class ProgramSymbols {
 public:
  explicit ProgramSymbols(const std::vector<const lang::Module*>& modules);

  struct ModuleSyms {
    const lang::Module* ast = nullptr;
    // Local name -> candidates (own subprograms + expanded interfaces +
    // imports, honoring only-lists and renames).
    std::unordered_map<std::string, std::vector<ProcRef>> procs;
    // Local name -> (owning module, remote name) for module variables.
    std::unordered_map<std::string,
                       std::pair<const lang::Module*, std::string>>
        vars;
    // Key sets, shaped for DataflowContext.
    std::unordered_set<std::string> var_names;
    std::unordered_set<std::string> proc_names;
  };

  /// Null if the module is unknown.
  const ModuleSyms* module(const std::string& name) const;

 private:
  std::unordered_map<std::string, ModuleSyms> modules_;
};

/// Dataflow results for every subprogram of one module, computed once and
/// shared by all passes.
struct ModuleAnalysis {
  const lang::Module* module = nullptr;
  std::vector<DataflowResult> subs;  // parallel to module->subprograms
};

using PassFn = std::function<void(const ModuleAnalysis&, const ProgramSymbols&,
                                  std::vector<Diagnostic>*)>;

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;  // sorted by diagnostic_less
  std::size_t modules = 0;
  std::size_t subprograms = 0;

  std::size_t count(Severity s) const;
};

class PassManager {
 public:
  void add_pass(std::string id, PassFn fn);
  const std::vector<std::string>& pass_ids() const { return ids_; }

  /// Runs every pass over every module; diagnostics come back sorted.
  AnalysisResult run(const std::vector<const lang::Module*>& modules) const;

  /// Incremental variant: dataflow facts are computed and passes executed
  /// only for modules whose `dirty` flag is set (parallel to `modules`);
  /// program symbols still span the whole corpus, and the module/subprogram
  /// totals still count everything. Clean modules contribute no diagnostics
  /// here — the caller merges their previously computed diagnostics back in,
  /// which is exact as long as no module's interface-level content changed
  /// (each pass reads only its own module's bodies plus remote interface
  /// info; see meta::interface_signature). Used by the session patch path.
  AnalysisResult run(const std::vector<const lang::Module*>& modules,
                     const std::vector<bool>& dirty) const;

  /// Manager preloaded with the six default rules (ids as documented above).
  static PassManager default_passes();

 private:
  struct Pass {
    std::string id;
    PassFn fn;
  };
  std::vector<Pass> passes_;
  std::vector<std::string> ids_;
};

}  // namespace rca::analysis
