// Lint pass manager: named analysis passes over parsed modules.
//
// A pass sees one module at a time plus (a) the per-subprogram dataflow
// results computed once up front (cfg.hpp / dataflow.hpp) and (b) the
// program-wide symbol tables, which mirror the metagraph builder's name
// resolution: own subprograms, interface blocks expanded to their module
// procedures, and use-imports with only-lists and renames (direct imports
// only, matching the builder). Passes append structured Diagnostic records;
// the manager sorts them deterministically and feeds the `lint.*` counters
// and per-pass spans in the observability registry.
//
// Default rules (interprocedural — call sites resolve through the mod/ref
// summaries of summaries.hpp, so the dataflow rules see through the call
// chain; `intraprocedural_passes()` keeps the PR 3 behavior):
//   use-before-def   read of a variable no assignment reaches (error when
//                    only the uninitialized state reaches, warning when
//                    some path assigns first or the finding is
//                    summary-derived)
//   dead-store       whole-variable assignment to a local never read after
//   unused-variable  local declared (or assigned) but never read
//   intent-violation assignment to an intent(in) dummy — directly or by
//                    passing it to a callee that assigns its dummy;
//                    intent(out) dummy never assigned
//   shadowing        local/dummy hiding a visible module variable/procedure
//   call-mismatch    no candidate of a resolved callee matches the call's
//                    arity, or none is type-viable for its arguments
//   unused-dummy     dummy argument never read or written (interproc only)
//   write-to-read-only-global
//                    assignment to a `parameter` module variable, or passing
//                    one to a callee that writes it (interproc only)
//   fp-sensitivity   contraction/reassociation-prone FP expression sites
//                    (notes; interproc only — see fpsense.hpp)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/diagnostics.hpp"
#include "lang/ast.hpp"

namespace rca::analysis {

/// One candidate procedure a name may resolve to.
struct ProcRef {
  const lang::Module* module = nullptr;
  const lang::Subprogram* sp = nullptr;
};

/// Program-wide name resolution, one entry per module (builder-compatible).
class ProgramSymbols {
 public:
  explicit ProgramSymbols(const std::vector<const lang::Module*>& modules);

  struct ModuleSyms {
    const lang::Module* ast = nullptr;
    // Local name -> candidates (own subprograms + expanded interfaces +
    // imports, honoring only-lists and renames).
    std::unordered_map<std::string, std::vector<ProcRef>> procs;
    // Local name -> (owning module, remote name) for module variables.
    std::unordered_map<std::string,
                       std::pair<const lang::Module*, std::string>>
        vars;
    // Key sets, shaped for DataflowContext.
    std::unordered_set<std::string> var_names;
    std::unordered_set<std::string> proc_names;
  };

  /// Null if the module is unknown.
  const ModuleSyms* module(const std::string& name) const;

 private:
  std::unordered_map<std::string, ModuleSyms> modules_;
};

/// Dataflow results for every subprogram of one module, computed once and
/// shared by all passes.
struct ModuleAnalysis {
  const lang::Module* module = nullptr;
  std::vector<DataflowResult> subs;  // parallel to module->subprograms
};

struct ProgramSummaries;
struct SummaryBaseline;

/// Per-module context a pass runs under. In intraprocedural mode both
/// members are empty.
struct PassContext {
  const ProgramSummaries* summaries = nullptr;
  // Call-effect resolver scoped to the module under analysis (the same one
  // its dataflow ran with).
  CallEffectFn call_effects;
};

using PassFn = std::function<void(const ModuleAnalysis&, const ProgramSymbols&,
                                  const PassContext&,
                                  std::vector<Diagnostic>*)>;

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;  // sorted by diagnostic_less
  std::size_t modules = 0;
  std::size_t subprograms = 0;
  // Interprocedural runs: the program summaries (kept alive for callers
  // that dump them) and the final per-module analysis mask after summary
  // invalidation widened the input dirty set.
  std::shared_ptr<const ProgramSummaries> summaries;
  std::vector<bool> analyzed;

  std::size_t count(Severity s) const;
};

class PassManager {
 public:
  void add_pass(std::string id, PassFn fn);
  const std::vector<std::string>& pass_ids() const { return ids_; }

  /// Runs every pass over every module; diagnostics come back sorted.
  AnalysisResult run(const std::vector<const lang::Module*>& modules) const;

  /// Incremental variant: dataflow facts are computed and passes executed
  /// only for modules whose `dirty` flag is set (parallel to `modules`);
  /// program symbols still span the whole corpus, and the module/subprogram
  /// totals still count everything. Clean modules contribute no diagnostics
  /// here — the caller merges their previously computed diagnostics back in,
  /// which is exact as long as no module's interface-level content changed
  /// (each pass reads only its own module's bodies plus remote interface
  /// info; see meta::interface_signature). In interprocedural mode a body
  /// patch can also change lint results in the patched modules' reverse
  /// caller cone: when `baseline` is given, modules whose summary signature
  /// changed widen the dirty set by their caller cone (`summary_cone`), and
  /// the widened mask comes back in `AnalysisResult::analyzed` so the caller
  /// drops stale carried diagnostics for exactly those modules. Used by the
  /// session patch path.
  AnalysisResult run(const std::vector<const lang::Module*>& modules,
                     const std::vector<bool>& dirty) const;
  AnalysisResult run(const std::vector<const lang::Module*>& modules,
                     const std::vector<bool>& dirty,
                     const SummaryBaseline* baseline) const;

  /// Manager preloaded with the default interprocedural rules (ids as
  /// documented above).
  static PassManager default_passes();
  /// The six PR 3 rules with blanket-conservative call modelling; no
  /// summaries are computed.
  static PassManager intraprocedural_passes();

 private:
  struct Pass {
    std::string id;
    PassFn fn;
  };
  std::vector<Pass> passes_;
  std::vector<std::string> ids_;
  bool interprocedural_ = false;
};

}  // namespace rca::analysis
