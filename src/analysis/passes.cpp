#include "analysis/passes.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "analysis/fpsense.hpp"
#include "analysis/summaries.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::analysis {

using lang::Expr;
using lang::ExprKind;
using lang::Intent;
using lang::Module;
using lang::Op;
using lang::Stmt;
using lang::StmtKind;
using lang::Subprogram;
using lang::TypeKind;
using lang::VarDecl;

// ---------------------------------------------------------------------------
// ProgramSymbols (mirrors meta/builder.cpp pass 1, without coverage filters).
// ---------------------------------------------------------------------------

ProgramSymbols::ProgramSymbols(const std::vector<const Module*>& modules) {
  for (const Module* m : modules) {
    auto& syms = modules_[m->name];
    syms.ast = m;
    for (const auto& sp : m->subprograms) {
      syms.procs[sp.name].push_back(ProcRef{m, &sp});
    }
    for (const auto& d : m->decls) {
      syms.vars[d.name] = {m, d.name};
    }
  }
  for (const Module* m : modules) {
    auto& syms = modules_[m->name];
    for (const auto& iface : m->interfaces) {
      for (const auto& proc : iface.procedures) {
        auto it = syms.procs.find(proc);
        if (it == syms.procs.end()) continue;  // tolerated: dangling interface
        auto& vec = syms.procs[iface.name];
        vec.insert(vec.end(), it->second.begin(), it->second.end());
      }
    }
  }
  // Imports resolve in two rounds against immutable snapshots, so the result
  // is independent of module input order: round one imports each source
  // module's own exports, round two re-imports from the post-round-one
  // tables, which adds exactly one level of re-exported imports (`use b`
  // where b itself does `use c`) — the same depth the builder sees.
  auto apply_imports =
      [this](const std::vector<const Module*>& mods,
             const std::unordered_map<std::string, ModuleSyms>& sources) {
        for (const Module* m : mods) {
          auto& syms = modules_[m->name];
          auto process_use = [&syms, &sources](const lang::UseStmt& use) {
            auto sit = sources.find(use.module);
            if (sit == sources.end()) return;  // unresolved module: skip
            const auto& src = sit->second;
            auto import_one = [&](const std::string& local,
                                  const std::string& remote) {
              auto pit = src.procs.find(remote);
              if (pit != src.procs.end()) {
                auto& vec = syms.procs[local];
                for (const ProcRef& r : pit->second) {
                  const bool present =
                      std::any_of(vec.begin(), vec.end(),
                                  [&](const ProcRef& x) { return x.sp == r.sp; });
                  if (!present) vec.push_back(r);
                }
              }
              auto vit = src.vars.find(remote);
              if (vit != src.vars.end()) {
                syms.vars.emplace(local, vit->second);
              }
            };
            if (use.has_only) {
              for (const auto& r : use.renames) import_one(r.local, r.remote);
            } else {
              for (const auto& [name, _] : src.procs) import_one(name, name);
              for (const auto& [name, _] : src.vars) import_one(name, name);
            }
          };
          for (const auto& use : m->uses) process_use(use);
          for (const auto& sp : m->subprograms) {
            for (const auto& use : sp.uses) process_use(use);
          }
        }
      };
  {
    const std::unordered_map<std::string, ModuleSyms> own_exports = modules_;
    apply_imports(modules, own_exports);
    const std::unordered_map<std::string, ModuleSyms> with_direct = modules_;
    apply_imports(modules, with_direct);
  }
  for (auto& [_, syms] : modules_) {
    for (const auto& [name, __] : syms.vars) syms.var_names.insert(name);
    for (const auto& [name, __] : syms.procs) syms.proc_names.insert(name);
  }
}

const ProgramSymbols::ModuleSyms* ProgramSymbols::module(
    const std::string& name) const {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Shared pass helpers.
// ---------------------------------------------------------------------------

namespace {

Diagnostic make_diag(const std::string& rule, Severity sev,
                     const ModuleAnalysis& ma, const Subprogram& sp,
                     const std::string& name, std::string message, int line,
                     int column, int end_line) {
  Diagnostic d;
  d.rule = rule;
  d.severity = sev;
  d.module = ma.module->name;
  d.subprogram = sp.name;
  d.name = name;
  d.message = std::move(message);
  d.file = ma.module->file;
  d.line = line;
  d.column = column;
  d.end_line = end_line ? end_line : line;
  return d;
}

// ---------------------------------------------------------------------------
// use-before-def.
// ---------------------------------------------------------------------------

void pass_use_before_def(const ModuleAnalysis& ma, const ProgramSymbols&,
                         const PassContext&, std::vector<Diagnostic>* out) {
  for (std::size_t s = 0; s < ma.subs.size(); ++s) {
    const Subprogram& sp = ma.module->subprograms[s];
    const DataflowResult& flow = ma.subs[s];
    // One report per variable: its first flagged read in source order.
    std::unordered_map<int, const UseBeforeDef*> first;
    for (const UseBeforeDef& u : flow.use_before_def) {
      // A loop that fills an array element-by-element leaves the
      // uninitialized pseudo-def reachable; only the definite case is
      // trustworthy for arrays.
      if (!u.definite && flow.vars.var(u.var).is_array) continue;
      auto [it, inserted] = first.emplace(u.var, &u);
      if (!inserted &&
          std::tie(u.expr->line, u.expr->column) <
              std::tie(it->second->expr->line, it->second->expr->column)) {
        it->second = &u;
      }
    }
    std::vector<const UseBeforeDef*> ordered;
    ordered.reserve(first.size());
    for (const auto& [_, u] : first) ordered.push_back(u);
    std::sort(ordered.begin(), ordered.end(),
              [](const UseBeforeDef* a, const UseBeforeDef* b) {
                return std::tie(a->expr->line, a->expr->column, a->var) <
                       std::tie(b->expr->line, b->expr->column, b->var);
              });
    for (const UseBeforeDef* u : ordered) {
      const VarInfo& info = flow.vars.var(u->var);
      std::string msg;
      if (u->definite) {
        msg = info.kind == VarKind::kDummy
                  ? strfmt("intent(out) argument '%s' is read before it is "
                           "assigned",
                           info.name.c_str())
                  : strfmt("'%s' is read before any assignment",
                           info.name.c_str());
      } else {
        msg = strfmt("'%s' may be read before it is assigned",
                     info.name.c_str());
      }
      out->push_back(make_diag(
          "use-before-def", u->definite ? Severity::kError : Severity::kWarning,
          ma, sp, info.name, std::move(msg), u->expr->line, u->expr->column,
          u->expr->end_line));
    }
  }
}

// ---------------------------------------------------------------------------
// dead-store.
// ---------------------------------------------------------------------------

void pass_dead_store(const ModuleAnalysis& ma, const ProgramSymbols&,
                     const PassContext&, std::vector<Diagnostic>* out) {
  for (std::size_t s = 0; s < ma.subs.size(); ++s) {
    const Subprogram& sp = ma.module->subprograms[s];
    const DataflowResult& flow = ma.subs[s];
    for (const Stmt* st : flow.dead_stores) {
      const int id = flow.vars.lookup(st->lhs->base_name());
      if (id < 0) continue;
      // A variable with no reads at all is the unused-variable rule's
      // finding; flagging each of its stores too would be noise.
      if (flow.use_counts[static_cast<std::size_t>(id)] == 0) continue;
      const VarInfo& info = flow.vars.var(id);
      out->push_back(make_diag(
          "dead-store", Severity::kWarning, ma, sp, info.name,
          strfmt("value assigned to '%s' is never used", info.name.c_str()),
          st->line, st->column, st->end_line));
    }
  }
}

// ---------------------------------------------------------------------------
// unused-variable.
// ---------------------------------------------------------------------------

void pass_unused_variable(const ModuleAnalysis& ma, const ProgramSymbols&,
                          const PassContext&, std::vector<Diagnostic>* out) {
  for (std::size_t s = 0; s < ma.subs.size(); ++s) {
    const Subprogram& sp = ma.module->subprograms[s];
    const DataflowResult& flow = ma.subs[s];
    for (std::size_t v = 0; v < flow.vars.size(); ++v) {
      const VarInfo& info = flow.vars.var(static_cast<int>(v));
      if (info.kind != VarKind::kLocal) continue;  // dummies bind interfaces
      if (flow.use_counts[v] > 0) continue;
      const char* what = info.is_parameter ? "parameter" : "local variable";
      std::string msg =
          flow.def_counts[v] > 0
              ? strfmt("%s '%s' is assigned but its value is never used", what,
                       info.name.c_str())
              : strfmt("%s '%s' is never used", what, info.name.c_str());
      out->push_back(make_diag("unused-variable", Severity::kWarning, ma, sp,
                               info.name, std::move(msg), info.line, 0,
                               info.line));
    }
  }
}

// ---------------------------------------------------------------------------
// intent-violation.
// ---------------------------------------------------------------------------

void pass_intent_violation(const ModuleAnalysis& ma, const ProgramSymbols&,
                           const PassContext&, std::vector<Diagnostic>* out) {
  for (std::size_t s = 0; s < ma.subs.size(); ++s) {
    const Subprogram& sp = ma.module->subprograms[s];
    const DataflowResult& flow = ma.subs[s];

    // Writes to intent(in) dummies; first site per variable. Direct
    // assignments are errors; passing the dummy to a callee whose summary
    // says it assigns its argument is summary-derived knowledge and stays a
    // warning. Blanket (unresolved) call may-defs remain exempt.
    struct Write {
      const Stmt* st = nullptr;
      bool direct = false;
    };
    std::unordered_map<int, Write> first_write;
    auto note_write = [&](int v, const Stmt* st, bool direct) {
      const VarInfo& info = flow.vars.var(v);
      if (info.kind != VarKind::kDummy || info.intent != Intent::kIn) return;
      auto [it, inserted] = first_write.emplace(v, Write{st, direct});
      if (!inserted && std::tie(st->line, st->column) <
                           std::tie(it->second.st->line,
                                    it->second.st->column)) {
        it->second = Write{st, direct};
      }
    };
    for (std::size_t b = 0; b < flow.facts.size(); ++b) {
      for (std::size_t i = 0; i < flow.facts[b].size(); ++i) {
        const StmtFacts& f = flow.facts[b][i];
        const Stmt* st = flow.cfg.blocks[b].stmts[i].stmt;
        if (f.def >= 0) note_write(f.def, st, /*direct=*/true);
        for (int v : f.kill_defs) note_write(v, st, /*direct=*/false);
        for (int v : f.summary_may_defs) note_write(v, st, /*direct=*/false);
      }
    }
    std::vector<std::pair<int, Write>> writes(first_write.begin(),
                                              first_write.end());
    std::sort(writes.begin(), writes.end(),
              [](const auto& a, const auto& b) {
                return std::tie(a.second.st->line, a.second.st->column,
                                a.first) <
                       std::tie(b.second.st->line, b.second.st->column,
                                b.first);
              });
    for (const auto& [v, w] : writes) {
      const VarInfo& info = flow.vars.var(v);
      std::string msg =
          w.direct
              ? strfmt("dummy argument '%s' has intent(in) and cannot be "
                       "assigned",
                       info.name.c_str())
              : strfmt("dummy argument '%s' has intent(in) but is passed to "
                       "a procedure that assigns it",
                       info.name.c_str());
      out->push_back(make_diag(
          "intent-violation", w.direct ? Severity::kError : Severity::kWarning,
          ma, sp, info.name, std::move(msg), w.st->line, w.st->column,
          w.st->end_line));
    }

    for (std::size_t v = 0; v < flow.vars.size(); ++v) {
      const VarInfo& info = flow.vars.var(static_cast<int>(v));
      if (info.kind != VarKind::kDummy || info.intent != Intent::kOut) {
        continue;
      }
      if (flow.def_counts[v] > 0) continue;
      out->push_back(make_diag(
          "intent-violation", Severity::kWarning, ma, sp, info.name,
          strfmt("dummy argument '%s' has intent(out) but is never assigned",
                 info.name.c_str()),
          info.line, 0, info.line));
    }
  }
}

// ---------------------------------------------------------------------------
// shadowing.
// ---------------------------------------------------------------------------

void pass_shadowing(const ModuleAnalysis& ma, const ProgramSymbols& symbols,
                    const PassContext&, std::vector<Diagnostic>* out) {
  const ProgramSymbols::ModuleSyms* syms = symbols.module(ma.module->name);
  if (syms == nullptr) return;
  for (std::size_t s = 0; s < ma.subs.size(); ++s) {
    const Subprogram& sp = ma.module->subprograms[s];
    const DataflowResult& flow = ma.subs[s];
    for (const VarInfo& info : flow.vars.vars()) {
      if (info.kind == VarKind::kResult) continue;  // `f = ...` is the result
      if (info.name == sp.name) continue;
      const char* what = info.kind == VarKind::kDummy ? "dummy argument"
                                                      : "local variable";
      auto vit = syms->vars.find(info.name);
      if (vit != syms->vars.end()) {
        const Module* owner = vit->second.first;
        std::string msg =
            owner == ma.module
                ? strfmt("%s '%s' shadows a module variable", what,
                         info.name.c_str())
                : strfmt("%s '%s' shadows a module variable imported from "
                         "'%s'",
                         what, info.name.c_str(), owner->name.c_str());
        out->push_back(make_diag("shadowing", Severity::kWarning, ma, sp,
                                 info.name, std::move(msg), info.line, 0,
                                 info.line));
        continue;
      }
      auto pit = syms->procs.find(info.name);
      if (pit != syms->procs.end() && !pit->second.empty()) {
        const Module* owner = pit->second.front().module;
        out->push_back(make_diag(
            "shadowing", Severity::kWarning, ma, sp, info.name,
            strfmt("%s '%s' shadows procedure '%s::%s'", what,
                   info.name.c_str(), owner->name.c_str(), info.name.c_str()),
            info.line, 0, info.line));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// call-mismatch.
// ---------------------------------------------------------------------------

enum class TypeClass { kUnknown, kNumeric, kLogical, kCharacter, kDerived };

struct TypeGuess {
  TypeClass cls = TypeClass::kUnknown;
  std::string derived;
};

const char* type_class_name(const TypeGuess& g) {
  switch (g.cls) {
    case TypeClass::kUnknown: return "unknown";
    case TypeClass::kNumeric: return "numeric";
    case TypeClass::kLogical: return "logical";
    case TypeClass::kCharacter: return "character";
    case TypeClass::kDerived: return "derived";
  }
  return "?";
}

TypeGuess class_of_spec(const lang::TypeSpec& t) {
  switch (t.kind) {
    case TypeKind::kReal:
    case TypeKind::kInteger:
      return {TypeClass::kNumeric, {}};
    case TypeKind::kLogical:
      return {TypeClass::kLogical, {}};
    case TypeKind::kCharacter:
      return {TypeClass::kCharacter, {}};
    case TypeKind::kDerived:
      return {TypeClass::kDerived, t.derived_name};
  }
  return {};
}

bool is_logical_op(Op op) {
  switch (op) {
    case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe:
    case Op::kGt: case Op::kGe: case Op::kAnd: case Op::kOr: case Op::kNot:
      return true;
    default:
      return false;
  }
}

/// Best-effort static type of an actual argument. Unknown never mismatches.
TypeGuess guess_type(const Expr* e, const VarTable& vars,
                     const ProgramSymbols::ModuleSyms* syms) {
  if (e == nullptr) return {};
  switch (e->kind) {
    case ExprKind::kNumber:
      return {TypeClass::kNumeric, {}};
    case ExprKind::kString:
      return {TypeClass::kCharacter, {}};
    case ExprKind::kLogical:
      return {TypeClass::kLogical, {}};
    case ExprKind::kUnary:
      return is_logical_op(e->op) ? TypeGuess{TypeClass::kLogical, {}}
                                  : guess_type(e->rhs.get(), vars, syms);
    case ExprKind::kBinary:
      return is_logical_op(e->op) ? TypeGuess{TypeClass::kLogical, {}}
                                  : TypeGuess{TypeClass::kNumeric, {}};
    case ExprKind::kRef:
      break;
  }
  if (e->segments.size() > 1) return {};  // component types stay unresolved
  const int id = vars.lookup(e->base_name());
  if (id >= 0) {
    const VarInfo& info = vars.var(id);
    return info.decl != nullptr ? class_of_spec(info.decl->type) : TypeGuess{};
  }
  if (syms != nullptr) {
    auto vit = syms->vars.find(e->base_name());
    if (vit != syms->vars.end()) {
      const VarDecl* d = vit->second.first->find_decl(vit->second.second);
      if (d != nullptr) return class_of_spec(d->type);
    }
  }
  return {};  // function result or unresolved: unknown
}

bool types_match(const TypeGuess& actual, const TypeGuess& dummy) {
  if (actual.cls == TypeClass::kUnknown || dummy.cls == TypeClass::kUnknown) {
    return true;
  }
  if (actual.cls != dummy.cls) return false;
  if (actual.cls == TypeClass::kDerived) return actual.derived == dummy.derived;
  return true;
}

TypeGuess dummy_type(const Subprogram& sp, const std::string& param) {
  for (const VarDecl& d : sp.decls) {
    if (d.name == param) return class_of_spec(d.type);
  }
  return {};
}

class CallChecker {
 public:
  CallChecker(const ModuleAnalysis& ma, const ProgramSymbols& symbols,
              std::vector<Diagnostic>* out)
      : ma_(ma), syms_(symbols.module(ma.module->name)), out_(out) {}

  void run() {
    if (syms_ == nullptr) return;
    for (std::size_t s = 0; s < ma_.subs.size(); ++s) {
      sp_ = &ma_.module->subprograms[s];
      vars_ = &ma_.subs[s].vars;
      for (const auto& st : sp_->body) walk_stmt(*st);
    }
  }

 private:
  void walk_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
        walk_expr(s.lhs.get());
        walk_expr(s.rhs.get());
        break;
      case StmtKind::kCall:
        check_call(s);
        for (const auto& a : s.args) walk_expr(a.get());
        break;
      case StmtKind::kIf:
        walk_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        for (const auto& ei : s.elseifs) {
          walk_expr(ei.cond.get());
          for (const auto& st : ei.body) walk_stmt(*st);
        }
        for (const auto& st : s.else_body) walk_stmt(*st);
        break;
      case StmtKind::kDo:
        walk_expr(s.from.get());
        walk_expr(s.to.get());
        walk_expr(s.step.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      case StmtKind::kDoWhile:
        walk_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      default:
        break;
    }
  }

  void walk_expr(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kUnary || e->kind == ExprKind::kBinary) {
      walk_expr(e->lhs.get());
      walk_expr(e->rhs.get());
      return;
    }
    if (e->kind != ExprKind::kRef) return;
    if (e->is_call_or_index() && vars_->lookup(e->base_name()) < 0 &&
        syms_->vars.find(e->base_name()) == syms_->vars.end()) {
      auto pit = syms_->procs.find(e->base_name());
      if (pit != syms_->procs.end()) {
        check_candidates(e->base_name(), e->segments[0].args, pit->second,
                         /*functions_only=*/true, e->line, e->column,
                         e->end_line);
      }
    }
    for (const auto& seg : e->segments) {
      for (const auto& a : seg.args) walk_expr(a.get());
    }
  }

  void check_call(const Stmt& s) {
    // Builtins with dedicated graph semantics are not user procedures.
    if (s.callee == "outfld" || s.callee == "shr_rand_uniform") return;
    auto pit = syms_->procs.find(s.callee);
    if (pit == syms_->procs.end()) return;  // unresolved: builder skips too
    check_candidates(s.callee, s.args, pit->second, /*functions_only=*/false,
                     s.line, s.column, s.end_line);
  }

  void check_candidates(const std::string& name,
                        const std::vector<lang::ExprPtr>& args,
                        const std::vector<ProcRef>& cands, bool functions_only,
                        int line, int column, int end_line) {
    std::vector<const ProcRef*> usable;
    for (const ProcRef& c : cands) {
      if (functions_only && !c.sp->is_function()) continue;
      usable.push_back(&c);
    }
    if (usable.empty()) return;

    std::vector<const ProcRef*> arity_ok;
    for (const ProcRef* c : usable) {
      if (c->sp->params.size() == args.size()) arity_ok.push_back(c);
    }
    if (arity_ok.empty()) {
      std::string msg;
      if (usable.size() == 1) {
        msg = strfmt("call to '%s' passes %zu argument(s) but '%s::%s' takes "
                     "%zu",
                     name.c_str(), args.size(),
                     usable[0]->module->name.c_str(),
                     usable[0]->sp->name.c_str(),
                     usable[0]->sp->params.size());
      } else {
        msg = strfmt("no candidate of '%s' accepts %zu argument(s)",
                     name.c_str(), args.size());
      }
      out_->push_back(make_diag("call-mismatch", Severity::kError, ma_, *sp_,
                                name, std::move(msg), line, column, end_line));
      return;
    }

    for (const ProcRef* c : arity_ok) {
      if (candidate_type_viable(*c, args)) return;
    }
    std::string msg;
    if (arity_ok.size() == 1) {
      const ProcRef& c = *arity_ok[0];
      for (std::size_t i = 0; i < args.size(); ++i) {
        const TypeGuess actual = guess_type(args[i].get(), *vars_, syms_);
        const TypeGuess dummy = dummy_type(*c.sp, c.sp->params[i]);
        if (!types_match(actual, dummy)) {
          msg = strfmt("argument %zu of '%s' is %s but dummy '%s' is %s",
                       i + 1, name.c_str(), type_class_name(actual),
                       c.sp->params[i].c_str(), type_class_name(dummy));
          break;
        }
      }
    }
    if (msg.empty()) {
      msg = strfmt("no candidate of '%s' matches the argument types",
                   name.c_str());
    }
    out_->push_back(make_diag("call-mismatch", Severity::kError, ma_, *sp_,
                              name, std::move(msg), line, column, end_line));
  }

  bool candidate_type_viable(const ProcRef& c,
                             const std::vector<lang::ExprPtr>& args) const {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const TypeGuess actual = guess_type(args[i].get(), *vars_, syms_);
      const TypeGuess dummy = dummy_type(*c.sp, c.sp->params[i]);
      if (!types_match(actual, dummy)) return false;
    }
    return true;
  }

  const ModuleAnalysis& ma_;
  const ProgramSymbols::ModuleSyms* syms_ = nullptr;
  const Subprogram* sp_ = nullptr;
  const VarTable* vars_ = nullptr;
  std::vector<Diagnostic>* out_ = nullptr;
};

void pass_call_mismatch(const ModuleAnalysis& ma, const ProgramSymbols& symbols,
                        const PassContext&, std::vector<Diagnostic>* out) {
  CallChecker(ma, symbols, out).run();
}

// ---------------------------------------------------------------------------
// unused-dummy (interprocedural only).
// ---------------------------------------------------------------------------

void pass_unused_dummy(const ModuleAnalysis& ma, const ProgramSymbols&,
                       const PassContext&, std::vector<Diagnostic>* out) {
  for (std::size_t s = 0; s < ma.subs.size(); ++s) {
    const Subprogram& sp = ma.module->subprograms[s];
    const DataflowResult& flow = ma.subs[s];
    for (std::size_t v = 0; v < flow.vars.size(); ++v) {
      const VarInfo& info = flow.vars.var(static_cast<int>(v));
      if (info.kind != VarKind::kDummy) continue;
      if (flow.use_counts[v] > 0 || flow.def_counts[v] > 0) continue;
      out->push_back(make_diag(
          "unused-dummy", Severity::kWarning, ma, sp, info.name,
          strfmt("dummy argument '%s' is never used", info.name.c_str()),
          info.line, 0, info.line));
    }
  }
}

// ---------------------------------------------------------------------------
// write-to-read-only-global (interprocedural only).
// ---------------------------------------------------------------------------

/// Finds writes to `parameter` module variables: direct assignments (the
/// dataflow facts skip module-level targets, so this walks statements) and
/// reference arguments a resolved callee writes.
class ReadOnlyGlobalChecker {
 public:
  ReadOnlyGlobalChecker(const ModuleAnalysis& ma, const ProgramSymbols& symbols,
                        const PassContext& ctx, std::vector<Diagnostic>* out)
      : ma_(ma), syms_(symbols.module(ma.module->name)), ctx_(ctx), out_(out) {}

  void run() {
    if (syms_ == nullptr) return;
    for (std::size_t s = 0; s < ma_.subs.size(); ++s) {
      sp_ = &ma_.module->subprograms[s];
      vars_ = &ma_.subs[s].vars;
      for (const auto& st : sp_->body) walk_stmt(*st);
    }
  }

 private:
  // The declaration behind a module-variable name, when it is a parameter.
  const VarDecl* read_only_decl(const std::string& base) const {
    if (vars_->lookup(base) >= 0) return nullptr;  // shadowed by a local
    auto vit = syms_->vars.find(base);
    if (vit == syms_->vars.end()) return nullptr;
    const VarDecl* d = vit->second.first->find_decl(vit->second.second);
    return d != nullptr && d->is_parameter ? d : nullptr;
  }

  void walk_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        const std::string& base = s.lhs->base_name();
        if (read_only_decl(base) != nullptr) {
          out_->push_back(make_diag(
              "write-to-read-only-global", Severity::kError, ma_, *sp_, base,
              strfmt("assignment to read-only module variable '%s'",
                     base.c_str()),
              s.line, s.column, s.end_line));
        }
        walk_expr(s.rhs.get());
        break;
      }
      case StmtKind::kCall:
        check_args(s.callee, s.args, /*function_context=*/false, s.line,
                   s.column, s.end_line);
        break;
      case StmtKind::kIf:
        walk_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        for (const auto& ei : s.elseifs) {
          walk_expr(ei.cond.get());
          for (const auto& st : ei.body) walk_stmt(*st);
        }
        for (const auto& st : s.else_body) walk_stmt(*st);
        break;
      case StmtKind::kDo:
        walk_expr(s.from.get());
        walk_expr(s.to.get());
        walk_expr(s.step.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      case StmtKind::kDoWhile:
        walk_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      default:
        break;
    }
  }

  void walk_expr(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kUnary || e->kind == ExprKind::kBinary) {
      walk_expr(e->lhs.get());
      walk_expr(e->rhs.get());
      return;
    }
    if (e->kind != ExprKind::kRef) return;
    const std::string& base = e->base_name();
    if (e->is_call_or_index() && vars_->lookup(base) < 0 &&
        syms_->vars.find(base) == syms_->vars.end()) {
      check_args(base, e->segments[0].args, /*function_context=*/true, e->line,
                 e->column, e->end_line);
      return;
    }
    for (const auto& seg : e->segments) {
      for (const auto& a : seg.args) walk_expr(a.get());
    }
  }

  void check_args(const std::string& name,
                  const std::vector<lang::ExprPtr>& args, bool function_context,
                  int line, int column, int end_line) {
    for (const auto& a : args) walk_expr(a.get());
    if (!ctx_.call_effects) return;
    const std::optional<CallEffect> eff =
        ctx_.call_effects(name, args.size(), function_context);
    if (!eff || eff->args.size() != args.size()) return;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const Expr* a = args[i].get();
      if (a == nullptr || !a->is_ref()) continue;
      const CallArgEffect& ae = eff->args[i];
      if (!ae.may_write && !ae.definitely_writes) continue;
      if (read_only_decl(a->base_name()) == nullptr) continue;
      out_->push_back(make_diag(
          "write-to-read-only-global", Severity::kWarning, ma_, *sp_,
          a->base_name(),
          strfmt("read-only module variable '%s' is passed to '%s', which "
                 "assigns it",
                 a->base_name().c_str(), name.c_str()),
          line, column, end_line));
    }
  }

  const ModuleAnalysis& ma_;
  const ProgramSymbols::ModuleSyms* syms_ = nullptr;
  const PassContext& ctx_;
  std::vector<Diagnostic>* out_ = nullptr;
  const Subprogram* sp_ = nullptr;
  const VarTable* vars_ = nullptr;
};

void pass_write_readonly_global(const ModuleAnalysis& ma,
                                const ProgramSymbols& symbols,
                                const PassContext& ctx,
                                std::vector<Diagnostic>* out) {
  ReadOnlyGlobalChecker(ma, symbols, ctx, out).run();
}

// ---------------------------------------------------------------------------
// fp-sensitivity (interprocedural only; see fpsense.hpp).
// ---------------------------------------------------------------------------

void pass_fp_sensitivity(const ModuleAnalysis& ma, const ProgramSymbols& symbols,
                         const PassContext& ctx,
                         std::vector<Diagnostic>* out) {
  const ProgramSymbols::ModuleSyms* syms = symbols.module(ma.module->name);
  FpCallOracle oracle = [&](const std::string& name, std::size_t nargs) {
    if (syms == nullptr || ctx.summaries == nullptr) return false;
    auto pit = syms->procs.find(name);
    if (pit == syms->procs.end()) return false;
    for (const ProcRef& c : pit->second) {
      if (!c.sp->is_function() || c.sp->params.size() != nargs) continue;
      const ProcSummary* ps = ctx.summaries->find(c.sp);
      if (ps != nullptr && ps->returns_real) return true;
    }
    return false;
  };
  for (std::size_t s = 0; s < ma.subs.size(); ++s) {
    const Subprogram& sp = ma.module->subprograms[s];
    for (const FpSite& site : find_fp_sites(sp, syms, oracle)) {
      const char* why =
          site.kind == FpSite::Kind::kContraction
              ? "FMA contraction can change its rounding"
              : "reassociation can change its value";
      std::string msg =
          site.target.empty()
              ? strfmt("expression is FP-sensitive: %s", why)
              : strfmt("expression assigned to '%s' is FP-sensitive: %s",
                       site.target.c_str(), why);
      out->push_back(make_diag("fp-sensitivity", Severity::kNote, ma, sp,
                               site.target, std::move(msg), site.expr->line,
                               site.expr->column, site.expr->end_line));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PassManager.
// ---------------------------------------------------------------------------

std::size_t AnalysisResult::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

void PassManager::add_pass(std::string id, PassFn fn) {
  ids_.push_back(id);
  passes_.push_back(Pass{std::move(id), std::move(fn)});
}

AnalysisResult PassManager::run(
    const std::vector<const Module*>& modules) const {
  return run(modules, std::vector<bool>(modules.size(), true));
}

AnalysisResult PassManager::run(const std::vector<const Module*>& modules,
                                const std::vector<bool>& dirty) const {
  return run(modules, dirty, nullptr);
}

AnalysisResult PassManager::run(const std::vector<const Module*>& modules,
                                const std::vector<bool>& dirty,
                                const SummaryBaseline* baseline) const {
  RCA_CHECK_MSG(dirty.size() == modules.size(),
                "dirty mask must parallel the module list");
  obs::Span span("lint");
  ProgramSymbols symbols(modules);

  // Interprocedural mode: compute (or incrementally refresh) the program
  // summaries first, then widen the dirty set to the reverse caller cone of
  // every module whose summary signature changed — a body patch can shift
  // lint results anywhere a summary consumer lives.
  std::shared_ptr<const ProgramSummaries> summaries;
  std::vector<bool> effective = dirty;
  if (interprocedural_) {
    obs::Span sum_span("lint.summaries");
    std::set<std::string> dirty_names;
    if (baseline != nullptr) {
      for (std::size_t i = 0; i < modules.size(); ++i) {
        if (dirty[i]) dirty_names.insert(modules[i]->name);
      }
    }
    summaries = std::make_shared<ProgramSummaries>(
        compute_summaries(modules, symbols, baseline,
                          baseline != nullptr ? &dirty_names : nullptr));
    if (baseline != nullptr) {
      std::set<std::string> changed;
      for (const auto& [mod, sig] : summaries->module_sigs) {
        auto it = baseline->module_sigs.find(mod);
        if (it == baseline->module_sigs.end() || it->second != sig) {
          changed.insert(mod);
        }
      }
      const std::set<std::string> cone = summary_cone(summaries->cg, changed);
      std::size_t widened = 0;
      for (std::size_t i = 0; i < modules.size(); ++i) {
        if (!effective[i] && cone.count(modules[i]->name) > 0) {
          effective[i] = true;
          ++widened;
        }
      }
      obs::count("lint.summary.cone_modules", cone.size());
      obs::count("lint.summary.cone_widened", widened);
    }
    obs::count("lint.summary.procs", summaries->procs.size());
    obs::count("lint.summary.procs_recomputed", summaries->procs_recomputed);
    obs::count("lint.summary.procs_reused", summaries->procs_reused);
    sum_span.attr("procs", summaries->procs.size());
  }

  std::vector<ModuleAnalysis> analyses;
  std::vector<PassContext> contexts;
  analyses.reserve(modules.size());
  contexts.reserve(modules.size());
  std::size_t subprograms = 0;
  std::size_t analyzed = 0;
  std::size_t calls_resolved = 0;
  {
    obs::Span flow_span("lint.dataflow");
    for (std::size_t mi = 0; mi < modules.size(); ++mi) {
      const Module* m = modules[mi];
      // Totals always cover the whole corpus so an incremental run merged
      // with carried diagnostics reports the same counts as a full run.
      subprograms += m->subprograms.size();
      if (!effective[mi]) continue;
      ++analyzed;
      ModuleAnalysis ma;
      ma.module = m;
      DataflowContext ctx;
      const ProgramSymbols::ModuleSyms* syms = symbols.module(m->name);
      if (syms != nullptr) {
        ctx.module_vars = &syms->var_names;
        ctx.procedures = &syms->proc_names;
      }
      PassContext pctx;
      if (summaries != nullptr) {
        pctx.summaries = summaries.get();
        pctx.call_effects = make_call_effects(symbols, *summaries, m->name);
        ctx.call_effects = pctx.call_effects;
      }
      ma.subs.reserve(m->subprograms.size());
      for (const Subprogram& sp : m->subprograms) {
        ma.subs.push_back(analyze_dataflow(sp, ctx));
        calls_resolved += ma.subs.back().calls_resolved;
      }
      analyses.push_back(std::move(ma));
      contexts.push_back(std::move(pctx));
    }
  }

  AnalysisResult result;
  result.modules = modules.size();
  result.subprograms = subprograms;
  result.summaries = summaries;
  result.analyzed = std::move(effective);
  obs::Registry& reg = obs::global();
  for (const Pass& p : passes_) {
    std::uint32_t sid = 0;
    if (reg.enabled()) sid = reg.begin_span("lint.pass." + p.id);
    const std::size_t before = result.diagnostics.size();
    for (std::size_t i = 0; i < analyses.size(); ++i) {
      p.fn(analyses[i], symbols, contexts[i], &result.diagnostics);
    }
    const std::size_t found = result.diagnostics.size() - before;
    if (reg.enabled()) {
      reg.counter_add("lint.rule." + p.id, found);
      if (sid != 0) {
        reg.span_attr(sid, "diagnostics",
                      obs::AttrValue::of(static_cast<long long>(found)));
        reg.end_span(sid);
      }
    }
  }
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            diagnostic_less);

  obs::count("lint.modules", modules.size());
  obs::count("lint.subprograms", subprograms);
  if (analyzed < modules.size()) {
    obs::count("lint.modules_skipped", modules.size() - analyzed);
  }
  if (interprocedural_) {
    obs::count("lint.summary.calls_resolved", calls_resolved);
  }
  obs::count("lint.diagnostics", result.diagnostics.size());
  obs::count("lint.errors", result.count(Severity::kError));
  obs::count("lint.warnings", result.count(Severity::kWarning));
  span.attr("modules", modules.size());
  span.attr("diagnostics", result.diagnostics.size());
  return result;
}

PassManager PassManager::default_passes() {
  PassManager pm = intraprocedural_passes();
  pm.interprocedural_ = true;
  pm.add_pass("unused-dummy", pass_unused_dummy);
  pm.add_pass("write-to-read-only-global", pass_write_readonly_global);
  pm.add_pass("fp-sensitivity", pass_fp_sensitivity);
  return pm;
}

PassManager PassManager::intraprocedural_passes() {
  PassManager pm;
  pm.add_pass("use-before-def", pass_use_before_def);
  pm.add_pass("dead-store", pass_dead_store);
  pm.add_pass("unused-variable", pass_unused_variable);
  pm.add_pass("intent-violation", pass_intent_violation);
  pm.add_pass("shadowing", pass_shadowing);
  pm.add_pass("call-mismatch", pass_call_mismatch);
  return pm;
}

}  // namespace rca::analysis
