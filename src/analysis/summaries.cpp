#include "analysis/summaries.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "analysis/fpsense.hpp"
#include "fault/fault.hpp"
#include "interp/intrinsics.hpp"
#include "lang/printer.hpp"

namespace rca::analysis {

using lang::Expr;
using lang::ExprKind;
using lang::Intent;
using lang::Module;
using lang::Stmt;
using lang::StmtKind;
using lang::Subprogram;
using lang::TypeKind;

namespace {

bool is_builtin(const std::string& name) {
  return name == "outfld" || name == "shr_rand_uniform";
}

// Length-prefixed FNV-1a 64, a local twin of meta::SnapshotKey — analysis
// sits below meta in the layering, so it cannot reuse it.
class SummarySig {
 public:
  void add(const std::string& s) {
    add_u64(s.size());
    for (const char c : s) step(static_cast<unsigned char>(c));
  }
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) step(static_cast<unsigned char>(v >> (i * 8)));
  }
  std::uint64_t digest() const { return h_; }

 private:
  void step(unsigned char b) {
    h_ ^= b;
    h_ *= 1099511628211ull;
  }
  std::uint64_t h_ = 14695981039346656037ull;
};

std::uint64_t pack_flags(const ProcSummary& p) {
  std::uint64_t f = 0;
  f |= p.is_function ? 1u : 0u;
  f |= p.returns_real ? 2u : 0u;
  f |= p.pure ? 4u : 0u;
  f |= p.recursive ? 8u : 0u;
  f |= p.calls_unknown ? 16u : 0u;
  f |= p.fp_sensitive ? 32u : 0u;
  return f;
}

std::uint64_t pack_flags(const DummySummary& d) {
  std::uint64_t f = static_cast<std::uint64_t>(d.intent) << 8;
  f |= d.may_read_incoming ? 1u : 0u;
  f |= d.observes_incoming ? 2u : 0u;
  f |= d.may_write ? 4u : 0u;
  f |= d.definitely_writes ? 8u : 0u;
  return f;
}

std::string baseline_key(const std::string& module, const std::string& name) {
  return module + '\x1f' + name;
}

/// Candidates a call site can dispatch to: context- and arity-filtered.
std::vector<const Subprogram*> dispatch_candidates(
    const ProgramSymbols::ModuleSyms* syms, const std::string& name,
    std::size_t nargs, bool function_context) {
  std::vector<const Subprogram*> out;
  if (syms == nullptr || is_builtin(name)) return out;
  auto pit = syms->procs.find(name);
  if (pit == syms->procs.end()) return out;
  for (const ProcRef& c : pit->second) {
    if (c.sp->is_function() != function_context) continue;
    if (c.sp->params.size() != nargs) continue;
    out.push_back(c.sp);
  }
  return out;
}

/// Merges candidate summaries into one sound per-argument effect.
/// Nullopt when any candidate is missing, not yet computed, or recursive.
std::optional<CallEffect> merge_effects(
    const ProgramSymbols::ModuleSyms* syms, const CallGraph& cg,
    const std::vector<ProcSummary>& procs, const std::vector<char>* computed,
    const std::string& name, std::size_t nargs, bool function_context) {
  const std::vector<const Subprogram*> cands =
      dispatch_candidates(syms, name, nargs, function_context);
  if (cands.empty()) return std::nullopt;
  CallEffect eff;
  eff.args.resize(nargs);
  for (CallArgEffect& a : eff.args) {
    a.may_read_incoming = false;
    a.observes_incoming = true;
    a.may_write = false;
    a.definitely_writes = true;
  }
  for (const Subprogram* sp : cands) {
    const int idx = cg.index_of(sp);
    if (idx < 0) return std::nullopt;
    if (computed != nullptr && !(*computed)[static_cast<std::size_t>(idx)]) {
      return std::nullopt;
    }
    const ProcSummary& ps = procs[static_cast<std::size_t>(idx)];
    if (ps.recursive || ps.dummies.size() != nargs) return std::nullopt;
    for (std::size_t i = 0; i < nargs; ++i) {
      const DummySummary& d = ps.dummies[i];
      CallArgEffect& a = eff.args[i];
      a.may_read_incoming |= d.may_read_incoming;
      a.observes_incoming &= d.observes_incoming;
      a.may_write |= d.may_write || d.definitely_writes;
      a.definitely_writes &= d.definitely_writes;
    }
  }
  return eff;
}

using Bits = std::vector<char>;

bool or_into(Bits& dst, const Bits& src) {
  bool changed = false;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (src[i] && !dst[i]) {
      dst[i] = 1;
      changed = true;
    }
  }
  return changed;
}

/// Forward "may reach with property" analysis over variables, where the
/// property starts true at entry and a statement-level kill clears it.
/// `kills(f, cur)` applies the statement's kills to `cur`.
template <typename KillFn>
std::vector<Bits> forward_may(const DataflowResult& flow, KillFn kills) {
  const std::size_t nblocks = flow.cfg.size();
  const std::size_t nvars = flow.vars.size();
  std::vector<Bits> in(nblocks, Bits(nvars, 0));
  in[static_cast<std::size_t>(flow.cfg.entry)].assign(nvars, 1);
  std::vector<Bits> out(nblocks, Bits(nvars, 0));
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < nblocks; ++b) {
      Bits cur = in[b];
      for (const StmtFacts& f : flow.facts[b]) kills(f, cur);
      if (cur != out[b]) {
        out[b] = std::move(cur);
        changed = true;
      }
      for (int s : flow.cfg.blocks[b].succs) {
        if (or_into(in[static_cast<std::size_t>(s)], out[b])) changed = true;
      }
    }
  }
  return in;
}

void kill_definite(const StmtFacts& f, Bits& cur) {
  if (f.def >= 0 && f.kills) cur[static_cast<std::size_t>(f.def)] = 0;
  for (int v : f.kill_defs) cur[static_cast<std::size_t>(v)] = 0;
}

void kill_any_write(const StmtFacts& f, Bits& cur) {
  if (f.def >= 0) cur[static_cast<std::size_t>(f.def)] = 0;
  for (int v : f.may_defs) cur[static_cast<std::size_t>(v)] = 0;
  for (int v : f.kill_defs) cur[static_cast<std::size_t>(v)] = 0;
}

/// Forward must-write: bit set when the variable is assigned on every path
/// reaching the point. Returns out-sets; out[exit] is the procedure verdict.
std::vector<Bits> forward_must_write(const DataflowResult& flow) {
  const std::size_t nblocks = flow.cfg.size();
  const std::size_t nvars = flow.vars.size();
  std::vector<Bits> in(nblocks, Bits(nvars, 1));
  std::vector<Bits> out(nblocks, Bits(nvars, 1));
  in[static_cast<std::size_t>(flow.cfg.entry)].assign(nvars, 0);
  std::vector<std::vector<int>> preds(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int s : flow.cfg.blocks[b].succs) {
      preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(b));
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < nblocks; ++b) {
      if (static_cast<int>(b) != flow.cfg.entry) {
        Bits meet(nvars, 1);
        if (preds[b].empty()) {
          // Unreachable: keep top so it cannot weaken reachable facts.
        } else {
          for (int p : preds[b]) {
            const Bits& po = out[static_cast<std::size_t>(p)];
            for (std::size_t v = 0; v < nvars; ++v) {
              if (!po[v]) meet[v] = 0;
            }
          }
        }
        in[b] = std::move(meet);
      }
      Bits cur = in[b];
      for (const StmtFacts& f : flow.facts[b]) {
        if (f.def >= 0 && f.kills) cur[static_cast<std::size_t>(f.def)] = 1;
        for (int v : f.kill_defs) cur[static_cast<std::size_t>(v)] = 1;
      }
      if (cur != out[b]) {
        out[b] = std::move(cur);
        changed = true;
      }
    }
  }
  return out;
}

std::string qualify(const Module* owner, const std::string& remote) {
  return owner->name + "::" + remote;
}

/// Walks one subprogram's statements collecting transitive global effects,
/// call resolution health, purity inputs and callee-propagated flags.
class GlobalsWalker {
 public:
  GlobalsWalker(const Subprogram& sp, const ProgramSymbols::ModuleSyms* syms,
                const CallGraph& cg, const std::vector<ProcSummary>& procs,
                const std::vector<char>* computed)
      : syms_(syms), cg_(cg), procs_(procs), computed_(computed), vars_(sp) {
    for (const auto& st : sp.body) walk_stmt(*st);
  }

  std::set<std::string> reads;
  std::set<std::string> writes;
  bool calls_unknown = false;
  bool impure = false;      // impure builtin called
  bool callee_impure = false;
  bool callee_fp = false;

 private:
  void walk_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        read_expr(s.rhs.get());
        const Expr& lhs = *s.lhs;
        for (const auto& seg : lhs.segments) {
          for (const auto& a : seg.args) read_expr(a.get());
        }
        if (vars_.lookup(lhs.base_name()) < 0 && syms_ != nullptr) {
          auto it = syms_->vars.find(lhs.base_name());
          if (it != syms_->vars.end()) {
            writes.insert(qualify(it->second.first, it->second.second));
            // A partial store flows the old value through: a read too.
            if (lhs.segments.size() > 1 || lhs.segments[0].has_args) {
              reads.insert(qualify(it->second.first, it->second.second));
            }
          }
        }
        break;
      }
      case StmtKind::kCall:
        apply_call(s.callee, s.args, /*function_context=*/false);
        break;
      case StmtKind::kIf:
        read_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        for (const auto& ei : s.elseifs) {
          read_expr(ei.cond.get());
          for (const auto& st : ei.body) walk_stmt(*st);
        }
        for (const auto& st : s.else_body) walk_stmt(*st);
        break;
      case StmtKind::kDo:
        read_expr(s.from.get());
        read_expr(s.to.get());
        read_expr(s.step.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      case StmtKind::kDoWhile:
        read_expr(s.cond.get());
        for (const auto& st : s.body) walk_stmt(*st);
        break;
      default:
        break;
    }
  }

  void read_expr(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kUnary || e->kind == ExprKind::kBinary) {
      read_expr(e->lhs.get());
      read_expr(e->rhs.get());
      return;
    }
    if (e->kind != ExprKind::kRef) return;
    const std::string& base = e->base_name();
    if (vars_.lookup(base) >= 0) {
      for (const auto& seg : e->segments) {
        for (const auto& a : seg.args) read_expr(a.get());
      }
      return;
    }
    if (syms_ != nullptr) {
      auto vit = syms_->vars.find(base);
      if (vit != syms_->vars.end()) {
        reads.insert(qualify(vit->second.first, vit->second.second));
        for (const auto& seg : e->segments) {
          for (const auto& a : seg.args) read_expr(a.get());
        }
        return;
      }
    }
    if (e->is_call_or_index() && !interp::is_intrinsic_function(base)) {
      apply_call(base, e->segments[0].args, /*function_context=*/true);
      return;
    }
    for (const auto& seg : e->segments) {
      for (const auto& a : seg.args) read_expr(a.get());
    }
  }

  void apply_call(const std::string& name,
                  const std::vector<lang::ExprPtr>& args,
                  bool function_context) {
    for (const auto& a : args) read_expr(a.get());
    if (is_builtin(name)) {
      impure = true;  // outfld emits, shr_rand_uniform draws state
      return;
    }
    const std::vector<const Subprogram*> cands =
        dispatch_candidates(syms_, name, args.size(), function_context);
    if (cands.empty()) {
      calls_unknown = true;
      conservative_module_args(args);
      return;
    }
    bool any_resolved = false;
    for (const Subprogram* sp : cands) {
      const int idx = cg_.index_of(sp);
      if (idx < 0) {
        calls_unknown = true;
        continue;
      }
      if (computed_ != nullptr &&
          !(*computed_)[static_cast<std::size_t>(idx)]) {
        // Same-SCC callee before its first round: contributes nothing yet;
        // later fixpoint rounds pick its effects up.
        continue;
      }
      const ProcSummary& ps = procs_[static_cast<std::size_t>(idx)];
      if (ps.recursive) {
        calls_unknown = true;
        continue;
      }
      any_resolved = true;
      for (const std::string& g : ps.globals_read) reads.insert(g);
      for (const std::string& g : ps.globals_written) writes.insert(g);
      if (!ps.pure) callee_impure = true;
      if (ps.calls_unknown) calls_unknown = true;
      if (ps.fp_sensitive) callee_fp = true;
      // Module variables passed by reference inherit the dummy's effect.
      if (ps.dummies.size() == args.size()) {
        for (std::size_t i = 0; i < args.size(); ++i) {
          const Expr* a = args[i].get();
          if (a == nullptr || !a->is_ref()) continue;
          if (vars_.lookup(a->base_name()) >= 0 || syms_ == nullptr) continue;
          auto vit = syms_->vars.find(a->base_name());
          if (vit == syms_->vars.end()) continue;
          const std::string q = qualify(vit->second.first, vit->second.second);
          const DummySummary& d = ps.dummies[i];
          if (d.may_read_incoming) reads.insert(q);
          if (d.may_write || d.definitely_writes) writes.insert(q);
        }
      }
    }
    if (!any_resolved) conservative_module_args(args);
  }

  // Unresolved callee: any module variable passed by reference may be both
  // read and written.
  void conservative_module_args(const std::vector<lang::ExprPtr>& args) {
    if (syms_ == nullptr) return;
    for (const auto& a : args) {
      if (a == nullptr || !a->is_ref()) continue;
      if (vars_.lookup(a->base_name()) >= 0) continue;
      auto vit = syms_->vars.find(a->base_name());
      if (vit == syms_->vars.end()) continue;
      const std::string q = qualify(vit->second.first, vit->second.second);
      reads.insert(q);
      writes.insert(q);
    }
  }

  const ProgramSymbols::ModuleSyms* syms_;
  const CallGraph& cg_;
  const std::vector<ProcSummary>& procs_;
  const std::vector<char>* computed_;
  VarTable vars_;
};

bool result_is_real(const Subprogram& sp) {
  if (!sp.is_function()) return false;
  for (const lang::VarDecl& d : sp.decls) {
    if (d.name == sp.result_name) return d.type.kind == TypeKind::kReal;
  }
  return false;
}

/// Summarizes one procedure against the already-computed callee summaries.
ProcSummary summarize_one(const CallGraph& cg, std::size_t idx,
                          const ProgramSymbols& symbols,
                          const std::vector<ProcSummary>& procs,
                          const std::vector<char>& computed) {
  const Module* m = cg.nodes[idx].module;
  const Subprogram& sp = *cg.nodes[idx].sp;
  const ProgramSymbols::ModuleSyms* syms = symbols.module(m->name);

  ProcSummary out;
  out.module = m->name;
  out.name = sp.name;
  out.is_function = sp.is_function();
  out.returns_real = result_is_real(sp);

  DataflowContext ctx;
  if (syms != nullptr) {
    ctx.module_vars = &syms->var_names;
    ctx.procedures = &syms->proc_names;
  }
  ctx.call_effects = [&](const std::string& name, std::size_t nargs,
                         bool function_context) {
    return merge_effects(syms, cg, procs, &computed, name, nargs,
                         function_context);
  };
  const DataflowResult flow = analyze_dataflow(sp, ctx);
  const std::size_t nvars = flow.vars.size();

  const std::vector<Bits> must_out = forward_must_write(flow);
  const Bits& written_at_exit =
      must_out[static_cast<std::size_t>(flow.cfg.exit)];
  // "Unwritten" states at block entry: no definite write yet on some path
  // (bounds may_read_incoming) / no possible write at all on some path
  // (bounds observes_incoming).
  const std::vector<Bits> no_def_write_in = forward_may(flow, kill_definite);
  const std::vector<Bits> no_any_write_in = forward_may(flow, kill_any_write);

  Bits reads_unwritten(nvars, 0);
  Bits observes(nvars, 0);
  for (std::size_t b = 0; b < flow.cfg.size(); ++b) {
    Bits no_def = no_def_write_in[b];
    Bits no_any = no_any_write_in[b];
    for (const StmtFacts& f : flow.facts[b]) {
      for (const UseSite& u : f.uses) {
        const std::size_t v = static_cast<std::size_t>(u.var);
        if (!u.summary_ignored && no_def[v]) reads_unwritten[v] = 1;
        if ((!u.via_call || u.summary_read) && no_any[v]) observes[v] = 1;
      }
      kill_definite(f, no_def);
      kill_any_write(f, no_any);
    }
  }

  out.dummies.reserve(sp.params.size());
  for (const std::string& p : sp.params) {
    DummySummary d;
    d.name = p;
    const int id = flow.vars.lookup(p);
    if (id >= 0) {
      const std::size_t v = static_cast<std::size_t>(id);
      d.intent = flow.vars.var(id).intent;
      d.may_write = flow.def_counts[v] > 0;
      d.definitely_writes = written_at_exit[v] != 0;
      d.may_read_incoming = reads_unwritten[v] != 0;
      d.observes_incoming = observes[v] != 0;
    }
    out.dummies.push_back(std::move(d));
  }

  GlobalsWalker gw(sp, syms, cg, procs, &computed);
  out.globals_read.assign(gw.reads.begin(), gw.reads.end());
  out.globals_written.assign(gw.writes.begin(), gw.writes.end());
  out.calls_unknown = gw.calls_unknown;
  out.pure = out.globals_written.empty() && !gw.impure && !gw.callee_impure &&
             !gw.calls_unknown;

  FpCallOracle oracle = [&](const std::string& name, std::size_t nargs) {
    const std::vector<const Subprogram*> cands =
        dispatch_candidates(syms, name, nargs, /*function_context=*/true);
    for (const Subprogram* c : cands) {
      const int ci = cg.index_of(c);
      if (ci >= 0 && procs[static_cast<std::size_t>(ci)].returns_real) {
        return true;
      }
      if (ci < 0 && result_is_real(*c)) return true;
    }
    return false;
  };
  out.fp_sensitive =
      !find_fp_sites(sp, syms, oracle).empty() || gw.callee_fp;
  return out;
}

}  // namespace

SummaryBaseline ProgramSummaries::to_baseline() const {
  SummaryBaseline b;
  b.module_sigs = module_sigs;
  for (const ProcSummary& p : procs) {
    b.procs.emplace(baseline_key(p.module, p.name), p);
  }
  return b;
}

std::set<std::string> summary_cone(const CallGraph& cg,
                                   const std::set<std::string>& dirty) {
  // Module-level reverse adjacency: an edge caller -> callee means the
  // caller's module depends on the callee's module.
  std::map<std::string, std::set<std::string>> called_from;
  for (std::size_t u = 0; u < cg.nodes.size(); ++u) {
    for (std::size_t v : cg.callees[u]) {
      if (cg.nodes[u].module != cg.nodes[v].module) {
        called_from[cg.nodes[v].module->name].insert(
            cg.nodes[u].module->name);
      }
    }
  }
  std::set<std::string> cone = dirty;
  std::deque<std::string> work(dirty.begin(), dirty.end());
  while (!work.empty()) {
    const std::string m = work.front();
    work.pop_front();
    auto it = called_from.find(m);
    if (it == called_from.end()) continue;
    for (const std::string& caller : it->second) {
      if (cone.insert(caller).second) work.push_back(caller);
    }
  }
  return cone;
}

ProgramSummaries compute_summaries(
    const std::vector<const Module*>& modules, const ProgramSymbols& symbols,
    const SummaryBaseline* base, const std::set<std::string>* dirty_modules) {
  RCA_FAULT_POINT("analysis.summary");
  ProgramSummaries out;
  out.cg = build_call_graph(modules, symbols);
  const CallGraph& cg = out.cg;
  const std::size_t n = cg.nodes.size();
  out.procs.resize(n);

  // Outside the dirty modules' reverse caller cone nothing a body patch can
  // change is visible, so the baseline summary is still exact.
  std::vector<char> reused(n, 0);
  if (base != nullptr && dirty_modules != nullptr) {
    const std::set<std::string> cone = summary_cone(cg, *dirty_modules);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& mod = cg.nodes[i].module->name;
      if (cone.count(mod) > 0) continue;
      auto it = base->procs.find(baseline_key(mod, cg.nodes[i].sp->name));
      if (it != base->procs.end() &&
          it->second.dummies.size() == cg.nodes[i].sp->params.size()) {
        out.procs[i] = it->second;
        reused[i] = 1;
        ++out.procs_reused;
      }
    }
  }

  std::vector<char> computed = reused;
  constexpr int kMaxRounds = 8;
  for (std::size_t scc = 0; scc < cg.scc_count; ++scc) {
    const std::vector<std::size_t>& members = cg.scc_members[scc];
    bool all_reused = true;
    for (std::size_t idx : members) {
      if (!reused[idx]) all_reused = false;
    }
    if (all_reused) continue;
    const bool rec = cg.scc_recursive[scc];
    for (int round = 0; round < kMaxRounds; ++round) {
      bool changed = false;
      for (std::size_t idx : members) {
        if (reused[idx]) continue;
        ProcSummary s = summarize_one(cg, idx, symbols, out.procs, computed);
        if (!computed[idx] || !(s == out.procs[idx])) {
          out.procs[idx] = std::move(s);
          changed = true;
        }
        computed[idx] = 1;
      }
      if (!rec || !changed) break;
    }
    for (std::size_t idx : members) {
      if (reused[idx]) continue;
      // Recursive components fall back to the conservative model at every
      // consumer; the fixpoint above still refines globals and purity.
      if (rec) out.procs[idx].recursive = true;
      ++out.procs_recomputed;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::string& mod = cg.nodes[i].module->name;
    auto [it, fresh] = out.module_sigs.try_emplace(mod, 0);
    SummarySig sig;
    if (fresh) sig.add("rca-summary-sig-v1");
    sig.add_u64(it->second);
    const ProcSummary& p = out.procs[i];
    sig.add(p.name);
    sig.add_u64(pack_flags(p));
    sig.add_u64(p.dummies.size());
    for (const DummySummary& d : p.dummies) {
      sig.add(d.name);
      sig.add_u64(pack_flags(d));
    }
    for (const std::string& g : p.globals_read) sig.add(g);
    sig.add_u64(p.globals_read.size());
    for (const std::string& g : p.globals_written) sig.add(g);
    sig.add_u64(p.globals_written.size());
    it->second = sig.digest();
  }
  // Modules with no subprograms still need a stable signature.
  for (const Module* m : modules) {
    SummarySig sig;
    sig.add("rca-summary-sig-v1");
    out.module_sigs.try_emplace(m->name, sig.digest());
  }
  return out;
}

CallEffectFn make_call_effects(const ProgramSymbols& symbols,
                               const ProgramSummaries& summaries,
                               const std::string& module_name) {
  const ProgramSymbols::ModuleSyms* syms = symbols.module(module_name);
  if (syms == nullptr) return nullptr;
  return [syms, &summaries](const std::string& name, std::size_t nargs,
                            bool function_context) {
    return merge_effects(syms, summaries.cg, summaries.procs,
                         /*computed=*/nullptr, name, nargs, function_context);
  };
}

namespace {

void json_escape(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void append_string_array(const std::vector<std::string>& v, std::string* out) {
  *out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out += ',';
    *out += '"';
    json_escape(v[i], out);
    *out += '"';
  }
  *out += ']';
}

}  // namespace

std::string summaries_to_json(const ProgramSummaries& s) {
  // Sort by (module, name, declaration line) — node order already is module
  // order, but a deterministic dump should not depend on it.
  std::vector<std::size_t> order(s.procs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const ProcSummary& pa = s.procs[a];
    const ProcSummary& pb = s.procs[b];
    if (pa.module != pb.module) return pa.module < pb.module;
    if (pa.name != pb.name) return pa.name < pb.name;
    return s.cg.nodes[a].sp->line < s.cg.nodes[b].sp->line;
  });

  std::string out = "{\"schema\":\"rca.summaries.v1\",\"procedures\":[";
  bool first = true;
  for (std::size_t i : order) {
    const ProcSummary& p = s.procs[i];
    if (!first) out += ',';
    first = false;
    out += "{\"module\":\"";
    json_escape(p.module, &out);
    out += "\",\"name\":\"";
    json_escape(p.name, &out);
    out += "\",\"kind\":\"";
    out += p.is_function ? "function" : "subroutine";
    out += "\",\"pure\":";
    out += p.pure ? "true" : "false";
    out += ",\"recursive\":";
    out += p.recursive ? "true" : "false";
    out += ",\"calls_unknown\":";
    out += p.calls_unknown ? "true" : "false";
    out += ",\"fp_sensitive\":";
    out += p.fp_sensitive ? "true" : "false";
    if (p.is_function) {
      out += ",\"returns_real\":";
      out += p.returns_real ? "true" : "false";
    }
    out += ",\"dummies\":[";
    for (std::size_t d = 0; d < p.dummies.size(); ++d) {
      const DummySummary& ds = p.dummies[d];
      if (d > 0) out += ',';
      out += "{\"name\":\"";
      json_escape(ds.name, &out);
      out += "\",\"intent\":\"";
      switch (ds.intent) {
        case Intent::kIn: out += "in"; break;
        case Intent::kOut: out += "out"; break;
        case Intent::kInOut: out += "inout"; break;
        case Intent::kNone: out += "none"; break;
      }
      out += "\",\"may_read_incoming\":";
      out += ds.may_read_incoming ? "true" : "false";
      out += ",\"observes_incoming\":";
      out += ds.observes_incoming ? "true" : "false";
      out += ",\"may_write\":";
      out += ds.may_write ? "true" : "false";
      out += ",\"definitely_writes\":";
      out += ds.definitely_writes ? "true" : "false";
      out += '}';
    }
    out += "],\"globals_read\":";
    append_string_array(p.globals_read, &out);
    out += ",\"globals_written\":";
    append_string_array(p.globals_written, &out);
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace rca::analysis
