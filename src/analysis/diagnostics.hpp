// Structured lint diagnostics (static-analysis subsystem).
//
// Every analysis pass reports findings as Diagnostic records — severity,
// stable rule id, source position (start + end, from the AST's extent
// fields), the owning module/subprogram, and the canonical variable name the
// metagraph would intern for the same site — so a diagnostic can be joined
// against metagraph node metadata by (module, subprogram, name).
//
// Three emitters share the same record stream:
//   * text   — one human-readable line per finding (compiler style);
//   * JSON   — schema `rca.diagnostics.v1`, for CI artifacts and tooling;
//   * TSV    — position-stable byte-exact table, pinned by the golden test.
#pragma once

#include <string>
#include <vector>

namespace rca::analysis {

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  std::string rule;        // stable id, e.g. "dead-store"
  Severity severity = Severity::kWarning;
  std::string module;      // owning module
  std::string subprogram;  // empty for module-level findings
  std::string name;        // canonical variable/procedure name
  std::string message;     // human-readable explanation
  std::string file;        // source path (omitted from the TSV emitter)
  int line = 0;
  int column = 0;
  int end_line = 0;
};

/// Orders by (module, line, column, rule, name, message): source order
/// within a module, deterministic everywhere.
bool diagnostic_less(const Diagnostic& a, const Diagnostic& b);

/// `file:line:col: severity: message [rule] (module::subprogram)` lines.
std::string diagnostics_to_text(const std::vector<Diagnostic>& diags);

/// Schema rca.diagnostics.v1: {"schema", "counts", "diagnostics": [...]}.
std::string diagnostics_to_json(const std::vector<Diagnostic>& diags);

/// Byte-stable TSV (header + one row per finding, no file paths) for
/// golden-corpus pinning.
std::string diagnostics_to_tsv(const std::vector<Diagnostic>& diags);

}  // namespace rca::analysis
