// Bottom-up mod/ref summaries per procedure.
//
// For every subprogram the summary records what each dummy argument
// experiences (read-before-written, definitely written, untouched), which
// module variables the procedure reads or writes transitively, and whether
// it is pure. Summaries are computed over the call graph's SCC condensation
// in reverse topological order, so every callee summary exists before its
// callers are analyzed; recursive components run a capped descending
// fixpoint (round one treats in-component callees conservatively, each later
// round refines against the previous one — sound wherever it stops) and are
// then marked `recursive`, which makes every consumer fall back to the
// conservative blanket model, exactly as the intraprocedural analysis would.
//
// Incremental relint: `to_baseline()` captures the summaries as plain data
// (no AST pointers), and `compute_summaries` with a baseline plus a dirty
// module set recomputes only procedures inside the dirty modules' reverse
// caller cone (`summary_cone`), reusing the baseline elsewhere.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "analysis/dataflow.hpp"
#include "lang/ast.hpp"

namespace rca::analysis {

/// What one dummy argument experiences inside its procedure, transitively.
struct DummySummary {
  std::string name;
  lang::Intent intent = lang::Intent::kNone;
  bool may_read_incoming = true;   // over-approx: some path may read it
  bool observes_incoming = false;  // under-approx: certainly read unwritten
  bool may_write = true;           // some path may assign it
  bool definitely_writes = false;  // assigned on every path to exit

  friend bool operator==(const DummySummary& a, const DummySummary& b) {
    return a.name == b.name && a.intent == b.intent &&
           a.may_read_incoming == b.may_read_incoming &&
           a.observes_incoming == b.observes_incoming &&
           a.may_write == b.may_write &&
           a.definitely_writes == b.definitely_writes;
  }
};

struct ProcSummary {
  std::string module;
  std::string name;
  bool is_function = false;
  bool returns_real = false;  // function whose result is declared real
  std::vector<DummySummary> dummies;  // parallel to Subprogram::params
  std::vector<std::string> globals_read;     // "module::var", sorted unique
  std::vector<std::string> globals_written;  // "module::var", sorted unique
  bool pure = false;       // no global writes, no impure builtins, callees pure
  bool recursive = false;  // member of a recursive SCC; consumers fall back
  bool calls_unknown = false;  // some call did not resolve
  bool fp_sensitive = false;   // body or a callee has an FP-sensitive site

  friend bool operator==(const ProcSummary& a, const ProcSummary& b) {
    return a.module == b.module && a.name == b.name &&
           a.is_function == b.is_function && a.returns_real == b.returns_real &&
           a.dummies == b.dummies && a.globals_read == b.globals_read &&
           a.globals_written == b.globals_written && a.pure == b.pure &&
           a.recursive == b.recursive && a.calls_unknown == b.calls_unknown &&
           a.fp_sensitive == b.fp_sensitive;
  }
};

/// Plain-data snapshot safe to outlive the ASTs it was computed from —
/// what a session carries across a patch for incremental relint.
struct SummaryBaseline {
  std::map<std::string, std::uint64_t> module_sigs;
  std::map<std::string, ProcSummary> procs;  // key: module + '\x1f' + name
};

struct ProgramSummaries {
  CallGraph cg;
  std::vector<ProcSummary> procs;  // parallel to cg.nodes
  // Per-module hash over that module's procedure summaries; a changed sig
  // is what widens lint invalidation to the module's reverse caller cone.
  std::map<std::string, std::uint64_t> module_sigs;
  std::size_t procs_recomputed = 0;
  std::size_t procs_reused = 0;

  const ProcSummary* find(const lang::Subprogram* sp) const {
    const int i = cg.index_of(sp);
    return i < 0 ? nullptr : &procs[static_cast<std::size_t>(i)];
  }

  SummaryBaseline to_baseline() const;
};

/// Computes summaries bottom-up over the SCC condensation. With a baseline
/// and a dirty module set, procedures outside `summary_cone(cg, dirty)` are
/// reused from the baseline instead of recomputed.
ProgramSummaries compute_summaries(
    const std::vector<const lang::Module*>& modules,
    const ProgramSymbols& symbols, const SummaryBaseline* base = nullptr,
    const std::set<std::string>* dirty_modules = nullptr);

/// The reverse caller cone of `dirty` at module granularity (reflexive):
/// every module containing a procedure that transitively calls into a dirty
/// module. Exactly the set whose summaries — and lint results — a body-only
/// patch can change.
std::set<std::string> summary_cone(const CallGraph& cg,
                                   const std::set<std::string>& dirty);

/// Call-effect resolver for dataflow over one module: merges the summaries
/// of every candidate a name resolves to (generic interfaces included).
/// Returns nullopt for unresolved names, arity mismatches and recursive
/// callees, which keeps the conservative model for those sites.
CallEffectFn make_call_effects(const ProgramSymbols& symbols,
                               const ProgramSummaries& summaries,
                               const std::string& module_name);

/// Deterministic JSON dump, schema `rca.summaries.v1`.
std::string summaries_to_json(const ProgramSummaries& s);

}  // namespace rca::analysis
