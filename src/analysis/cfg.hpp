// Per-subprogram control-flow graph over the structured AST.
//
// Blocks hold the simple statements (assignments, calls) plus pseudo-entries
// for the value-reading parts of control statements: an `if`/`do while`
// condition contributes a kCond entry in the block that evaluates it, and a
// counted-do header contributes a kDoHeader entry (reads bounds, defines the
// loop variable). `exit`, `cycle` and `return` become edges to the loop-exit,
// loop-header and subprogram-exit blocks respectively, so the reaching-
// definitions and liveness analyses (dataflow.hpp) see every path the
// builder's edge extraction over-approximates.
#pragma once

#include <vector>

#include "lang/ast.hpp"

namespace rca::analysis {

struct CfgStmt {
  enum class Role {
    kSimple,    // assignment or call: `stmt`
    kCond,      // if/elseif/do-while condition: `cond` (stmt = owner)
    kDoHeader,  // counted do: reads from/to/step, defines stmt->do_var
  };
  Role role = Role::kSimple;
  const lang::Stmt* stmt = nullptr;
  const lang::Expr* cond = nullptr;  // kCond only
};

struct BasicBlock {
  std::vector<CfgStmt> stmts;
  std::vector<int> succs;
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit = 1;

  std::size_t size() const { return blocks.size(); }
  /// Predecessor lists derived from succs (for backward analyses).
  std::vector<std::vector<int>> predecessors() const;
};

/// Builds the CFG for one subprogram body.
Cfg build_cfg(const lang::Subprogram& sp);

}  // namespace rca::analysis
