#include "analysis/dataflow.hpp"

#include <algorithm>

#include "interp/intrinsics.hpp"

namespace rca::analysis {

using lang::Expr;
using lang::ExprKind;
using lang::Intent;
using lang::Stmt;
using lang::StmtKind;
using lang::Subprogram;
using lang::VarDecl;

// ---------------------------------------------------------------------------
// VarTable.
// ---------------------------------------------------------------------------

VarTable::VarTable(const Subprogram& sp) {
  std::unordered_map<std::string, const VarDecl*> decls;
  for (const VarDecl& d : sp.decls) decls.emplace(d.name, &d);

  auto add = [this](VarInfo info) {
    if (index_.count(info.name)) return;
    index_.emplace(info.name, static_cast<int>(vars_.size()));
    vars_.push_back(std::move(info));
  };

  for (const std::string& p : sp.params) {
    VarInfo info;
    info.name = p;
    info.kind = VarKind::kDummy;
    auto it = decls.find(p);
    if (it != decls.end()) {
      info.intent = it->second->intent;
      info.is_array = it->second->is_array();
      info.line = it->second->line;
      info.decl = it->second;
    } else {
      info.line = sp.line;
    }
    add(std::move(info));
  }

  if (sp.is_function()) {
    VarInfo info;
    info.name = sp.result_name;
    info.kind = VarKind::kResult;
    auto it = decls.find(sp.result_name);
    if (it != decls.end()) {
      info.is_array = it->second->is_array();
      info.line = it->second->line;
      info.decl = it->second;
    } else {
      info.line = sp.line;
    }
    add(std::move(info));
  }

  for (const VarDecl& d : sp.decls) {
    if (index_.count(d.name)) continue;  // dummy or result already added
    VarInfo info;
    info.name = d.name;
    info.kind = VarKind::kLocal;
    info.has_init = d.is_parameter || d.init != nullptr;
    info.is_parameter = d.is_parameter;
    info.is_array = d.is_array();
    info.line = d.line;
    info.decl = &d;
    add(std::move(info));
  }
}

// ---------------------------------------------------------------------------
// Use/def fact extraction.
// ---------------------------------------------------------------------------

namespace {

class FactExtractor {
 public:
  FactExtractor(const VarTable& vars, const DataflowContext& ctx)
      : vars_(vars), ctx_(ctx) {}

  std::size_t calls_resolved() const { return calls_resolved_; }

  StmtFacts extract(const CfgStmt& cs) {
    facts_ = StmtFacts{};
    switch (cs.role) {
      case CfgStmt::Role::kCond:
        read_expr(cs.cond);
        break;
      case CfgStmt::Role::kDoHeader: {
        read_expr(cs.stmt->from.get());
        read_expr(cs.stmt->to.get());
        read_expr(cs.stmt->step.get());
        const int id = vars_.lookup(cs.stmt->do_var);
        if (id >= 0) {
          facts_.def = id;
          facts_.kills = true;
        }
        break;
      }
      case CfgStmt::Role::kSimple:
        if (cs.stmt->kind == StmtKind::kAssign) {
          extract_assign(*cs.stmt);
        } else if (cs.stmt->kind == StmtKind::kCall) {
          extract_call(*cs.stmt);
        }
        break;
    }
    return std::move(facts_);
  }

 private:
  void extract_assign(const Stmt& s) {
    read_expr(s.rhs.get());
    const Expr& lhs = *s.lhs;
    const int id = vars_.lookup(lhs.base_name());
    for (const auto& seg : lhs.segments) {
      for (const auto& a : seg.args) read_expr(a.get());
    }
    if (id < 0) return;  // module-level target: no intraprocedural def
    facts_.def = id;
    facts_.kills = lhs.segments.size() == 1 && !lhs.segments[0].has_args;
    // Element or component stores update part of the variable, so the old
    // value flows through: model as a read too.
    if (!facts_.kills) facts_.uses.push_back({id, &lhs});
  }

  void extract_call(const Stmt& s) {
    extract_call_args(s.callee, s.args, /*function_context=*/false);
  }

  // Shared by `call` statements and function references: walks argument
  // reads, then models the callee's effect on each by-reference argument —
  // through its mod/ref summary when the context resolves one, and with the
  // conservative blanket may-def otherwise.
  void extract_call_args(const std::string& name,
                         const std::vector<lang::ExprPtr>& args,
                         bool function_context) {
    std::optional<CallEffect> eff;
    if (ctx_.call_effects) {
      eff = ctx_.call_effects(name, args.size(), function_context);
      if (eff && eff->args.size() != args.size()) eff.reset();
      if (eff) ++calls_resolved_;
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      const Expr* a = args[i].get();
      const std::size_t first = facts_.uses.size();
      read_expr(a);
      if (a == nullptr || !a->is_ref()) continue;
      const int id = vars_.lookup(a->base_name());
      if (id < 0) continue;  // module-level data: no intraprocedural fact
      if (!eff) {
        facts_.may_defs.push_back(id);
        mark_ref_arg_use_via_call(a, first);
        continue;
      }
      const CallArgEffect& ae = eff->args[i];
      const bool whole = a->segments.size() == 1 && !a->segments[0].has_args;
      if (ae.definitely_writes && whole) {
        facts_.kill_defs.push_back(id);
      } else if (ae.may_write || ae.definitely_writes) {
        facts_.may_defs.push_back(id);
        facts_.summary_may_defs.push_back(id);
      } else {
        facts_.suppressed_defs.push_back(id);
      }
      for (std::size_t u = first; u < facts_.uses.size(); ++u) {
        if (facts_.uses[u].expr != a) continue;
        facts_.uses[u].via_call = true;
        if (ae.observes_incoming) facts_.uses[u].summary_read = true;
        if (!ae.may_read_incoming) facts_.uses[u].summary_ignored = true;
      }
    }
  }

  // Flags the top-level read a by-reference argument contributed (subscript
  // reads inside it stay ordinary uses).
  void mark_ref_arg_use_via_call(const Expr* a, std::size_t first) {
    if (a == nullptr || !a->is_ref()) return;
    for (std::size_t i = first; i < facts_.uses.size(); ++i) {
      if (facts_.uses[i].expr == a) facts_.uses[i].via_call = true;
    }
  }

  void read_expr(const Expr* e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kLogical:
        return;
      case ExprKind::kUnary:
        read_expr(e->rhs.get());
        return;
      case ExprKind::kBinary:
        read_expr(e->lhs.get());
        read_expr(e->rhs.get());
        return;
      case ExprKind::kRef:
        break;
    }

    const std::string& base = e->base_name();
    const int id = vars_.lookup(base);
    if (id >= 0) {
      facts_.uses.push_back({id, e});
      for (const auto& seg : e->segments) {
        for (const auto& a : seg.args) read_expr(a.get());
      }
      return;
    }

    // Base is not a subprogram variable: module data, or a function call.
    if (e->is_call_or_index() && !is_known_module_var(base) &&
        !interp::is_intrinsic_function(base)) {
      // Treat as a call: reference arguments may be written by the callee.
      extract_call_args(base, e->segments[0].args, /*function_context=*/true);
      return;
    }
    for (const auto& seg : e->segments) {
      for (const auto& a : seg.args) read_expr(a.get());
    }
  }

  bool is_known_module_var(const std::string& name) const {
    return ctx_.module_vars != nullptr && ctx_.module_vars->count(name) > 0;
  }

  const VarTable& vars_;
  const DataflowContext& ctx_;
  StmtFacts facts_;
  std::size_t calls_resolved_ = 0;
};

// Dense bit set sized once; subprograms are small, simplicity wins.
using Bits = std::vector<char>;

bool or_into(Bits& dst, const Bits& src) {
  bool changed = false;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (src[i] && !dst[i]) {
      dst[i] = 1;
      changed = true;
    }
  }
  return changed;
}

struct DefSite {
  int var = -1;
  bool uninit = false;
};

void count_decl_uses(const Expr* e, const VarTable& vars,
                     std::vector<int>* use_counts) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kUnary || e->kind == ExprKind::kBinary) {
    count_decl_uses(e->lhs.get(), vars, use_counts);
    count_decl_uses(e->rhs.get(), vars, use_counts);
    return;
  }
  if (e->kind != ExprKind::kRef) return;
  const int id = vars.lookup(e->base_name());
  if (id >= 0) ++(*use_counts)[static_cast<std::size_t>(id)];
  for (const auto& seg : e->segments) {
    for (const auto& a : seg.args) count_decl_uses(a.get(), vars, use_counts);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dataflow driver.
// ---------------------------------------------------------------------------

DataflowResult analyze_dataflow(const Subprogram& sp,
                                const DataflowContext& ctx) {
  DataflowResult r(sp);
  const std::size_t nblocks = r.cfg.size();
  const std::size_t nvars = r.vars.size();
  r.def_counts.assign(nvars, 0);
  r.use_counts.assign(nvars, 0);

  FactExtractor extractor(r.vars, ctx);
  r.facts.resize(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (const CfgStmt& cs : r.cfg.blocks[b].stmts) {
      r.facts[b].push_back(extractor.extract(cs));
    }
  }
  r.calls_resolved = extractor.calls_resolved();
  for (const auto& block_facts : r.facts) {
    for (const StmtFacts& f : block_facts) {
      for (const UseSite& u : f.uses) ++r.use_counts[(std::size_t)u.var];
      if (f.def >= 0) ++r.def_counts[(std::size_t)f.def];
      for (int v : f.may_defs) ++r.def_counts[(std::size_t)v];
      for (int v : f.kill_defs) ++r.def_counts[(std::size_t)v];
    }
  }
  // Extent and initializer expressions in declarations read variables too
  // (`real :: buf(n)` keeps `n` from being reported unused).
  for (const lang::VarDecl& d : sp.decls) {
    for (const auto& dim : d.dims) count_decl_uses(dim.get(), r.vars, &r.use_counts);
    count_decl_uses(d.init.get(), r.vars, &r.use_counts);
  }

  // -------------------------------------------------------------------------
  // Reaching definitions (forward may) over definition sites.
  // -------------------------------------------------------------------------
  std::vector<DefSite> sites;
  std::vector<std::vector<int>> sites_of_var(nvars);
  // Real definition sites, identified by (block, stmt) walk order.
  std::vector<std::vector<std::vector<int>>> stmt_sites(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    stmt_sites[b].resize(r.facts[b].size());
    for (std::size_t i = 0; i < r.facts[b].size(); ++i) {
      const StmtFacts& f = r.facts[b][i];
      for (int v : f.may_defs) {
        const int site = static_cast<int>(sites.size());
        sites.push_back({v, false});
        sites_of_var[(std::size_t)v].push_back(site);
        stmt_sites[b][i].push_back(site);
      }
      for (int v : f.kill_defs) {
        const int site = static_cast<int>(sites.size());
        sites.push_back({v, false});
        sites_of_var[(std::size_t)v].push_back(site);
        stmt_sites[b][i].push_back(site);
      }
      if (f.def >= 0) {
        const int site = static_cast<int>(sites.size());
        sites.push_back({f.def, false});
        sites_of_var[(std::size_t)f.def].push_back(site);
        stmt_sites[b][i].push_back(site);
      }
    }
  }
  // One "uninitialized" pseudo-site per variable with no value at entry.
  std::vector<int> uninit_site(nvars, -1);
  for (std::size_t v = 0; v < nvars; ++v) {
    const VarInfo& info = r.vars.var(static_cast<int>(v));
    const bool starts_undefined =
        (info.kind == VarKind::kLocal && !info.has_init) ||
        info.kind == VarKind::kResult ||
        (info.kind == VarKind::kDummy && info.intent == Intent::kOut);
    if (!starts_undefined) continue;
    uninit_site[v] = static_cast<int>(sites.size());
    sites.push_back({static_cast<int>(v), true});
    sites_of_var[v].push_back(uninit_site[v]);
  }
  const std::size_t nsites = sites.size();

  auto apply_stmt_defs = [&](Bits& cur, std::size_t b, std::size_t i) {
    const StmtFacts& f = r.facts[b][i];
    std::size_t slot = 0;
    for (std::size_t k = 0; k < f.may_defs.size(); ++k) {
      const int v = f.may_defs[k];
      // A by-reference argument never kills prior real definitions, but it
      // does clear the "uninitialized" state: assume the callee initialized
      // it, so `call init(y)` silences use-before-def downstream.
      if (uninit_site[(std::size_t)v] >= 0) {
        cur[(std::size_t)uninit_site[(std::size_t)v]] = 0;
      }
      cur[(std::size_t)stmt_sites[b][i][slot++]] = 1;
    }
    for (std::size_t k = 0; k < f.kill_defs.size(); ++k) {
      // A whole-variable argument the callee assigns on every path kills
      // like an assignment, including the uninitialized pseudo-def.
      const int v = f.kill_defs[k];
      for (int s : sites_of_var[(std::size_t)v]) cur[(std::size_t)s] = 0;
      cur[(std::size_t)stmt_sites[b][i][slot++]] = 1;
    }
    if (f.def >= 0) {
      const int site = stmt_sites[b][i][slot];
      if (f.kills) {
        for (int s : sites_of_var[(std::size_t)f.def]) cur[(std::size_t)s] = 0;
      }
      cur[(std::size_t)site] = 1;
    }
  };

  std::vector<Bits> rd_in(nblocks, Bits(nsites, 0));
  std::vector<Bits> rd_out(nblocks, Bits(nsites, 0));
  for (std::size_t v = 0; v < nvars; ++v) {
    if (uninit_site[v] >= 0) rd_in[(std::size_t)r.cfg.entry][(std::size_t)uninit_site[v]] = 1;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < nblocks; ++b) {
      Bits cur = rd_in[b];
      for (std::size_t i = 0; i < r.facts[b].size(); ++i) apply_stmt_defs(cur, b, i);
      if (cur != rd_out[b]) {
        rd_out[b] = cur;
        changed = true;
      }
      for (int s : r.cfg.blocks[b].succs) {
        if (or_into(rd_in[(std::size_t)s], rd_out[b])) changed = true;
      }
    }
  }

  // Classify each read against the definitions that reach it. Variables
  // whose conservative call-clear was suppressed by a summary stay capped at
  // maybe: interprocedural mode may surface new findings but never upgrades
  // anything to the definite (error) tier the intraprocedural model missed.
  Bits suppressed(nvars, 0);
  for (const auto& block_facts : r.facts) {
    for (const StmtFacts& f : block_facts) {
      for (int v : f.suppressed_defs) suppressed[(std::size_t)v] = 1;
    }
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    Bits cur = rd_in[b];
    for (std::size_t i = 0; i < r.facts[b].size(); ++i) {
      for (const UseSite& u : r.facts[b][i].uses) {
        if (u.via_call && !u.summary_read) continue;
        bool saw_uninit = false;
        bool saw_real = false;
        for (int s : sites_of_var[(std::size_t)u.var]) {
          if (!cur[(std::size_t)s]) continue;
          if (sites[(std::size_t)s].uninit) saw_uninit = true;
          else saw_real = true;
        }
        if (saw_uninit) {
          const bool definite =
              !saw_real && !u.via_call && !suppressed[(std::size_t)u.var];
          r.use_before_def.push_back({u.var, u.expr, definite});
        }
      }
      apply_stmt_defs(cur, b, i);
    }
  }

  // -------------------------------------------------------------------------
  // Liveness (backward may); dead stores fall out of the block-local sweep.
  // -------------------------------------------------------------------------
  Bits exit_live(nvars, 0);
  for (std::size_t v = 0; v < nvars; ++v) {
    const VarInfo& info = r.vars.var(static_cast<int>(v));
    if (info.kind == VarKind::kResult ||
        (info.kind == VarKind::kDummy && info.intent != Intent::kIn)) {
      exit_live[v] = 1;
    }
  }
  std::vector<Bits> live_out(nblocks, Bits(nvars, 0));
  std::vector<Bits> live_in(nblocks, Bits(nvars, 0));
  live_in[(std::size_t)r.cfg.exit] = exit_live;
  live_out[(std::size_t)r.cfg.exit] = exit_live;
  changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = nblocks; bi-- > 0;) {
      if (static_cast<int>(bi) == r.cfg.exit) continue;
      Bits out(nvars, 0);
      for (int s : r.cfg.blocks[bi].succs) or_into(out, live_in[(std::size_t)s]);
      live_out[bi] = out;
      Bits cur = out;
      for (std::size_t i = r.facts[bi].size(); i-- > 0;) {
        const StmtFacts& f = r.facts[bi][i];
        if (f.def >= 0 && f.kills) cur[(std::size_t)f.def] = 0;
        for (int v : f.kill_defs) cur[(std::size_t)v] = 0;
        for (const UseSite& u : f.uses) {
          if (!u.summary_ignored) cur[(std::size_t)u.var] = 1;
        }
      }
      if (cur != live_in[bi]) {
        live_in[bi] = std::move(cur);
        changed = true;
      }
    }
  }

  for (std::size_t b = 0; b < nblocks; ++b) {
    Bits cur = live_out[b];
    for (std::size_t i = r.facts[b].size(); i-- > 0;) {
      const StmtFacts& f = r.facts[b][i];
      const CfgStmt& cs = r.cfg.blocks[b].stmts[i];
      if (cs.role == CfgStmt::Role::kSimple &&
          cs.stmt->kind == StmtKind::kAssign && f.def >= 0 && f.kills &&
          !cur[(std::size_t)f.def]) {
        const VarInfo& info = r.vars.var(f.def);
        // Initialized locals carry Fortran's implicit SAVE, so a store can
        // feed the next call — never classify those as dead.
        if (info.kind == VarKind::kLocal && !info.has_init) {
          r.dead_stores.push_back(cs.stmt);
        }
      }
      if (f.def >= 0 && f.kills) cur[(std::size_t)f.def] = 0;
      for (int v : f.kill_defs) cur[(std::size_t)v] = 0;
      for (const UseSite& u : f.uses) {
        if (!u.summary_ignored) cur[(std::size_t)u.var] = 1;
      }
    }
  }
  std::sort(r.dead_stores.begin(), r.dead_stores.end(),
            [](const Stmt* a, const Stmt* b) {
              return a->line != b->line ? a->line < b->line
                                        : a->column < b->column;
            });
  return r;
}

std::unordered_set<const Stmt*> dead_store_stmts(const Subprogram& sp,
                                                 const DataflowContext& ctx) {
  DataflowResult r = analyze_dataflow(sp, ctx);
  return {r.dead_stores.begin(), r.dead_stores.end()};
}

std::unordered_set<const Stmt*> dead_store_stmts(const lang::Module& m,
                                                 const DataflowContext& ctx) {
  std::unordered_set<const Stmt*> all;
  for (const Subprogram& sp : m.subprograms) {
    for (const Stmt* s : dead_store_stmts(sp, ctx)) all.insert(s);
  }
  return all;
}

}  // namespace rca::analysis
