#include "stats/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.hpp"

namespace rca::stats {

EigenResult symmetric_eigen(const Matrix& input, double tolerance,
                            std::size_t max_sweeps) {
  RCA_CHECK_MSG(input.rows() == input.cols(), "eigen of non-square matrix");
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  auto off_diagonal_norm = [&a, n]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a.at(i, j) * a.at(i, j);
    }
    return std::sqrt(s);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation on rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&a](std::size_t i, std::size_t j) {
    return a.at(i, i) > a.at(j, j);
  });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    result.values[k] = a.at(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors.at(i, k) = v.at(i, order[k]);
    }
  }
  return result;
}

std::vector<double> PcaModel::project(const std::vector<double>& row) const {
  RCA_CHECK_MSG(row.size() == column_mean.size(), "projection width mismatch");
  const std::size_t n = row.size();
  std::vector<double> z(n);
  for (std::size_t j = 0; j < n; ++j) {
    z[j] = (row[j] - column_mean[j]) / column_std[j];
  }
  std::vector<double> scores(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += z[j] * eigen.vectors.at(j, k);
    scores[k] = s;
  }
  return scores;
}

PcaModel fit_pca(const Matrix& data) {
  RCA_CHECK_MSG(data.rows() >= 2, "PCA needs at least two observations");
  const std::size_t n_obs = data.rows();
  const std::size_t n_var = data.cols();

  PcaModel model;
  model.column_mean.resize(n_var);
  model.column_std.resize(n_var);
  Matrix z(n_obs, n_var);
  for (std::size_t j = 0; j < n_var; ++j) {
    std::vector<double> col = data.column(j);
    model.column_mean[j] = mean(col);
    double sd = stddev(col);
    if (sd < 1e-300) sd = 1.0;  // constant column: leave centered only
    model.column_std[j] = sd;
    for (std::size_t i = 0; i < n_obs; ++i) {
      z.at(i, j) = (data.at(i, j) - model.column_mean[j]) / sd;
    }
  }

  Matrix cov(n_var, n_var);
  const double denom = static_cast<double>(n_obs - 1);
  for (std::size_t a = 0; a < n_var; ++a) {
    for (std::size_t b = a; b < n_var; ++b) {
      double s = 0.0;
      for (std::size_t i = 0; i < n_obs; ++i) s += z.at(i, a) * z.at(i, b);
      cov.at(a, b) = s / denom;
      cov.at(b, a) = cov.at(a, b);
    }
  }
  model.eigen = symmetric_eigen(cov);
  return model;
}

}  // namespace rca::stats
