// Principal component analysis via a cyclic Jacobi eigensolver.
//
// The ECT (Baker et al. 2015; Milroy et al. 2018) standardizes each output
// variable's ensemble of global means, computes the PCA of the ensemble, and
// scores new runs in PC space. This is the from-scratch linear-algebra
// substrate backing src/ect.
#pragma once

#include <vector>

#include "stats/matrix.hpp"

namespace rca::stats {

struct EigenResult {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column k of `vectors` is the unit eigenvector for values[k].
  Matrix vectors;
};

/// Eigen decomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Throws StatsError for non-square input; tolerance is on off-diagonal mass.
EigenResult symmetric_eigen(const Matrix& a, double tolerance = 1e-12,
                            std::size_t max_sweeps = 100);

struct PcaModel {
  std::vector<double> column_mean;
  std::vector<double> column_std;   // sample stddev; tiny values floored
  EigenResult eigen;                // of the standardized covariance

  /// Project one observation (raw units) onto all principal components.
  std::vector<double> project(const std::vector<double>& row) const;
};

/// Fits PCA on rows = observations, cols = variables. Standardizes columns
/// first (mean 0, sd 1), then eigendecomposes the covariance.
PcaModel fit_pca(const Matrix& data);

}  // namespace rca::stats
