#include "stats/lasso.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"
#include "stats/descriptive.hpp"

namespace rca::stats {

namespace {

double sigmoid(double t) {
  if (t >= 0.0) {
    const double e = std::exp(-t);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(t);
  return e / (1.0 + e);
}

double soft_threshold(double z, double gamma) {
  if (z > gamma) return z - gamma;
  if (z < -gamma) return z + gamma;
  return 0.0;
}

/// Column-standardized copy of x (constant columns become zeros).
Matrix standardize_columns(const Matrix& x) {
  Matrix z(x.rows(), x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    std::vector<double> col = x.column(j);
    const double mu = mean(col);
    double sd = stddev(col);
    if (sd < 1e-300) sd = 1.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      z.at(i, j) = (x.at(i, j) - mu) / sd;
    }
  }
  return z;
}

}  // namespace

std::size_t LassoModel::nonzero_count(double tol) const {
  std::size_t n = 0;
  for (double w : weights) {
    if (std::abs(w) > tol) ++n;
  }
  return n;
}

LassoModel lasso_logistic(const Matrix& x, const std::vector<int>& y,
                          const LassoOptions& opts) {
  RCA_CHECK_MSG(x.rows() == y.size(), "label count mismatch");
  RCA_CHECK_MSG(x.rows() >= 2, "lasso needs at least two observations");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const Matrix z = opts.standardize ? standardize_columns(x) : x;

  LassoModel model;
  model.weights.assign(p, 0.0);

  // Linear predictor eta_i maintained incrementally.
  std::vector<double> eta(n, 0.0);
  // Hessian upper bound per coordinate: H_jj = (1/4n) * sum x_ij^2.
  std::vector<double> hjj(p, 0.0);
  for (std::size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += z.at(i, j) * z.at(i, j);
    hjj[j] = s / (4.0 * static_cast<double>(n));
    if (hjj[j] < 1e-12) hjj[j] = 1e-12;
  }

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    ++model.iterations;
    double max_delta = 0.0;

    // Intercept (unpenalized) via the same bounded-Hessian step.
    {
      double grad = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        grad += static_cast<double>(y[i]) - sigmoid(eta[i]);
      }
      grad /= static_cast<double>(n);
      const double delta = grad / 0.25;
      model.intercept += delta;
      for (double& e : eta) e += delta;
      max_delta = std::max(max_delta, std::abs(delta));
    }

    for (std::size_t j = 0; j < p; ++j) {
      double grad = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        grad += z.at(i, j) * (static_cast<double>(y[i]) - sigmoid(eta[i]));
      }
      grad /= static_cast<double>(n);
      const double w_old = model.weights[j];
      const double w_new =
          soft_threshold(w_old * hjj[j] + grad, opts.lambda) / hjj[j];
      const double delta = w_new - w_old;
      if (delta != 0.0) {
        model.weights[j] = w_new;
        for (std::size_t i = 0; i < n; ++i) eta[i] += delta * z.at(i, j);
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < opts.tolerance) break;
  }
  obs::count("stats.lasso.fits");
  obs::count("stats.lasso.iterations", model.iterations);
  obs::observe("stats.lasso.iterations_per_fit",
               static_cast<double>(model.iterations));
  return model;
}

double lasso_lambda_max(const Matrix& x, const std::vector<int>& y) {
  const std::size_t n = x.rows();
  const Matrix z = standardize_columns(x);
  const double ybar =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double lam = 0.0;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double g = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      g += z.at(i, j) * (static_cast<double>(y[i]) - ybar);
    }
    lam = std::max(lam, std::abs(g) / static_cast<double>(n));
  }
  return lam;
}

std::vector<std::size_t> select_variables(const Matrix& x,
                                          const std::vector<int>& y,
                                          std::size_t target_count,
                                          std::size_t max_bisections,
                                          bool standardize) {
  const Matrix& zx = x;
  const double lam_max =
      standardize ? lasso_lambda_max(zx, y) : [&] {
        // lambda_max without re-standardization.
        const std::size_t n = zx.rows();
        const double ybar =
            std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
        double lam = 0.0;
        for (std::size_t j = 0; j < zx.cols(); ++j) {
          double g = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            g += zx.at(i, j) * (static_cast<double>(y[i]) - ybar);
          }
          lam = std::max(lam, std::abs(g) / static_cast<double>(n));
        }
        return lam;
      }();
  double lo = lam_max * 1e-4;  // dense end
  double hi = lam_max;         // empty end

  LassoOptions opts;
  opts.standardize = standardize;
  LassoModel best;
  std::size_t best_gap = static_cast<std::size_t>(-1);

  for (std::size_t it = 0; it < max_bisections; ++it) {
    obs::count("stats.lasso.bisections");
    const double lam = std::sqrt(lo * hi);  // geometric bisection
    opts.lambda = lam;
    LassoModel model = lasso_logistic(x, y, opts);
    const std::size_t k = model.nonzero_count();
    const std::size_t gap = k > target_count ? k - target_count
                                             : target_count - k;
    if (gap < best_gap || (gap == best_gap && k >= target_count)) {
      best_gap = gap;
      best = model;
    }
    if (k == target_count) break;
    if (k > target_count) {
      lo = lam;  // too dense: increase penalty
    } else {
      hi = lam;  // too sparse: decrease penalty
    }
  }

  std::vector<std::size_t> selected;
  for (std::size_t j = 0; j < best.weights.size(); ++j) {
    if (std::abs(best.weights[j]) > 1e-9) selected.push_back(j);
  }
  std::sort(selected.begin(), selected.end(),
            [&best](std::size_t a, std::size_t b) {
              const double wa = std::abs(best.weights[a]);
              const double wb = std::abs(best.weights[b]);
              if (wa != wb) return wa > wb;
              return a < b;
            });
  return selected;
}

}  // namespace rca::stats
