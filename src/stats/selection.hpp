// Affected-output-variable selection (paper §3).
//
// Method 1 — median distance: standardize each variable by its ensemble mean
// and standard deviation, keep variables whose ensemble and experimental
// interquartile ranges do not overlap, rank by distance between standardized
// medians (descending).
//
// Method 2 — lasso: logistic regression with an L1 penalty classifying
// ensemble vs experimental runs, with lambda tuned to select about
// `target_count` variables.
#pragma once

#include <string>
#include <vector>

#include "stats/matrix.hpp"

namespace rca::stats {

struct RankedVariable {
  std::string name;
  double median_distance = 0.0;  // |median_exp - median_ens|, standardized
  bool iqr_disjoint = false;     // ensemble vs experimental IQRs disjoint
};

/// Rows = runs, cols = variables (same order/names in both matrices).
/// Returns every variable ranked by descending median distance; the
/// IQR-disjoint flag marks the paper's screening condition.
std::vector<RankedVariable> median_distance_ranking(
    const Matrix& ensemble, const Matrix& experimental,
    const std::vector<std::string>& names);

/// The paper's recommended first check: direct normalized value comparison
/// between a single ensemble member and a single experimental run. Returns
/// variable names whose relative difference exceeds `rel_tol`. When (nearly)
/// all variables differ, fall back to the distribution-based methods.
std::vector<std::string> direct_difference(
    const std::vector<double>& ensemble_run,
    const std::vector<double>& experimental_run,
    const std::vector<std::string>& names, double rel_tol = 1e-12);

/// Lasso selection (method 2): returns ~target_count variable names ordered
/// by |coefficient|.
std::vector<std::string> lasso_selection(const Matrix& ensemble,
                                         const Matrix& experimental,
                                         const std::vector<std::string>& names,
                                         std::size_t target_count = 5);

}  // namespace rca::stats
