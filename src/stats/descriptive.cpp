#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace rca::stats {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mu = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - mu) * (x - mu);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double quantile(std::vector<double> v, double q) {
  RCA_CHECK_MSG(!v.empty(), "quantile of empty sample");
  RCA_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double median(const std::vector<double>& v) { return quantile(v, 0.5); }

Iqr interquartile_range(const std::vector<double>& v) {
  Iqr iqr;
  iqr.q1 = quantile(v, 0.25);
  iqr.q3 = quantile(v, 0.75);
  return iqr;
}

std::vector<double> standardize(const std::vector<double>& v, double mu,
                                double sigma) {
  std::vector<double> out(v.size());
  const double scale = sigma > 0.0 ? 1.0 / sigma : 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mu) * scale;
  return out;
}

}  // namespace rca::stats
