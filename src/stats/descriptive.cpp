#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace rca::stats {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mu = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - mu) * (x - mu);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double quantile(std::vector<double> v, double q) {
  RCA_CHECK_MSG(!v.empty(), "quantile of empty sample");
  RCA_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double median(const std::vector<double>& v) { return quantile(v, 0.5); }

Iqr interquartile_range(const std::vector<double>& v) {
  Iqr iqr;
  iqr.q1 = quantile(v, 0.25);
  iqr.q3 = quantile(v, 0.75);
  return iqr;
}

std::vector<double> standardize(const std::vector<double>& v, double mu,
                                double sigma) {
  std::vector<double> out(v.size());
  const double scale = sigma > 0.0 ? 1.0 / sigma : 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mu) * scale;
  return out;
}

std::vector<double> fractional_ranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&v](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Positions i..j (0-based) hold the tie group; each member gets the
    // average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                       + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  RCA_CHECK_MSG(a.size() == b.size(), "spearman: length mismatch");
  if (a.size() < 2) return 0.0;
  const std::vector<double> ra = fractional_ranks(a);
  const std::vector<double> rb = fractional_ranks(b);
  const double ma = mean(ra), mb = mean(rb);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace rca::stats
