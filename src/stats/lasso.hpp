// L1-penalized (lasso) logistic regression by cyclic coordinate descent.
//
// The paper's second variable-selection method (§3) classifies ensemble vs
// experimental runs with lasso logistic regression and tunes the
// regularization to select ~5 variables. `select_variables` reproduces that
// tuning with a bisection on lambda.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.hpp"

namespace rca::stats {

struct LassoModel {
  double intercept = 0.0;
  std::vector<double> weights;  // per standardized feature
  std::size_t iterations = 0;

  std::size_t nonzero_count(double tol = 1e-9) const;
};

struct LassoOptions {
  double lambda = 0.1;
  std::size_t max_iterations = 500;
  double tolerance = 1e-7;
  /// When false, features are used as given (callers that already
  /// standardized — e.g. by ensemble statistics — keep their scaling, so
  /// strongly shifted variables keep large gradients and win selection).
  bool standardize = true;
};

/// Fits P(y=1 | x) = sigmoid(b0 + x·w) with an L1 penalty on w. Features are
/// standardized internally; returned weights are in standardized units
/// (sufficient for selection — only the support matters).
LassoModel lasso_logistic(const Matrix& x, const std::vector<int>& y,
                          const LassoOptions& opts);

/// Smallest lambda with an all-zero solution (the glmnet lambda_max).
double lasso_lambda_max(const Matrix& x, const std::vector<int>& y);

/// Tunes lambda by bisection so about `target_count` features are selected,
/// and returns the selected feature indices ordered by |weight| descending.
/// May return slightly more or fewer than requested when no lambda hits the
/// target exactly (the paper's GOFFGRATCH case selects 10 instead of 5).
std::vector<std::size_t> select_variables(const Matrix& x,
                                          const std::vector<int>& y,
                                          std::size_t target_count,
                                          std::size_t max_bisections = 30,
                                          bool standardize = true);

}  // namespace rca::stats
