// Minimal dense row-major matrix for the statistics substrate.
#pragma once

#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace rca::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Column c as a vector (copy).
  std::vector<double> column(std::size_t c) const {
    RCA_CHECK_MSG(c < cols_, "column index out of range");
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
    return out;
  }

  /// Row r as a vector (copy).
  std::vector<double> row(std::size_t r) const {
    RCA_CHECK_MSG(r < rows_, "row index out of range");
    return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                               data_.begin() +
                                   static_cast<long>((r + 1) * cols_));
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rca::stats
