#include "stats/selection.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/lasso.hpp"

namespace rca::stats {

std::vector<RankedVariable> median_distance_ranking(
    const Matrix& ensemble, const Matrix& experimental,
    const std::vector<std::string>& names) {
  RCA_CHECK_MSG(ensemble.cols() == experimental.cols(),
                "variable count mismatch");
  RCA_CHECK_MSG(names.size() == ensemble.cols(), "name count mismatch");

  std::vector<RankedVariable> ranked;
  ranked.reserve(names.size());
  for (std::size_t j = 0; j < names.size(); ++j) {
    const std::vector<double> ens_raw = ensemble.column(j);
    const std::vector<double> exp_raw = experimental.column(j);
    const double mu = mean(ens_raw);
    const double sd = stddev(ens_raw);
    const std::vector<double> ens = standardize(ens_raw, mu, sd);
    const std::vector<double> exp = standardize(exp_raw, mu, sd);

    RankedVariable rv;
    rv.name = names[j];
    rv.median_distance = std::abs(median(exp) - median(ens));
    rv.iqr_disjoint =
        !interquartile_range(ens).overlaps(interquartile_range(exp));
    ranked.push_back(std::move(rv));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedVariable& a, const RankedVariable& b) {
              // IQR-disjoint variables first, then by distance.
              if (a.iqr_disjoint != b.iqr_disjoint) return a.iqr_disjoint;
              if (a.median_distance != b.median_distance) {
                return a.median_distance > b.median_distance;
              }
              return a.name < b.name;
            });
  return ranked;
}

std::vector<std::string> direct_difference(
    const std::vector<double>& ensemble_run,
    const std::vector<double>& experimental_run,
    const std::vector<std::string>& names, double rel_tol) {
  RCA_CHECK_MSG(ensemble_run.size() == experimental_run.size() &&
                    names.size() == ensemble_run.size(),
                "size mismatch");
  std::vector<std::string> differing;
  for (std::size_t j = 0; j < names.size(); ++j) {
    const double a = ensemble_run[j];
    const double b = experimental_run[j];
    const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
    if (std::abs(a - b) / scale > rel_tol) differing.push_back(names[j]);
  }
  return differing;
}

std::vector<std::string> lasso_selection(const Matrix& ensemble,
                                         const Matrix& experimental,
                                         const std::vector<std::string>& names,
                                         std::size_t target_count) {
  RCA_CHECK_MSG(ensemble.cols() == experimental.cols(),
                "variable count mismatch");
  const std::size_t n = ensemble.rows() + experimental.rows();
  const std::size_t p = ensemble.cols();
  // Standardize by the *ensemble* statistics (as the paper's §3 methods do)
  // so strongly affected variables keep large magnitudes and dominate the
  // selection; winsorize to keep the optimizer numerically sane when a bug
  // shifts a variable by 1e14 ensemble standard deviations.
  Matrix x(n, p);
  std::vector<int> y(n, 0);
  for (std::size_t j = 0; j < p; ++j) {
    const std::vector<double> col = ensemble.column(j);
    const double mu = mean(col);
    double sd = stddev(col);
    if (sd < 1e-300) sd = 1.0;
    auto put = [&x, mu, sd, j](std::size_t row, double value) {
      double z = (value - mu) / sd;
      // Log-compress extreme shifts: a bug can move a variable by 1e14
      // ensemble sd; compression keeps the optimizer stable while
      // preserving the cross-variable ordering the selection relies on.
      z = (z >= 0.0 ? 1.0 : -1.0) * std::log1p(std::abs(z));
      x.at(row, j) = z;
    };
    for (std::size_t i = 0; i < ensemble.rows(); ++i) {
      put(i, ensemble.at(i, j));
    }
    for (std::size_t i = 0; i < experimental.rows(); ++i) {
      put(ensemble.rows() + i, experimental.at(i, j));
    }
  }
  for (std::size_t i = 0; i < experimental.rows(); ++i) {
    y[ensemble.rows() + i] = 1;
  }
  const std::vector<std::size_t> idx =
      select_variables(x, y, target_count, 30, /*standardize=*/false);
  std::vector<std::string> selected;
  selected.reserve(idx.size());
  for (std::size_t j : idx) selected.push_back(names[j]);
  return selected;
}

}  // namespace rca::stats
