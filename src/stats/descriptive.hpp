// Descriptive statistics used by variable selection and the ECT.
#pragma once

#include <vector>

namespace rca::stats {

double mean(const std::vector<double>& v);
/// Sample variance (n-1 denominator); 0 for fewer than 2 points.
double variance(const std::vector<double>& v);
double stddev(const std::vector<double>& v);

/// Linear-interpolated quantile, q in [0,1] (type-7, the NumPy default).
double quantile(std::vector<double> v, double q);
double median(const std::vector<double>& v);

struct Iqr {
  double q1 = 0.0;
  double q3 = 0.0;
  double width() const { return q3 - q1; }
  /// True when [q1,q3] overlaps the other range.
  bool overlaps(const Iqr& other) const {
    return q1 <= other.q3 && other.q1 <= q3;
  }
};

Iqr interquartile_range(const std::vector<double>& v);

/// (v - mu) / sigma elementwise; sigma <= 0 leaves centered values unscaled.
std::vector<double> standardize(const std::vector<double>& v, double mu,
                                double sigma);

/// Fractional ranks (1-based, ties get the average of their positions) —
/// the rank transform behind Spearman correlation.
std::vector<double> fractional_ranks(const std::vector<double>& v);

/// Spearman rank correlation of two equal-length samples; 0 when either
/// side is constant or the samples are shorter than 2. Used to validate
/// sampled betweenness against the exact values (rank agreement is what
/// Girvan–Newman consumes, not magnitudes).
double spearman(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace rca::stats
