// Ensemble consistency test (CESM-ECT / UF-CAM-ECT replica).
//
// Reimplements the published test (Baker et al. 2015, GMD; Milroy et al.
// 2018, GMD — pyCECT) on our scale: per-variable global means from an
// ensemble of perturbed-initial-condition runs are standardized, a PCA is
// fit, and an experimental *set* of runs is scored in PC space. A principal
// component "fails" for a run when its score leaves the ensemble's score
// band; the overall verdict fails when at least `min_failing_pcs` PCs fail
// in a majority of the experimental runs — the pyCECT "2 of 3 runs, 3 PCs"
// rule, with thresholds configurable for our smaller ensembles.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "stats/matrix.hpp"
#include "stats/pca.hpp"

namespace rca::ect {

struct EctOptions {
  /// Number of leading principal components scored. 0 = min(vars, members-1).
  std::size_t num_pcs = 0;
  /// A PC fails for a run when |score - ensemble_mean_score| exceeds
  /// sigma_multiplier * ensemble score sd for that PC.
  double sigma_multiplier = 3.29;  // two-sided ~0.1% under normality
  /// Verdict fails when >= this many PCs fail in a majority of runs.
  std::size_t min_failing_pcs = 3;
};

struct RunScore {
  std::vector<double> pc_scores;
  std::vector<std::size_t> failing_pcs;
};

struct Verdict {
  bool pass = true;
  /// PCs that failed in a majority of the experimental runs.
  std::vector<std::size_t> failing_pcs;
  std::vector<RunScore> runs;
};

class EnsembleConsistencyTest {
 public:
  /// `ensemble`: rows = members, cols = variables (global means at the
  /// evaluation time step — step 9 for the "ultra-fast" variant).
  EnsembleConsistencyTest(stats::Matrix ensemble,
                          std::vector<std::string> variable_names,
                          const EctOptions& opts = {});

  /// Score one run's global means against the ensemble.
  RunScore score_run(const std::vector<double>& run_means) const;

  /// Verdict over an experimental set (pyCECT evaluates 3 runs).
  Verdict evaluate(const std::vector<std::vector<double>>& runs) const;

  const std::vector<std::string>& variable_names() const { return names_; }
  const stats::Matrix& ensemble() const { return ensemble_; }
  std::size_t num_pcs() const { return num_pcs_; }
  const stats::PcaModel& pca() const { return pca_; }

 private:
  stats::Matrix ensemble_;
  std::vector<std::string> names_;
  EctOptions opts_;
  stats::PcaModel pca_;
  std::size_t num_pcs_ = 0;
  std::vector<double> score_mean_;  // ensemble PC-score mean per PC
  std::vector<double> score_sd_;    // ensemble PC-score sd per PC (floored)
};

/// Failure rate of `trials` experimental sets produced by `make_runs(trial)`
/// (each call returns one experimental set). Used for Table 1.
double failure_rate(
    const EnsembleConsistencyTest& ect, std::size_t trials,
    const std::function<std::vector<std::vector<double>>(std::size_t)>&
        make_runs);

}  // namespace rca::ect
