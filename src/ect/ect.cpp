#include "ect/ect.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "stats/descriptive.hpp"
#include "support/error.hpp"

namespace rca::ect {

EnsembleConsistencyTest::EnsembleConsistencyTest(
    stats::Matrix ensemble, std::vector<std::string> variable_names,
    const EctOptions& opts)
    : ensemble_(std::move(ensemble)),
      names_(std::move(variable_names)),
      opts_(opts) {
  RCA_CHECK_MSG(ensemble_.cols() == names_.size(), "variable name mismatch");
  RCA_CHECK_MSG(ensemble_.rows() >= 3, "ensemble too small for the ECT");

  pca_ = stats::fit_pca(ensemble_);
  const std::size_t max_pcs =
      std::min(ensemble_.cols(), ensemble_.rows() - 1);
  num_pcs_ = opts_.num_pcs == 0 ? max_pcs : std::min(opts_.num_pcs, max_pcs);

  // Ensemble score distribution per retained PC.
  score_mean_.assign(num_pcs_, 0.0);
  score_sd_.assign(num_pcs_, 0.0);
  std::vector<std::vector<double>> scores(num_pcs_);
  for (std::size_t i = 0; i < ensemble_.rows(); ++i) {
    const std::vector<double> s = pca_.project(ensemble_.row(i));
    for (std::size_t k = 0; k < num_pcs_; ++k) scores[k].push_back(s[k]);
  }
  for (std::size_t k = 0; k < num_pcs_; ++k) {
    score_mean_[k] = stats::mean(scores[k]);
    double sd = stats::stddev(scores[k]);
    // Floor tiny PC spreads: a degenerate ensemble direction must not turn
    // rounding noise into failures.
    const double floor = 1e-12 * std::max(1.0, std::abs(score_mean_[k]));
    score_sd_[k] = std::max(sd, floor);
  }
}

RunScore EnsembleConsistencyTest::score_run(
    const std::vector<double>& run_means) const {
  RCA_CHECK_MSG(run_means.size() == names_.size(), "run width mismatch");
  RunScore rs;
  rs.pc_scores = pca_.project(run_means);
  rs.pc_scores.resize(num_pcs_);
  for (std::size_t k = 0; k < num_pcs_; ++k) {
    const double z =
        std::abs(rs.pc_scores[k] - score_mean_[k]) / score_sd_[k];
    if (z > opts_.sigma_multiplier) rs.failing_pcs.push_back(k);
  }
  return rs;
}

Verdict EnsembleConsistencyTest::evaluate(
    const std::vector<std::vector<double>>& runs) const {
  RCA_CHECK_MSG(!runs.empty(), "empty experimental set");
  Verdict verdict;
  std::vector<std::size_t> fail_counts(num_pcs_, 0);
  for (const auto& run : runs) {
    RunScore rs = score_run(run);
    for (std::size_t pc : rs.failing_pcs) ++fail_counts[pc];
    verdict.runs.push_back(std::move(rs));
  }
  const std::size_t majority = runs.size() / 2 + 1;
  for (std::size_t k = 0; k < num_pcs_; ++k) {
    if (fail_counts[k] >= majority) verdict.failing_pcs.push_back(k);
  }
  verdict.pass = verdict.failing_pcs.size() < opts_.min_failing_pcs;
  obs::count("ect.evaluations");
  obs::count("ect.pc_failures", verdict.failing_pcs.size());
  std::size_t run_pc_failures = 0;
  for (const RunScore& rs : verdict.runs) run_pc_failures += rs.failing_pcs.size();
  obs::count("ect.run_pc_failures", run_pc_failures);
  if (!verdict.pass) obs::count("ect.fail_verdicts");
  return verdict;
}

double failure_rate(
    const EnsembleConsistencyTest& ect, std::size_t trials,
    const std::function<std::vector<std::vector<double>>(std::size_t)>&
        make_runs) {
  RCA_CHECK_MSG(trials > 0, "need at least one trial");
  std::size_t failures = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    if (!ect.evaluate(make_runs(t)).pass) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

}  // namespace rca::ect
