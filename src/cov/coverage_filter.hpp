// Coverage-based corpus filtering (paper §4.1): the Intel-codecov substitute.
//
// A short instrumented run (the paper uses the first two model time steps)
// records which modules and subprograms execute; everything else is excluded
// from parsing/graph construction. This is the "hybrid" in hybrid slicing —
// dynamic information refining the static analysis. The paper reports ~30%
// of modules and ~60% of subprograms removed this way.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "lang/ast.hpp"

namespace rca::cov {

class CoverageFilter {
 public:
  /// Keep-everything filter.
  CoverageFilter() = default;

  /// Filter from a recorded run (copied: the filter owns its coverage data,
  /// so temporaries are safe). `modules` (optional) lets the filter keep
  /// declaration-only modules: a module with no subprograms can never
  /// register execution, yet its parameters and variables are live (the
  /// paper's codecov equally cannot prune pure-declaration modules).
  explicit CoverageFilter(interp::CoverageRecorder recorder,
                          const std::vector<const lang::Module*>* modules =
                              nullptr);

  bool keep_module(const std::string& module) const;
  bool keep_subprogram(const std::string& module,
                       const std::string& subprogram) const;

  /// Adapters for meta::BuilderOptions.
  std::function<bool(const std::string&)> module_predicate() const;
  std::function<bool(const std::string&, const std::string&)>
  subprogram_predicate() const;

 private:
  bool keep_all_ = true;
  interp::CoverageRecorder recorder_;
  std::vector<std::string> declaration_only_;
};

/// Reduction statistics for the pipeline report (paper §2.1 and §4.1).
struct FilterStats {
  std::size_t modules_total = 0;
  std::size_t modules_kept = 0;
  std::size_t subprograms_total = 0;
  std::size_t subprograms_kept = 0;
  std::size_t lines_total = 0;  // source lines spanned by module bodies
  std::size_t lines_kept = 0;   // lines in kept modules minus dropped subs

  double module_reduction() const;
  double subprogram_reduction() const;
};

FilterStats compute_filter_stats(
    const std::vector<const lang::Module*>& modules,
    const CoverageFilter& filter);

}  // namespace rca::cov
