#include "cov/coverage_filter.hpp"

namespace rca::cov {

CoverageFilter::CoverageFilter(
    interp::CoverageRecorder recorder,
    const std::vector<const lang::Module*>* modules)
    : keep_all_(false), recorder_(std::move(recorder)) {
  if (modules) {
    for (const lang::Module* m : *modules) {
      if (m->subprograms.empty()) declaration_only_.push_back(m->name);
    }
  }
}

bool CoverageFilter::keep_module(const std::string& module) const {
  if (keep_all_) return true;
  if (recorder_.module_executed(module)) return true;
  for (const auto& name : declaration_only_) {
    if (name == module) return true;
  }
  return false;
}

bool CoverageFilter::keep_subprogram(const std::string& module,
                                     const std::string& subprogram) const {
  if (keep_all_) return true;
  return recorder_.subprogram_executed(module, subprogram);
}

std::function<bool(const std::string&)> CoverageFilter::module_predicate()
    const {
  return [this](const std::string& m) { return keep_module(m); };
}

std::function<bool(const std::string&, const std::string&)>
CoverageFilter::subprogram_predicate() const {
  return [this](const std::string& m, const std::string& s) {
    return keep_subprogram(m, s);
  };
}

double FilterStats::module_reduction() const {
  if (modules_total == 0) return 0.0;
  return 1.0 - static_cast<double>(modules_kept) /
                   static_cast<double>(modules_total);
}

double FilterStats::subprogram_reduction() const {
  if (subprograms_total == 0) return 0.0;
  return 1.0 - static_cast<double>(subprograms_kept) /
                   static_cast<double>(subprograms_total);
}

FilterStats compute_filter_stats(
    const std::vector<const lang::Module*>& modules,
    const CoverageFilter& filter) {
  FilterStats stats;
  for (const lang::Module* m : modules) {
    ++stats.modules_total;
    const std::size_t module_lines =
        m->end_line > m->line
            ? static_cast<std::size_t>(m->end_line - m->line + 1)
            : 1;
    stats.lines_total += module_lines;
    const bool keep_mod = filter.keep_module(m->name);
    if (keep_mod) ++stats.modules_kept;
    std::size_t dropped_sub_lines = 0;
    for (const auto& sp : m->subprograms) {
      ++stats.subprograms_total;
      const std::size_t sub_lines =
          sp.end_line > sp.line
              ? static_cast<std::size_t>(sp.end_line - sp.line + 1)
              : 1;
      if (keep_mod && filter.keep_subprogram(m->name, sp.name)) {
        ++stats.subprograms_kept;
      } else {
        dropped_sub_lines += sub_lines;
      }
    }
    if (keep_mod) {
      stats.lines_kept += module_lines > dropped_sub_lines
                              ? module_lines - dropped_sub_lines
                              : 0;
    }
  }
  return stats;
}

}  // namespace rca::cov
