// Corpus assembly: hand-written CAM core + generated aux modules + driver.
#include "model/corpus.hpp"

#include "model/corpus_internal.hpp"
#include "support/strings.hpp"

namespace rca::model {

bool is_cam_module(const std::string& module_name) {
  // Non-CAM: the land component, land-side aux modules, and shared
  // infrastructure ("csm_share" in CESM terms).
  if (module_name == "lnd_soil") return false;
  if (starts_with(module_name, "aux_lnd_")) return false;
  if (starts_with(module_name, "shr_")) return false;
  if (starts_with(module_name, "ocn_")) return false;
  return true;
}

GeneratedCorpus generate_corpus(const CorpusSpec& spec) {
  GeneratedCorpus corpus;

  auto add = [&corpus](std::string path, std::string text, bool compiled,
                       std::size_t module_count = 1) {
    corpus.files.push_back(GeneratedFile{std::move(path), std::move(text)});
    corpus.total_modules += module_count;
    (void)compiled;
  };

  // Core modules (all compiled).
  struct CoreEntry {
    const char* path;
    std::string text;
    const char* module;
  };
  const CoreEntry core[] = {
      {"share/shr_kind_mod.F90", core_shr_kind(spec), "shr_kind_mod"},
      {"atm/phys_state_mod.F90", core_phys_state(), "phys_state_mod"},
      {"atm/dyn_hydro.F90", core_dyn_hydro(spec), "dyn_hydro"},
      {"atm/dyn_core.F90", core_dyn_core(spec), "dyn_core"},
      {"atm/wv_saturation.F90", core_wv_saturation(spec), "wv_saturation"},
      {"atm/aerosol_intr.F90", core_aerosol_intr(), "aerosol_intr"},
      {"atm/micro_mg.F90", core_micro_mg(), "micro_mg"},
      {"atm/cam_physics.F90", core_cam_physics(), "cam_physics"},
      {"atm/cloud_cover.F90", core_cloud_cover(), "cloud_cover"},
      {"atm/cloud_lw.F90", core_cloud_lw(), "cloud_lw"},
      {"atm/cloud_sw.F90", core_cloud_sw(), "cloud_sw"},
      {"atm/precip_diag.F90", core_precip_diag(), "precip_diag"},
      {"lnd/lnd_soil.F90", core_lnd(spec), "lnd_soil"},
      {"ocn/ocn_pop.F90", core_ocn(), "ocn_pop"},
      {"atm/microp_aero.F90", core_microp_aero(spec), "microp_aero"},
      {"atm/camsrf.F90", core_camsrf(), "camsrf"},
      {"atm/cam_history.F90", core_cam_history(), "cam_history"},
  };
  for (const auto& entry : core) {
    add(entry.path, entry.text, true);
    corpus.compiled_modules.push_back(entry.module);
  }

  // Aux modules.
  std::vector<AuxModule> aux = generate_aux_modules(spec);
  std::string pre_uses, pre_calls, post_uses, post_calls;
  for (const AuxModule& m : aux) {
    const char* dir = m.land_side ? "lnd" : "atm";
    add(strfmt("%s/%s.F90", dir, m.name.c_str()), m.text, m.compiled);
    if (m.compiled) corpus.compiled_modules.push_back(m.name);
    if (m.executed) {
      std::string use_line =
          strfmt("  use %s, only: %s_main\n", m.name.c_str(), m.name.c_str());
      std::string call_line = strfmt("    call %s_main()\n", m.name.c_str());
      if (m.upstream) {
        pre_uses += use_line;
        pre_calls += call_line;
      } else {
        post_uses += use_line;
        post_calls += call_line;
      }
    }
  }

  // Driver (compiled).
  add("drv/cam_driver.F90",
      core_cam_driver(pre_uses, pre_calls, post_uses, post_calls), true);
  corpus.compiled_modules.push_back("cam_driver");

  return corpus;
}

CorpusSpec cesm_scale_spec() {
  CorpusSpec spec;
  // Paper §4: CESM ~2400 modules total, ~820 after the KGen build-config
  // reduction. 18 modules are hand-written (core + driver), the rest are
  // generated aux modules; executed keeps the default spec's ~70% of
  // compiled, the codecov share.
  spec.total_aux_modules = 2382;
  spec.compiled_aux_modules = 802;
  spec.executed_aux_modules = 560;
  return spec;
}

}  // namespace rca::model
