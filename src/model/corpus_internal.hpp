// Internal interfaces between the corpus generator translation units.
#pragma once

#include <string>
#include <vector>

#include "model/corpus.hpp"

namespace rca::model {

// corpus_core.cpp — hand-written CAM core module sources.
std::string core_shr_kind(const CorpusSpec& spec);
std::string core_phys_state();
std::string core_dyn_hydro(const CorpusSpec& spec);
std::string core_dyn_core(const CorpusSpec& spec);
std::string core_wv_saturation(const CorpusSpec& spec);
std::string core_aerosol_intr();
std::string core_micro_mg();
std::string core_cam_physics();
std::string core_cloud_cover();
std::string core_cloud_lw();
std::string core_cloud_sw();
std::string core_precip_diag();
std::string core_lnd(const CorpusSpec& spec);
std::string core_ocn();
std::string core_microp_aero(const CorpusSpec& spec);
std::string core_camsrf();
std::string core_cam_history();
std::string core_cam_driver(const std::string& aux_pre_uses,
                            const std::string& aux_pre_calls,
                            const std::string& aux_post_uses,
                            const std::string& aux_post_calls);

// corpus_filler.cpp — generated auxiliary modules.
struct AuxModule {
  std::string name;
  std::string text;
  bool compiled = false;
  bool executed = false;
  bool upstream = false;   // feeds aerosol_intr (enters CAM-core slices)
  bool land_side = false;  // depends on the land component (non-CAM)
};

std::vector<AuxModule> generate_aux_modules(const CorpusSpec& spec);

}  // namespace rca::model
