// CesmModel: parse the generated corpus once, run it many times.
//
// A "run" is the UF-CAM-ECT workload: initialize, apply an O(1e-14)
// initial-condition perturbation keyed by the ensemble-member seed, advance
// nine time steps, and read each history field's final global mean. Ensemble
// members differ only by perturbation seed; experiments additionally change
// the PRNG kind (RAND-MT), per-module FMA contraction (AVX2), or run a
// corpus generated with an injected source bug.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.hpp"
#include "lang/ast.hpp"
#include "model/corpus.hpp"
#include "stats/matrix.hpp"

namespace rca {
class ThreadPool;
}

namespace rca::model {

struct RunConfig {
  /// Ensemble-member identity: seeds the initial-condition perturbation.
  std::uint64_t member_seed = 1;
  /// Relative initial-condition perturbation magnitude (CESM uses O(1e-14)).
  double perturbation = 1e-14;
  /// Model time steps (UF-CAM-ECT evaluates at step nine).
  int timesteps = 9;
  /// PRNG backing shr_rand_uniform: "kiss" (default) or "mt19937" (RAND-MT).
  std::string prng_kind = "kiss";
  /// PRNG seed — fixed across members, like CESM's deterministic kissvec
  /// seeding; ensemble spread comes from the IC perturbation only.
  std::uint64_t prng_seed = 777;
  /// Enable FMA contraction in every module (AVX2 experiment)...
  bool fma_all = false;
  /// ...except these (Table 1's selective disablement rows).
  std::vector<std::string> fma_disabled_modules;
  /// Reassociate every >=3-term +/- chain right-to-left (the -Ofast-style
  /// perturbation behind the reassociation scenario).
  bool reassoc_all = false;
  /// Runtime sampling sites (Algorithm 5.4 step 7).
  std::vector<interp::WatchKey> watches;
};

struct RunResult {
  /// Output labels (lower-cased), sorted; stable across runs of one corpus.
  std::vector<std::string> output_names;
  /// Final-step global mean per label, aligned with output_names.
  std::vector<double> output_means;
  /// Sampled statistics per watch key.
  std::unordered_map<interp::WatchKey, interp::WatchStats,
                     interp::WatchKeyHash>
      watch_stats;
};

class CesmModel {
 public:
  /// When `pool` is non-null the corpus files are lexed/parsed concurrently
  /// (each file is independent); the compiled-module filter then runs
  /// serially in file order, so the module list is identical either way.
  explicit CesmModel(const CorpusSpec& spec, rca::ThreadPool* pool = nullptr);

  const CorpusSpec& spec() const { return spec_; }
  const GeneratedCorpus& corpus() const { return corpus_; }

  /// ASTs of the compiled (build-configuration) modules.
  const std::vector<const lang::Module*>& compiled_modules() const {
    return module_ptrs_;
  }

  /// Source files that failed to parse (the paper reports ~10 unhandled
  /// assignments; our own corpus should parse fully).
  std::size_t parse_failures() const { return parse_failures_; }

  /// Execute one run.
  RunResult run(const RunConfig& config) const;

  /// Short instrumented run recording module/subprogram coverage (the
  /// codecov substitute; the paper uses the second time step).
  interp::CoverageRecorder coverage_run(int timesteps = 2) const;

 private:
  CorpusSpec spec_;
  GeneratedCorpus corpus_;
  std::vector<lang::SourceFile> parsed_files_;
  std::vector<const lang::Module*> module_ptrs_;
  std::size_t parse_failures_ = 0;
};

/// Ensemble of `members` control runs; returns rows = members, cols =
/// variables, and fills `names` with the output labels (sorted).
stats::Matrix ensemble_matrix(const CesmModel& model, const RunConfig& base,
                              std::size_t members,
                              std::vector<std::string>* names,
                              std::uint64_t first_seed = 1);

/// One experimental set of `runs` runs with seeds first_seed.. — the
/// 3-run sets pyCECT evaluates.
std::vector<std::vector<double>> experiment_set(
    const CesmModel& model, const RunConfig& base, std::size_t runs,
    std::uint64_t first_seed, const std::vector<std::string>& names);

}  // namespace rca::model
