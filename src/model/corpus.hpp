// Synthetic-CESM corpus generator.
//
// Produces a deterministic Fortran-subset source tree with the structural
// features the paper's pipeline depends on:
//
//   * a tightly connected "CAM core": dynamics (hydrostatic pressure, wind
//     advection, omega) and physics (Morrison-Gettelman-style microphysics
//     MG1 with the heavily reused temporary `dum`, Goff-Gratch saturation
//     vapor pressure, aerosol vertical velocity `wsub`, long/shortwave cloud
//     modules that consume a PRNG, cloud cover, precipitation and surface
//     diagnostics);
//   * a land component outside CAM (used by Figure 15 and by the WSUBBUG
//     experiment's isolation from the CAM core);
//   * hundreds of generated auxiliary modules wired by preferential
//     attachment (hub modules emerge, giving the approximate power-law
//     degree distribution of Figures 4/9), a subset of which is not in the
//     build configuration (the paper's 2400 -> 820 KGen reduction) and a
//     further subset of which never executes (codecov pruning);
//   * CAM-style history output via `call outfld('LABEL', field)`, with
//     internal names differing from output labels as in the paper's Table 2
//     (flwds -> FLDS, wsx -> TAUX, ...).
//
// The injectable bugs reproduce the paper's experiments at source level; the
// RAND-MT and AVX2 experiments need no source change (PRNG swap and FMA mode
// are runtime configuration), but their "bug locations" are defined in terms
// of this corpus (PRNG call sites; MG1 kernel variables).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rca::model {

/// Source-level bug selector (paper §6 experiments).
enum class BugId {
  kNone,        // control / ensemble corpus
  kWsub,        // §6.1  WSUBBUG: 0.20 -> 2.00 in microp_aero's wsub
  kRandom,      // §8.2.1 RANDOMBUG: array-index error writing state%omega
  kDyn3,        // §8.2.2 DYN3BUG: hydrostatic-pressure coefficient in dynamics
  kGoffGratch,  // §6.3  GOFFGRATCH: 8.1328e-3 -> 8.1828e-3 boiling coefficient
};

struct CorpusSpec {
  /// Deterministic seed for the filler-module topology.
  std::uint64_t seed = 2019;
  /// Total auxiliary modules emitted (the paper's ~2400 total, scaled).
  std::size_t total_aux_modules = 180;
  /// Auxiliary modules present in the build configuration (~820, scaled).
  std::size_t compiled_aux_modules = 62;
  /// Of the compiled aux modules, how many the driver actually calls; the
  /// rest exist in the build but never execute (codecov prunes them).
  std::size_t executed_aux_modules = 44;
  /// Average extra (never-called) subprograms per aux module.
  std::size_t unused_subprograms_per_module = 3;
  /// Number of atmospheric columns (CAM's pcols, scaled down).
  std::size_t pcols = 8;
  /// Injected bug.
  BugId bug = BugId::kNone;
};

struct GeneratedFile {
  std::string path;  // e.g. "src/physics/micro_mg.F90"
  std::string text;  // Fortran-subset source
};

struct GeneratedCorpus {
  std::vector<GeneratedFile> files;
  /// Module names present in the build configuration (the KGen-style list);
  /// files may contain modules outside this list.
  std::vector<std::string> compiled_modules;
  /// Total number of modules across all files (compiled or not).
  std::size_t total_modules = 0;
};

/// Generates the corpus. Deterministic per spec.
GeneratedCorpus generate_corpus(const CorpusSpec& spec);

/// Full-CESM-scale spec: ~2400 total modules, ~820 of them in the build
/// configuration, matching the paper's §4 KGen reduction numbers instead of
/// the unit-test default (which scales everything down ~13x). Used by the
/// perf-trajectory bench; parsing it takes seconds, so tests stick with the
/// default spec.
CorpusSpec cesm_scale_spec();

/// Names of the CAM modules in the corpus (the paper restricts experiment
/// subgraphs to CAM); everything else (land, share, aux-land) is non-CAM.
bool is_cam_module(const std::string& module_name);

}  // namespace rca::model
