// Generated auxiliary modules of the synthetic CESM corpus.
//
// The generator reproduces the corpus-scale structural features the paper's
// pipeline exploits:
//   * preferential attachment between aux modules creates hub modules, so
//     the full-graph degree distribution is approximately power-law
//     (Figures 4/9);
//   * a minority of executed CAM-side aux modules are "upstream": they feed
//     the aerosol coupling consumed by the CAM core, so backward slices
//     from affected outputs reach into aux territory;
//   * most aux modules are downstream diagnostics — large in lines of code
//     but peripheral in the graph, which is why Table 1's "50 largest
//     modules" row behaves like the random row;
//   * never-called subprograms and never-called (but compiled) modules give
//     the coverage filter its ~30%/~60% reductions;
//   * deliberate canonical-name collisions (locals named omega/dum/tref)
//     reproduce the RANDOMBUG-style many-nodes-per-canonical-name shape.
#include <algorithm>

#include "model/corpus_internal.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace rca::model {

namespace {

/// Deterministic helper for picking integers in [lo, hi].
class Pick {
 public:
  explicit Pick(std::uint64_t seed) : rng_(seed) {}
  std::size_t range(std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(rng_.next() %
                                         (hi - lo + 1));
  }
  double real(double lo, double hi) { return lo + rng_.uniform() * (hi - lo); }
  bool chance(double p) { return rng_.uniform() < p; }

 private:
  SplitMix64 rng_;
};

// Canonical-name collisions across scopes; "omega" is over-represented so
// the RANDOMBUG slice fans out across many same-named nodes with small
// ancestries, the paper's 628-node/295-edge forest shape.
const char* kCollisionNames[] = {"omega", "omega", "omega", "dum",
                                 "tref",  "es",    "qrl",   "u"};

struct AuxPlan {
  std::size_t id = 0;
  bool compiled = false;
  bool executed = false;
  bool upstream = false;
  bool land_side = false;
  bool huge = false;                  // big LoC, peripheral
  std::vector<std::size_t> deps;      // ids of aux modules it uses
  std::size_t n_diag = 1;
  std::size_t n_locals = 4;
  std::size_t n_unused_subs = 2;
  bool emits_output = false;
  std::string collision_local;        // optional canonical-name collision
};

std::string aux_name(std::size_t id, bool land_side) {
  return strfmt("aux_%s_%03zu", land_side ? "lnd" : "cam", id);
}

std::string diag_name(std::size_t id, std::size_t k) {
  return strfmt("diag_%03zu_%zu", id, k);
}

}  // namespace

std::vector<AuxModule> generate_aux_modules(const CorpusSpec& spec) {
  Pick pick(spec.seed * 0x9e3779b9u + 17);

  // ---- plan topology -------------------------------------------------------
  std::vector<AuxPlan> plans(spec.total_aux_modules);
  // Preferential-attachment target pool over executed modules.
  std::vector<std::size_t> attach_pool;
  const std::size_t n_upstream =
      std::max<std::size_t>(1, spec.executed_aux_modules * 3 / 10);

  for (std::size_t id = 0; id < plans.size(); ++id) {
    AuxPlan& p = plans[id];
    p.id = id;
    p.compiled = id < spec.compiled_aux_modules;
    p.executed = id < spec.executed_aux_modules;
    p.upstream = p.executed && id < n_upstream;
    p.land_side = p.executed && !p.upstream && (id % 6 == 0);
    p.huge = !p.upstream && pick.chance(0.18);
    p.n_diag = pick.range(1, 3);
    p.n_locals = p.huge ? pick.range(10, 16) : pick.range(4, 9);
    p.n_unused_subs = pick.range(0, spec.unused_subprograms_per_module);
    p.emits_output = p.executed && pick.chance(0.5);
    if (pick.chance(0.35)) {
      p.collision_local = kCollisionNames[pick.range(0, 7)];
    }
    // Dependencies: preferential attachment among earlier executed modules
    // on the same side of the upstream/downstream split (upstream modules
    // must not read downstream diagnostics — they run first).
    const std::size_t want = pick.range(0, 3);
    for (std::size_t d = 0; d < want && !attach_pool.empty(); ++d) {
      const std::size_t target = attach_pool[pick.range(0, attach_pool.size() - 1)];
      if (target == id) continue;
      if (p.upstream && !plans[target].upstream) continue;
      if (std::find(p.deps.begin(), p.deps.end(), target) == p.deps.end()) {
        p.deps.push_back(target);
        attach_pool.push_back(target);  // rich get richer
      }
    }
    if (p.executed) {
      attach_pool.push_back(id);
      if (id < n_upstream) attach_pool.push_back(id);  // upstream bias
    }
  }

  // ---- emit source ---------------------------------------------------------
  std::vector<AuxModule> out;
  out.reserve(plans.size());
  for (const AuxPlan& p : plans) {
    const std::string name = aux_name(p.id, p.land_side);
    std::string text = "module " + name + "\n";
    text += "  use shr_kind_mod, only: pcols\n";
    if (p.land_side) {
      text += "  use lnd_soil, only: soilw, snowd\n";
    } else {
      text += "  use phys_state_mod, only: physics_state, state\n";
    }
    if (p.upstream) {
      text += "  use aerosol_intr, only: aer_wrk\n";
    }
    for (std::size_t dep : p.deps) {
      // Depend on the dependency's first diagnostic array.
      text += strfmt("  use %s, only: %s\n",
                     aux_name(dep, plans[dep].land_side).c_str(),
                     diag_name(dep, 0).c_str());
    }
    text += "  implicit none\n";
    for (std::size_t k = 0; k < p.n_diag; ++k) {
      text += strfmt("  real :: %s(pcols)\n", diag_name(p.id, k).c_str());
    }

    text += "contains\n";
    // Main subroutine (the one the driver calls).
    text += strfmt("  subroutine %s_main()\n", name.c_str());
    text += "    integer :: i\n";
    for (std::size_t k = 0; k < p.n_locals; ++k) {
      text += strfmt("    real :: wrk%zu\n", k);
    }
    if (!p.collision_local.empty()) {
      text += strfmt("    real :: %s\n", p.collision_local.c_str());
    }
    text += "    do i = 1, pcols\n";
    // Seed work chain from the physical fields.
    const char* base = p.land_side ? "soilw(i)" : "state%t(i)";
    const char* base2 = p.land_side ? "snowd(i)" : "state%q(i)";
    text += strfmt("      wrk0 = %s * %.3f + %.3f\n", base, pick.real(0.1, 0.9),
                   pick.real(0.01, 0.2));
    if (p.n_locals > 1) {
      text += strfmt("      wrk1 = %s * %.3f + wrk0 * %.3f\n", base2,
                     pick.real(0.1, 0.8), pick.real(0.1, 0.4));
    }
    for (std::size_t k = 2; k < p.n_locals; ++k) {
      // Chain through earlier locals with the occasional intrinsic; these
      // a*b + c forms are FMA-contractable but feed nothing chaotic, so
      // per-module FMA noise stays inert (Table 1's peripheral rows).
      const std::size_t src = pick.range(0, k - 1);
      switch (pick.range(0, 3)) {
        case 0:
          text += strfmt("      wrk%zu = wrk%zu * %.3f + %.3f\n", k, src,
                         pick.real(0.2, 0.9), pick.real(0.0, 0.3));
          break;
        case 1:
          text += strfmt("      wrk%zu = max(wrk%zu, %.3f)\n", k, src,
                         pick.real(0.0, 0.2));
          break;
        case 2:
          text += strfmt("      wrk%zu = sqrt(abs(wrk%zu) + %.3f)\n", k, src,
                         pick.real(0.01, 0.5));
          break;
        default:
          text += strfmt("      wrk%zu = wrk%zu * wrk%zu + %.3f\n", k, src,
                         pick.range(0, 1) ? src : (k - 1), pick.real(0.0, 0.2));
          break;
      }
    }
    if (!p.collision_local.empty()) {
      text += strfmt("      %s = wrk%zu * %.3f + %.3f\n",
                     p.collision_local.c_str(), p.n_locals - 1,
                     pick.real(0.2, 0.8), pick.real(0.0, 0.2));
    }
    for (std::size_t k = 0; k < p.n_diag; ++k) {
      std::string rhs = strfmt("wrk%zu * %.3f", pick.range(0, p.n_locals - 1),
                               pick.real(0.2, 0.9));
      if (!p.deps.empty() && pick.chance(0.8)) {
        const std::size_t dep = p.deps[pick.range(0, p.deps.size() - 1)];
        rhs += strfmt(" + %s(i) * %.3f", diag_name(dep, 0).c_str(),
                      pick.real(0.05, 0.4));
      }
      if (!p.collision_local.empty() && k == 0) {
        rhs += strfmt(" + %s * 0.1", p.collision_local.c_str());
      }
      text += strfmt("      %s(i) = %s\n", diag_name(p.id, k).c_str(),
                     rhs.c_str());
    }
    if (p.upstream) {
      // Two-statement form on purpose: `a + tmp` has no multiply to fuse,
      // so upstream aux modules contribute no FMA sensitivity to the core.
      text += strfmt("      wrk0 = %s(i) * %.4f\n", diag_name(p.id, 0).c_str(),
                     pick.real(0.005, 0.05));
      text += "      aer_wrk(i) = aer_wrk(i) + wrk0\n";
    }
    text += "    end do\n";
    if (p.emits_output) {
      text += strfmt("    call outfld('AUX%03zu', %s)\n", p.id,
                     diag_name(p.id, 0).c_str());
    }
    text += strfmt("  end subroutine %s_main\n", name.c_str());

    // Never-called subprograms (codecov fodder). Larger for "huge" modules.
    const std::size_t unused = p.n_unused_subs + (p.huge ? 3 : 0);
    for (std::size_t s = 0; s < unused; ++s) {
      text += strfmt("  subroutine %s_extra%zu(xin, xout)\n", name.c_str(), s);
      text += "    real, intent(in) :: xin\n";
      text += "    real, intent(out) :: xout\n";
      const std::size_t body = p.huge ? pick.range(8, 20) : pick.range(2, 6);
      text += "    real :: acc\n";
      text += strfmt("    acc = xin * %.3f\n", pick.real(0.1, 2.0));
      for (std::size_t b = 0; b < body; ++b) {
        text += strfmt("    acc = acc * %.4f + %.4f\n", pick.real(0.8, 1.2),
                       pick.real(-0.1, 0.1));
      }
      text += "    xout = acc\n";
      text += strfmt("  end subroutine %s_extra%zu\n", name.c_str(), s);
    }
    text += "end module " + name + "\n";

    AuxModule mod;
    mod.name = name;
    mod.text = std::move(text);
    mod.compiled = p.compiled;
    mod.executed = p.executed;
    mod.upstream = p.upstream;
    mod.land_side = p.land_side;
    out.push_back(std::move(mod));
  }
  return out;
}

}  // namespace rca::model
