#include "model/scenario.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "analysis/fpsense.hpp"
#include "analysis/passes.hpp"
#include "analysis/summaries.hpp"
#include "graph/bfs.hpp"
#include "model/experiments.hpp"
#include "support/error.hpp"

namespace rca::model {

const char* cause_kind_name(CauseKind kind) {
  switch (kind) {
    case CauseKind::kSourceBug: return "source-bug";
    case CauseKind::kMultiSiteBug: return "multi-site-bug";
    case CauseKind::kPrngSwap: return "prng-swap";
    case CauseKind::kFpContraction: return "fp-contraction";
    case CauseKind::kFpReassociation: return "fp-reassociation";
  }
  return "unknown";
}

const std::vector<ScenarioSpec>& scenario_library() {
  static const std::vector<ScenarioSpec> kScenarios = {
      {"wsub",
       "W-subgrid vertical-velocity coefficient bug (paper 6.1)",
       CauseKind::kSourceBug,
       BugId::kWsub,
       false, false, false,
       {{"microp_aero", "", "wsub"}},
       ""},
      {"random-node",
       "randomly chosen single-assignment bug (paper 8.2.1)",
       CauseKind::kSourceBug,
       BugId::kRandom,
       false, false, false,
       {{"phys_state_mod", "", "omega"}},
       ""},
      {"dyn3",
       "hydrostatic three-term multi-site bug (paper 8.2.2)",
       CauseKind::kMultiSiteBug,
       BugId::kDyn3,
       false, false, false,
       {{"dyn_hydro", "", "pint"}, {"dyn_hydro", "", "pmid"}},
       ""},
      {"goffgratch",
       "saturation vapor pressure formulation swap (paper 6.3)",
       CauseKind::kMultiSiteBug,
       BugId::kGoffGratch,
       false, false, false,
       {{"wv_saturation", "goffgratch_svp", "expo"},
        {"wv_saturation", "goffgratch_svp", "es"}},
       ""},
      {"prng",
       "PRNG swap kiss -> mt19937 (paper 6.2)",
       CauseKind::kPrngSwap,
       BugId::kNone,
       true, false, false,
       {},
       ""},
      {"fma-contraction",
       "FMA contraction everywhere; fpsense contraction sites in MG1",
       CauseKind::kFpContraction,
       BugId::kNone,
       false, true, false,
       {},
       "micro_mg"},
      {"reassoc3",
       ">=3-term sums reassociated right-to-left; fpsense chain sites",
       CauseKind::kFpReassociation,
       BugId::kNone,
       false, false, true,
       {},
       "micro_mg"},
  };
  return kScenarios;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : scenario_library()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioSpec& s : scenario_library()) names.push_back(s.name);
  return names;
}

RunConfig scenario_run_config(const ScenarioSpec& s, const RunConfig& base) {
  RunConfig config = base;
  if (s.swap_prng) config.prng_kind = "mt19937";
  if (s.fma_all) config.fma_all = true;
  if (s.reassoc_all) config.reassoc_all = true;
  return config;
}

CorpusSpec scenario_corpus_spec(const ScenarioSpec& s, const CorpusSpec& base) {
  CorpusSpec out = base;
  out.bug = s.bug;
  return out;
}

std::vector<interp::WatchKey> scenario_planted_sites(
    const ScenarioSpec& s, const std::vector<const lang::Module*>& modules) {
  if (s.kind != CauseKind::kFpContraction &&
      s.kind != CauseKind::kFpReassociation) {
    return s.sites;
  }
  const analysis::FpSite::Kind wanted = s.kind == CauseKind::kFpContraction
                                            ? analysis::FpSite::Kind::kContraction
                                            : analysis::FpSite::Kind::kReassociation;
  const analysis::ProgramSymbols symbols(modules);
  const analysis::ProgramSummaries summaries =
      analysis::compute_summaries(modules, symbols);

  // (module, subprogram, target) triples; std::set gives the deterministic
  // order and the dedup (one variable often anchors several chain sites).
  std::set<std::tuple<std::string, std::string, std::string>> triples;
  for (const lang::Module* m : modules) {
    if (!s.fp_module.empty() ? m->name != s.fp_module
                             : !is_cam_module(m->name)) {
      continue;
    }
    const analysis::ProgramSymbols::ModuleSyms* syms = symbols.module(m->name);
    analysis::FpCallOracle oracle = [&](const std::string& name,
                                        std::size_t nargs) {
      if (syms == nullptr) return false;
      auto pit = syms->procs.find(name);
      if (pit == syms->procs.end()) return false;
      for (const analysis::ProcRef& c : pit->second) {
        if (!c.sp->is_function() || c.sp->params.size() != nargs) continue;
        const analysis::ProcSummary* ps = summaries.find(c.sp);
        if (ps != nullptr && ps->returns_real) return true;
      }
      return false;
    };
    for (const lang::Subprogram& sp : m->subprograms) {
      for (const analysis::FpSite& site :
           analysis::find_fp_sites(sp, syms, oracle)) {
        if (site.kind != wanted || site.target.empty()) continue;
        triples.emplace(m->name, sp.name, site.target);
      }
    }
  }
  std::vector<interp::WatchKey> keys;
  for (const auto& [module, sub, name] : triples) {
    keys.push_back({module, sub, name});
  }
  return keys;
}

std::vector<graph::NodeId> resolve_sites(
    const meta::Metagraph& mg, const std::vector<interp::WatchKey>& keys) {
  std::vector<graph::NodeId> nodes;
  for (const interp::WatchKey& key : keys) {
    graph::NodeId v = mg.find(key.module, key.subprogram, key.name);
    if (v == graph::kInvalidNode && !key.subprogram.empty()) {
      v = mg.find(key.module, "", key.name);
    }
    if (v != graph::kInvalidNode) nodes.push_back(v);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::vector<graph::NodeId> scenario_planted_nodes(
    const ScenarioSpec& s, const meta::Metagraph& mg,
    const std::vector<const lang::Module*>& modules) {
  if (s.kind == CauseKind::kPrngSwap) return prng_influenced_nodes(mg);
  return resolve_sites(mg, scenario_planted_sites(s, modules));
}

std::vector<std::string> affected_outputs(
    const meta::Metagraph& mg, const std::vector<graph::NodeId>& planted,
    std::size_t max_labels) {
  std::vector<std::string> labels;
  if (planted.empty() || max_labels == 0) return labels;
  // Prefer genuinely downstream observables: a label whose every internal
  // node is itself a planted node is the cause observing itself, and slicing
  // on it reproduces the planted site trivially. Such labels are kept only
  // as a fallback when nothing downstream is reachable.
  std::vector<std::string> self_labels;
  for (const auto& [label, outputs] : mg.io_map()) {
    if (labels.size() >= max_labels) break;
    if (!reaches_any_of(mg.graph(), planted, outputs)) continue;
    bool all_planted = true;
    for (graph::NodeId v : outputs) {
      all_planted = all_planted && std::find(planted.begin(), planted.end(),
                                             v) != planted.end();
    }
    if (all_planted) {
      self_labels.push_back(label);
    } else {
      labels.push_back(label);
    }
  }
  for (const std::string& label : self_labels) {
    if (labels.size() >= max_labels) break;
    labels.push_back(label);
  }
  return labels;
}

bool contains_any(const std::vector<graph::NodeId>& nodes,
                  const std::vector<graph::NodeId>& planted) {
  for (graph::NodeId p : planted) {
    if (std::find(nodes.begin(), nodes.end(), p) != nodes.end()) return true;
  }
  return false;
}

bool reaches_any_of(const graph::Digraph& g,
                    const std::vector<graph::NodeId>& from,
                    const std::vector<graph::NodeId>& to) {
  for (graph::NodeId v : from) {
    if (graph::reaches_any(g, v, to)) return true;
  }
  return false;
}

std::size_t count_planted(const std::vector<graph::NodeId>& ranked,
                          const std::vector<graph::NodeId>& planted,
                          std::size_t top_k) {
  std::size_t count = 0;
  for (std::size_t k = 0; k < ranked.size() && k < top_k; ++k) {
    if (std::find(planted.begin(), planted.end(), ranked[k]) !=
        planted.end()) {
      ++count;
    }
  }
  return count;
}

std::size_t best_rank(const std::vector<graph::NodeId>& ranked,
                      const std::vector<graph::NodeId>& planted) {
  for (std::size_t k = 0; k < ranked.size(); ++k) {
    if (std::find(planted.begin(), planted.end(), ranked[k]) !=
        planted.end()) {
      return k;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace rca::model
