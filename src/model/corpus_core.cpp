// Hand-written "CAM core" of the synthetic CESM corpus (see corpus.hpp).
//
// Design notes, tied to the paper's experiments:
//
//  * State evolution is a set of coupled logistic maps (r ~ 3.8-3.95), so
//    the model has genuine sensitive dependence: O(1e-14) initial-condition
//    perturbations (the CESM ensemble mechanism) and O(1 ulp) FMA rounding
//    differences both grow exponentially with time step, which is exactly
//    why the real UF-CAM-ECT at time step 9 can see hardware-level changes.
//
//  * micro_mg's `dum = a * b - 0.999 * a * b`-shaped expressions are
//    catastrophic cancellations: with FMA contraction enabled the fused
//    multiply keeps one extra rounding of a*b, so fused vs unfused results
//    differ at ~1e-13 relative — the mechanism behind the paper's
//    Mira/Yellowstone FMA discrepancy, concentrated in MG1 exactly as the
//    paper found.
//
//  * wsub (microp_aero) depends only on the land component, so restricting
//    the subgraph to CAM modules isolates it from the CAM core (paper §6.1:
//    a 14-node induced subgraph).
//
//  * The long/shortwave cloud modules draw from the shr_rand_uniform
//    builtin; swapping the host PRNG (KISS -> MT19937) is the RAND-MT
//    experiment, and the PRNG-fed variables (emis/ssa chains) are its "bug
//    locations".
#include <cstdio>

#include "model/corpus.hpp"
#include "support/strings.hpp"

namespace rca::model {

namespace {

/// Replaces every occurrence of `token` — used instead of printf-style
/// formatting because Fortran derived-type syntax (`state%t`) collides with
/// format specifiers.
std::string replace_token(std::string text, const std::string& token,
                          const std::string& value) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    text.replace(pos, token.size(), value);
    pos += value.size();
  }
  return text;
}

const char* bug_wsub_coeff(BugId bug) {
  return bug == BugId::kWsub ? "2.00" : "0.20";
}

const char* bug_goffgratch_coeff(BugId bug) {
  return bug == BugId::kGoffGratch ? "8.1828e-3" : "8.1328e-3";
}

const char* bug_hydro_coeff(BugId bug) {
  return bug == BugId::kDyn3 ? "0.55" : "0.50";
}

const char* bug_omega_index(BugId bug) {
  return bug == BugId::kRandom ? "1" : "i";
}

}  // namespace

std::string core_shr_kind(const CorpusSpec& spec) {
  return strfmt(R"(
module shr_kind_mod
  implicit none
  integer, parameter :: r8 = 8
  integer, parameter :: pcols = %zu
  real, parameter :: gravit = 9.80616
  real, parameter :: rair = 287.042
  real, parameter :: cpair = 1004.64
  real, parameter :: latvap = 2501000.0
  real, parameter :: tmelt = 273.15
  real, parameter :: qsmall = 1.0e-18
  real, parameter :: tlo = 0.02
  real, parameter :: thi = 0.98
end module shr_kind_mod
)",
                spec.pcols);
}

std::string core_phys_state() {
  return R"(
module phys_state_mod
  use shr_kind_mod, only: pcols, tlo, thi
  implicit none
  type physics_state
    real :: t(pcols)
    real :: u(pcols)
    real :: v(pcols)
    real :: q(pcols)
    real :: ps(pcols)
    real :: omega(pcols)
    real :: z3(pcols)
  end type
  type(physics_state) :: state
contains
  subroutine init_state()
    integer :: i
    do i = 1, pcols
      state%t(i) = 0.41 + 0.031 * real(i)
      state%u(i) = 0.32 + 0.027 * real(i)
      state%v(i) = 0.28 + 0.022 * real(i)
      state%q(i) = 0.47 + 0.019 * real(i)
      state%ps(i) = 0.55 + 0.017 * real(i)
      state%omega(i) = 0.1
      state%z3(i) = 0.3
    end do
  end subroutine init_state
  subroutine clamp_state()
    integer :: i
    do i = 1, pcols
      state%t(i) = min(max(state%t(i), tlo), thi)
      state%u(i) = min(max(state%u(i), tlo), thi)
      state%v(i) = min(max(state%v(i), tlo), thi)
      state%q(i) = min(max(state%q(i), tlo), thi)
      state%ps(i) = min(max(state%ps(i), tlo), thi)
    end do
  end subroutine clamp_state
end module phys_state_mod
)";
}

std::string core_dyn_hydro(const CorpusSpec& spec) {
  return replace_token(R"(
module dyn_hydro
  use shr_kind_mod, only: pcols, rair, gravit
  use phys_state_mod, only: physics_state, state
  implicit none
  real :: pint(pcols)
  real :: pmid(pcols)
  real :: pdel(pcols)
  real :: rpdel(pcols)
  real :: lnpint(pcols)
  real :: etadot(pcols)
contains
  subroutine compute_hydro_pressure()
    ! Hydrostatic pressure layer integration (normalized units). DYN3BUG
    ! flips the interface weight 0.50 -> 0.55 here. The vertical-coordinate
    ! web (pdel/rpdel/lnpint/etadot plus the geopotential chain) gives the
    ! dycore its own community structure, as in the paper's Figure 13b.
    integer :: i
    real :: dz
    real :: rho
    real :: hybi
    real :: hyai
    real :: zvir
    real :: phis
    do i = 1, pcols
      dz = state%z3(i) * 0.06 + 0.01
      rho = state%ps(i) / max(state%t(i), 0.05)
      hyai = 0.3 + 0.1 * dz
      hybi = 0.6 - 0.2 * dz
      pint(i) = state%ps(i) * @HYDRO_COEFF@ + 2.0 * gravit / rair * rho * dz
      pmid(i) = 0.5 * pint(i) + 0.4 * state%ps(i) + 0.05 * hyai
      pmid(i) = min(max(pmid(i), 0.02), 0.98)
      pint(i) = min(max(pint(i), 0.02), 0.98)
      pdel(i) = max(pint(i) - pmid(i) * hybi, 0.01)
      rpdel(i) = 0.1 / pdel(i)
      rpdel(i) = min(rpdel(i), 0.95)
      lnpint(i) = log(pint(i) + 1.0)
      zvir = 0.61 * state%q(i)
      phis = 0.2 * dz + 0.1 * lnpint(i)
      etadot(i) = rpdel(i) * (pint(i) - pmid(i)) + 0.05 * zvir + 0.02 * phis
    end do
  end subroutine compute_hydro_pressure
end module dyn_hydro
)",
                       "@HYDRO_COEFF@", bug_hydro_coeff(spec.bug));
}

std::string core_dyn_core(const CorpusSpec& spec) {
  return replace_token(R"(
module dyn_core
  use shr_kind_mod, only: pcols, tlo, thi
  use phys_state_mod, only: physics_state, state, clamp_state
  use dyn_hydro, only: pint, pmid, pdel, rpdel, etadot, compute_hydro_pressure
  implicit none
  real :: wrk_omega(pcols)
  real :: vort(pcols)
  real :: divg(pcols)
contains
  subroutine dyn_step()
    call compute_hydro_pressure()
    call advance_state()
    call compute_omega()
  end subroutine dyn_step
  subroutine advance_state()
    ! Coupled logistic maps: the chaotic advection core. FMA-sensitive
    ! contractions appear in the mixing expressions.
    integer :: i
    real :: tn
    real :: un
    real :: vn
    real :: qn
    do i = 1, pcols
      tn = 3.90 * state%t(i) * (1.0 - state%t(i))
      un = 3.87 * state%u(i) * (1.0 - state%u(i))
      vn = 3.93 * state%v(i) * (1.0 - state%v(i))
      qn = 3.81 * state%q(i) * (1.0 - state%q(i))
      state%t(i) = 0.92 * tn + 0.03 * un + 0.03 * pmid(i) + 0.01 * qn
      state%u(i) = 0.90 * un + 0.05 * vn + 0.04 * pint(i)
      state%v(i) = 0.91 * vn + 0.05 * un + 0.03 * pmid(i)
      state%q(i) = 0.93 * qn + 0.04 * tn + 0.02 * pmid(i)
      state%ps(i) = 0.90 * state%ps(i) + 0.06 * pmid(i) + 0.02 * tn
    end do
    call clamp_state()
  end subroutine advance_state
  subroutine compute_omega()
    ! Vertical pressure velocity; RANDOMBUG corrupts the store index.
    integer :: i
    do i = 1, pcols
      vort(i) = 0.3 * state%u(i) * rpdel(i) - 0.2 * state%v(i) * pdel(i)
      divg(i) = 0.25 * etadot(i) + 0.1 * vort(i)
      wrk_omega(i) = (pint(i) - pmid(i)) * state%u(i) + 0.2 * state%v(i) + 0.1 * divg(i)
      state%omega(@OMEGA_INDEX@) = wrk_omega(i)
      state%z3(i) = 0.5 * state%t(i) + 0.3 * pmid(i) + 0.1
    end do
  end subroutine compute_omega
end module dyn_core
)",
                       "@OMEGA_INDEX@", bug_omega_index(spec.bug));
}

std::string core_wv_saturation(const CorpusSpec& spec) {
  return strfmt(R"(
module wv_saturation
  use shr_kind_mod, only: tmelt
  implicit none
  real, parameter :: tboil_coeff = %s
  interface svp
    module procedure goffgratch_svp, murphy_koop_svp
  end interface
contains
  function goffgratch_svp(t) result(es)
    ! Goff & Gratch saturation vapor pressure (normalized form). The
    ! GOFFGRATCH experiment perturbs tboil_coeff above.
    real, intent(in) :: t
    real :: es
    real :: expo
    expo = t * (1.0 - tboil_coeff * 373.16)
    es = 0.12 + 0.8 * exp(expo)
    es = min(es, 0.98)
  end function goffgratch_svp
  function murphy_koop_svp(t) result(es)
    real, intent(in) :: t
    real :: es
    es = 0.10 + 0.78 * exp(t * (0.0 - 2.10))
    es = min(es, 0.98)
  end function murphy_koop_svp
end module wv_saturation
)",
                bug_goffgratch_coeff(spec.bug));
}

std::string core_aerosol_intr() {
  // aer_load couples the "upstream" aux modules into the CAM core; the aux
  // generator appends assignments into collect_aerosols.
  return R"(
module aerosol_intr
  use shr_kind_mod, only: pcols
  implicit none
  real :: aer_load(pcols)
  real :: aer_wrk(pcols)
contains
  subroutine aerosol_init()
    integer :: i
    do i = 1, pcols
      aer_load(i) = 0.3
      aer_wrk(i) = 0.0
    end do
  end subroutine aerosol_init
  subroutine collect_aerosols()
    integer :: i
    do i = 1, pcols
      aer_load(i) = 0.2 + 0.4 * aer_load(i) + 0.3 * min(aer_wrk(i), 1.0)
      aer_wrk(i) = 0.0
    end do
  end subroutine collect_aerosols
end module aerosol_intr
)";
}

std::string core_micro_mg() {
  // The Morrison-Gettelman stand-in. `dum` is deliberately the most reused
  // temporary (highest in-degree; the paper's most central node), and the
  // `x * y - 0.999 * (x * y)`-shaped cancellations make the module the
  // dominant FMA-sensitivity source.
  return R"(
module micro_mg
  use shr_kind_mod, only: pcols, qsmall, latvap, cpair, tlo, thi
  use phys_state_mod, only: physics_state, state
  use wv_saturation, only: goffgratch_svp
  use aerosol_intr, only: aer_load
  implicit none
  real :: qsout_col(pcols)
  real :: nsout_col(pcols)
  real :: prect_col(pcols)
  real :: tlat_col(pcols)
contains
  subroutine micro_mg_tend(ttend, qtend)
    real, intent(out) :: ttend(pcols)
    real, intent(out) :: qtend(pcols)
    real :: dum
    real :: ratio
    real :: es
    real :: qvl
    real :: qcic(pcols)
    real :: qiic(pcols)
    real :: qniic(pcols)
    real :: nric(pcols)
    real :: nsic(pcols)
    real :: qctend(pcols)
    real :: qric(pcols)
    real :: qitend(pcols)
    real :: prds(pcols)
    real :: pre(pcols)
    real :: nctend(pcols)
    real :: qvlat(pcols)
    real :: tlat(pcols)
    real :: mnuccc(pcols)
    real :: nitend(pcols)
    real :: nsagg(pcols)
    real :: qsout(pcols)
    integer :: i
    do i = 1, pcols
      es = goffgratch_svp(state%t(i))
      qvl = state%q(i) - es * 0.31
      ! dum: heavily reused temporary, repeatedly overwritten (CESM style).
      ! Each `x*y - 0.999999*(x*y)` is a catastrophic cancellation whose
      ! fused-vs-unfused difference is ~1e-10 relative: the FMA signal.
      dum = qvl * aer_load(i) - 0.999999 * (qvl * aer_load(i))
      ratio = dum / (0.000001 * max(abs(qvl) * aer_load(i), 0.05)) + 0.02 * es
      qcic(i) = max(state%q(i) * ratio, 0.0) * 0.5 + 0.05 * aer_load(i)
      dum = qcic(i) * es - 0.999999 * (qcic(i) * es)
      qiic(i) = dum * 80000.0 + 0.12 * qcic(i)
      qniic(i) = 0.6 * qiic(i) + 0.3 * qcic(i) + 0.02 * aer_load(i)
      nric(i) = 0.5 * qniic(i) + 0.1 * es
      nsic(i) = 0.45 * qniic(i) + 0.08 * state%t(i)
      dum = nric(i) * state%u(i) - 0.999999 * (nric(i) * state%u(i))
      qric(i) = dum * 60000.0 + 0.2 * nric(i)
      qctend(i) = 0.0 - 0.4 * qcic(i) + 0.1 * qric(i)
      qitend(i) = 0.0 - 0.3 * qiic(i) + 0.05 * qniic(i)
      prds(i) = 0.2 * nsic(i) - 0.1 * qitend(i)
      pre(i) = 0.0 - 0.25 * qric(i) - 0.05 * prds(i)
      dum = pre(i) * state%q(i) - 0.999999 * (pre(i) * state%q(i))
      nctend(i) = dum * 70000.0 - 0.35 * nric(i)
      qvlat(i) = 0.0 - pre(i) - prds(i) + 0.02 * qvl + 0.05 * ratio
      tlat(i) = (0.0 - qvlat(i)) * (latvap / (latvap + cpair * 1500.0)) + 0.05 * prds(i)
      mnuccc(i) = 0.15 * qcic(i) * nsic(i) + 0.01 * dum
      nitend(i) = 0.3 * mnuccc(i) - 0.2 * nsic(i) + 0.05 * dum
      nsagg(i) = 0.22 * nsic(i) - 0.07 * nitend(i)
      qsout(i) = max(0.3 * qniic(i) + 0.1 * nsagg(i), 0.0)
      ! dum churn, CESM-style: the temporary is reassigned from nearly every
      ! process variable, which is what makes it the most in-central node of
      ! the physics community (paper §6.4).
      dum = tlat(i) * 0.1 + qniic(i)
      dum = nsic(i) + nric(i) * 0.2
      dum = qsout(i) * 0.3 + mnuccc(i)
      dum = qctend(i) + 0.15 * qitend(i)
      dum = prds(i) + 0.1 * nsagg(i)
      dum = qvlat(i) * 0.2 + pre(i)
      ttend(i) = tlat(i) * 0.5 + 0.05 * mnuccc(i) + 0.001 * dum
      qtend(i) = qvlat(i) * 0.5 + 0.03 * qctend(i)
      qsout_col(i) = qsout(i)
      nsout_col(i) = 0.8 * nsagg(i) + 0.1 * qsout(i)
      prect_col(i) = max(0.0 - pre(i), 0.0) + 0.1 * qsout(i)
      tlat_col(i) = tlat(i)
    end do
  end subroutine micro_mg_tend
end module micro_mg
)";
}

std::string core_cam_physics() {
  return R"(
module cam_physics
  use shr_kind_mod, only: pcols, tlo, thi
  use phys_state_mod, only: physics_state, state, clamp_state
  use micro_mg, only: micro_mg_tend
  implicit none
  real :: ttend_phys(pcols)
  real :: qtend_phys(pcols)
contains
  subroutine physics_step()
    integer :: i
    call micro_mg_tend(ttend_phys, qtend_phys)
    do i = 1, pcols
      state%t(i) = state%t(i) + 0.04 * ttend_phys(i)
      state%q(i) = state%q(i) + 0.04 * qtend_phys(i)
    end do
    call clamp_state()
  end subroutine physics_step
end module cam_physics
)";
}

std::string core_cloud_cover() {
  return R"(
module cloud_cover
  use shr_kind_mod, only: pcols, qsmall
  use phys_state_mod, only: physics_state, state
  use wv_saturation, only: svp, goffgratch_svp
  use aerosol_intr, only: aer_load
  implicit none
  real :: cld(pcols)
  real :: cllow(pcols)
  real :: clmed(pcols)
  real :: clhgh(pcols)
  real :: cltot(pcols)
  real :: ccn(pcols)
  real :: concld(pcols)
  real :: cldgeom(pcols)
contains
  subroutine cldfrc_run()
    ! Cloud geometry: a dense non-stochastic web; its aggregation sinks
    ! dominate the radiation community's in-centrality, which is why the
    ! RAND-MT experiment's first sampling round sees no PRNG influence.
    integer :: i
    real :: es
    real :: rh
    real :: icecldf
    real :: liqcldf
    real :: rhwght
    real :: ovrlp
    do i = 1, pcols
      es = svp(state%t(i))
      rh = state%q(i) / max(es, 0.05)
      rhwght = min(max((rh - 0.55) * 1.8, 0.0), 1.0)
      icecldf = rhwght * 0.6 + 0.1 * state%z3(i)
      liqcldf = rhwght * 0.7 + 0.05 * state%q(i)
      cld(i) = max(icecldf, liqcldf)
      ovrlp = icecldf * liqcldf + 0.02 * rhwght
      concld(i) = 0.3 * ovrlp + 0.1 * cld(i)
      cllow(i) = cld(i) * 0.55 + 0.08 * state%ps(i) + 0.05 * concld(i)
      clmed(i) = cld(i) * 0.3 + 0.05 * state%omega(i) + 0.04 * ovrlp
      clhgh(i) = cld(i) * 0.18 + 0.04 * state%z3(i) + 0.03 * icecldf
      cltot(i) = min(cllow(i) + clmed(i) + clhgh(i), 1.0)
      cldgeom(i) = 0.4 * cltot(i) + 0.2 * concld(i) + 0.1 * liqcldf
      ccn(i) = 0.4 * aer_load(i) + 0.25 * cld(i) + 0.05 * cldgeom(i)
    end do
    call outfld('CLOUD', cld)
    call outfld('CLDLOW', cllow)
    call outfld('CLDMED', clmed)
    call outfld('CLDHGH', clhgh)
    call outfld('CLDTOT', cltot)
    call outfld('CCN3', ccn)
  end subroutine cldfrc_run
end module cloud_cover
)";
}

std::string core_cloud_lw() {
  return R"(
module cloud_lw
  use shr_kind_mod, only: pcols
  use cloud_cover, only: cld, cldgeom, concld, cltot
  implicit none
  real :: flwds(pcols)
  real :: qrl(pcols)
  real :: flns(pcols)
  real :: rnd_lw(pcols)
  real :: netlw(pcols)
contains
  subroutine lw_run()
    ! Longwave radiative transfer. The band absorber web (abs1..abs4,
    ! netlw, lwup/lwdn) is deterministic and aggregation-heavy, so the
    ! radiation community's eigenvector in-centrality concentrates there;
    ! only the emissivity overlap (emis <- PRNG) is stochastic — the
    ! RAND-MT bug-location family. That separation is why the first
    ! sampling round of RAND-MT sees no difference (paper Figure 5c).
    integer :: i
    real :: emis
    real :: abs1
    real :: abs2
    real :: abs3
    real :: abs4
    real :: lwup
    real :: lwdn
    call shr_rand_uniform(rnd_lw)
    do i = 1, pcols
      abs1 = 0.4 * cldgeom(i) + 0.2 * cld(i)
      abs2 = 0.3 * cltot(i) + 0.25 * concld(i) + 0.1 * abs1
      abs3 = 0.35 * abs1 + 0.3 * abs2 + 0.05 * cldgeom(i)
      abs4 = 0.2 * abs1 + 0.2 * abs2 + 0.2 * abs3 + 0.1 * cltot(i)
      lwup = 0.5 * abs3 + 0.3 * abs4 + 0.1 * concld(i)
      lwdn = 0.4 * abs4 + 0.3 * abs2 + 0.2 * lwup
      netlw(i) = 0.5 * lwup + 0.4 * lwdn + 0.05 * abs3
      emis = 0.60 + 0.35 * rnd_lw(i)
      flwds(i) = emis * cld(i) * 0.55 + 0.1 * lwdn
      qrl(i) = flwds(i) * 0.45 - 0.1 * emis
      flns(i) = 0.7 * flwds(i) + 0.05 * emis
    end do
    call outfld('FLDS', flwds)
    call outfld('QRL', qrl)
    call outfld('FLNS', flns)
  end subroutine lw_run
end module cloud_lw
)";
}

std::string core_cloud_sw() {
  return R"(
module cloud_sw
  use shr_kind_mod, only: pcols
  use cloud_cover, only: cld, concld
  implicit none
  real :: fsds(pcols)
  real :: qrs(pcols)
  real :: rnd_sw(pcols)
contains
  subroutine sw_run()
    ! Shortwave counterpart; second PRNG consumer (RAND-MT bug family).
    integer :: i
    real :: ssa
    call shr_rand_uniform(rnd_sw)
    do i = 1, pcols
      ssa = 0.55 + 0.4 * rnd_sw(i)
      fsds(i) = ssa * (1.0 - cld(i)) * 0.9 + 0.1 * concld(i)
      qrs(i) = fsds(i) * 0.5 - 0.1 * cld(i)
    end do
    call outfld('FSDS', fsds)
    call outfld('QRS', qrs)
  end subroutine sw_run
end module cloud_sw
)";
}

std::string core_precip_diag() {
  return R"(
module precip_diag
  use shr_kind_mod, only: pcols, qsmall
  use micro_mg, only: qsout_col, nsout_col, prect_col
  use cloud_cover, only: cld
  implicit none
  real :: qsout2(pcols)
  real :: nsout2(pcols)
  real :: freqs(pcols)
  real :: snowl(pcols)
contains
  subroutine precip_run()
    integer :: i
    do i = 1, pcols
      qsout2(i) = qsout_col(i) * cld(i) + 0.02 * prect_col(i)
      nsout2(i) = nsout_col(i) * cld(i) + 0.01 * prect_col(i)
      freqs(i) = merge(1.0, 0.12 * qsout2(i), qsout2(i) > 0.05)
      snowl(i) = 0.6 * qsout2(i) + 0.1 * nsout2(i)
    end do
    call outfld('AQSNOW', qsout2)
    call outfld('ANSNOW', nsout2)
    call outfld('FREQS', freqs)
    call outfld('PRECSL', snowl)
  end subroutine precip_run
end module precip_diag
)";
}

std::string core_lnd(const CorpusSpec& spec) {
  (void)spec;
  return R"(
module lnd_soil
  use shr_kind_mod, only: pcols
  implicit none
  real :: soilw(pcols)
  real :: snowd(pcols)
contains
  subroutine lnd_init()
    integer :: i
    do i = 1, pcols
      soilw(i) = 0.31 + 0.042 * real(i)
      snowd(i) = 0.22 + 0.013 * real(i)
    end do
  end subroutine lnd_init
  subroutine lnd_step()
    ! Land component: its own chaotic moisture field, outside CAM.
    integer :: i
    do i = 1, pcols
      soilw(i) = 3.88 * soilw(i) * (1.0 - soilw(i))
      soilw(i) = min(max(soilw(i), 0.02), 0.98)
      snowd(i) = 0.9 * snowd(i) + 0.06 * soilw(i) + 0.01
    end do
  end subroutine lnd_step
end module lnd_soil
)";
}

std::string core_microp_aero(const CorpusSpec& spec) {
  return replace_token(R"(
module microp_aero
  use shr_kind_mod, only: pcols
  use lnd_soil, only: soilw
  implicit none
  real :: wsub(pcols)
  real :: tke(pcols)
contains
  subroutine microp_aero_run()
    ! Sub-grid vertical velocity from land-driven turbulence. WSUBBUG
    ! transposes the 0.20 coefficient to 2.00; the variable is written to
    ! the history file on the very next line, so the bug is isolated.
    integer :: i
    real :: wdiag
    do i = 1, pcols
      tke(i) = 0.4 * soilw(i) + 0.3
      wdiag = sqrt(tke(i)) * 0.5
      wsub(i) = max(@WSUB_COEFF@ * wdiag, 0.01)
    end do
    call outfld('WSUB', wsub)
  end subroutine microp_aero_run
end module microp_aero
)",
                       "@WSUB_COEFF@", bug_wsub_coeff(spec.bug));
}

std::string core_ocn() {
  // POP stand-in: a slow ocean forced by the atmosphere's surface fluxes.
  // Outside CAM (like lnd_soil), it feeds nothing back into CAM within a
  // run, so CAM-restricted slices cut it — but unrestricted slices (Figure
  // 15) and the ocean's own outputs (the pyCECT v2 POP-ECT domain, Baker
  // et al. 2016) pull in the cross-component ancestry.
  return R"(
module ocn_pop
  use shr_kind_mod, only: pcols
  use camsrf, only: wsx, shf
  implicit none
  real :: sst(pcols)
  real :: ssh(pcols)
  real :: uocn(pcols)
contains
  subroutine ocn_init()
    integer :: i
    do i = 1, pcols
      sst(i) = 0.45 + 0.021 * real(i)
      ssh(i) = 0.35 + 0.012 * real(i)
      uocn(i) = 0.25 + 0.017 * real(i)
    end do
  end subroutine ocn_init
  subroutine ocn_step()
    integer :: i
    do i = 1, pcols
      sst(i) = 3.7 * sst(i) * (1.0 - sst(i)) * 0.9 + 0.06 * shf(i)
      sst(i) = min(max(sst(i), 0.02), 0.98)
      uocn(i) = 0.88 * uocn(i) + 0.1 * wsx(i)
      ssh(i) = 0.85 * ssh(i) + 0.09 * uocn(i) + 0.05 * sst(i)
    end do
    call outfld('SST', sst)
    call outfld('SSH', ssh)
    call outfld('UOCN', uocn)
  end subroutine ocn_step
end module ocn_pop
)";
}

std::string core_camsrf() {
  return R"(
module camsrf
  use shr_kind_mod, only: pcols, cpair
  use phys_state_mod, only: physics_state, state
  use micro_mg, only: tlat_col, prect_col
  use lnd_soil, only: snowd
  implicit none
  real :: wsx(pcols)
  real :: tref(pcols)
  real :: shf(pcols)
  real :: u10(pcols)
  real :: snowhland(pcols)
  real :: psout(pcols)
  real :: omegat(pcols)
contains
  subroutine srf_diag()
    ! Surface diagnostics: strongly driven by the state and by MG1
    ! tendencies (tlat), so the AVX2/FMA experiment surfaces here first.
    integer :: i
    do i = 1, pcols
      wsx(i) = 0.5 * state%u(i) * state%u(i) + 0.3 * state%v(i)
      tref(i) = 0.8 * state%t(i) + 0.17 * tlat_col(i)
      shf(i) = 0.6 * tref(i) * state%q(i) + 0.1 * tlat_col(i)
      u10(i) = 0.85 * state%u(i) + 0.1 * wsx(i)
      snowhland(i) = 0.5 * snowd(i) + 0.45 * prect_col(i)
      psout(i) = state%ps(i)
      omegat(i) = state%omega(i) * state%t(i)
    end do
    call outfld('TAUX', wsx)
    call outfld('TREFHT', tref)
    call outfld('SHFLX', shf)
    call outfld('U10', u10)
    call outfld('SNOWHLND', snowhland)
    call outfld('PS', psout)
    call outfld('OMEGAT', omegat)
  end subroutine srf_diag
end module camsrf
)";
}

std::string core_cam_history() {
  return R"(
module cam_history
  use shr_kind_mod, only: pcols
  use phys_state_mod, only: physics_state, state
  implicit none
contains
  subroutine write_state_history()
    call outfld('OMEGA', state%omega)
    call outfld('VV', state%v)
    call outfld('UU', state%u)
    call outfld('Z3', state%z3)
    call outfld('T', state%t)
    call outfld('Q', state%q)
  end subroutine write_state_history
end module cam_history
)";
}

// The cam_driver module text needs the aux driver call list appended; the
// generator (corpus.cpp) splices `aux_pre_calls` / `aux_post_calls` in.
std::string core_cam_driver(const std::string& aux_pre_uses,
                            const std::string& aux_pre_calls,
                            const std::string& aux_post_uses,
                            const std::string& aux_post_calls) {
  std::string text = R"(
module cam_driver
  use shr_kind_mod, only: pcols
  use phys_state_mod, only: init_state
  use dyn_core, only: dyn_step
  use cam_physics, only: physics_step
  use cloud_cover, only: cldfrc_run
  use cloud_lw, only: lw_run
  use cloud_sw, only: sw_run
  use precip_diag, only: precip_run
  use microp_aero, only: microp_aero_run
  use camsrf, only: srf_diag
  use cam_history, only: write_state_history
  use lnd_soil, only: lnd_init, lnd_step
  use ocn_pop, only: ocn_init, ocn_step
  use aerosol_intr, only: aerosol_init, collect_aerosols
)";
  text += aux_pre_uses;
  text += aux_post_uses;
  text += R"(  implicit none
contains
  subroutine cam_init()
    call init_state()
    call lnd_init()
    call ocn_init()
    call aerosol_init()
  end subroutine cam_init
  subroutine cam_step()
)";
  text += aux_pre_calls;
  text += R"(    call collect_aerosols()
    call dyn_step()
    call physics_step()
    call cldfrc_run()
    call lw_run()
    call sw_run()
    call precip_run()
    call microp_aero_run()
    call srf_diag()
    call lnd_step()
    call ocn_step()
)";
  text += aux_post_calls;
  text += R"(    call write_state_history()
  end subroutine cam_step
end module cam_driver
)";
  return text;
}

}  // namespace rca::model
