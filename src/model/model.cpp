#include "model/model.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "lang/parser.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace rca::model {

CesmModel::CesmModel(const CorpusSpec& spec, rca::ThreadPool* pool)
    : spec_(spec), corpus_(generate_corpus(spec)) {
  // Parse only the compiled (build-configuration) files — the KGen-style
  // 2400 -> 820 reduction happens before parsing in the paper too.
  std::unordered_map<std::string, bool> compiled;
  for (const auto& name : corpus_.compiled_modules) compiled[name] = true;

  // Each file lexes/parses independently; slots keep file order so the
  // assembly below is deterministic regardless of scheduling.
  std::vector<std::optional<lang::SourceFile>> slots(corpus_.files.size());
  std::vector<char> failed(corpus_.files.size(), 0);
  auto parse_one = [this, &slots, &failed](std::size_t i) {
    const GeneratedFile& file = corpus_.files[i];
    try {
      lang::Parser parser(file.path, file.text);
      slots[i] = parser.parse_file();
    } catch (const ParseError&) {
      failed[i] = 1;
    }
  };
  if (pool != nullptr && corpus_.files.size() > 1) {
    pool->parallel_for(corpus_.files.size(), parse_one);
  } else {
    for (std::size_t i = 0; i < corpus_.files.size(); ++i) parse_one(i);
  }

  parsed_files_.reserve(corpus_.files.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (failed[i]) {
      ++parse_failures_;
      continue;
    }
    if (!slots[i]) continue;
    bool any_compiled = false;
    for (const auto& m : slots[i]->modules) {
      if (compiled.count(m.name)) any_compiled = true;
    }
    if (!any_compiled) continue;
    parsed_files_.push_back(std::move(*slots[i]));
  }
  for (const auto& f : parsed_files_) {
    for (const auto& m : f.modules) {
      if (compiled.count(m.name)) module_ptrs_.push_back(&m);
    }
  }
}

namespace {

/// Applies the member-specific initial-condition perturbation: every
/// prognostic field element is scaled by (1 + eps) with |eps| <=
/// perturbation, mirroring CESM's O(1e-14) temperature perturbations.
void perturb_initial_conditions(interp::Interpreter& interp,
                                std::uint64_t member_seed,
                                double perturbation) {
  SplitMix64 rng(member_seed * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull);
  auto perturb_array = [&rng, perturbation](interp::Value& v) {
    for (double& x : v.array) {
      x *= 1.0 + perturbation * (2.0 * rng.uniform() - 1.0);
    }
  };
  auto state = interp.module_var("phys_state_mod", "state");
  for (const char* field : {"t", "u", "v", "q", "ps"}) {
    perturb_array(*state->derived->components.at(field));
  }
  perturb_array(*interp.module_var("lnd_soil", "soilw"));
  perturb_array(*interp.module_var("ocn_pop", "sst"));
}

std::unique_ptr<interp::Interpreter> make_interpreter(
    const std::vector<const lang::Module*>& modules, const RunConfig& config) {
  auto interp = std::make_unique<interp::Interpreter>(modules);
  interp->set_prng(make_prng(config.prng_kind, config.prng_seed));
  if (config.fma_all) interp->set_fma_all(true);
  for (const auto& m : config.fma_disabled_modules) {
    interp->set_fma(m, false);
  }
  if (config.reassoc_all) interp->set_reassoc_all(true);
  for (const auto& w : config.watches) interp->add_watch(w);
  return interp;
}

}  // namespace

RunResult CesmModel::run(const RunConfig& config) const {
  obs::count("model.runs");
  obs::count("model.timesteps", static_cast<std::uint64_t>(config.timesteps));
  obs::count("model.watches", config.watches.size());
  auto interp = make_interpreter(module_ptrs_, config);
  interp->call("cam_driver", "cam_init");
  perturb_initial_conditions(*interp, config.member_seed, config.perturbation);
  for (int step = 0; step < config.timesteps; ++step) {
    interp->call("cam_driver", "cam_step");
  }

  // Last outfld value per label = the final-step history field.
  std::map<std::string, double> last;
  for (const auto& [label, mean] : interp->outputs()) last[label] = mean;

  RunResult result;
  result.output_names.reserve(last.size());
  result.output_means.reserve(last.size());
  for (const auto& [label, mean] : last) {
    result.output_names.push_back(label);
    result.output_means.push_back(mean);
  }
  result.watch_stats = interp->watch_stats();
  return result;
}

interp::CoverageRecorder CesmModel::coverage_run(int timesteps) const {
  RunConfig config;
  config.timesteps = timesteps;
  auto interp = make_interpreter(module_ptrs_, config);
  interp->call("cam_driver", "cam_init");
  for (int step = 0; step < timesteps; ++step) {
    interp->call("cam_driver", "cam_step");
  }
  return interp->coverage();
}

stats::Matrix ensemble_matrix(const CesmModel& model, const RunConfig& base,
                              std::size_t members,
                              std::vector<std::string>* names,
                              std::uint64_t first_seed) {
  RCA_CHECK_MSG(members >= 2, "ensemble needs at least two members");
  obs::Span span("model.ensemble");
  span.attr("members", members);
  stats::Matrix data;
  for (std::size_t m = 0; m < members; ++m) {
    RunConfig config = base;
    config.member_seed = first_seed + m;
    RunResult r = model.run(config);
    if (m == 0) {
      if (names) *names = r.output_names;
      data = stats::Matrix(members, r.output_means.size());
    }
    RCA_CHECK_MSG(r.output_means.size() == data.cols(),
                  "inconsistent output width across members");
    for (std::size_t j = 0; j < r.output_means.size(); ++j) {
      data.at(m, j) = r.output_means[j];
    }
  }
  return data;
}

std::vector<std::vector<double>> experiment_set(
    const CesmModel& model, const RunConfig& base, std::size_t runs,
    std::uint64_t first_seed, const std::vector<std::string>& names) {
  std::vector<std::vector<double>> out;
  out.reserve(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    RunConfig config = base;
    config.member_seed = first_seed + r;
    RunResult result = model.run(config);
    RCA_CHECK_MSG(result.output_names == names,
                  "experimental run output labels differ from ensemble");
    out.push_back(std::move(result.output_means));
  }
  return out;
}

}  // namespace rca::model
