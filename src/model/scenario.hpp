// Deterministic library of planted root-cause scenarios.
//
// A scenario = a known cause planted into the synthetic corpus (a source
// bug, a PRNG swap, or an FP perturbation applied at run time) plus the
// ground-truth sites the refinement procedure is scored against. Source-bug
// scenarios carry their sites statically; the FP scenarios mine theirs with
// src/analysis/fpsense site detection (FMA-contraction shapes and >=3-term
// reassociation chains), so the planted perturbation and the scored sites
// come from the same static definition. The scoring harness
// (src/campaign/score) runs the full pipeline per scenario and reports
// whether a planted site lands in the top-m ranked nodes.
//
// The evaluation helpers at the bottom are the checks the figure benches
// (fig12_randombug, exp_wsubbug, fig8_avx2) previously hand-rolled.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "interp/interpreter.hpp"
#include "lang/ast.hpp"
#include "meta/metagraph.hpp"
#include "model/corpus.hpp"
#include "model/model.hpp"

namespace rca::model {

enum class CauseKind {
  kSourceBug,        // coefficient bug planted in one generated assignment
  kMultiSiteBug,     // source bug touching several sites at once
  kPrngSwap,         // kiss -> mt19937 (ground truth = PRNG-influenced set)
  kFpContraction,    // FMA contraction everywhere (fpsense-mined sites)
  kFpReassociation,  // >=3-term +/- chains resummed (fpsense-mined sites)
};

const char* cause_kind_name(CauseKind kind);

struct ScenarioSpec {
  std::string name;     // stable id: "wsub", "reassoc3", ...
  std::string summary;  // one line for reports
  CauseKind kind = CauseKind::kSourceBug;
  /// Source bug injected into the experiment corpus (kNone for runtime-only
  /// perturbations).
  BugId bug = BugId::kNone;
  // Runtime configuration deltas of the experimental runs.
  bool swap_prng = false;
  bool fma_all = false;
  bool reassoc_all = false;
  /// Static ground-truth sites (source-bug scenarios); FP/PRNG scenarios
  /// derive theirs — see scenario_planted_sites / prng_influenced_nodes.
  std::vector<interp::WatchKey> sites;
  /// FP scenarios: restrict fpsense mining to this module; empty scans every
  /// compiled CAM module.
  std::string fp_module;
};

/// The built-in scenarios, deterministic order. Covers the paper's planted
/// bugs (wsub, random-node, dyn3, goffgratch), the PRNG swap, and two FP
/// perturbations (contraction, reassociation).
const std::vector<ScenarioSpec>& scenario_library();

/// Null when no scenario has that name.
const ScenarioSpec* find_scenario(const std::string& name);

std::vector<std::string> scenario_names();

/// Applies the scenario's runtime deltas to a base run configuration.
RunConfig scenario_run_config(const ScenarioSpec& s, const RunConfig& base);

/// Corpus spec for the scenario's experiment runs (plants the source bug).
CorpusSpec scenario_corpus_spec(const ScenarioSpec& s, const CorpusSpec& base);

/// Ground-truth planted sites. Source-bug scenarios return their static
/// list; FP scenarios mine contraction/reassociation sites from the parsed
/// modules with analysis::find_fp_sites (deduplicated assignment targets,
/// deterministic order). PRNG scenarios have graph-derived ground truth —
/// use prng_influenced_nodes instead (this returns empty for them).
std::vector<interp::WatchKey> scenario_planted_sites(
    const ScenarioSpec& s, const std::vector<const lang::Module*>& modules);

/// Resolves watch keys to metagraph nodes: subprogram scope first, falling
/// back to module scope (generated locals often promote to module level).
/// Sorted, deduplicated; unresolvable keys are dropped.
std::vector<graph::NodeId> resolve_sites(
    const meta::Metagraph& mg, const std::vector<interp::WatchKey>& keys);

/// Planted nodes for a scenario on a metagraph built from `modules`
/// (prng_influenced_nodes for kPrngSwap, resolved planted sites otherwise).
std::vector<graph::NodeId> scenario_planted_nodes(
    const ScenarioSpec& s, const meta::Metagraph& mg,
    const std::vector<const lang::Module*>& modules);

/// Output labels whose instrumented nodes are reachable from any planted
/// node — the history fields the planted cause can actually move. At most
/// `max_labels`, in the metagraph's deterministic io_map order. Used as
/// default slicing criteria for scenario campaigns.
std::vector<std::string> affected_outputs(
    const meta::Metagraph& mg, const std::vector<graph::NodeId>& planted,
    std::size_t max_labels = 3);

// -- evaluation helpers (shared by the figure benches and the scorer) ------

/// Any planted node present in `nodes`.
bool contains_any(const std::vector<graph::NodeId>& nodes,
                  const std::vector<graph::NodeId>& planted);

/// Any directed path from a node in `from` to a node in `to`.
bool reaches_any_of(const graph::Digraph& g,
                    const std::vector<graph::NodeId>& from,
                    const std::vector<graph::NodeId>& to);

/// Best (smallest) 0-based position of a planted node in a ranked list;
/// SIZE_MAX when no planted node is ranked.
std::size_t best_rank(const std::vector<graph::NodeId>& ranked,
                      const std::vector<graph::NodeId>& planted);

/// How many of the first `top_k` ranked nodes are planted (top_k = SIZE_MAX
/// counts the whole list).
std::size_t count_planted(const std::vector<graph::NodeId>& ranked,
                          const std::vector<graph::NodeId>& planted,
                          std::size_t top_k = static_cast<std::size_t>(-1));

}  // namespace rca::model
