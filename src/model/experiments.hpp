// Registry of the paper's six experiments (§6 and supplementary §8.2).
//
// Each experiment = a corpus bug (or none) + runtime configuration changes +
// ground-truth bug locations used to *evaluate* the refinement procedure
// (the engine itself never sees them, matching the paper's simulation of
// sampling with known bug sites).
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "interp/interpreter.hpp"
#include "meta/metagraph.hpp"
#include "model/corpus.hpp"
#include "model/model.hpp"

namespace rca::model {

enum class ExperimentId {
  kWsubBug,     // §6.1
  kRandMt,      // §6.2
  kGoffGratch,  // §6.3
  kAvx2,        // §6.4
  kRandomBug,   // §8.2.1
  kDyn3Bug,     // §8.2.2
};

struct ExperimentSpec {
  ExperimentId id;
  const char* name;        // "WSUBBUG", "RAND-MT", ...
  BugId bug = BugId::kNone;
  bool swap_prng = false;  // RAND-MT: kiss -> mt19937
  bool fma_all = false;    // AVX2: FMA contraction everywhere
  /// Static ground-truth bug sites, where the experiment has fixed ones
  /// (RAND-MT and AVX2 sites are derived from the graph/runs instead).
  std::vector<interp::WatchKey> bug_sites;
};

const std::vector<ExperimentSpec>& all_experiments();
const ExperimentSpec& experiment(ExperimentId id);

/// Applies the experiment's runtime changes to a run configuration.
RunConfig experiment_run_config(const ExperimentSpec& spec,
                                const RunConfig& base);

/// Corpus spec for the experiment (injects the source bug if any).
CorpusSpec experiment_corpus_spec(const ExperimentSpec& spec,
                                  const CorpusSpec& base);

/// RAND-MT bug locations: the variables immediately fed by a PRNG call site
/// (paper §6.2 "variables immediately influenced or defined by the numbers
/// returned from the PRNG").
std::vector<graph::NodeId> prng_influenced_nodes(const meta::Metagraph& mg);

/// AVX2 bug locations (the KGen emulation): run the model with FMA off and
/// on, watching every micro_mg variable, and flag those whose normalized RMS
/// difference exceeds `threshold` (paper: 42 variables at 1e-12).
std::vector<interp::WatchKey> kgen_flagged_variables(
    const CesmModel& control_model, const meta::Metagraph& mg,
    double threshold = 1e-12);

}  // namespace rca::model
