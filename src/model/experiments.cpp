#include "model/experiments.hpp"

#include <cmath>

#include "support/error.hpp"

namespace rca::model {

const std::vector<ExperimentSpec>& all_experiments() {
  static const std::vector<ExperimentSpec> kExperiments = {
      {ExperimentId::kWsubBug,
       "WSUBBUG",
       BugId::kWsub,
       false,
       false,
       // wsub is a module-level variable: empty subprogram scope.
       {{"microp_aero", "", "wsub"}}},
      {ExperimentId::kRandMt, "RAND-MT", BugId::kNone, true, false, {}},
      {ExperimentId::kGoffGratch,
       "GOFFGRATCH",
       BugId::kGoffGratch,
       false,
       false,
       {{"wv_saturation", "goffgratch_svp", "expo"},
        {"wv_saturation", "goffgratch_svp", "es"}}},
      {ExperimentId::kAvx2, "AVX2", BugId::kNone, false, true, {}},
      {ExperimentId::kRandomBug,
       "RANDOMBUG",
       BugId::kRandom,
       false,
       false,
       {{"phys_state_mod", "", "omega"}}},
      {ExperimentId::kDyn3Bug,
       "DYN3BUG",
       BugId::kDyn3,
       false,
       false,
       // pint/pmid are module-level variables of dyn_hydro.
       {{"dyn_hydro", "", "pint"}, {"dyn_hydro", "", "pmid"}}},
  };
  return kExperiments;
}

const ExperimentSpec& experiment(ExperimentId id) {
  for (const auto& spec : all_experiments()) {
    if (spec.id == id) return spec;
  }
  throw Error("unknown experiment id");
}

RunConfig experiment_run_config(const ExperimentSpec& spec,
                                const RunConfig& base) {
  RunConfig config = base;
  if (spec.swap_prng) config.prng_kind = "mt19937";
  if (spec.fma_all) config.fma_all = true;
  return config;
}

CorpusSpec experiment_corpus_spec(const ExperimentSpec& spec,
                                  const CorpusSpec& base) {
  CorpusSpec out = base;
  out.bug = spec.bug;
  return out;
}

std::vector<graph::NodeId> prng_influenced_nodes(const meta::Metagraph& mg) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < mg.node_count(); ++v) {
    if (!mg.info(v).is_prng_site) continue;
    for (graph::NodeId succ : mg.graph().out_neighbors(v)) {
      out.push_back(succ);
      // One hop further: variables defined *from* the PRNG-filled array
      // (emis = f(rnd_lw), ssa = f(rnd_sw)) are bug locations too.
      for (graph::NodeId succ2 : mg.graph().out_neighbors(succ)) {
        if (!mg.info(succ2).is_intrinsic) out.push_back(succ2);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<interp::WatchKey> kgen_flagged_variables(
    const CesmModel& control_model, const meta::Metagraph& mg,
    double threshold) {
  // Watch every non-intrinsic variable of the MG1 module (the extracted
  // "kernel"), run FMA-off and FMA-on, compare normalized RMS.
  RunConfig config;
  for (graph::NodeId v : mg.by_module("micro_mg")) {
    if (mg.info(v).is_intrinsic || mg.info(v).is_prng_site) continue;
    config.watches.push_back(mg.watch_key(v));
  }
  RunResult off = control_model.run(config);
  RunConfig on = config;
  on.fma_all = true;
  RunResult fma = control_model.run(on);

  std::vector<interp::WatchKey> flagged;
  for (const auto& [key, stats_off] : off.watch_stats) {
    auto it = fma.watch_stats.find(key);
    if (it == fma.watch_stats.end()) continue;
    const double rms_off = stats_off.rms();
    const double rms_on = it->second.rms();
    const double scale = std::max({std::abs(rms_off), std::abs(rms_on), 1e-300});
    if (std::abs(rms_on - rms_off) / scale > threshold) flagged.push_back(key);
  }
  std::sort(flagged.begin(), flagged.end(),
            [](const interp::WatchKey& a, const interp::WatchKey& b) {
              if (a.subprogram != b.subprogram) return a.subprogram < b.subprogram;
              return a.name < b.name;
            });
  return flagged;
}

}  // namespace rca::model
