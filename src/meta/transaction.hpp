// Incremental metagraph transactions: patch-only rebuilds with rollback.
//
// A Transaction models one session update as "re-parse and re-walk only the
// changed modules, splice their fragments into a fresh metagraph together
// with the cached fragments of every unchanged module". Because node ids
// are assigned by first-intern order across the module sequence, the
// resident graph is never mutated in place; instead every commit replays
// ALL fragments (cached + fresh) in module order — the exact recipe of the
// parallel builder — so the committed graph is byte-identical to a
// from-scratch build of the same sources. The saving is what matters: the
// expensive phases (lex + parse + statement walk) run only for the changed
// modules, while replay is a linear pass over precomputed op logs.
//
// Soundness of fragment reuse: a module's fragment depends on (a) its own
// AST and (b) the *interface-level* content of every module in the corpus —
// the symbol tables never read statement bodies, but they do read remote
// declarations, subprogram signatures (name / line / params / intents /
// result), interface blocks and use statements, with an order-dependent
// chained-import quirk. interface_signature() fingerprints exactly that
// surface. The escalation rule:
//
//   * every module's interface signature unchanged, same module sequence
//     -> re-walk only the dirty modules, reuse every other fragment;
//   * any signature changed, or modules added/removed/reordered
//     -> full re-walk (cached *parses* of unchanged files are still reused
//        by the caller; only the walk re-runs).
//
// Rollback is by construction: a transaction builds its graph and next
// fragment state entirely on the side and only the caller publishes them.
// Any throw — a parse failure upstream, or the meta.txn.splice fault site
// during replay — leaves the base state untouched.
//
// Counters: meta.txn.commits, meta.txn.full_rewalks,
// meta.txn.rebuilt_modules, meta.txn.reused_fragments,
// meta.txn.spliced_nodes. Fault site: meta.txn.splice (checked once per
// fragment replayed).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "meta/builder.hpp"
#include "meta/fragment.hpp"
#include "meta/metagraph.hpp"

namespace rca::meta {

/// Order-independent fingerprint of everything another module's walk (or
/// lint pass) may read from this module without looking at statement
/// bodies: the module name, use statements, derived types, declarations
/// (name/type/dims/parameter/init/intent/line), interface blocks, and every
/// subprogram's signature (kind/name/line/params/result/uses/decls). Body
/// edits that do not shift interface-visible line numbers leave the
/// signature unchanged.
std::uint64_t interface_signature(const lang::Module& m);

/// Cached per-module fragment state carried from one committed generation
/// to the next. Immutable once published (fragments are shared, not
/// copied, across generations).
struct TxnState {
  struct Entry {
    std::string path;    // source file the module came from
    std::string module;  // module name
    std::uint64_t iface_sig = 0;
    std::shared_ptr<const Fragment> frag;
  };
  std::vector<Entry> entries;  // module order
  /// Hash over every (name, iface_sig) pair in module order — unchanged iff
  /// per-module reuse is sound.
  std::uint64_t iface_fingerprint = 0;
  /// Symbol tables the fragments were walked against, carried forward while
  /// no interface signature changes. Sound for the same reason fragment
  /// reuse is: the tables read only the interface surface that
  /// interface_signature() fingerprints, so under the no-escalation rule a
  /// fresh build would be observationally identical. Skipping the rebuild is
  /// the second-largest cost of a warm single-module edit.
  std::shared_ptr<const SymbolTables> tables;
  /// Owners of every AST `tables` (and the reused fragments' ProcRefs)
  /// point into. Descendant generations copy this forward, so the ASTs of
  /// the generation that built the tables outlive any state still using
  /// them — even after the session that parsed them is evicted.
  std::vector<std::shared_ptr<const lang::SourceFile>> keepalive;
};

/// One module staged into a transaction, in final module order.
struct TxnInput {
  std::string path;
  const lang::Module* module = nullptr;
  /// True when the module's source file changed in this update (its cached
  /// fragment, if any, must not be reused).
  bool dirty = false;
  /// The parsed file that owns `module`, if the caller has it as a shared
  /// handle; retained in TxnState::keepalive so cached symbol tables stay
  /// valid across generations. May be null (caller owns the AST lifetime).
  std::shared_ptr<const lang::SourceFile> owner;
};

struct TxnStats {
  std::size_t rebuilt_modules = 0;   // fragments re-walked
  std::size_t reused_fragments = 0;  // fragments spliced from the cache
  std::size_t spliced_nodes = 0;     // nodes interned by re-walked fragments
  bool full_rewalk = false;          // interface escalation (or no base)
};

struct TxnResult {
  // Shared because the no-op fast path aliases the base session's graph:
  // when every re-walked fragment comes back deep-equal to its cached
  // predecessor (comment-only touches), the replay would reproduce the base
  // graph byte-for-byte, so the transaction returns the base graph itself
  // instead of re-interning tens of thousands of nodes. Metagraph is
  // immutable once built, so aliasing is safe.
  std::shared_ptr<const Metagraph> mg;
  std::shared_ptr<const TxnState> state;
  TxnStats stats;
};

/// Runs one transaction: stages `inputs` (the complete post-edit module
/// sequence), decides per-module reuse against `base` (null = cold build),
/// walks what must be walked (pooled via opts.pool when set), and replays
/// every fragment in module order into a fresh Metagraph — or, when
/// `base_mg` is given and no fragment actually changed, returns `base_mg`
/// unchanged (the warm-edit fast path; see TxnResult::mg).
///
/// Throws (fault injection, walker errors) before returning — never after
/// partially mutating anything the caller can see; the caller's base state
/// remains valid and publishing the result is the caller's atomic step.
///
/// Preconditions: opts.module_filter / opts.subprogram_filter must be null
/// (coverage-filtered sessions are not incremental-eligible; callers fall
/// back to build_metagraph), and `inputs` must already be build-list
/// filtered.
TxnResult run_transaction(
    const std::vector<TxnInput>& inputs, const TxnState* base,
    const BuilderOptions& opts,
    std::shared_ptr<const Metagraph> base_mg = nullptr);

}  // namespace rca::meta
