// Metagraph (de)serialization: a stable line-oriented text format so the
// expensive parse-and-build step can be cached, shared between tools, or
// inspected with standard text utilities — the workflow role of the paper's
// pickled NetworkX metagraph.
//
// Format (tab-separated, '#' comments):
//   rca-metagraph 1
//   node <id> <canonical> <module> <subprogram|-> <line> <flags>
//   edge <u> <v>
//   io <label> <node-id>...
// Flags: i = localized intrinsic site, p = PRNG call site, - = none.
#pragma once

#include <iosfwd>
#include <string>

#include "meta/metagraph.hpp"

namespace rca::meta {

/// Writes `mg` to `out`. Node ids are the in-memory ids.
void save_metagraph(const Metagraph& mg, std::ostream& out);
std::string save_metagraph_to_string(const Metagraph& mg);

/// Reads a metagraph previously written by save_metagraph.
/// Throws rca::Error on malformed input (bad magic, dangling ids, ...).
Metagraph load_metagraph(std::istream& in);
Metagraph load_metagraph_from_string(const std::string& text);

}  // namespace rca::meta
