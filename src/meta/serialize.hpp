// Metagraph (de)serialization — the workflow role of the paper's pickled
// NetworkX metagraph: the expensive parse-and-build step is cached, shared
// between tools, or inspected offline.
//
// Two on-disk formats, auto-detected on load by the magic line:
//
// v1 — stable line-oriented text for inspection with standard utilities
// (tab-separated, '#' comments):
//   rca-metagraph 1
//   node <id> <canonical> <module> <subprogram|-> <line> <flags>
//   edge <u> <v>
//   io <label> <node-id>...
// Flags: i = localized intrinsic site, p = PRNG call site, - = none.
//
// v2 — compact binary for the snapshot cache:
//   rca-metagraph 2\n
// followed by sections, each `tag(1 byte) | varint payload-length | payload`,
// in the fixed order N, E, I, Z:
//   'N' nodes: varint count; per node str canonical, str module,
//       str subprogram, varint line, flags byte (bit0 intrinsic, bit1 prng);
//   'E' edges: varint count; per edge varint delta-u (u is non-decreasing in
//       edge order), varint v;
//   'I' io map: varint label count; per label str label, varint n, varint
//       node-ids (labels in sorted order);
//   'Z' trailer: 8-byte little-endian FNV-1a 64 checksum of every section
//       byte between the magic line and the 'Z' tag.
// str = varint byte-length + bytes; varints are LEB128. The checksum is
// verified before any payload is parsed, so truncation and bit flips fail
// fast with rca::Error instead of corrupting a load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "meta/metagraph.hpp"

namespace rca::meta {

enum class SnapshotFormat {
  kV1Text,    // human-readable line format
  kV2Binary,  // length-prefixed binary sections with checksum trailer
};

/// Writes `mg` to `out`. Node ids are the in-memory ids. Streams carrying
/// v2 payloads must be opened in binary mode.
void save_metagraph(const Metagraph& mg, std::ostream& out,
                    SnapshotFormat format = SnapshotFormat::kV1Text);
std::string save_metagraph_to_string(
    const Metagraph& mg, SnapshotFormat format = SnapshotFormat::kV1Text);

/// Reads a metagraph previously written by save_metagraph; the format is
/// detected from the magic line. Throws rca::Error on malformed input
/// (bad magic, checksum mismatch, truncation, dangling ids, ...).
Metagraph load_metagraph(std::istream& in);
Metagraph load_metagraph_from_string(const std::string& text);

namespace detail {
/// LEB128 encode (exposed so tests can craft adversarial v2 payloads with
/// valid framing and checksums).
void append_varint(std::string& out, std::uint64_t value);
/// FNV-1a 64-bit hash — the v2 trailer checksum and the snapshot cache key.
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 14695981039346656037ULL);
}  // namespace detail

}  // namespace rca::meta
