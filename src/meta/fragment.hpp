// Fragment-replay building blocks of the metagraph builder, exposed so the
// incremental transaction layer (transaction.hpp) can cache per-module
// fragments across session generations.
//
// A Fragment is the dependence op log one module walk produces: intern /
// add_edge / add_io_mapping calls against module-local ids. Replaying the
// fragments of a corpus in module order reproduces the serial build
// bit-for-bit (node ids are assigned by first-intern order, edge and io
// insertion order is preserved) — the invariant the parallel builder has
// relied on since it was introduced, and the one that makes patch-only
// rebuilds byte-identical to from-scratch builds.
//
// A fragment is plain copyable data (strings + vectors, no AST pointers), so
// it stays valid after the ASTs it was walked from are gone. It depends on
// exactly two inputs: the module's own AST, and the interface-level content
// of every module in the corpus (the symbol tables never read statement
// bodies) — which is what interface_signature() in transaction.hpp
// fingerprints.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"
#include "meta/builder.hpp"
#include "meta/metagraph.hpp"

namespace rca::analysis {
class ProgramSymbols;
struct ProgramSummaries;
}  // namespace rca::analysis

namespace rca::meta {

/// One candidate procedure a name may refer to.
struct ProcRef {
  const lang::Module* module = nullptr;
  const lang::Subprogram* sp = nullptr;
};

/// Static symbol tables built in the builder's pass 1. Reads only
/// interface-level module content: declarations, subprogram signatures,
/// interface blocks and use statements — never statement bodies.
struct SymbolTables {
  struct ModuleSyms {
    const lang::Module* ast = nullptr;
    // Local name -> candidate procedures (own subprograms, own interfaces,
    // imported subprograms/interfaces).
    std::unordered_map<std::string, std::vector<ProcRef>> procs;
    // Local name -> (owning module, remote name) for module variables
    // (own and imported; own map to themselves).
    std::unordered_map<std::string,
                       std::pair<const lang::Module*, std::string>>
        vars;
  };
  std::unordered_map<std::string, ModuleSyms> modules;

  // Interprocedural mod/ref context, built only when
  // BuilderOptions::summary_informed_pruning is set (null otherwise). The
  // summaries read statement bodies corpus-wide, which is why fragments
  // walked with them are not cacheable across body edits.
  std::shared_ptr<const analysis::ProgramSymbols> analysis_symbols;
  std::shared_ptr<const analysis::ProgramSummaries> summaries;
};

SymbolTables build_symbol_tables(const std::vector<const lang::Module*>& modules,
                                 const BuilderOptions& opts);

std::vector<const lang::Module*> filter_modules(
    const std::vector<const lang::Module*>& modules,
    const BuilderOptions& opts);

/// The dependence fragment one module walk produces: an op log against
/// module-local node ids. Self-contained and copyable.
struct Fragment {
  struct NodeKey {
    std::string module;
    std::string subprogram;
    std::string canonical;
    int line = 0;
    bool is_intrinsic = false;
    bool is_prng_site = false;
  };
  enum class OpKind : std::uint8_t { kNode, kEdge, kIo };
  struct Op {
    OpKind kind;
    // kNode: a = key index. kEdge: a -> b (local ids).
    // kIo: a = io_labels index, b = local node id.
    std::uint32_t a = 0;
    std::uint32_t b = 0;
  };

  std::vector<NodeKey> keys;
  std::vector<Op> ops;
  std::vector<std::string> io_labels;
  std::size_t assignments_processed = 0;
  std::size_t assignments_failed = 0;
  std::size_t calls_processed = 0;
  std::size_t dead_stores_pruned = 0;

  friend bool operator==(const NodeKey& a, const NodeKey& b) {
    return a.line == b.line && a.is_intrinsic == b.is_intrinsic &&
           a.is_prng_site == b.is_prng_site && a.canonical == b.canonical &&
           a.subprogram == b.subprogram && a.module == b.module;
  }
  friend bool operator==(const Op& a, const Op& b) {
    return a.kind == b.kind && a.a == b.a && a.b == b.b;
  }
  // Deep equality: two equal fragments replay to identical graph state. The
  // transaction layer uses this to detect that a re-walked dirty module
  // produced the same dependence content as before (comment-only edits) and
  // skip the whole-corpus replay.
  friend bool operator==(const Fragment& a, const Fragment& b) {
    return a.assignments_processed == b.assignments_processed &&
           a.assignments_failed == b.assignments_failed &&
           a.calls_processed == b.calls_processed &&
           a.dead_stores_pruned == b.dead_stores_pruned && a.ops == b.ops &&
           a.keys == b.keys && a.io_labels == b.io_labels;
  }
};

/// Walks one module's statements against the corpus-wide symbol tables,
/// returning its dependence fragment. Pure function of (module AST, tables,
/// opts) — safe to run concurrently for different modules.
Fragment walk_module(const lang::Module& m, const SymbolTables& tables,
                     const BuilderOptions& opts);

/// Replays a fragment's op log against the shared metagraph, translating
/// local ids through the global intern (idempotent across fragments: the
/// first fragment in module order to intern a key sets its line/flags,
/// exactly as the serial walk would).
void replay_fragment(const Fragment& frag, Metagraph& mg);

}  // namespace rca::meta
