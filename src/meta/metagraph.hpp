// Metagraph: the CESM-style variable-dependency digraph plus metadata
// (paper §4). Nodes are variables appearing in assignment statements; a
// directed edge u -> v means "u's value flows into v" through an assignment,
// a call-argument binding, or an intrinsic application.
//
// Node identity follows the paper:
//   * canonical name — the variable name before digraph entry; for derived
//     types the final component (state%omega -> "omega");
//   * unique name — canonical name suffixed with the containing scope
//     ("dum__micro_mg_tend"), further disambiguated by module if needed;
//   * metadata — module, subprogram, first line seen;
//   * intrinsics are localized per call site ("min_100__modname") to avoid
//     spurious highly connected nodes.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/digraph.hpp"
#include "interp/interpreter.hpp"
#include "lang/ast.hpp"

namespace rca::meta {

struct NodeInfo {
  std::string unique_name;
  std::string canonical_name;
  std::string module;
  std::string subprogram;  // empty for module-level variables
  int line = 0;            // first sighting
  bool is_intrinsic = false;
  bool is_prng_site = false;  // pseudo-node for a PRNG call site
};

class Metagraph {
 public:
  const graph::Digraph& graph() const { return graph_; }
  graph::Digraph& graph() { return graph_; }

  std::size_t node_count() const { return info_.size(); }
  const NodeInfo& info(graph::NodeId v) const { return info_[v]; }
  const std::vector<NodeInfo>& all_info() const { return info_; }

  /// Find or create a node; returns its id. Uniqueness is on
  /// (module, subprogram, canonical_name).
  graph::NodeId intern(const std::string& module, const std::string& subprogram,
                       const std::string& canonical, int line,
                       bool is_intrinsic = false, bool is_prng_site = false);

  /// Lookup without creation; returns kInvalidNode when absent.
  graph::NodeId find(const std::string& module, const std::string& subprogram,
                     const std::string& canonical) const;

  /// All nodes whose canonical name matches (the slicer's target resolution).
  std::vector<graph::NodeId> by_canonical(const std::string& canonical) const;

  /// All nodes belonging to one module.
  std::vector<graph::NodeId> by_module(const std::string& module) const;

  /// Distinct module names, in first-seen order.
  const std::vector<std::string>& modules() const { return module_order_; }

  /// Dense per-node module class ids (for quotient_graph) and the class
  /// count; class ids follow modules() order.
  std::vector<graph::NodeId> module_classes() const;

  /// Watch key for runtime sampling of this node.
  interp::WatchKey watch_key(graph::NodeId v) const;

  /// Map: output label written via `call outfld('LABEL', var)` (lower-cased)
  /// -> internal variable nodes passed at any call site. This is the paper's
  /// instrumented I/O-name mapping (§5.1). Ordered (std::map) so that every
  /// serialization of the same graph is byte-identical regardless of label
  /// insertion order — the snapshot cache diffs saved text exactly.
  const std::map<std::string, std::vector<graph::NodeId>>& io_map() const {
    return io_map_;
  }
  void add_io_mapping(const std::string& label, graph::NodeId node);

  // Build statistics (paper reports all but 10 of ~660k lines parsed).
  std::size_t assignments_processed = 0;
  std::size_t assignments_failed = 0;
  std::size_t calls_processed = 0;
  std::size_t dead_stores_pruned = 0;  // BuilderOptions::prune_dead_stores

 private:
  static std::string scope_key(const std::string& module,
                               const std::string& subprogram,
                               const std::string& canonical) {
    return module + "\x1f" + subprogram + "\x1f" + canonical;
  }

  graph::Digraph graph_;
  std::vector<NodeInfo> info_;
  std::unordered_map<std::string, graph::NodeId> by_scope_key_;
  std::unordered_map<std::string, std::vector<graph::NodeId>> by_canonical_;
  std::unordered_map<std::string, std::vector<graph::NodeId>> by_module_;
  std::vector<std::string> module_order_;
  std::map<std::string, std::vector<graph::NodeId>> io_map_;
  std::unordered_map<std::string, int> unique_name_uses_;
};

}  // namespace rca::meta
