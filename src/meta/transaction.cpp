#include "meta/transaction.hpp"

#include <unordered_map>
#include <utility>

#include "fault/fault.hpp"
#include "lang/printer.hpp"
#include "meta/snapshot_cache.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace rca::meta {

namespace {

void add_expr(SnapshotKey& key, const lang::Expr* e) {
  // Extent/initializer expressions have no cheap identity; their printed
  // form is deterministic and exactly as discriminating as the AST.
  key.add(e != nullptr ? lang::print_expr(*e) : std::string());
}

void add_decl(SnapshotKey& key, const lang::VarDecl& d) {
  key.add(d.name);
  key.add_u64(static_cast<std::uint64_t>(d.type.kind));
  key.add(d.type.derived_name);
  key.add_u64(d.dims.size());
  for (const auto& dim : d.dims) add_expr(key, dim.get());
  key.add_u64(d.is_parameter ? 1 : 0);
  add_expr(key, d.init.get());
  key.add_u64(static_cast<std::uint64_t>(d.intent));
  key.add_u64(static_cast<std::uint64_t>(d.line));
}

void add_use(SnapshotKey& key, const lang::UseStmt& use) {
  key.add(use.module);
  key.add_u64(use.has_only ? 1 : 0);
  key.add_u64(use.renames.size());
  for (const auto& r : use.renames) {
    key.add(r.local);
    key.add(r.remote);
  }
}

}  // namespace

std::uint64_t interface_signature(const lang::Module& m) {
  SnapshotKey key;
  key.add("rca-iface-sig-v1");
  key.add(m.name);
  key.add_u64(m.uses.size());
  for (const auto& use : m.uses) add_use(key, use);
  key.add_u64(m.types.size());
  for (const auto& t : m.types) {
    key.add(t.name);
    key.add_u64(t.components.size());
    for (const auto& c : t.components) add_decl(key, c);
  }
  key.add_u64(m.decls.size());
  for (const auto& d : m.decls) add_decl(key, d);
  key.add_u64(m.interfaces.size());
  for (const auto& iface : m.interfaces) {
    key.add(iface.name);
    key.add_u64(static_cast<std::uint64_t>(iface.line));
    for (const auto& proc : iface.procedures) key.add(proc);
  }
  key.add_u64(m.subprograms.size());
  for (const auto& sp : m.subprograms) {
    key.add_u64(static_cast<std::uint64_t>(sp.kind));
    key.add(sp.name);
    key.add_u64(static_cast<std::uint64_t>(sp.line));
    key.add_u64(sp.params.size());
    for (const auto& p : sp.params) key.add(p);
    key.add(sp.result_name);
    key.add_u64(sp.uses.size());
    for (const auto& use : sp.uses) add_use(key, use);
    key.add_u64(sp.decls.size());
    for (const auto& d : sp.decls) add_decl(key, d);
  }
  return key.digest();
}

TxnResult run_transaction(const std::vector<TxnInput>& inputs,
                          const TxnState* base, const BuilderOptions& opts,
                          std::shared_ptr<const Metagraph> base_mg) {
  RCA_CHECK_MSG(!opts.module_filter && !opts.subprogram_filter,
                "coverage-filtered sessions are not incremental-eligible");
  obs::Span span("meta.txn");

  // Stage: signatures + corpus fingerprint over the post-edit sequence.
  // Signatures are pure per-module hashes, so they pool like the walks; the
  // fingerprint itself folds them serially in module order.
  std::vector<std::uint64_t> sigs;
  if (opts.pool != nullptr && inputs.size() > 1) {
    sigs = opts.pool->parallel_map<std::uint64_t>(
        inputs.size(),
        [&inputs](std::size_t i) {
          return interface_signature(*inputs[i].module);
        });
  } else {
    sigs.reserve(inputs.size());
    for (const TxnInput& in : inputs) {
      sigs.push_back(interface_signature(*in.module));
    }
  }
  auto next = std::make_shared<TxnState>();
  next->entries.reserve(inputs.size());
  SnapshotKey fingerprint;
  fingerprint.add("rca-iface-fingerprint-v1");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    TxnState::Entry e;
    e.path = inputs[i].path;
    e.module = inputs[i].module->name;
    e.iface_sig = sigs[i];
    fingerprint.add(e.module);
    fingerprint.add_u64(e.iface_sig);
    next->entries.push_back(std::move(e));
  }
  next->iface_fingerprint = fingerprint.digest();

  TxnStats stats;
  // Summary-informed pruning makes a module's fragment depend on OTHER
  // modules' statement bodies (their mod/ref summaries), which the interface
  // fingerprint deliberately does not cover — cached fragments are never
  // reusable under that option.
  stats.full_rewalk = opts.summary_informed_pruning || base == nullptr ||
                      base->iface_fingerprint != next->iface_fingerprint;

  // Reuse decision per module: same (path, name) entry in the base state,
  // clean file, no interface escalation.
  std::unordered_map<std::string, const TxnState::Entry*> base_by_key;
  if (!stats.full_rewalk) {
    for (const TxnState::Entry& e : base->entries) {
      base_by_key.emplace(e.path + "\x1f" + e.module, &e);
    }
  }

  std::vector<std::size_t> to_walk;
  to_walk.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const TxnInput& in = inputs[i];
    if (!stats.full_rewalk && !in.dirty) {
      auto it = base_by_key.find(in.path + "\x1f" + in.module->name);
      if (it != base_by_key.end() && it->second->frag != nullptr) {
        next->entries[i].frag = it->second->frag;
        continue;
      }
    }
    to_walk.push_back(i);
  }

  // Symbol tables for the dirty walks: carried forward from the base while
  // no interface signature changed (see TxnState::tables), rebuilt from the
  // staged module sequence otherwise.
  std::shared_ptr<const SymbolTables> tables;
  if (!stats.full_rewalk && base->tables != nullptr) {
    tables = base->tables;
    next->keepalive = base->keepalive;
  } else {
    std::vector<const lang::Module*> walk_modules;
    walk_modules.reserve(inputs.size());
    for (const TxnInput& in : inputs) walk_modules.push_back(in.module);
    tables =
        std::make_shared<const SymbolTables>(build_symbol_tables(walk_modules, opts));
    // Modules of one file are consecutive in module order, so adjacent
    // dedup keeps one handle per file.
    for (const TxnInput& in : inputs) {
      if (in.owner &&
          (next->keepalive.empty() || next->keepalive.back() != in.owner)) {
        next->keepalive.push_back(in.owner);
      }
    }
  }
  next->tables = tables;

  auto walk_one = [&inputs, &to_walk, &tables, &opts](std::size_t j) {
    return walk_module(*inputs[to_walk[j]].module, *tables, opts);
  };
  std::vector<Fragment> fresh;
  if (opts.pool != nullptr && to_walk.size() > 1) {
    fresh = opts.pool->parallel_map<Fragment>(to_walk.size(), walk_one);
  } else {
    fresh.reserve(to_walk.size());
    for (std::size_t j = 0; j < to_walk.size(); ++j) {
      fresh.push_back(walk_one(j));
    }
  }
  for (std::size_t j = 0; j < to_walk.size(); ++j) {
    stats.spliced_nodes += fresh[j].keys.size();
    next->entries[to_walk[j]].frag =
        std::make_shared<const Fragment>(std::move(fresh[j]));
  }
  stats.rebuilt_modules = to_walk.size();
  stats.reused_fragments = inputs.size() - to_walk.size();

  // No-op fast path: if every re-walked fragment came back deep-equal to its
  // cached predecessor (comment-only touches — bytes changed, dependence
  // content did not), replaying would reproduce the base graph byte-for-byte.
  // Alias it instead of re-interning the whole corpus; this is what makes a
  // warm single-module touch edit an order of magnitude cheaper than a cold
  // build. The fault site still fires per entry so chaos specs hit the fast
  // path and the replay path alike.
  bool unchanged = !stats.full_rewalk && base_mg != nullptr &&
                   base->entries.size() == next->entries.size();
  if (unchanged) {
    for (std::size_t i = 0; i < next->entries.size(); ++i) {
      const auto& ours = next->entries[i];
      const auto& theirs = base->entries[i];
      if (ours.module != theirs.module || theirs.frag == nullptr ||
          (ours.frag != theirs.frag && !(*ours.frag == *theirs.frag))) {
        unchanged = false;
        break;
      }
    }
  }

  TxnResult result;
  if (unchanged) {
    for (std::size_t i = 0; i < next->entries.size(); ++i) {
      RCA_FAULT_POINT("meta.txn.splice");
    }
    result.mg = std::move(base_mg);
    obs::count("meta.txn.graph_reuses");
  } else {
    // Splice: deterministic module-order replay into a fresh graph. The
    // fault site fires per fragment so a chaos spec with a small probability
    // lands inside real commits; a throw here discards everything staged
    // above.
    auto mg = std::make_shared<Metagraph>();
    for (const TxnState::Entry& e : next->entries) {
      RCA_FAULT_POINT("meta.txn.splice");
      replay_fragment(*e.frag, *mg);
    }
    result.mg = std::move(mg);
  }

  obs::count("meta.txn.commits");
  if (stats.full_rewalk) obs::count("meta.txn.full_rewalks");
  obs::count("meta.txn.rebuilt_modules", stats.rebuilt_modules);
  obs::count("meta.txn.reused_fragments", stats.reused_fragments);
  obs::count("meta.txn.spliced_nodes", stats.spliced_nodes);
  span.attr("rebuilt", stats.rebuilt_modules);
  span.attr("reused", stats.reused_fragments);
  span.attr("full_rewalk", stats.full_rewalk);

  result.state = std::move(next);
  result.stats = stats;
  return result;
}

}  // namespace rca::meta
