#include "meta/snapshot_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "meta/serialize.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace rca::meta {

namespace fs = std::filesystem;

namespace {

std::string le64(std::uint64_t value) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  return out;
}

}  // namespace

SnapshotKey& SnapshotKey::add(std::string_view bytes) {
  hash_ = detail::fnv1a64(le64(bytes.size()), hash_);
  hash_ = detail::fnv1a64(bytes, hash_);
  return *this;
}

SnapshotKey& SnapshotKey::add_u64(std::uint64_t value) {
  hash_ = detail::fnv1a64(le64(value), hash_);
  return *this;
}

std::string SnapshotKey::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return std::string(buf, 16);
}

SnapshotCache::SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

std::string SnapshotCache::path_for(const SnapshotKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".rmg2")).string();
}

std::optional<Metagraph> SnapshotCache::try_load(const SnapshotKey& key) const {
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    obs::count("meta.snapshot.misses");
    return std::nullopt;
  }
  try {
    Metagraph mg = load_metagraph(in);
    obs::count("meta.snapshot.hits");
    return mg;
  } catch (const Error&) {
    // Corrupt entry (torn write, stale format): treat as a miss; the caller
    // rebuilds and store() overwrites it.
    obs::count("meta.snapshot.misses");
    obs::count("meta.snapshot.corrupt");
    return std::nullopt;
  }
}

bool SnapshotCache::store(const SnapshotKey& key, const Metagraph& mg) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    save_metagraph(mg, out, SnapshotFormat::kV2Binary);
    out.flush();
    if (!out.good()) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  obs::count("meta.snapshot.stores");
  return true;
}

}  // namespace rca::meta
