#include "meta/snapshot_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "fault/fault.hpp"
#include "meta/serialize.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace rca::meta {

namespace fs = std::filesystem;

namespace {

std::string le64(std::uint64_t value) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  return out;
}

/// write(2) the whole buffer, retrying on EINTR and partial writes.
bool write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SnapshotKey& SnapshotKey::add(std::string_view bytes) {
  hash_ = detail::fnv1a64(le64(bytes.size()), hash_);
  hash_ = detail::fnv1a64(bytes, hash_);
  return *this;
}

SnapshotKey& SnapshotKey::add_u64(std::uint64_t value) {
  hash_ = detail::fnv1a64(le64(value), hash_);
  return *this;
}

std::string SnapshotKey::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return std::string(buf, 16);
}

SnapshotCache::SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

std::string SnapshotCache::path_for(const SnapshotKey& key) const {
  return (fs::path(dir_) / (key.hex() + ".rmg2")).string();
}

std::optional<Metagraph> SnapshotCache::try_load(const SnapshotKey& key) const {
  const std::string path = path_for(key);
  const fault::Hit h = RCA_FAULT_CHECK("meta.snapshot.read");
  std::error_code ec;
  if (h.action == fault::Action::kErrno || !fs::exists(path, ec) || ec) {
    // Absent entry (or an unreadable directory): an expected cold start,
    // distinct from corruption — meta.snapshot.missing tells them apart.
    obs::count("meta.snapshot.misses");
    obs::count("meta.snapshot.missing");
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Exists but cannot be opened: treat like corruption (quarantine would
    // fail too, so just miss) rather than a silent cold start.
    obs::count("meta.snapshot.misses");
    obs::count("meta.snapshot.corrupt");
    return std::nullopt;
  }
  try {
    Metagraph mg = load_metagraph(in);
    obs::count("meta.snapshot.hits");
    return mg;
  } catch (const Error& e) {
    // Corrupt entry (torn write, bit rot, stale format): quarantine it under
    // a .corrupt sidecar name so the slot reads as cleanly missing from now
    // on, log why (load_metagraph includes the checksum mismatch offset),
    // and report a miss — the caller rebuilds instead of failing.
    obs::count("meta.snapshot.misses");
    obs::count("meta.snapshot.corrupt");
    std::error_code rename_ec;
    fs::rename(path, path + ".corrupt", rename_ec);
    if (!rename_ec) obs::count("meta.snapshot.quarantined");
    std::fprintf(stderr,
                 "rca: quarantined corrupt snapshot %s%s (%s); rebuilding\n",
                 path.c_str(), rename_ec ? " [rename failed]" : ".corrupt",
                 e.what());
    return std::nullopt;
  }
}

bool SnapshotCache::store(const SnapshotKey& key, const Metagraph& mg) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";

  std::string bytes = save_metagraph_to_string(mg, SnapshotFormat::kV2Binary);
  const fault::Hit h = RCA_FAULT_CHECK("meta.snapshot.write");
  if (h.action == fault::Action::kErrno) return false;
  std::size_t to_write = bytes.size();
  if (h.action == fault::Action::kShortWrite) {
    // Torn write: half the payload still reaches the final name, simulating
    // a crash window where the rename was durable but the data was not. The
    // next try_load must quarantine and rebuild.
    to_write /= 2;
  }

  // Atomic publish: write the whole payload to a temp file, fsync it, then
  // rename over the final name — a reader sees the old entry, no entry, or
  // the complete new entry, never a partially written one (short of the
  // injected torn-write above, which models the storage lying about
  // durability).
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool wrote = write_all_fd(fd, bytes.data(), to_write);
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    fs::remove(tmp, ec);
    return false;
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  // Make the rename itself durable (best effort; some filesystems need the
  // directory entry synced too).
  const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  obs::count("meta.snapshot.stores");
  return true;
}

}  // namespace rca::meta
