#include "meta/serialize.hpp"

#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::meta {

using graph::NodeId;

void save_metagraph(const Metagraph& mg, std::ostream& out) {
  out << "rca-metagraph 1\n";
  out << "# nodes " << mg.node_count() << ", edges "
      << mg.graph().edge_count() << "\n";
  for (NodeId v = 0; v < mg.node_count(); ++v) {
    const NodeInfo& info = mg.info(v);
    out << "node\t" << v << '\t' << info.canonical_name << '\t' << info.module
        << '\t' << (info.subprogram.empty() ? "-" : info.subprogram) << '\t'
        << info.line << '\t';
    std::string flags;
    if (info.is_intrinsic) flags += 'i';
    if (info.is_prng_site) flags += 'p';
    out << (flags.empty() ? "-" : flags) << '\n';
  }
  for (const auto& [u, v] : mg.graph().edges()) {
    out << "edge\t" << u << '\t' << v << '\n';
  }
  for (const auto& [label, nodes] : mg.io_map()) {
    out << "io\t" << label;
    for (NodeId v : nodes) out << '\t' << v;
    out << '\n';
  }
}

std::string save_metagraph_to_string(const Metagraph& mg) {
  std::ostringstream os;
  save_metagraph(mg, os);
  return os.str();
}

Metagraph load_metagraph(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || trim(line) != "rca-metagraph 1") {
    throw Error("load_metagraph: bad magic line");
  }
  Metagraph mg;
  // Buffered edges/io resolved after all nodes exist.
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::pair<std::string, std::vector<NodeId>>> io;
  NodeId expected_id = 0;

  while (std::getline(in, line)) {
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const std::vector<std::string> fields = split(std::string(sv), '\t');
    const std::string& kind = fields[0];
    if (kind == "node") {
      if (fields.size() != 7) throw Error("load_metagraph: bad node line");
      const NodeId id = static_cast<NodeId>(std::stoul(fields[1]));
      if (id != expected_id++) {
        throw Error("load_metagraph: node ids must be dense and ordered");
      }
      const std::string& canonical = fields[2];
      const std::string& module = fields[3];
      const std::string subprogram = fields[4] == "-" ? "" : fields[4];
      const int decl_line = std::stoi(fields[5]);
      const bool is_intrinsic = fields[6].find('i') != std::string::npos;
      const bool is_prng = fields[6].find('p') != std::string::npos;
      const NodeId got = mg.intern(module, subprogram, canonical, decl_line,
                                   is_intrinsic, is_prng);
      if (got != id) {
        throw Error("load_metagraph: duplicate node identity for id " +
                    fields[1]);
      }
    } else if (kind == "edge") {
      if (fields.size() != 3) throw Error("load_metagraph: bad edge line");
      edges.emplace_back(static_cast<NodeId>(std::stoul(fields[1])),
                         static_cast<NodeId>(std::stoul(fields[2])));
    } else if (kind == "io") {
      if (fields.size() < 2) throw Error("load_metagraph: bad io line");
      std::vector<NodeId> nodes;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        nodes.push_back(static_cast<NodeId>(std::stoul(fields[i])));
      }
      io.emplace_back(fields[1], std::move(nodes));
    } else {
      throw Error("load_metagraph: unknown record '" + kind + "'");
    }
  }

  for (const auto& [u, v] : edges) {
    if (u >= mg.node_count() || v >= mg.node_count()) {
      throw Error("load_metagraph: edge references unknown node");
    }
    mg.graph().add_edge(u, v);
  }
  for (const auto& [label, nodes] : io) {
    for (NodeId v : nodes) {
      if (v >= mg.node_count()) {
        throw Error("load_metagraph: io map references unknown node");
      }
      mg.add_io_mapping(label, v);
    }
  }
  return mg;
}

Metagraph load_metagraph_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_metagraph(is);
}

}  // namespace rca::meta
