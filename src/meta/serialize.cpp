#include "meta/serialize.hpp"

#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <utility>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::meta {

using graph::NodeId;

namespace detail {

void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace detail

namespace {

constexpr char kMagicV1[] = "rca-metagraph 1";
constexpr char kMagicV2[] = "rca-metagraph 2";

// ---------------------------------------------------------------------------
// v1 text format
// ---------------------------------------------------------------------------

void save_v1(const Metagraph& mg, std::ostream& out) {
  out << kMagicV1 << "\n";
  out << "# nodes " << mg.node_count() << ", edges "
      << mg.graph().edge_count() << "\n";
  for (NodeId v = 0; v < mg.node_count(); ++v) {
    const NodeInfo& info = mg.info(v);
    out << "node\t" << v << '\t' << info.canonical_name << '\t' << info.module
        << '\t' << (info.subprogram.empty() ? "-" : info.subprogram) << '\t'
        << info.line << '\t';
    std::string flags;
    if (info.is_intrinsic) flags += 'i';
    if (info.is_prng_site) flags += 'p';
    out << (flags.empty() ? "-" : flags) << '\n';
  }
  for (const auto& [u, v] : mg.graph().edges()) {
    out << "edge\t" << u << '\t' << v << '\n';
  }
  for (const auto& [label, nodes] : mg.io_map()) {
    out << "io\t" << label;
    for (NodeId v : nodes) out << '\t' << v;
    out << '\n';
  }
}

unsigned long parse_num(const std::string& field, const char* what) {
  try {
    std::size_t pos = 0;
    const unsigned long value = std::stoul(field, &pos);
    if (pos != field.size()) throw Error(std::string("trailing junk in ") + what);
    return value;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error(std::string("load_metagraph: bad ") + what + " '" + field +
                "'");
  }
}

Metagraph load_v1(std::istream& in) {
  Metagraph mg;
  // Buffered edges/io resolved after all nodes exist.
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::pair<std::string, std::vector<NodeId>>> io;
  NodeId expected_id = 0;

  std::string line;
  while (std::getline(in, line)) {
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const std::vector<std::string> fields = split(std::string(sv), '\t');
    const std::string& kind = fields[0];
    if (kind == "node") {
      if (fields.size() != 7) throw Error("load_metagraph: bad node line");
      const NodeId id = static_cast<NodeId>(parse_num(fields[1], "node id"));
      if (id != expected_id++) {
        throw Error("load_metagraph: node ids must be dense and ordered");
      }
      const std::string& canonical = fields[2];
      const std::string& module = fields[3];
      const std::string subprogram = fields[4] == "-" ? "" : fields[4];
      const int decl_line =
          static_cast<int>(parse_num(fields[5], "node line"));
      const bool is_intrinsic = fields[6].find('i') != std::string::npos;
      const bool is_prng = fields[6].find('p') != std::string::npos;
      const NodeId got = mg.intern(module, subprogram, canonical, decl_line,
                                   is_intrinsic, is_prng);
      if (got != id) {
        throw Error("load_metagraph: duplicate node identity for id " +
                    fields[1]);
      }
    } else if (kind == "edge") {
      if (fields.size() != 3) throw Error("load_metagraph: bad edge line");
      edges.emplace_back(static_cast<NodeId>(parse_num(fields[1], "edge u")),
                         static_cast<NodeId>(parse_num(fields[2], "edge v")));
    } else if (kind == "io") {
      if (fields.size() < 2) throw Error("load_metagraph: bad io line");
      std::vector<NodeId> nodes;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        nodes.push_back(static_cast<NodeId>(parse_num(fields[i], "io node")));
      }
      io.emplace_back(fields[1], std::move(nodes));
    } else {
      throw Error("load_metagraph: unknown record '" + kind + "'");
    }
  }

  for (const auto& [u, v] : edges) {
    if (u >= mg.node_count() || v >= mg.node_count()) {
      throw Error("load_metagraph: edge references unknown node");
    }
    mg.graph().add_edge(u, v);
  }
  for (const auto& [label, nodes] : io) {
    for (NodeId v : nodes) {
      if (v >= mg.node_count()) {
        throw Error("load_metagraph: io map references unknown node");
      }
      mg.add_io_mapping(label, v);
    }
  }
  return mg;
}

// ---------------------------------------------------------------------------
// v2 binary format
// ---------------------------------------------------------------------------

void append_str(std::string& out, const std::string& s) {
  detail::append_varint(out, s.size());
  out.append(s);
}

void append_section(std::string& out, char tag, const std::string& payload) {
  out.push_back(tag);
  detail::append_varint(out, payload.size());
  out.append(payload);
}

void save_v2(const Metagraph& mg, std::ostream& out) {
  std::string body;

  std::string nodes;
  detail::append_varint(nodes, mg.node_count());
  for (NodeId v = 0; v < mg.node_count(); ++v) {
    const NodeInfo& info = mg.info(v);
    append_str(nodes, info.canonical_name);
    append_str(nodes, info.module);
    append_str(nodes, info.subprogram);
    detail::append_varint(nodes, static_cast<std::uint64_t>(info.line));
    const std::uint8_t flags = (info.is_intrinsic ? 0x01 : 0x00) |
                               (info.is_prng_site ? 0x02 : 0x00);
    nodes.push_back(static_cast<char>(flags));
  }
  append_section(body, 'N', nodes);

  // Edges come out of Digraph ordered by u, so delta-encoding u compresses
  // the common consecutive-source runs to a single byte.
  std::string edges;
  detail::append_varint(edges, mg.graph().edge_count());
  NodeId prev_u = 0;
  for (const auto& [u, v] : mg.graph().edges()) {
    detail::append_varint(edges, u - prev_u);
    detail::append_varint(edges, v);
    prev_u = u;
  }
  append_section(body, 'E', edges);

  std::string io;
  detail::append_varint(io, mg.io_map().size());
  for (const auto& [label, ids] : mg.io_map()) {
    append_str(io, label);
    detail::append_varint(io, ids.size());
    for (NodeId v : ids) detail::append_varint(io, v);
  }
  append_section(body, 'I', io);

  std::string checksum;
  const std::uint64_t h = detail::fnv1a64(body);
  for (int i = 0; i < 8; ++i) {
    checksum.push_back(static_cast<char>((h >> (8 * i)) & 0xFF));
  }
  append_section(body, 'Z', checksum);

  out << kMagicV2 << "\n";
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
}

/// Bounds-checked cursor over a v2 byte buffer; every read throws rca::Error
/// on truncation instead of walking off the end.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t pos() const { return pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  std::uint8_t read_byte() {
    if (pos_ >= bytes_.size()) throw Error("load_metagraph: truncated v2 data");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint64_t read_varint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = read_byte();
      value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        if (shift == 63 && (b & 0x7E) != 0) {
          throw Error("load_metagraph: varint overflow");
        }
        return value;
      }
    }
    throw Error("load_metagraph: varint too long");
  }

  std::string_view read_bytes(std::size_t n) {
    if (n > bytes_.size() - pos_) {
      throw Error("load_metagraph: truncated v2 data");
    }
    std::string_view sv = bytes_.substr(pos_, n);
    pos_ += n;
    return sv;
  }

  std::string read_str() {
    const std::uint64_t len = read_varint();
    if (len > bytes_.size()) throw Error("load_metagraph: string too long");
    return std::string(read_bytes(static_cast<std::size_t>(len)));
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

NodeId checked_node_id(std::uint64_t raw, std::uint64_t node_count,
                       const char* what) {
  if (raw >= node_count) {
    throw Error(std::string("load_metagraph: ") + what +
                " references unknown node");
  }
  return static_cast<NodeId>(raw);
}

Metagraph load_v2(std::istream& in) {
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  // Pass 1 — frame the sections and verify the checksum trailer before any
  // payload is interpreted.
  struct Section {
    char tag;
    std::string_view payload;
  };
  std::vector<Section> sections;
  std::size_t trailer_offset = 0;
  {
    Reader frame{std::string_view(body)};
    while (!frame.done()) {
      const std::size_t header_at = frame.pos();
      const char tag = static_cast<char>(frame.read_byte());
      const std::uint64_t len = frame.read_varint();
      if (len > body.size()) throw Error("load_metagraph: bad section length");
      const std::string_view payload =
          frame.read_bytes(static_cast<std::size_t>(len));
      sections.push_back(Section{tag, payload});
      if (tag == 'Z') {
        trailer_offset = header_at;
        if (!frame.done()) {
          throw Error("load_metagraph: trailing bytes after checksum");
        }
      }
    }
  }
  static constexpr char kExpectedTags[] = {'N', 'E', 'I', 'Z'};
  if (sections.size() != 4) {
    throw Error("load_metagraph: v2 snapshot must have N, E, I, Z sections");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (sections[i].tag != kExpectedTags[i]) {
      throw Error(std::string("load_metagraph: unexpected section '") +
                  sections[i].tag + "'");
    }
  }
  if (sections[3].payload.size() != 8) {
    throw Error("load_metagraph: bad checksum trailer");
  }
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(sections[3].payload[i]))
              << (8 * i);
  }
  const std::uint64_t actual =
      detail::fnv1a64(std::string_view(body).substr(0, trailer_offset));
  if (stored != actual) {
    // The offset and both digests go into the message so the cache layer can
    // log exactly where the payload diverged from its trailer.
    char detail_buf[96];
    std::snprintf(detail_buf, sizeof(detail_buf),
                  "stored %016llx != actual %016llx over bytes [0, %zu)",
                  static_cast<unsigned long long>(stored),
                  static_cast<unsigned long long>(actual), trailer_offset);
    throw Error(std::string("load_metagraph: checksum mismatch (corrupt "
                            "snapshot): ") +
                detail_buf);
  }

  // Pass 2 — parse the verified payloads.
  Metagraph mg;

  Reader nodes{sections[0].payload};
  const std::uint64_t node_count = nodes.read_varint();
  for (std::uint64_t id = 0; id < node_count; ++id) {
    const std::string canonical = nodes.read_str();
    const std::string module = nodes.read_str();
    const std::string subprogram = nodes.read_str();
    const std::uint64_t line = nodes.read_varint();
    const std::uint8_t flags = nodes.read_byte();
    if ((flags & ~0x03) != 0) throw Error("load_metagraph: bad node flags");
    const NodeId got =
        mg.intern(module, subprogram, canonical, static_cast<int>(line),
                  (flags & 0x01) != 0, (flags & 0x02) != 0);
    if (got != id) {
      throw Error("load_metagraph: duplicate node identity for id " +
                  std::to_string(id));
    }
  }
  if (!nodes.done()) throw Error("load_metagraph: trailing bytes in N section");

  Reader edges{sections[1].payload};
  const std::uint64_t edge_count = edges.read_varint();
  std::uint64_t prev_u = 0;
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    prev_u += edges.read_varint();
    const NodeId u = checked_node_id(prev_u, node_count, "edge");
    const NodeId v = checked_node_id(edges.read_varint(), node_count, "edge");
    mg.graph().add_edge(u, v);
  }
  if (!edges.done()) throw Error("load_metagraph: trailing bytes in E section");

  Reader io{sections[2].payload};
  const std::uint64_t label_count = io.read_varint();
  for (std::uint64_t i = 0; i < label_count; ++i) {
    const std::string label = io.read_str();
    const std::uint64_t n = io.read_varint();
    for (std::uint64_t j = 0; j < n; ++j) {
      mg.add_io_mapping(label,
                        checked_node_id(io.read_varint(), node_count, "io"));
    }
  }
  if (!io.done()) throw Error("load_metagraph: trailing bytes in I section");

  return mg;
}

}  // namespace

void save_metagraph(const Metagraph& mg, std::ostream& out,
                    SnapshotFormat format) {
  if (format == SnapshotFormat::kV2Binary) {
    save_v2(mg, out);
  } else {
    save_v1(mg, out);
  }
}

std::string save_metagraph_to_string(const Metagraph& mg,
                                     SnapshotFormat format) {
  std::ostringstream os;
  save_metagraph(mg, os, format);
  return os.str();
}

Metagraph load_metagraph(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw Error("load_metagraph: bad magic line");
  }
  const std::string magic{trim(line)};  // tolerate CRLF magic lines
  if (magic == kMagicV1) return load_v1(in);
  if (magic == kMagicV2) return load_v2(in);
  throw Error("load_metagraph: bad magic line");
}

Metagraph load_metagraph_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_metagraph(is);
}

}  // namespace rca::meta
