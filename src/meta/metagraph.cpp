#include "meta/metagraph.hpp"

#include "support/error.hpp"

namespace rca::meta {

graph::NodeId Metagraph::intern(const std::string& module,
                                const std::string& subprogram,
                                const std::string& canonical, int line,
                                bool is_intrinsic, bool is_prng_site) {
  const std::string key = scope_key(module, subprogram, canonical);
  auto it = by_scope_key_.find(key);
  if (it != by_scope_key_.end()) return it->second;

  const graph::NodeId id = graph_.add_nodes(1);
  NodeInfo info;
  info.canonical_name = canonical;
  info.module = module;
  info.subprogram = subprogram;
  info.line = line;
  info.is_intrinsic = is_intrinsic;
  info.is_prng_site = is_prng_site;

  // Unique display name: canonical__scope, disambiguated on collision.
  const std::string scope = subprogram.empty() ? module : subprogram;
  std::string unique = canonical + "__" + scope;
  int& uses = unique_name_uses_[unique];
  if (uses > 0) unique += "__" + module;
  ++uses;
  info.unique_name = unique;

  info_.push_back(std::move(info));
  by_scope_key_[key] = id;
  by_canonical_[canonical].push_back(id);
  auto mit = by_module_.find(module);
  if (mit == by_module_.end()) {
    module_order_.push_back(module);
    by_module_[module].push_back(id);
  } else {
    mit->second.push_back(id);
  }
  return id;
}

graph::NodeId Metagraph::find(const std::string& module,
                              const std::string& subprogram,
                              const std::string& canonical) const {
  auto it = by_scope_key_.find(scope_key(module, subprogram, canonical));
  return it == by_scope_key_.end() ? graph::kInvalidNode : it->second;
}

std::vector<graph::NodeId> Metagraph::by_canonical(
    const std::string& canonical) const {
  auto it = by_canonical_.find(canonical);
  return it == by_canonical_.end() ? std::vector<graph::NodeId>{} : it->second;
}

std::vector<graph::NodeId> Metagraph::by_module(
    const std::string& module) const {
  auto it = by_module_.find(module);
  return it == by_module_.end() ? std::vector<graph::NodeId>{} : it->second;
}

std::vector<graph::NodeId> Metagraph::module_classes() const {
  std::unordered_map<std::string, graph::NodeId> class_of;
  for (std::size_t i = 0; i < module_order_.size(); ++i) {
    class_of[module_order_[i]] = static_cast<graph::NodeId>(i);
  }
  std::vector<graph::NodeId> classes(info_.size());
  for (graph::NodeId v = 0; v < info_.size(); ++v) {
    classes[v] = class_of.at(info_[v].module);
  }
  return classes;
}

interp::WatchKey Metagraph::watch_key(graph::NodeId v) const {
  RCA_CHECK_MSG(v < info_.size(), "node id out of range");
  const NodeInfo& n = info_[v];
  return interp::WatchKey{n.module, n.subprogram, n.canonical_name};
}

void Metagraph::add_io_mapping(const std::string& label, graph::NodeId node) {
  auto& vec = io_map_[label];
  for (graph::NodeId v : vec) {
    if (v == node) return;
  }
  vec.push_back(node);
}

}  // namespace rca::meta
