// Content-addressed snapshot cache for built metagraphs.
//
// The paper's front end (parse every compiled module, extract dependence
// edges) is the pipeline's cold-start cost; like CPDA's amortized dependence
// models, we build once and reuse. A cache key is a content hash over the
// exact inputs that determine the graph — every (path, text) source pair
// plus the build/coverage configuration — so an unchanged corpus hits and
// any touched file misses. Entries are v2 binary snapshots (serialize.hpp)
// stored as <dir>/<key-hex>.rmg2.
//
// Failure policy: a missing or corrupt entry is a miss, never an error —
// the caller falls back to a fresh parse+build and re-stores. The two cases
// are counted apart: an absent file is an expected cold start
// (meta.snapshot.missing), while an unparsable one is evidence of a torn
// write or bit rot (meta.snapshot.corrupt) — it is renamed to a `.corrupt`
// sidecar (meta.snapshot.quarantined) with the checksum-mismatch offset
// logged, so the slot reads as cleanly missing afterwards. Both still count
// toward meta.snapshot.misses. Writes publish atomically: full payload to a
// temp file, fsync, rename, directory fsync. Injection sites
// meta.snapshot.{read,write} (src/fault) let tests force every branch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "meta/metagraph.hpp"

namespace rca::meta {

/// Incremental FNV-1a 64 content hash. Every add() is length-prefixed, so
/// ("ab","c") and ("a","bc") produce different keys.
class SnapshotKey {
 public:
  SnapshotKey& add(std::string_view bytes);
  SnapshotKey& add_u64(std::uint64_t value);

  std::uint64_t digest() const { return hash_; }
  /// 16 lowercase hex digits — the cache file stem.
  std::string hex() const;

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

class SnapshotCache {
 public:
  /// The directory is created lazily on the first store().
  explicit SnapshotCache(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string path_for(const SnapshotKey& key) const;

  /// Loads the snapshot for `key`; absent entries are misses, corrupt ones
  /// are quarantined (renamed to <path>.corrupt) and also report a miss.
  /// Never throws.
  std::optional<Metagraph> try_load(const SnapshotKey& key) const;

  /// Durably stores `mg` under `key` (tmp file + fsync + rename +
  /// directory fsync). Best-effort: returns false on I/O failure without
  /// throwing.
  bool store(const SnapshotKey& key, const Metagraph& mg) const;

 private:
  std::string dir_;
};

}  // namespace rca::meta
