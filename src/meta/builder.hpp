// Metagraph builder: converts parsed modules into the variable-dependency
// digraph using the paper's §4 rules.
//
// Two passes, as the paper requires: pass 1 reads every file and builds the
// global hash tables of subprogram names (needed to tell function calls from
// array references) and per-module use-maps; pass 2 walks every assignment
// and call statement, adding nodes and edges.
//
// Conservative static choices (all from §4):
//   * interface calls map to ALL candidate procedures;
//   * arrays are atomic — subscripts are ignored;
//   * pointers are ordinary variables;
//   * chained use statements are not followed (direct imports only);
//   * derived-type chains canonicalize to their final component;
//   * intrinsics are localized per call site;
//   * control flow (if/do) contributes no edges — paths may therefore be
//     infeasible at runtime, which is what the dynamic phase prunes.
#pragma once

#include <functional>
#include <vector>

#include "lang/ast.hpp"
#include "meta/metagraph.hpp"

namespace rca {
class ThreadPool;
}

namespace rca::meta {

struct BuilderOptions {
  /// Dummy-argument edges honor intent(in)/intent(out) when declared;
  /// unspecified intent maps both directions. Disable to treat every dummy
  /// as inout (strictly more conservative).
  bool use_intent_info = true;

  /// Coverage predicates (hybrid slicing): modules/subprograms rejected here
  /// are excluded from both the symbol tables and the statement walk, like
  /// the paper's codecov-driven pruning. Null means keep everything.
  std::function<bool(const std::string& module)> module_filter;
  std::function<bool(const std::string& module, const std::string& sub)>
      subprogram_filter;

  /// Liveness-pruned slicing (src/analysis): skip assignments the dataflow
  /// analysis proves dead — whole-variable stores to plain locals never read
  /// afterwards — so their spurious source->target edges never enter the
  /// metagraph. Assignments whose right-hand side binds a user function
  /// (dummy-argument and result edges) are kept even when dead. Off by
  /// default: the pruned graph is a different (smaller) artifact.
  bool prune_dead_stores = false;

  /// Sharpen dead-store pruning with interprocedural mod/ref summaries
  /// (analysis/summaries.hpp): a store whose only "use" is being passed to a
  /// callee that never reads its incoming value is dead too, so more
  /// spurious edges drop. Only meaningful with prune_dead_stores. Note this
  /// makes a module's fragment depend on OTHER modules' bodies (their
  /// summaries), so incremental transactions fall back to a full re-walk
  /// when it is set.
  bool summary_informed_pruning = false;

  /// When set, module walks run concurrently on this pool and their
  /// dependence fragments are replayed in module order — the result is
  /// bit-identical to the serial build (node ids, edge order, io map).
  rca::ThreadPool* pool = nullptr;
};

/// Builds the metagraph for a corpus. Module pointers must stay valid while
/// the returned Metagraph is used (node metadata references their names).
Metagraph build_metagraph(const std::vector<const lang::Module*>& modules,
                          const BuilderOptions& opts = {});

}  // namespace rca::meta
