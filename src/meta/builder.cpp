#include "meta/builder.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "analysis/dataflow.hpp"
#include "analysis/passes.hpp"
#include "analysis/summaries.hpp"
#include "interp/intrinsics.hpp"
#include "meta/fragment.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace rca::meta {

using graph::NodeId;
using lang::Expr;
using lang::ExprKind;
using lang::Intent;
using lang::Module;
using lang::Stmt;
using lang::StmtKind;
using lang::Subprogram;
using lang::VarDecl;

SymbolTables build_symbol_tables(const std::vector<const Module*>& modules,
                                 const BuilderOptions& opts) {
  SymbolTables tables;
  auto keep_sub = [&opts](const Module* m, const Subprogram& sp) {
    return !opts.subprogram_filter || opts.subprogram_filter(m->name, sp.name);
  };
  // Own entities first.
  for (const Module* m : modules) {
    auto& syms = tables.modules[m->name];
    syms.ast = m;
    for (const auto& sp : m->subprograms) {
      if (!keep_sub(m, sp)) continue;
      syms.procs[sp.name].push_back(ProcRef{m, &sp});
    }
    for (const auto& d : m->decls) {
      syms.vars[d.name] = {m, d.name};
    }
  }
  // Interfaces expand to all their procedures (conservative mapping).
  for (const Module* m : modules) {
    auto& syms = tables.modules[m->name];
    for (const auto& iface : m->interfaces) {
      for (const auto& proc : iface.procedures) {
        auto it = syms.procs.find(proc);
        if (it == syms.procs.end()) continue;  // tolerated: dangling interface
        auto& vec = syms.procs[iface.name];
        vec.insert(vec.end(), it->second.begin(), it->second.end());
      }
    }
  }
  // Use-imports: resolved against an immutable snapshot of the exporters, in
  // two rounds. Round one sees only each module's own entities; round two
  // sees own + directly imported ones, so a re-exported import resolves one
  // level deep regardless of module order (chained re-export beyond one
  // level is still not followed).
  auto apply_imports =
      [&modules, &tables](
          const std::unordered_map<std::string, SymbolTables::ModuleSyms>&
              sources) {
        for (const Module* m : modules) {
          auto& syms = tables.modules[m->name];
          auto process_use = [&sources, &syms](const lang::UseStmt& use) {
            auto sit = sources.find(use.module);
            if (sit == sources.end()) return;  // unresolved module: skip
            const auto& src = sit->second;
            auto import_one = [&](const std::string& local,
                                  const std::string& remote) {
              auto pit = src.procs.find(remote);
              if (pit != src.procs.end()) {
                auto& vec = syms.procs[local];
                for (const ProcRef& r : pit->second) {
                  const bool dup = std::any_of(
                      vec.begin(), vec.end(),
                      [&r](const ProcRef& x) { return x.sp == r.sp; });
                  if (!dup) vec.push_back(r);
                }
              }
              auto vit = src.vars.find(remote);
              if (vit != src.vars.end()) {
                syms.vars.emplace(local, vit->second);
              }
            };
            if (use.has_only) {
              for (const auto& r : use.renames) import_one(r.local, r.remote);
            } else {
              for (const auto& [name, _] : src.procs) import_one(name, name);
              for (const auto& [name, _] : src.vars) import_one(name, name);
            }
          };
          for (const auto& use : m->uses) process_use(use);
          for (const auto& sp : m->subprograms) {
            for (const auto& use : sp.uses) process_use(use);
          }
        }
      };
  const std::unordered_map<std::string, SymbolTables::ModuleSyms> own_exports =
      tables.modules;
  apply_imports(own_exports);
  const std::unordered_map<std::string, SymbolTables::ModuleSyms> with_direct =
      tables.modules;
  apply_imports(with_direct);
  if (opts.summary_informed_pruning) {
    auto psyms = std::make_shared<analysis::ProgramSymbols>(modules);
    tables.summaries = std::make_shared<analysis::ProgramSummaries>(
        analysis::compute_summaries(modules, *psyms));
    tables.analysis_symbols = std::move(psyms);
  }
  return tables;
}

std::vector<const Module*> filter_modules(
    const std::vector<const Module*>& modules, const BuilderOptions& opts) {
  if (!opts.module_filter) return modules;
  std::vector<const Module*> kept;
  for (const Module* m : modules) {
    if (opts.module_filter(m->name)) kept.push_back(m);
  }
  return kept;
}

namespace {

/// Walks one module's statements, recording the dependence fragment.
/// Mirrors the original serial Builder exactly; `intern()` dedupes locally
/// on the same (module, subprogram, canonical) key the Metagraph uses, so
/// equality of local ids coincides with equality of the global ids they map
/// to (the `src != target` self-edge guards keep their serial semantics).
class ModuleWalker {
 public:
  ModuleWalker(const Module& m, const SymbolTables& tables,
               const BuilderOptions& opts, Fragment& frag)
      : opts_(opts), tables_(tables), frag_(frag) {
    build_module(m);
  }

 private:
  using LocalId = std::uint32_t;

  struct Scope {
    const Module* mod = nullptr;
    const Subprogram* sub = nullptr;  // null at module level
    // Names declared in the current subprogram (locals + dummies + result).
    std::unordered_set<std::string> locals;
  };

  LocalId intern(const std::string& module, const std::string& subprogram,
                 const std::string& canonical, int line,
                 bool is_intrinsic = false, bool is_prng_site = false) {
    const std::string key = module + "\x1f" + subprogram + "\x1f" + canonical;
    auto it = local_ids_.find(key);
    if (it != local_ids_.end()) return it->second;
    const LocalId id = static_cast<LocalId>(frag_.keys.size());
    frag_.keys.push_back(Fragment::NodeKey{module, subprogram, canonical, line,
                                           is_intrinsic, is_prng_site});
    frag_.ops.push_back({Fragment::OpKind::kNode, id, 0});
    local_ids_.emplace(key, id);
    return id;
  }

  void add_edge(LocalId u, LocalId v) {
    frag_.ops.push_back({Fragment::OpKind::kEdge, u, v});
  }

  void add_io_mapping(const std::string& label, LocalId node) {
    auto it = io_label_ids_.find(label);
    std::uint32_t idx;
    if (it != io_label_ids_.end()) {
      idx = it->second;
    } else {
      idx = static_cast<std::uint32_t>(frag_.io_labels.size());
      frag_.io_labels.push_back(label);
      io_label_ids_.emplace(label, idx);
    }
    frag_.ops.push_back({Fragment::OpKind::kIo, idx, node});
  }

  void build_module(const Module& m) {
    for (const auto& sp : m.subprograms) {
      if (opts_.subprogram_filter && !opts_.subprogram_filter(m.name, sp.name)) {
        continue;  // unexecuted subprogram "commented out" by coverage
      }
      Scope scope;
      scope.mod = &m;
      scope.sub = &sp;
      for (const auto& p : sp.params) scope.locals.insert(p);
      for (const auto& d : sp.decls) scope.locals.insert(d.name);
      if (sp.is_function()) scope.locals.insert(sp.result_name);
      if (opts_.prune_dead_stores) {
        analysis::DataflowContext ctx;
        if (tables_.summaries != nullptr) {
          // Summary-informed: call sites resolve to callee mod/ref effects,
          // so stores whose only use is feeding a never-read dummy die too.
          const auto* asyms = tables_.analysis_symbols->module(m.name);
          if (asyms != nullptr) {
            ctx.module_vars = &asyms->var_names;
            ctx.procedures = &asyms->proc_names;
          }
          ctx.call_effects = analysis::make_call_effects(
              *tables_.analysis_symbols, *tables_.summaries, m.name);
        }
        dead_stores_ = analysis::dead_store_stmts(sp, ctx);
      }
      for (const auto& st : sp.body) walk_stmt(*st, scope);
      dead_stores_.clear();
    }
  }

  void walk_stmt(const Stmt& s, Scope& scope) {
    switch (s.kind) {
      case StmtKind::kAssign:
        // Liveness pruning: a provably dead store contributes nothing the
        // program can read, so its source->target edges would only widen
        // backward slices. Stores whose RHS binds a user function are kept —
        // dropping them would also drop the callee's argument/result edges.
        if (!dead_stores_.empty() && dead_stores_.count(&s) != 0 &&
            !binds_procedure(*s.rhs, scope)) {
          ++frag_.dead_stores_pruned;
          break;
        }
        ++frag_.assignments_processed;
        try {
          process_assignment(s, scope);
        } catch (const Error&) {
          ++frag_.assignments_failed;
        }
        break;
      case StmtKind::kCall:
        ++frag_.calls_processed;
        try {
          process_call(s, scope);
        } catch (const Error&) {
          ++frag_.assignments_failed;
        }
        break;
      case StmtKind::kIf:
        for (const auto& st : s.body) walk_stmt(*st, scope);
        for (const auto& ei : s.elseifs) {
          for (const auto& st : ei.body) walk_stmt(*st, scope);
        }
        for (const auto& st : s.else_body) walk_stmt(*st, scope);
        break;
      case StmtKind::kDo:
      case StmtKind::kDoWhile:
        for (const auto& st : s.body) walk_stmt(*st, scope);
        break;
      default:
        break;
    }
  }

  void process_assignment(const Stmt& s, Scope& scope) {
    const LocalId target = node_for_ref(*s.lhs, scope);
    std::vector<LocalId> sources;
    expr_sources(*s.rhs, scope, &sources);
    for (LocalId src : sources) {
      if (src != target) add_edge(src, target);
    }
  }

  void process_call(const Stmt& s, Scope& scope) {
    // Builtins with special graph semantics.
    if (s.callee == "outfld") {
      if (s.args.size() == 2 && s.args[0]->kind == ExprKind::kString &&
          s.args[1]->is_ref()) {
        const LocalId var = node_for_ref(*s.args[1], scope);
        add_io_mapping(to_lower(s.args[0]->text), var);
      }
      return;
    }
    if (s.callee == "shr_rand_uniform") {
      // PRNG call site: a localized pseudo-source feeding the argument —
      // the RAND-MT experiment's "bug location" markers.
      if (s.args.size() == 1 && s.args[0]->is_ref()) {
        const LocalId site = intern(
            scope.mod->name, scope.sub ? scope.sub->name : "",
            strfmt("shr_rand_uniform_%d", s.line), s.line,
            /*is_intrinsic=*/false, /*is_prng_site=*/true);
        const LocalId var = node_for_ref(*s.args[0], scope);
        add_edge(site, var);
      }
      return;
    }

    const std::vector<ProcRef>* cands = lookup_procs(scope, s.callee);
    if (!cands) {
      throw Error("unresolved subroutine '" + s.callee + "'");
    }
    for (const ProcRef& cand : *cands) {
      if (cand.sp->params.size() != s.args.size()) continue;
      bind_arguments(*cand.module, *cand.sp, s.args, scope);
    }
  }

  /// Maps actual arguments to dummy-argument nodes, honoring declared intent
  /// (paper: successively map outputs of lower levels to inputs above).
  void bind_arguments(const Module& home, const Subprogram& sp,
                      const std::vector<lang::ExprPtr>& args, Scope& scope) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& param = sp.params[i];
      const LocalId dummy = intern(home.name, sp.name, param, sp.line);
      Intent intent = Intent::kNone;
      if (opts_.use_intent_info) {
        for (const auto& d : sp.decls) {
          if (d.name == param) {
            intent = d.intent;
            break;
          }
        }
      }
      const bool flows_in = intent != Intent::kOut;
      const bool flows_out = intent != Intent::kIn;
      if (flows_in) {
        std::vector<LocalId> sources;
        expr_sources(*args[i], scope, &sources);
        for (LocalId src : sources) {
          if (src != dummy) add_edge(src, dummy);
        }
      }
      if (flows_out && args[i]->is_ref()) {
        // Writable actual: the dummy's final value flows back.
        try {
          const LocalId actual = node_for_ref(*args[i], scope);
          if (actual != dummy) add_edge(dummy, actual);
        } catch (const Error&) {
          // Expression actuals (function results etc.) have no write-back.
        }
      }
    }
  }

  /// Collects the nodes whose values flow into `e` (paper: the expression's
  /// RHS variables, arrays, and function/subroutine-argument outputs).
  void expr_sources(const Expr& e, Scope& scope, std::vector<LocalId>* out) {
    switch (e.kind) {
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kLogical:
        return;
      case ExprKind::kUnary:
        expr_sources(*e.rhs, scope, out);
        return;
      case ExprKind::kBinary:
        expr_sources(*e.lhs, scope, out);
        expr_sources(*e.rhs, scope, out);
        return;
      case ExprKind::kRef:
        break;
    }

    const lang::RefSegment& head = e.segments.front();
    if (e.segments.size() > 1 || !head.has_args) {
      // Plain variable, array element (atomic: indices ignored), or
      // derived-type chain.
      if (is_slice_ref(e)) return;  // bare ':' markers contribute nothing
      out->push_back(node_for_ref(e, scope));
      return;
    }

    // Single segment with arguments: variable-with-subscripts, function
    // call, or intrinsic — disambiguated against the declaration tables and
    // the global function hash table, in that order (locals shadow
    // functions).
    if (is_declared_var(scope, head.name)) {
      out->push_back(node_for_ref(e, scope));
      return;
    }
    const std::vector<ProcRef>* cands = lookup_procs(scope, head.name);
    if (cands) {
      for (const ProcRef& cand : *cands) {
        if (!cand.sp->is_function()) continue;
        if (cand.sp->params.size() != head.args.size()) continue;
        bind_arguments(*cand.module, *cand.sp, head.args, scope);
        out->push_back(intern(cand.module->name, cand.sp->name,
                              cand.sp->result_name, cand.sp->line));
      }
      return;
    }
    if (interp::is_intrinsic_function(head.name)) {
      // Localized intrinsic pseudo-node: inputs -> site -> consumer.
      const LocalId site = intern(
          scope.mod->name, scope.sub ? scope.sub->name : "",
          strfmt("%s_%d", head.name.c_str(), e.line), e.line,
          /*is_intrinsic=*/true);
      for (const auto& arg : head.args) {
        std::vector<LocalId> inputs;
        expr_sources(*arg, scope, &inputs);
        for (LocalId in : inputs) {
          if (in != site) add_edge(in, site);
        }
      }
      out->push_back(site);
      return;
    }
    // Unknown name(...): assume an undeclared array (static fallback).
    out->push_back(node_for_ref(e, scope));
  }

  bool is_slice_ref(const Expr& e) const {
    return e.segments.size() == 1 && e.segments[0].name == "__slice__";
  }

  /// True when evaluating `e` would bind a user function's dummies/result
  /// into the graph (expr_sources' call case) — such expressions are not
  /// safe to prune with the statement that contains them.
  bool binds_procedure(const Expr& e, const Scope& scope) const {
    switch (e.kind) {
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kLogical:
        return false;
      case ExprKind::kUnary:
        return binds_procedure(*e.rhs, scope);
      case ExprKind::kBinary:
        return binds_procedure(*e.lhs, scope) ||
               binds_procedure(*e.rhs, scope);
      case ExprKind::kRef:
        break;
    }
    const lang::RefSegment& head = e.segments.front();
    if (e.segments.size() == 1 && head.has_args &&
        !is_declared_var(scope, head.name)) {
      const std::vector<ProcRef>* cands = lookup_procs(scope, head.name);
      if (cands) {
        for (const ProcRef& cand : *cands) {
          if (cand.sp->is_function() &&
              cand.sp->params.size() == head.args.size()) {
            return true;
          }
        }
      }
    }
    for (const auto& seg : e.segments) {
      for (const auto& arg : seg.args) {
        if (binds_procedure(*arg, scope)) return true;
      }
    }
    return false;
  }

  bool is_declared_var(const Scope& scope, const std::string& name) const {
    if (scope.locals.count(name)) return true;
    const auto& syms = tables_.modules.at(scope.mod->name);
    return syms.vars.count(name) != 0;
  }

  const std::vector<ProcRef>* lookup_procs(const Scope& scope,
                                           const std::string& name) const {
    const auto& syms = tables_.modules.at(scope.mod->name);
    auto it = syms.procs.find(name);
    return it == syms.procs.end() ? nullptr : &it->second;
  }

  /// Node for a reference chain: resolves the base name's owning scope and
  /// interns (module, scope, canonical-name).
  LocalId node_for_ref(const Expr& e, Scope& scope) {
    RCA_CHECK_MSG(e.is_ref(), "node_for_ref on non-reference");
    const std::string& base = e.base_name();
    const std::string& canonical = e.canonical_name();
    if (canonical == "__slice__") throw Error("slice marker is not a variable");

    if (scope.sub && scope.locals.count(base)) {
      return intern(scope.mod->name, scope.sub->name, canonical, e.line);
    }
    const auto& syms = tables_.modules.at(scope.mod->name);
    auto vit = syms.vars.find(base);
    if (vit != syms.vars.end()) {
      // Module-level variable: lives with its owning module, no subprogram
      // scope. Derived chains canonicalize to the final component (the
      // component is one storage location regardless of assigning site).
      const Module* owner = vit->second.first;
      const std::string& remote = vit->second.second;
      const std::string& canon =
          (e.segments.size() > 1) ? canonical : remote;
      return intern(owner->name, "", canon, e.line);
    }
    // Unresolved: keep it local to the current scope (static fallback —
    // counted as a node so the slice stays sound).
    return intern(scope.mod->name, scope.sub ? scope.sub->name : "",
                  canonical, e.line);
  }

  const BuilderOptions& opts_;
  const SymbolTables& tables_;
  Fragment& frag_;
  std::unordered_map<std::string, LocalId> local_ids_;
  std::unordered_map<std::string, std::uint32_t> io_label_ids_;
  // Dead stores of the subprogram currently being walked (empty when
  // prune_dead_stores is off).
  std::unordered_set<const Stmt*> dead_stores_;
};

}  // namespace

Fragment walk_module(const Module& m, const SymbolTables& tables,
                     const BuilderOptions& opts) {
  Fragment frag;
  ModuleWalker(m, tables, opts, frag);
  return frag;
}

void replay_fragment(const Fragment& frag, Metagraph& mg) {
  std::vector<NodeId> global(frag.keys.size());
  for (const Fragment::Op& op : frag.ops) {
    switch (op.kind) {
      case Fragment::OpKind::kNode: {
        const Fragment::NodeKey& k = frag.keys[op.a];
        global[op.a] = mg.intern(k.module, k.subprogram, k.canonical, k.line,
                                 k.is_intrinsic, k.is_prng_site);
        break;
      }
      case Fragment::OpKind::kEdge:
        mg.graph().add_edge(global[op.a], global[op.b]);
        break;
      case Fragment::OpKind::kIo:
        mg.add_io_mapping(frag.io_labels[op.a], global[op.b]);
        break;
    }
  }
  mg.assignments_processed += frag.assignments_processed;
  mg.assignments_failed += frag.assignments_failed;
  mg.calls_processed += frag.calls_processed;
  mg.dead_stores_pruned += frag.dead_stores_pruned;
}

Metagraph build_metagraph(const std::vector<const Module*>& modules,
                          const BuilderOptions& opts) {
  const std::vector<const Module*> kept = filter_modules(modules, opts);
  const SymbolTables tables = build_symbol_tables(kept, opts);

  auto walk_one = [&kept, &tables, &opts](std::size_t i) {
    return walk_module(*kept[i], tables, opts);
  };

  std::vector<Fragment> fragments;
  if (opts.pool != nullptr && kept.size() > 1) {
    fragments = opts.pool->parallel_map<Fragment>(kept.size(), walk_one);
  } else {
    fragments.reserve(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      fragments.push_back(walk_one(i));
    }
  }

  // Deterministic reduction: module order, not completion order.
  Metagraph mg;
  for (const Fragment& frag : fragments) replay_fragment(frag, mg);
  return mg;
}

}  // namespace rca::meta
