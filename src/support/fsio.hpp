// Durable small-file I/O.
//
// Readers of coordination files (port-file handshakes, campaign journals)
// must never observe a partially written document: a supervisor polling a
// worker's port file between the worker's open() and write() would parse an
// empty port and connect to nothing. `atomic_write_file` closes that window
// with the standard temp + fsync + rename protocol — the file either has its
// old content (or is absent) or the complete new content, never a prefix.
#pragma once

#include <string>

namespace rca {

/// Writes `content` to `path` atomically: the data goes to `path` + ".tmp",
/// is fsync'd, and is renamed over `path` (rename(2) is atomic within a
/// filesystem). Throws rca::Error on any failure; the temp file is removed
/// on the error path.
void atomic_write_file(const std::string& path, const std::string& content);

/// Appends `line` (a trailing '\n' is added) to `path` and fsyncs, creating
/// the file when absent. Single writev-style write so a crash mid-append
/// leaves at most one torn final line, which journal readers must tolerate.
void append_line_durable(const std::string& path, const std::string& line);

}  // namespace rca
