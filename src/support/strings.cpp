#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rca {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace rca
