// Small string utilities used across parsing, graph naming and reporting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rca {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lower-case an ASCII string (Fortran is case-insensitive; every identifier
/// is normalized through this before entering a symbol table).
std::string to_lower(std::string_view s);

/// Split on a single delimiter character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// True if `s` is a valid Fortran-style identifier: [a-z_][a-z0-9_]*.
bool is_identifier(std::string_view s);

/// printf-style formatting into std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rca
