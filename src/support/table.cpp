#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca {

void Table::set_header(std::vector<std::string> header) {
  RCA_CHECK_MSG(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    RCA_CHECK_MSG(row.size() == header_.size(), "row width != header width");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  return strfmt("%.*f", precision, v);
}

std::string Table::integer(long long v) { return strfmt("%lld", v); }

std::string Table::percent(double fraction, int precision) {
  return strfmt("%.*f%%", precision, fraction * 100.0);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& r : rows_) absorb(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "  " << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(',');
      out += quote(row[i]);
    }
    out.push_back('\n');
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

}  // namespace rca
