#include "support/args.hpp"

#include <cstdlib>

#include "support/strings.hpp"

namespace rca {

Args::Args(int argc, const char* const* argv) {
  int i = 1;
  // Subcommand: first non-option token.
  if (i < argc && argv[i][0] != '-') {
    command_ = argv[i++];
  }
  while (i < argc) {
    std::string token = argv[i];
    if (starts_with(token, "--")) {
      const std::string key = token.substr(2);
      // `--key=value` binds in one token (empty value stays a flag-like "").
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        options_.emplace(key.substr(0, eq), key.substr(eq + 1));
        ++i;
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        options_.emplace(key, argv[i + 1]);
        i += 2;
      } else {
        options_.emplace(key, "");  // boolean flag
        ++i;
      }
    } else {
      positional_.push_back(std::move(token));
      ++i;
    }
  }
}

bool Args::has(const std::string& key) const {
  queried_[key] = true;
  return options_.count(key) != 0;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  queried_[key] = true;
  auto range = options_.equal_range(key);
  if (range.first == range.second) return fallback;
  auto last = range.first;
  for (auto it = range.first; it != range.second; ++it) last = it;
  return last->second;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  const std::string v = get(key);
  if (v.empty()) return fallback;
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key);
  if (v.empty()) return fallback;
  return std::strtod(v.c_str(), nullptr);
}

std::vector<std::string> Args::get_all(const std::string& key) const {
  queried_[key] = true;
  std::vector<std::string> out;
  auto range = options_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> Args::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    (void)value;
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace rca
