#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace rca {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Chunk the index space so tiny bodies don't pay per-task overhead.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t begin = next.fetch_add(per);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + per, n);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            body(i);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rca
