// Deterministic pseudo-random number generators implemented from scratch.
//
// The synthetic climate model uses KissRng as its "CESM default" PRNG; the
// RAND-MT experiment (paper §6.2) swaps it for Mt19937 — exactly the kind of
// legitimate, non-bug change that still fails the consistency test. Both
// generators live behind the Prng interface so the swap is one injection
// point, mirroring how CESM's kissvec generator was replaced by the Mersenne
// Twister in the paper's experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace rca {

/// Abstract stream of doubles in [0, 1).
class Prng {
 public:
  virtual ~Prng() = default;
  /// Name used in provenance reports ("kiss", "mt19937").
  virtual std::string name() const = 0;
  /// Next uniform deviate in [0, 1).
  virtual double uniform() = 0;
  /// Reseed the stream.
  virtual void seed(std::uint64_t s) = 0;
  /// Independent copy carrying the current state.
  virtual std::unique_ptr<Prng> clone() const = 0;
};

/// Marsaglia's KISS generator (combined LCG + xorshift + MWC). This is the
/// same family as CESM's kissvec default PRNG.
class KissRng final : public Prng {
 public:
  explicit KissRng(std::uint64_t s = 123456789) { seed(s); }

  std::string name() const override { return "kiss"; }
  void seed(std::uint64_t s) override;
  double uniform() override;
  std::unique_ptr<Prng> clone() const override {
    return std::make_unique<KissRng>(*this);
  }

  /// Raw 32-bit output, exposed for tests.
  std::uint32_t next_u32();

 private:
  std::uint32_t x_ = 0, y_ = 0, z_ = 0, c_ = 0;
};

/// MT19937 Mersenne Twister (Matsumoto & Nishimura 1998), implemented from
/// the recurrence rather than wrapping <random>, so the generator itself is
/// part of the reproduced system.
class Mt19937Rng final : public Prng {
 public:
  explicit Mt19937Rng(std::uint64_t s = 5489) { seed(s); }

  std::string name() const override { return "mt19937"; }
  void seed(std::uint64_t s) override;
  double uniform() override;
  std::unique_ptr<Prng> clone() const override {
    return std::make_unique<Mt19937Rng>(*this);
  }

  std::uint32_t next_u32();

 private:
  static constexpr int kN = 624;
  static constexpr int kM = 397;
  std::uint32_t state_[kN];
  int index_ = kN + 1;
};

/// SplitMix64: used internally for seeding derived streams deterministically.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t s) : state_(s) {}
  std::uint64_t next();
  /// Uniform double in [0,1).
  double uniform();

 private:
  std::uint64_t state_;
};

/// Factory by name; throws rca::Error for unknown kinds.
std::unique_ptr<Prng> make_prng(const std::string& kind, std::uint64_t seed);

}  // namespace rca
