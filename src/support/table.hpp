// Plain-text table rendering for the benchmark harnesses: every bench binary
// prints the rows/series of the paper table or figure it regenerates.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rca {

/// Column-aligned text table with an optional title, also serializable as CSV.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Set the header row; resets column count.
  void set_header(std::vector<std::string> header);

  /// Append one row; must match the header width if a header was set.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 4);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 0);

  /// Render aligned monospace table.
  void print(std::ostream& os) const;

  /// Render RFC-4180-ish CSV (commas in cells are quoted).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rca
