#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Ctx::kObjectExpectKey) {
    throw Error("JsonWriter: value emitted where an object key is required");
  }
  if (needs_comma_) out_.push_back(',');
}

void JsonWriter::after_value() {
  if (!stack_.empty() && stack_.back() == Ctx::kObjectExpectValue) {
    stack_.back() = Ctx::kObjectExpectKey;
  }
  needs_comma_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back(Ctx::kObjectExpectKey);
  needs_comma_ = false;
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() == Ctx::kObjectExpectValue ||
      stack_.back() == Ctx::kArray) {
    throw Error("JsonWriter: end_object out of place");
  }
  stack_.pop_back();
  out_.push_back('}');
  after_value();
}

void JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back(Ctx::kArray);
  needs_comma_ = false;
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw Error("JsonWriter: end_array out of place");
  }
  stack_.pop_back();
  out_.push_back(']');
  after_value();
}

void JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back() != Ctx::kObjectExpectKey) {
    throw Error("JsonWriter: key outside an object");
  }
  if (needs_comma_) out_.push_back(',');
  out_ += '"' + escape(k) + "\":";
  stack_.back() = Ctx::kObjectExpectValue;
  needs_comma_ = false;
}

void JsonWriter::string_value(const std::string& v) {
  before_value();
  out_ += '"' + escape(v) + '"';
  after_value();
}

void JsonWriter::number(double v) {
  before_value();
  if (std::isfinite(v)) {
    out_ += strfmt("%.17g", v);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  after_value();
}

void JsonWriter::integer(long long v) {
  before_value();
  out_ += strfmt("%lld", v);
  after_value();
}

void JsonWriter::boolean(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  after_value();
}

void JsonWriter::null() {
  before_value();
  out_ += "null";
  after_value();
}

void JsonWriter::raw_value(const std::string& json) {
  before_value();
  out_ += json;
  after_value();
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw Error("JsonWriter: unbalanced containers at str()");
  }
  return out_;
}

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw Error(std::string("JSON: expected ") + wanted + ", got " +
              names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return members_;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_number();
}

long long JsonValue::get_int(std::string_view key, long long fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : static_cast<long long>(v->as_number());
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::vector<std::string> JsonValue::get_string_array(
    std::string_view key) const {
  std::vector<std::string> out;
  const JsonValue* v = get(key);
  if (v == nullptr) return out;
  for (const JsonValue& item : v->items()) out.push_back(item.as_string());
  return out;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// parse_json — strict recursive descent over RFC 8259.
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonParseOptions& opts)
      : text_(text), opts_(opts) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    // Depth counts nested *containers* — a scalar at the limit is fine.
    if (depth >= opts_.max_depth) fail("nesting depth limit exceeded");
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(std::size_t depth) {
    if (depth >= opts_.max_depth) fail("nesting depth limit exceeded");
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (next() != '\\' || next() != 'u') {
              fail("unpaired UTF-16 surrogate");
            }
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]*.
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits required after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  JsonParseOptions opts_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text, const JsonParseOptions& opts) {
  if (text.size() > opts.max_bytes) {
    throw Error("JSON parse error: document of " + std::to_string(text.size()) +
                " bytes exceeds the " + std::to_string(opts.max_bytes) +
                "-byte limit");
  }
  return JsonParser(text, opts).parse_document();
}

namespace {

void emit_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: w.null(); break;
    case JsonValue::Kind::kBool: w.boolean(v.as_bool()); break;
    case JsonValue::Kind::kNumber: {
      const double n = v.as_number();
      const double truncated = std::trunc(n);
      if (std::isfinite(n) && truncated == n &&
          std::abs(n) < 9.007199254740992e15) {  // exact in a double
        w.integer(static_cast<long long>(n));
      } else {
        w.number(n);
      }
      break;
    }
    case JsonValue::Kind::kString: w.string_value(v.as_string()); break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items()) emit_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, member] : v.members()) {
        w.key(k);
        emit_value(w, member);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string to_json(const JsonValue& value) {
  JsonWriter w;
  emit_value(w, value);
  return w.str();
}

}  // namespace rca
