#include "support/json.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Ctx::kObjectExpectKey) {
    throw Error("JsonWriter: value emitted where an object key is required");
  }
  if (needs_comma_) out_.push_back(',');
}

void JsonWriter::after_value() {
  if (!stack_.empty() && stack_.back() == Ctx::kObjectExpectValue) {
    stack_.back() = Ctx::kObjectExpectKey;
  }
  needs_comma_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back(Ctx::kObjectExpectKey);
  needs_comma_ = false;
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() == Ctx::kObjectExpectValue ||
      stack_.back() == Ctx::kArray) {
    throw Error("JsonWriter: end_object out of place");
  }
  stack_.pop_back();
  out_.push_back('}');
  after_value();
}

void JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back(Ctx::kArray);
  needs_comma_ = false;
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw Error("JsonWriter: end_array out of place");
  }
  stack_.pop_back();
  out_.push_back(']');
  after_value();
}

void JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back() != Ctx::kObjectExpectKey) {
    throw Error("JsonWriter: key outside an object");
  }
  if (needs_comma_) out_.push_back(',');
  out_ += '"' + escape(k) + "\":";
  stack_.back() = Ctx::kObjectExpectValue;
  needs_comma_ = false;
}

void JsonWriter::string_value(const std::string& v) {
  before_value();
  out_ += '"' + escape(v) + '"';
  after_value();
}

void JsonWriter::number(double v) {
  before_value();
  if (std::isfinite(v)) {
    out_ += strfmt("%.17g", v);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  after_value();
}

void JsonWriter::integer(long long v) {
  before_value();
  out_ += strfmt("%lld", v);
  after_value();
}

void JsonWriter::boolean(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  after_value();
}

void JsonWriter::null() {
  before_value();
  out_ += "null";
  after_value();
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw Error("JsonWriter: unbalanced containers at str()");
  }
  return out_;
}

}  // namespace rca
