// Minimal command-line argument parser for the rca-tool CLI: positional
// subcommand + --flag / --key value options, with typed accessors.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rca {

class Args {
 public:
  /// Parses `argv[1..)`: the first non-option token is the subcommand;
  /// `--key value` / `--key=value` pairs and bare `--flag`s follow. A
  /// `--key` immediately followed by another `--...` token or end-of-line is
  /// a boolean flag. Repeated keys accumulate (multi-value options).
  Args(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  /// Positional arguments after the subcommand.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;
  /// Last value for key, or `fallback`.
  std::string get(const std::string& key, const std::string& fallback = "") const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  /// All values given for a repeated key.
  std::vector<std::string> get_all(const std::string& key) const;

  /// Keys that were provided but never queried — unknown-option detection.
  std::vector<std::string> unused_keys() const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::multimap<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace rca
