#include "support/rng.hpp"

#include "support/error.hpp"

namespace rca {

// ---------------------------------------------------------------------------
// KISS (Keep It Simple Stupid), Marsaglia 1999 32-bit variant.
// ---------------------------------------------------------------------------

void KissRng::seed(std::uint64_t s) {
  // Derive four non-zero state words from the seed via SplitMix64.
  SplitMix64 sm(s ^ 0x9e3779b97f4a7c15ull);
  auto word = [&sm]() {
    std::uint32_t w = 0;
    do {
      w = static_cast<std::uint32_t>(sm.next());
    } while (w == 0);
    return w;
  };
  x_ = word();
  y_ = word();
  z_ = word();
  c_ = word() % 698769068 + 1;  // MWC carry must stay below the multiplier.
}

std::uint32_t KissRng::next_u32() {
  // Linear congruential component.
  x_ = 69069u * x_ + 12345u;
  // Xorshift component; y must never be zero (seed() guarantees it).
  y_ ^= y_ << 13;
  y_ ^= y_ >> 17;
  y_ ^= y_ << 5;
  // Multiply-with-carry component.
  std::uint64_t t = 698769069ull * z_ + c_;
  c_ = static_cast<std::uint32_t>(t >> 32);
  z_ = static_cast<std::uint32_t>(t);
  return x_ + y_ + z_;
}

double KissRng::uniform() {
  // 53-bit mantissa from two 32-bit draws.
  std::uint64_t hi = next_u32() >> 5;   // 27 bits
  std::uint64_t lo = next_u32() >> 6;   // 26 bits
  return ((hi << 26) | lo) * (1.0 / 9007199254740992.0);  // / 2^53
}

// ---------------------------------------------------------------------------
// MT19937.
// ---------------------------------------------------------------------------

void Mt19937Rng::seed(std::uint64_t s) {
  state_[0] = static_cast<std::uint32_t>(s);
  for (int i = 1; i < kN; ++i) {
    state_[i] = 1812433253u * (state_[i - 1] ^ (state_[i - 1] >> 30)) +
                static_cast<std::uint32_t>(i);
  }
  index_ = kN;
}

std::uint32_t Mt19937Rng::next_u32() {
  if (index_ >= kN) {
    if (index_ == kN + 1) seed(5489);  // never seeded: use reference default
    for (int i = 0; i < kN; ++i) {
      std::uint32_t y = (state_[i] & 0x80000000u) |
                        (state_[(i + 1) % kN] & 0x7fffffffu);
      std::uint32_t next = state_[(i + kM) % kN] ^ (y >> 1);
      if (y & 1u) next ^= 0x9908b0dfu;
      state_[i] = next;
    }
    index_ = 0;
  }
  std::uint32_t y = state_[index_++];
  y ^= y >> 11;
  y ^= (y << 7) & 0x9d2c5680u;
  y ^= (y << 15) & 0xefc60000u;
  y ^= y >> 18;
  return y;
}

double Mt19937Rng::uniform() {
  std::uint64_t hi = next_u32() >> 5;
  std::uint64_t lo = next_u32() >> 6;
  return ((hi << 26) | lo) * (1.0 / 9007199254740992.0);
}

// ---------------------------------------------------------------------------
// SplitMix64.
// ---------------------------------------------------------------------------

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double SplitMix64::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

std::unique_ptr<Prng> make_prng(const std::string& kind, std::uint64_t seed) {
  if (kind == "kiss") return std::make_unique<KissRng>(seed);
  if (kind == "mt19937") return std::make_unique<Mt19937Rng>(seed);
  throw Error("unknown PRNG kind: " + kind);
}

}  // namespace rca
