// Minimal JSON writer for machine-readable reports (rca-tool --json).
// Write-only by design: the toolkit emits reports, it never parses them.
#pragma once

#include <string>
#include <vector>

namespace rca {

/// Streaming JSON builder with correct string escaping. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.string_value("x");
///   w.key("items"); w.begin_array(); w.number(1); w.end_array();
///   w.end_object();
///   std::string out = w.str();
/// Structural errors (value without key inside an object, unbalanced
/// begin/end) throw rca::Error.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Object member key; must be followed by exactly one value.
  void key(const std::string& k);
  void string_value(const std::string& v);
  void number(double v);
  void integer(long long v);
  void boolean(bool v);
  void null();

  /// Final document; throws if containers are unbalanced.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  enum class Ctx { kArray, kObjectExpectKey, kObjectExpectValue };
  void before_value();
  void after_value();

  std::string out_;
  std::vector<Ctx> stack_;
  bool needs_comma_ = false;
};

}  // namespace rca
