// Minimal JSON support for machine-readable reports and requests.
//
// Historically write-only ("the toolkit emits reports, it never parses
// them") — the resident RCA service lifted that: request bodies arrive as
// JSON, so this header now also carries a strict recursive-descent parser
// (`parse_json`) with explicit depth and size limits for adversarial input.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rca {

/// Streaming JSON builder with correct string escaping. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.string_value("x");
///   w.key("items"); w.begin_array(); w.number(1); w.end_array();
///   w.end_object();
///   std::string out = w.str();
/// Structural errors (value without key inside an object, unbalanced
/// begin/end) throw rca::Error.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Object member key; must be followed by exactly one value.
  void key(const std::string& k);
  void string_value(const std::string& v);
  void number(double v);
  void integer(long long v);
  void boolean(bool v);
  void null();
  /// Splices a pre-serialized JSON document in value position (e.g. a
  /// diagnostics report embedded inside a service response). The caller is
  /// responsible for `json` being well-formed.
  void raw_value(const std::string& json);

  /// Final document; throws if containers are unbalanced.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  enum class Ctx { kArray, kObjectExpectKey, kObjectExpectValue };
  void before_value();
  void after_value();

  std::string out_;
  std::vector<Ctx> stack_;
  bool needs_comma_ = false;
};

/// Parsed JSON document node. Objects preserve member order (so a re-emitted
/// document round-trips deterministically) and are looked up linearly —
/// request bodies are small by construction (JsonParseOptions::max_bytes).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;            // throws rca::Error on kind mismatch
  double as_number() const;        // "
  const std::string& as_string() const;  // "
  const std::vector<JsonValue>& items() const;  // array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member by key; null when absent or when this is not an object.
  const JsonValue* get(std::string_view key) const;

  // Typed object-member accessors (the service request idiom:
  // `body.get_int("top", 15)`). The fallback applies when the member is
  // absent; a present member of the wrong type throws rca::Error, so a
  // mistyped request field surfaces as a client error instead of being
  // silently defaulted.
  std::string get_string(std::string_view key, std::string fallback = "") const;
  double get_number(std::string_view key, double fallback) const;
  long long get_int(std::string_view key, long long fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;
  /// Member `key` as a vector of strings; empty when absent. Throws if the
  /// member exists but is not an array of strings.
  std::vector<std::string> get_string_array(std::string_view key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Limits for `parse_json`. Both bounds fail closed: over-deep or over-long
/// input is rejected before any unbounded recursion or allocation.
struct JsonParseOptions {
  std::size_t max_depth = 64;               // nested containers
  std::size_t max_bytes = 8 * 1024 * 1024;  // document size
};

/// Strict recursive-descent JSON parser (RFC 8259 grammar): one top-level
/// value, no trailing garbage, no comments, no trailing commas, strings must
/// be valid escapes (\uXXXX with surrogate pairs), numbers must match the
/// JSON grammar. Throws rca::Error with a byte offset on malformed input.
JsonValue parse_json(std::string_view text, const JsonParseOptions& opts = {});

/// Re-serializes a parsed document. Objects keep their parsed member order,
/// so parse → to_json → parse round-trips deterministically; integral
/// numbers are emitted without a decimal point. Used where a document must
/// be persisted verbatim-equivalent (e.g. campaign journals).
std::string to_json(const JsonValue& value);

}  // namespace rca
