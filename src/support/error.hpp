// Error handling primitives shared by every climate-rca library.
#pragma once

#include <stdexcept>
#include <string>

namespace rca {

/// Base class for all errors raised by climate-rca libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when input source text cannot be lexed or parsed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::string file, int line, int column)
      : Error(file + ":" + std::to_string(line) + ":" + std::to_string(column) +
              ": " + what),
        file_(std::move(file)),
        line_(line),
        column_(column) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::string file_;
  int line_;
  int column_;
};

/// Raised by the interpreter for runtime faults in the modeled program.
class EvalError : public Error {
 public:
  using Error::Error;
};

/// Raised for malformed graph operations (unknown node, empty graph, ...).
class GraphError : public Error {
 public:
  using Error::Error;
};

/// Raised for statistical routines given degenerate input.
class StatsError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw Error(std::string("check failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace rca

/// Internal invariant check; throws rca::Error (never disabled — these guard
/// algorithmic invariants, not hot loops).
#define RCA_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::rca::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RCA_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr))                                                       \
      ::rca::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
