#include "support/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/error.hpp"

namespace rca {

namespace {

void write_fully(int fd, const std::string& data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("write failed for " + path + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw Error("cannot open " + tmp + ": " + std::strerror(errno));
  }
  try {
    write_fully(fd, content, tmp);
    if (::fsync(fd) != 0) {
      throw Error("fsync failed for " + tmp + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw Error("close failed for " + tmp + ": " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw Error("rename " + tmp + " -> " + path + " failed: " +
                std::strerror(err));
  }
}

void append_line_durable(const std::string& path, const std::string& line) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    throw Error("cannot open " + path + ": " + std::strerror(errno));
  }
  try {
    write_fully(fd, line + "\n", path);
    if (::fsync(fd) != 0) {
      throw Error("fsync failed for " + path + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

}  // namespace rca
