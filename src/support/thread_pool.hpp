// A small fixed-size thread pool with a parallel_for helper.
//
// The paper's Algorithm 5.4 instruments communities "in parallel"; the
// refinement engine submits one sampling task per community through this
// pool. Brandes betweenness also shards its source loop across the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rca {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + executing). The service
  /// layer's backpressure and the in-flight gauge read this; it is a
  /// monotonic snapshot, not a synchronization point.
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Enqueue a task; the future resolves when the task finishes (exceptions
  /// propagate through the future).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([this, task] {
        (*task)();  // packaged_task captures exceptions into the future
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
      });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n) across the pool; blocks until all complete.
  /// The first exception thrown by any iteration is rethrown to the caller
  /// (never lost), and remaining chunks stop claiming new iterations once a
  /// failure is recorded.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Compute fn(i) for i in [0, n) across the pool and return the results in
  /// index order — the scheduling is free but the output is deterministic,
  /// which is what the parallel front-end's ordered reductions rely on.
  /// R must be default-constructible. Like parallel_for, the first worker
  /// exception propagates to the caller instead of being swallowed.
  template <typename R, typename F>
  std::vector<R> parallel_map(std::size_t n, const F& fn) {
    std::vector<R> out(n);
    parallel_for(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::size_t> in_flight_{0};
  bool stop_ = false;
};

}  // namespace rca
