// A small fixed-size thread pool with a parallel_for helper.
//
// The paper's Algorithm 5.4 instruments communities "in parallel"; the
// refinement engine submits one sampling task per community through this
// pool. Brandes betweenness also shards its source loop across the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rca {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when the task finishes (exceptions
  /// propagate through the future).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n) across the pool; blocks until all complete.
  /// Exceptions from any iteration are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Compute fn(i) for i in [0, n) across the pool and return the results in
  /// index order — the scheduling is free but the output is deterministic,
  /// which is what the parallel front-end's ordered reductions rely on.
  /// R must be default-constructible.
  template <typename R, typename F>
  std::vector<R> parallel_map(std::size_t n, const F& fn) {
    std::vector<R> out(n);
    parallel_for(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace rca
