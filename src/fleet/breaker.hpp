// Per-shard circuit breaker.
//
// Classic three-state machine guarding one worker shard:
//   closed    requests flow; `failure_threshold` consecutive failures open
//             the circuit;
//   open      requests are refused locally (the gateway re-routes or backs
//             off) until `cooldown_ms` elapses;
//   half-open exactly one probe request is admitted; its success closes the
//             circuit, its failure re-opens with a fresh cooldown.
//
// The supervisor force-opens the breaker the instant SIGCHLD reports the
// worker dead — no request has to fail to discover a corpse — and resets it
// to closed after a successful respawn handshake. All transitions take an
// explicit `now` so tests drive time instead of sleeping.
#pragma once

#include <chrono>
#include <mutex>

namespace rca::fleet {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState s);

struct BreakerOptions {
  int failure_threshold = 3;    // consecutive failures that open the circuit
  long long cooldown_ms = 500;  // open -> half-open delay
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(BreakerOptions opts = {});

  /// May a request be attempted now? An elapsed cooldown transitions
  /// open -> half-open and admits exactly one probe; further calls in
  /// half-open are refused until the probe reports.
  bool allow(Clock::time_point now);

  /// Probe or regular request succeeded: close the circuit.
  void record_success();
  /// Request failed: count toward the threshold (closed) or re-open
  /// (half-open probe failure).
  void record_failure(Clock::time_point now);
  /// Out-of-band death evidence (SIGCHLD): open immediately.
  void force_open(Clock::time_point now);
  /// Respawn handshake completed: shard is verified alive, close.
  void reset();

  BreakerState state() const;

 private:
  BreakerOptions opts_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
};

}  // namespace rca::fleet
