#include "fleet/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "support/strings.hpp"

namespace rca::fleet {

namespace {

constexpr std::size_t kMaxHeadBytes = 64 * 1024;

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n;
    do {
      n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t recv_retry(int fd, char* chunk, std::size_t cap) {
  ssize_t n;
  do {
    n = ::recv(fd, chunk, cap, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

/// Lower-cased, trimmed value of the first `name` header; empty if absent.
std::string header_value(const std::string& headers, const char* name) {
  for (const std::string& line : split(headers, '\n')) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (to_lower(trim(line.substr(0, colon))) != name) continue;
    return to_lower(trim(line.substr(colon + 1)));
  }
  return "";
}

long long parse_digits(const std::string& s) {
  if (s.empty()) return -1;
  long long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    if (v > (1ll << 50)) return -1;
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace

HttpClient::HttpClient(std::uint16_t port, HttpClientOptions opts)
    : port_(port), opts_(opts) {
  if (opts_.max_connections == 0) opts_.max_connections = 1;
}

HttpClient::~HttpClient() { close_all(); }

int HttpClient::connect_fresh() const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = opts_.io_timeout_ms / 1000;
  tv.tv_usec = (opts_.io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int HttpClient::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return !idle_.empty() || outstanding_ < opts_.max_connections;
  });
  if (!idle_.empty()) {
    const int fd = idle_.back();
    idle_.pop_back();
    return fd;
  }
  ++outstanding_;
  return -1;  // slot reserved; caller connects fresh
}

void HttpClient::release(int fd, bool reusable) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd >= 0 && reusable) {
    idle_.push_back(fd);
  } else {
    if (fd >= 0) ::close(fd);
    --outstanding_;
  }
  cv_.notify_one();
}

void HttpClient::close_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : idle_) ::close(fd);
  outstanding_ -= idle_.size();
  idle_.clear();
  cv_.notify_all();
}

std::optional<ClientResponse> HttpClient::roundtrip(int fd,
                                                    const std::string& wire,
                                                    int timeout_ms) const {
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (!send_all(fd, wire)) return std::nullopt;

  std::string buf;
  char chunk[8192];
  while (buf.find("\r\n\r\n") == std::string::npos) {
    if (buf.size() > kMaxHeadBytes) return std::nullopt;
    const ssize_t n = recv_retry(fd, chunk, sizeof(chunk));
    if (n <= 0) return std::nullopt;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t head_end = buf.find("\r\n\r\n");
  const std::string head = buf.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::vector<std::string> parts = split_ws(status_line);
  if (parts.size() < 2 || !starts_with(parts[0], "HTTP/")) {
    return std::nullopt;
  }
  const long long status = parse_digits(parts[1]);
  if (status < 100 || status > 599) return std::nullopt;

  const std::string headers =
      line_end == std::string::npos ? "" : head.substr(line_end + 2);
  const long long content_length =
      parse_digits(header_value(headers, "content-length"));
  if (content_length < 0) return std::nullopt;  // transport requires it

  ClientResponse resp;
  resp.status = static_cast<int>(status);
  resp.keep_alive = header_value(headers, "connection") == "keep-alive";
  const long long retry_after =
      parse_digits(header_value(headers, "retry-after"));
  if (retry_after > 0) resp.retry_after_ms = retry_after * 1000;

  resp.body = buf.substr(head_end + 4);
  const std::size_t want = static_cast<std::size_t>(content_length);
  if (resp.body.size() > want) return std::nullopt;  // pipelined garbage
  while (resp.body.size() < want) {
    const std::size_t cap = std::min(sizeof(chunk), want - resp.body.size());
    const ssize_t n = recv_retry(fd, chunk, cap);
    if (n <= 0) return std::nullopt;
    resp.body.append(chunk, static_cast<std::size_t>(n));
  }
  return resp;
}

std::optional<ClientResponse> HttpClient::request(const std::string& method,
                                                  const std::string& path,
                                                  const std::string& body,
                                                  int timeout_ms) {
  std::string wire = method + " " + path + " HTTP/1.1\r\nHost: l\r\n";
  wire += "Connection: keep-alive\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  wire += body;

  int fd = acquire();
  bool reused = fd >= 0;
  if (!reused) {
    fd = connect_fresh();
    if (fd < 0) {
      release(-1, false);
      return std::nullopt;
    }
  }
  std::optional<ClientResponse> resp = roundtrip(fd, wire, timeout_ms);
  if (!resp.has_value() && reused) {
    // The server may have recycled this idle connection between our acquire
    // and the send (bounded requests-per-connection, idle timeout). That is
    // not shard evidence — retry exactly once on a fresh socket.
    ::close(fd);
    fd = connect_fresh();
    if (fd < 0) {
      release(-1, false);
      return std::nullopt;
    }
    resp = roundtrip(fd, wire, timeout_ms);
  }
  const bool reusable = resp.has_value() && resp->keep_alive;
  if (resp.has_value()) {
    release(fd, reusable);
  } else {
    ::close(fd);
    release(-1, false);
  }
  return resp;
}

}  // namespace rca::fleet
