#include "fleet/breaker.hpp"

namespace rca::fleet {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions opts) : opts_(opts) {
  if (opts_.failure_threshold < 1) opts_.failure_threshold = 1;
}

bool CircuitBreaker::allow(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ >= std::chrono::milliseconds(opts_.cooldown_ms)) {
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the shard is still bad, restart the cooldown.
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    probe_in_flight_ = false;
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= opts_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    consecutive_failures_ = 0;
  }
}

void CircuitBreaker::force_open(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

}  // namespace rca::fleet
