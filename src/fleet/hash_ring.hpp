// Consistent-hash ring over worker shards.
//
// The fleet partitions the session key space (content-hash keys, src paths,
// scenario ids) across N workers so each resident graph lives in exactly
// one process. A plain `hash % N` would reshuffle almost every key when N
// changes; the ring with virtual nodes moves only ~1/N of the key space
// per shard change and keeps the assignment deterministic across gateway
// restarts (FNV-1a, no process-seeded hashing).
//
// preference() returns the owner followed by the remaining shards in ring
// order — the gateway's failover sequence when the owner's circuit is open:
// re-routable requests (ones carrying "src" or "scenario", which any worker
// can rebuild from the shared snapshot directory) walk this list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace rca::fleet {

/// FNV-1a 64-bit — stable across processes and platforms by construction.
std::uint64_t fnv1a64(std::string_view s);

class HashRing {
 public:
  /// `shards` >= 1; `vnodes` virtual points per shard smooth the partition
  /// (64 gives <~15% imbalance across realistic key sets).
  explicit HashRing(std::size_t shards, std::size_t vnodes = 64);

  std::size_t shards() const { return shards_; }

  /// The shard owning `key`.
  std::size_t owner(std::string_view key) const;

  /// Owner first, then every other shard in ring order from the key's
  /// position — each shard exactly once.
  std::vector<std::size_t> preference(std::string_view key) const;

 private:
  std::size_t shards_;
  /// (point, shard), sorted by point.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace rca::fleet
