// Loopback fleet gateway: one HTTP front door, N worker shards behind it.
//
// The gateway is an HttpServer::Handler that proxies every request to a
// worker chosen by consistent hash of the request's *routing key* and
// contains failure per shard:
//
//   routing key    "campaign" ids are gateway-prefixed ("w<shard>:cN") and
//                  pin the request to that shard (campaign state lives in
//                  that worker's manager; after a crash the respawned worker
//                  resumes it from its journal). "session" keys use learned
//                  affinity (which worker built it) with the hash ring as
//                  the cold fallback. "src"/"scenario" requests hash their
//                  content key and may re-route across the ring's
//                  preference list — any worker rebuilds the session warm
//                  from the shared snapshot directory. Everything else
//                  hashes the raw body.
//
//   containment    a shard's circuit breaker (force-opened by the
//                  supervisor on death evidence) short-circuits attempts;
//                  transport failures count as breaker evidence and
//                  re-route re-routable requests to the next shard in the
//                  preference list; retries use bounded exponential backoff
//                  with deterministic jitter and honor Retry-After from
//                  backpressure (429) responses. Only after the attempt
//                  budget is exhausted does the client see 503.
//
// Gateway-local endpoints (never proxied): GET /v1/health (gateway liveness
// + worker up-count), GET /v1/metrics (gateway-process registry), GET
// /v1/fleet/status (schema rca.fleet.v1: per-shard pid, port, generation,
// restarts, state, breaker state, sessions owned).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fleet/hash_ring.hpp"
#include "fleet/supervisor.hpp"
#include "service/router.hpp"

namespace rca::fleet {

struct GatewayOptions {
  /// Attempt budget per request (first try + retries/re-routes). The total
  /// sleep across a budget comfortably covers one worker respawn.
  int max_attempts = 10;
  /// Retry backoff: exponential from base, jittered, capped. A Retry-After
  /// from a worker raises the delay up to the cap.
  long long retry_base_ms = 25;
  long long retry_cap_ms = 500;
  std::uint64_t retry_seed = 7;
  /// Per-proxied-request timeout; <= 0 uses the shard client's io_timeout.
  int request_timeout_ms = 0;
};

class Gateway {
 public:
  Gateway(Supervisor* supervisor, GatewayOptions opts);

  /// The HttpServer::Handler. Thread-safe.
  service::Response handle(const service::Request& req);

  /// Pure retry schedule (unit-tested like Supervisor::restart_backoff_ms).
  static long long retry_delay_ms(int attempt, long long base_ms,
                                  long long cap_ms, std::uint64_t seed,
                                  std::uint64_t key_hash);

 private:
  struct RouteDecision {
    std::vector<std::size_t> shards;  // preference order
    bool pinned = false;              // true: never leave shards[0]
    std::uint64_t key_hash = 0;
    std::string forward_body;         // body to send (campaign prefix stripped)
    std::size_t campaign_shard = 0;   // valid when campaign_routed
    bool campaign_routed = false;
  };

  RouteDecision route(const service::Request& req) const;
  service::Response proxy(const service::Request& req);
  service::Response fleet_status() const;
  service::Response gateway_health() const;
  void learn_affinity(const std::string& body, std::size_t shard);

  Supervisor* supervisor_;
  GatewayOptions opts_;
  HashRing ring_;

  mutable std::mutex mu_;
  /// session key -> shard that last served it (learned from 200 bodies).
  std::unordered_map<std::string, std::size_t> affinity_;
};

}  // namespace rca::fleet
