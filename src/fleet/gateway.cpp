#include "fleet/gateway.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/obs.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace rca::fleet {

using Clock = std::chrono::steady_clock;

namespace {

/// "w<digits>:<rest>" -> (shard, rest). Returns false when `id` carries no
/// gateway prefix (a raw worker-local id, or garbage the worker will 400).
bool split_campaign_id(const std::string& id, std::size_t* shard,
                       std::string* rest) {
  if (id.size() < 4 || id[0] != 'w') return false;
  std::size_t pos = 1;
  std::size_t value = 0;
  while (pos < id.size() && id[pos] >= '0' && id[pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(id[pos] - '0');
    ++pos;
  }
  if (pos == 1 || pos >= id.size() || id[pos] != ':') return false;
  *shard = value;
  *rest = id.substr(pos + 1);
  return !rest->empty();
}

/// Replaces the first JSON string token `"<from>"` with `"<to>"`. Bodies and
/// worker responses are emitted by JsonWriter with no whitespace, so the
/// quoted form is exact.
std::string replace_token(const std::string& text, const std::string& from,
                          const std::string& to) {
  const std::string needle = "\"" + from + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return text;
  return text.substr(0, at) + "\"" + to + "\"" + text.substr(at + needle.size());
}

/// Value of the first `"<key>":"..."` member in a JsonWriter-emitted body;
/// empty when absent.
std::string find_string_member(const std::string& body, const char* key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = body.find('"', start);
  if (end == std::string::npos) return "";
  return body.substr(start, end - start);
}

bool is_refine_path(const std::string& path) {
  return starts_with(path, "/v1/refine");
}

}  // namespace

long long Gateway::retry_delay_ms(int attempt, long long base_ms,
                                  long long cap_ms, std::uint64_t seed,
                                  std::uint64_t key_hash) {
  if (base_ms < 1) base_ms = 1;
  if (cap_ms < base_ms) cap_ms = base_ms;
  long long base = base_ms;
  for (int i = 0; i < attempt && base < cap_ms; ++i) base *= 2;
  base = std::min(base, cap_ms);
  const std::uint64_t h =
      fnv1a64(std::to_string(seed) + ":" + std::to_string(key_hash) + ":" +
              std::to_string(attempt));
  const double frac = 0.5 + 0.5 * static_cast<double>(h % 1024) / 1023.0;
  return std::max(static_cast<long long>(static_cast<double>(base) * frac),
                  1ll);
}

Gateway::Gateway(Supervisor* supervisor, GatewayOptions opts)
    : supervisor_(supervisor),
      opts_(opts),
      ring_(supervisor->workers()) {
  if (opts_.max_attempts < 1) opts_.max_attempts = 1;
}

Gateway::RouteDecision Gateway::route(const service::Request& req) const {
  RouteDecision d;
  d.forward_body = req.body;

  JsonValue body;
  bool parsed = false;
  if (!req.body.empty()) {
    try {
      body = parse_json(req.body);
      parsed = body.is_object();
    } catch (...) {
      parsed = false;  // the worker produces the 400; route by raw bytes
    }
  }

  if (parsed && is_refine_path(req.path)) {
    const std::string id = body.get_string("campaign");
    std::size_t shard = 0;
    std::string rest;
    if (!id.empty() && split_campaign_id(id, &shard, &rest) &&
        shard < supervisor_->workers()) {
      d.shards = {shard};
      d.pinned = true;
      d.campaign_routed = true;
      d.campaign_shard = shard;
      d.key_hash = fnv1a64(id);
      d.forward_body = replace_token(req.body, id, rest);
      return d;
    }
  }

  std::string key;
  if (parsed) {
    const std::string session = body.get_string("session");
    const std::string src = body.get_string("src");
    const std::string scenario = body.get_string("scenario");
    if (!session.empty()) {
      key = "session:" + session;
      d.key_hash = fnv1a64(key);
      std::size_t learned = 0;
      bool have_learned = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = affinity_.find(session);
        if (it != affinity_.end()) {
          learned = it->second;
          have_learned = true;
        }
      }
      d.shards = ring_.preference(key);
      if (have_learned) {
        // The worker that built the session answers without a rebuild; the
        // rest of the preference list stays as warm-start fallback.
        auto it = std::find(d.shards.begin(), d.shards.end(), learned);
        if (it != d.shards.end()) d.shards.erase(it);
        d.shards.insert(d.shards.begin(), learned);
      }
      return d;
    }
    if (!src.empty()) {
      key = "src:" + src;
    } else if (!scenario.empty()) {
      key = "scenario:" + scenario + ":" +
            std::to_string(body.get_int("seed", 0));
    }
  }
  if (key.empty()) key = "body:" + req.body + ":" + req.path;
  d.key_hash = fnv1a64(key);
  d.shards = ring_.preference(key);
  return d;
}

void Gateway::learn_affinity(const std::string& body, std::size_t shard) {
  const std::string session = find_string_member(body, "session");
  if (session.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  affinity_[session] = shard;
}

service::Response Gateway::proxy(const service::Request& req) {
  obs::Span span("fleet.proxy");
  span.attr("path", req.path);
  obs::count("fleet.gateway.requests");

  const RouteDecision d = route(req);
  std::size_t cursor = 0;  // index into d.shards (sticky until evidence)
  service::Response last_worker_error;
  bool have_worker_error = false;

  for (int attempt = 0; attempt < opts_.max_attempts; ++attempt) {
    if (attempt > 0) obs::count("fleet.gateway.retries");

    // Pick the first admissible shard at/after the cursor.
    std::size_t shard = 0;
    std::shared_ptr<HttpClient> client;
    for (std::size_t probe = 0; probe < d.shards.size(); ++probe) {
      const std::size_t cand =
          d.shards[d.pinned ? 0 : (cursor + probe) % d.shards.size()];
      if (!supervisor_->breaker(cand).allow(Clock::now())) {
        obs::count("fleet.gateway.breaker_rejects");
        if (d.pinned) break;
        continue;
      }
      client = supervisor_->client(cand);
      if (!client) {
        // Down/restarting: handshake evidence will reset the breaker.
        if (d.pinned) break;
        continue;
      }
      shard = cand;
      break;
    }
    if (!client) {
      // Nothing admissible right now — the shard we need is restarting.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_delay_ms(attempt, opts_.retry_base_ms, opts_.retry_cap_ms,
                         opts_.retry_seed, d.key_hash)));
      continue;
    }

    const std::optional<ClientResponse> resp = client->request(
        req.method, req.path, d.forward_body, opts_.request_timeout_ms);

    if (!resp.has_value()) {
      // Transport-level failure on a fresh socket: shard evidence.
      supervisor_->note_failure(shard);
      obs::count("fleet.gateway.transport_failures");
      if (!d.pinned) {
        ++cursor;  // re-route: the next shard warm-starts from the snapshot
        obs::count("fleet.gateway.reroutes");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_delay_ms(attempt, opts_.retry_base_ms, opts_.retry_cap_ms,
                         opts_.retry_seed, d.key_hash)));
      continue;
    }

    if (resp->status == 429 || resp->status == 503) {
      // Backpressure is per-shard and transient: honor Retry-After (capped)
      // and try again — same shard; spilling load onto its neighbors would
      // just spread the saturation.
      supervisor_->note_success(shard);  // the worker answered; it is alive
      last_worker_error =
          service::Response{resp->status, resp->body};
      have_worker_error = true;
      obs::count("fleet.gateway.backpressure");
      const long long backoff =
          retry_delay_ms(attempt, opts_.retry_base_ms, opts_.retry_cap_ms,
                         opts_.retry_seed, d.key_hash);
      const long long hinted =
          resp->retry_after_ms > 0
              ? std::min(resp->retry_after_ms, opts_.retry_cap_ms)
              : 0;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(backoff, hinted)));
      continue;
    }

    // An application answer (2xx or a definitive error): forward verbatim,
    // modulo the campaign-id prefix that keeps routing stateless for the
    // client.
    supervisor_->note_success(shard);
    service::Response out;
    out.status = resp->status;
    out.body = resp->body;
    if (resp->status == 200) {
      learn_affinity(resp->body, shard);
      const std::string cid = find_string_member(resp->body, "campaign");
      if (!cid.empty() && is_refine_path(req.path)) {
        const std::size_t owner =
            d.campaign_routed ? d.campaign_shard : shard;
        out.body = replace_token(
            out.body, cid, "w" + std::to_string(owner) + ":" + cid);
      }
    }
    span.attr("attempts", static_cast<long long>(attempt + 1));
    span.attr("shard", static_cast<long long>(shard));
    return out;
  }

  obs::count("fleet.gateway.exhausted");
  if (have_worker_error) return last_worker_error;
  return service::retriable_error_response(
      503, "fleet_unavailable",
      "no worker shard answered within the retry budget", 1);
}

service::Response Gateway::gateway_health() const {
  std::size_t up = 0;
  const std::vector<ShardStatus> shards = supervisor_->status();
  for (const ShardStatus& s : shards) {
    if (s.state == ShardState::kUp) ++up;
  }
  JsonWriter w;
  w.begin_object();
  w.key("status");
  w.string_value(up > 0 ? "ok" : "degraded");
  w.key("role");
  w.string_value("gateway");
  w.key("workers");
  w.number(static_cast<long long>(shards.size()));
  w.key("up");
  w.number(static_cast<long long>(up));
  w.end_object();
  return service::Response{up > 0 ? 200 : 503, w.str() + "\n"};
}

service::Response Gateway::fleet_status() const {
  std::vector<std::size_t> sessions(supervisor_->workers(), 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [session, shard] : affinity_) {
      (void)session;
      if (shard < sessions.size()) ++sessions[shard];
    }
  }
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string_value("rca.fleet.v1");
  w.key("workers");
  w.number(static_cast<long long>(supervisor_->workers()));
  w.key("shards");
  w.begin_array();
  for (const ShardStatus& s : supervisor_->status()) {
    w.begin_object();
    w.key("shard");
    w.number(static_cast<long long>(s.shard));
    w.key("pid");
    w.number(static_cast<long long>(s.pid));
    w.key("port");
    w.number(static_cast<long long>(s.port));
    w.key("generation");
    w.number(static_cast<long long>(s.generation));
    w.key("restarts");
    w.number(static_cast<long long>(s.restarts));
    w.key("state");
    w.string_value(shard_state_name(s.state));
    w.key("breaker");
    w.string_value(breaker_state_name(s.breaker));
    w.key("sessions");
    w.number(static_cast<long long>(sessions[s.shard]));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return service::Response{200, w.str() + "\n"};
}

service::Response Gateway::handle(const service::Request& req) {
  if (req.method == "GET" && req.path == "/v1/health") {
    return gateway_health();
  }
  if (req.method == "GET" && req.path == "/v1/fleet/status") {
    return fleet_status();
  }
  if (req.method == "GET" && req.path == "/v1/metrics") {
    return service::Response{200, obs::global().to_json() + "\n"};
  }
  return proxy(req);
}

}  // namespace rca::fleet
