// Loopback HTTP/1.1 client with a bounded keep-alive connection pool.
//
// The gateway proxies every request to a worker over this client; paying a
// connect() per proxied request would dominate small-query latency and
// burn ephemeral ports under the chaos bench, so connections are pooled
// per endpoint and reused while the worker answers `Connection:
// keep-alive`. The pool is a semaphore: at most `max_connections` sockets
// exist at once, surplus callers wait — which also caps how many of a
// worker's connection threads one gateway can occupy.
//
// Failure semantics match what the fleet needs: a request on a *reused*
// connection that dies on send/first byte is retried once on a fresh
// socket (the server may have recycled the idle connection — not a worker
// failure); a fresh-socket failure is reported to the caller, who treats
// it as shard-level evidence (breaker, re-route). close_all() drops every
// pooled socket after a worker death so no request ever waits on a corpse.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace rca::fleet {

struct HttpClientOptions {
  std::size_t max_connections = 8;
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 30000;
};

/// One proxied response. `retry_after_ms` is parsed from a Retry-After
/// header (seconds granularity), 0 when absent.
struct ClientResponse {
  int status = 0;
  std::string body;
  long long retry_after_ms = 0;
  bool keep_alive = false;
};

class HttpClient {
 public:
  HttpClient(std::uint16_t port, HttpClientOptions opts);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocking request/response. nullopt = transport failure (connect,
  /// send, or malformed/truncated response) — the endpoint itself is
  /// suspect. `timeout_ms` <= 0 uses the client's io_timeout.
  std::optional<ClientResponse> request(const std::string& method,
                                        const std::string& path,
                                        const std::string& body,
                                        int timeout_ms = 0);

  /// Drops every pooled idle connection (after a worker death or respawn).
  /// In-flight requests fail on their own socket and are not interrupted.
  void close_all();

 private:
  /// Pool slot: an idle fd (>= 0) or -1 meaning "slot acquired, connect
  /// fresh". Blocks while max_connections sockets are busy.
  int acquire();
  void release(int fd, bool reusable);
  int connect_fresh() const;
  std::optional<ClientResponse> roundtrip(int fd, const std::string& wire,
                                          int timeout_ms) const;

  std::uint16_t port_;
  HttpClientOptions opts_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int> idle_;
  std::size_t outstanding_ = 0;  // sockets checked out or idle
};

}  // namespace rca::fleet
