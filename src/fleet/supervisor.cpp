#include "fleet/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "fleet/hash_ring.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::fleet {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

const char* shard_state_name(ShardState s) {
  switch (s) {
    case ShardState::kStarting: return "starting";
    case ShardState::kUp: return "up";
    case ShardState::kDown: return "down";
    case ShardState::kRestarting: return "restarting";
  }
  return "unknown";
}

namespace {

/// Self-pipe the SIGCHLD handler pokes; async-signal-safe.
std::atomic<int> g_sigchld_fd{-1};

extern "C" void rca_fleet_sigchld_handler(int /*signum*/) {
  const int fd = g_sigchld_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'c';
    [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
  }
}

}  // namespace

long long Supervisor::restart_backoff_ms(std::uint64_t attempt,
                                         long long initial_ms,
                                         long long cap_ms, std::uint64_t seed,
                                         std::size_t shard) {
  if (initial_ms < 1) initial_ms = 1;
  if (cap_ms < initial_ms) cap_ms = initial_ms;
  long long base = initial_ms;
  for (std::uint64_t i = 0; i < attempt && base < cap_ms; ++i) base *= 2;
  base = std::min(base, cap_ms);
  // Deterministic multiplicative jitter in [0.5, 1.0]: respawn storms
  // decorrelate across shards, yet every schedule is reproducible.
  const std::uint64_t h =
      fnv1a64(std::to_string(seed) + ":" + std::to_string(shard) + ":" +
              std::to_string(attempt));
  const double frac =
      0.5 + 0.5 * static_cast<double>(h % 1024) / 1023.0;
  return std::max(static_cast<long long>(static_cast<double>(base) * frac),
                  1ll);
}

Supervisor::Supervisor(WorkerSpec spec, SupervisorOptions opts)
    : spec_(std::move(spec)), opts_(opts) {
  if (opts_.workers == 0) opts_.workers = 1;
}

Supervisor::~Supervisor() { shutdown(); }

std::string Supervisor::port_file(std::size_t shard,
                                  std::uint64_t /*generation*/) const {
  return (fs::path(spec_.run_dir) /
          ("worker-" + std::to_string(shard) + ".port"))
      .string();
}

pid_t Supervisor::spawn_process(std::size_t i, std::uint64_t gen) {
  const std::string pf = port_file(i, gen);
  ::unlink(pf.c_str());  // never hand the handshake a stale port

  std::vector<std::string> args;
  args.push_back(spec_.binary);
  args.push_back("serve");
  args.push_back("--port");
  args.push_back("0");
  args.push_back("--port-file");
  args.push_back(pf);
  args.push_back("--generation");
  args.push_back(std::to_string(gen));
  for (const std::string& a : spec_.extra_args) args.push_back(a);

  const std::string log_path =
      (fs::path(spec_.run_dir) / ("worker-" + std::to_string(i) + ".log"))
          .string();

  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    // Child. Only async-signal-safe calls until execv.
#ifdef __linux__
    // Belt and braces: if the supervisor itself is SIGKILLed, workers die
    // with it instead of lingering as orphans.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      if (log_fd > STDERR_FILENO) ::close(log_fd);
    }
    // Workers must not inherit the supervisor's SIGCHLD disposition.
    ::signal(SIGCHLD, SIG_DFL);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(spec_.binary.c_str(), argv.data());
    ::_exit(127);
  }
  obs::count("fleet.worker.spawns");
  return pid;
}

std::uint16_t Supervisor::await_port(const std::string& path,
                                     long long deadline_ms, pid_t pid) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (Clock::now() < deadline) {
    if (stopping_.load(std::memory_order_relaxed)) return 0;
    // A child that died before publishing its port will never hand-shake;
    // reap it here (no concurrent waiter exists: initial start() runs
    // before the monitor, respawns run *on* the monitor thread).
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pid, &status, WNOHANG);
    } while (reaped < 0 && errno == EINTR);
    if (reaped == pid) return 0;

    std::ifstream in(path);
    if (in) {
      std::string text;
      in >> text;
      if (!text.empty()) {
        long long port = 0;
        bool numeric = true;
        for (char c : text) {
          if (c < '0' || c > '9') {
            numeric = false;
            break;
          }
          port = port * 10 + (c - '0');
        }
        if (numeric && port > 0 && port <= 65535) {
          return static_cast<std::uint16_t>(port);
        }
        return 0;  // corrupt port file — the write was supposed to be atomic
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

bool Supervisor::bring_up(std::size_t i) {
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& sh = *shards_[i];
    gen = ++sh.generation;
    sh.state = gen == 1 ? ShardState::kStarting : ShardState::kRestarting;
  }
  obs::Span span("fleet.worker.bring_up");
  span.attr("shard", static_cast<long long>(i));
  span.attr("generation", static_cast<long long>(gen));

  const pid_t pid = spawn_process(i, gen);
  std::uint16_t port = 0;
  if (pid > 0) {
    port = await_port(port_file(i, gen), opts_.spawn_deadline_ms, pid);
  }
  if (port == 0) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(pid, &status, 0);
      } while (reaped < 0 && errno == EINTR);
    }
    std::lock_guard<std::mutex> lock(mu_);
    Shard& sh = *shards_[i];
    sh.pid = -1;
    sh.state = ShardState::kDown;
    sh.respawn_due =
        Clock::now() + std::chrono::milliseconds(restart_backoff_ms(
                           sh.backoff_attempt++, opts_.restart_backoff_initial_ms,
                           opts_.restart_backoff_cap_ms, opts_.backoff_seed, i));
    obs::count("fleet.worker.spawn_failures");
    return false;
  }

  HttpClientOptions copts;
  copts.max_connections = opts_.client_connections;
  copts.io_timeout_ms = opts_.probe_timeout_ms > 0
                            ? std::max(opts_.probe_timeout_ms, 30000)
                            : 30000;
  auto client = std::make_shared<HttpClient>(port, copts);

  {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& sh = *shards_[i];
    sh.pid = pid;
    sh.port = port;
    sh.client = std::move(client);
    sh.state = ShardState::kUp;
    sh.up_since = Clock::now();
    sh.probe_failures = 0;
    if (gen > 1) {
      ++sh.restarts;
      obs::count("fleet.worker.respawns");
    }
    // Handshake completed: the worker is demonstrably serving. The breaker
    // re-opens instantly on the next death signal.
    sh.breaker.reset();
  }
  return true;
}

void Supervisor::start() {
  RCA_CHECK_MSG(!started_, "Supervisor::start() called twice");
  started_ = true;
  fs::create_directories(spec_.run_dir);

  if (::pipe(sigchld_pipe_) != 0) throw Error("pipe() failed");
  // Both ends non-blocking: a full pipe must never wedge the handler, and
  // the monitor's drain loop must stop at EAGAIN instead of blocking.
  ::fcntl(sigchld_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(sigchld_pipe_[1], F_SETFL, O_NONBLOCK);
  g_sigchld_fd.store(sigchld_pipe_[1], std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = rca_fleet_sigchld_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked syscalls must wake with EINTR
  ::sigaction(SIGCHLD, &sa, nullptr);

  shards_.clear();
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    auto sh = std::make_unique<Shard>(opts_.breaker);
    sh->index = i;
    shards_.push_back(std::move(sh));
  }
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    if (!bring_up(i)) {
      shutdown();
      throw Error("fleet worker " + std::to_string(i) +
                  " failed its port-file handshake within " +
                  std::to_string(opts_.spawn_deadline_ms) + " ms");
    }
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::reap_children() {
  for (;;) {
    int status = 0;
    pid_t pid;
    do {
      pid = ::waitpid(-1, &status, WNOHANG);
    } while (pid < 0 && errno == EINTR);
    if (pid <= 0) return;  // no more exited children (or none at all)
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& sh : shards_) {
      if (sh->pid != pid) continue;
      obs::count("fleet.worker.deaths");
      sh->pid = -1;
      sh->state = ShardState::kDown;
      sh->breaker.force_open(Clock::now());
      if (sh->client) sh->client->close_all();
      sh->respawn_due =
          Clock::now() +
          std::chrono::milliseconds(restart_backoff_ms(
              sh->backoff_attempt++, opts_.restart_backoff_initial_ms,
              opts_.restart_backoff_cap_ms, opts_.backoff_seed, sh->index));
      break;
    }
  }
}

void Supervisor::monitor_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{sigchld_pipe_[0], POLLIN, 0};
    const int rc =
        ::poll(&p, 1, static_cast<int>(opts_.probe_interval_ms));
    if (rc < 0 && errno != EINTR) break;
    if (rc > 0 && (p.revents & POLLIN) != 0) {
      char drain[64];
      ssize_t n;
      do {
        n = ::read(sigchld_pipe_[0], drain, sizeof(drain));
      } while (n > 0 || (n < 0 && errno == EINTR));
    }
    reap_children();
    if (stopping_.load(std::memory_order_relaxed)) break;

    const Clock::time_point now = Clock::now();

    // Respawns due. bring_up blocks the monitor briefly (handshake); with a
    // warm snapshot directory a worker publishes its port well under the
    // probe interval in practice.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      bool due = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        due = shards_[i]->state == ShardState::kDown &&
              now >= shards_[i]->respawn_due;
      }
      if (due) bring_up(i);
    }

    // Health probes: a worker that answers keeps its streak clean; one that
    // times out repeatedly is wedged — SIGKILL it and let the death path
    // respawn with backoff.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::shared_ptr<HttpClient> c;
      pid_t pid = -1;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (shards_[i]->state != ShardState::kUp) continue;
        c = shards_[i]->client;
        pid = shards_[i]->pid;
      }
      if (!c) continue;
      const std::optional<ClientResponse> resp =
          c->request("GET", "/v1/health", "", opts_.probe_timeout_ms);
      std::lock_guard<std::mutex> lock(mu_);
      Shard& sh = *shards_[i];
      if (sh.pid != pid || sh.state != ShardState::kUp) continue;
      if (resp.has_value() && resp->status == 200) {
        sh.probe_failures = 0;
        sh.breaker.record_success();
        if (sh.backoff_attempt > 0 &&
            Clock::now() - sh.up_since >
                std::chrono::milliseconds(opts_.backoff_reset_after_ms)) {
          sh.backoff_attempt = 0;  // survived: future crashes restart cheap
        }
      } else {
        obs::count("fleet.probe.failures");
        if (++sh.probe_failures >= opts_.probe_failures_to_kill) {
          obs::count("fleet.probe.kills");
          ::kill(pid, SIGKILL);  // death path reaps, breaks, respawns
          sh.probe_failures = 0;
        }
      }
    }
  }
}

void Supervisor::shutdown() {
  if (!started_) return;
  if (stopping_.exchange(true)) return;
  // Wake the monitor promptly, then join it before touching children.
  if (sigchld_pipe_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t rc = ::write(sigchld_pipe_[1], &byte, 1);
  }
  if (monitor_.joinable()) monitor_.join();

  std::vector<pid_t> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& sh : shards_) {
      if (sh->pid > 0) live.push_back(sh->pid);
      sh->state = ShardState::kDown;
      if (sh->client) sh->client->close_all();
    }
  }
  for (pid_t pid : live) ::kill(pid, SIGTERM);  // graceful drain

  // Reap with a deadline, then escalate: no orphans, ever.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(5000);
  std::vector<pid_t> pending = live;
  while (!pending.empty() && Clock::now() < deadline) {
    std::vector<pid_t> still;
    for (pid_t pid : pending) {
      int status = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(pid, &status, WNOHANG);
      } while (reaped < 0 && errno == EINTR);
      if (reaped != pid) still.push_back(pid);
    }
    pending = std::move(still);
    if (!pending.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  for (pid_t pid : pending) {
    ::kill(pid, SIGKILL);
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
  }

  // Handshake files are supervisor state, not worker output: remove them.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ::unlink(port_file(i, 0).c_str());
  }

  g_sigchld_fd.store(-1, std::memory_order_relaxed);
  ::signal(SIGCHLD, SIG_DFL);
  for (int i = 0; i < 2; ++i) {
    if (sigchld_pipe_[i] >= 0) {
      ::close(sigchld_pipe_[i]);
      sigchld_pipe_[i] = -1;
    }
  }
}

std::shared_ptr<HttpClient> Supervisor::client(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= shards_.size()) return nullptr;
  const Shard& sh = *shards_[shard];
  return sh.state == ShardState::kUp ? sh.client : nullptr;
}

CircuitBreaker& Supervisor::breaker(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard]->breaker;
}

void Supervisor::note_success(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < shards_.size()) shards_[shard]->breaker.record_success();
}

void Supervisor::note_failure(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < shards_.size()) {
    shards_[shard]->breaker.record_failure(Clock::now());
  }
}

std::vector<ShardStatus> Supervisor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardStatus s;
    s.shard = sh->index;
    s.pid = sh->pid;
    s.port = sh->port;
    s.generation = sh->generation;
    s.restarts = sh->restarts;
    s.state = sh->state;
    s.breaker = sh->breaker.state();
    out.push_back(s);
  }
  return out;
}

}  // namespace rca::fleet
