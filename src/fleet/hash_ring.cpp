#include "fleet/hash_ring.hpp"

#include <algorithm>
#include <string>

#include "support/error.hpp"

namespace rca::fleet {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

namespace {

/// Murmur3 fmix64 finalizer. Raw FNV-1a of short, similar strings ("key-0",
/// "key-1", ...) clusters in a narrow band of the 64-bit space — bad enough
/// that a 4-shard ring can starve three shards entirely. The finalizer's
/// avalanche spreads both the vnode points and the lookup keys uniformly.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t vnodes) : shards_(shards) {
  RCA_CHECK_MSG(shards >= 1, "hash ring needs at least one shard");
  if (vnodes == 0) vnodes = 1;
  ring_.reserve(shards * vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      const std::string point =
          "shard-" + std::to_string(s) + "#" + std::to_string(v);
      ring_.emplace_back(mix64(fnv1a64(point)), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::owner(std::string_view key) const {
  const std::uint64_t h = mix64(fnv1a64(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::size_t>& p, std::uint64_t v) {
        return p.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<std::size_t> HashRing::preference(std::string_view key) const {
  const std::uint64_t h = mix64(fnv1a64(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::size_t>& p, std::uint64_t v) {
        return p.first < v;
      });
  std::vector<std::size_t> order;
  order.reserve(shards_);
  std::vector<bool> seen(shards_, false);
  for (std::size_t walked = 0; walked < ring_.size() && order.size() < shards_;
       ++walked, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->second]) {
      seen[it->second] = true;
      order.push_back(it->second);
    }
  }
  return order;
}

}  // namespace rca::fleet
