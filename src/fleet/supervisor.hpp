// Worker-fleet supervisor: N `rca-serve` processes, one shard each.
//
// start() forks+execs `spec.binary serve --port 0 --port-file <run_dir>/
// worker-K.port --generation G ...` per shard and completes the port-file
// handshake (the worker publishes its ephemeral port with an atomic
// temp+rename write; the supervisor polls the file with a deadline). All
// workers share the read-only snapshot directory, so a respawned worker
// warm-starts every graph it is asked for from disk instead of re-parsing
// source.
//
// A monitor thread owns failure detection and recovery:
//   * SIGCHLD (self-pipe, EINTR-safe waitpid(-1, WNOHANG) reap loop) —
//     catches SIGKILL, fault-injected aborts (`fleet.worker.crash`), and
//     any other death the instant it happens;
//   * periodic /v1/health probes — a worker that stops answering within
//     probe_timeout_ms for probe_failures_to_kill consecutive probes is
//     presumed wedged and SIGKILLed (the death path then respawns it);
//   * respawn with exponential, deterministically jittered, capped backoff
//     per shard (restart_backoff_ms is pure — pinned by unit test); the
//     backoff streak resets once a respawned worker stays healthy.
//
// The shard's circuit breaker is force-opened on death evidence and reset
// only after the respawned worker's handshake + first health probe — the
// gateway never has to burn a request to discover a corpse.
//
// shutdown() SIGTERMs every worker (graceful drain), reaps with a
// deadline, SIGKILLs stragglers, and removes the port files: no orphan
// processes survive the supervisor (pinned by test).
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/breaker.hpp"
#include "fleet/http_client.hpp"

namespace rca::fleet {

struct WorkerSpec {
  /// Worker executable (conventionally /proc/self/exe) and the arguments
  /// appended after `serve --port 0 --port-file ... --generation N`.
  std::string binary;
  std::vector<std::string> extra_args;
  /// Port files and worker logs live here; created if missing.
  std::string run_dir;
};

struct SupervisorOptions {
  std::size_t workers = 4;
  /// Port-file handshake budget per spawn.
  long long spawn_deadline_ms = 20000;
  /// Health-probe cadence and per-probe timeout.
  long long probe_interval_ms = 250;
  int probe_timeout_ms = 2000;
  int probe_failures_to_kill = 2;
  /// Respawn backoff: exponential from initial, jittered, capped.
  long long restart_backoff_initial_ms = 50;
  long long restart_backoff_cap_ms = 2000;
  std::uint64_t backoff_seed = 2019;
  /// Healthy uptime after which a shard's backoff streak resets.
  long long backoff_reset_after_ms = 5000;
  std::size_t client_connections = 8;
  BreakerOptions breaker;
};

enum class ShardState { kStarting, kUp, kDown, kRestarting };

const char* shard_state_name(ShardState s);

struct ShardStatus {
  std::size_t shard = 0;
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::uint64_t generation = 0;  // 1 on first spawn, +1 per respawn
  std::uint64_t restarts = 0;
  ShardState state = ShardState::kStarting;
  BreakerState breaker = BreakerState::kClosed;
};

class Supervisor {
 public:
  Supervisor(WorkerSpec spec, SupervisorOptions opts);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every worker and completes its handshake; throws rca::Error if
  /// any shard fails to come up within spawn_deadline_ms. Starts the
  /// monitor thread. One Supervisor per process (SIGCHLD ownership).
  void start();

  /// Graceful stop: SIGTERM all, reap with a deadline, SIGKILL stragglers,
  /// remove port files. Idempotent.
  void shutdown();

  std::size_t workers() const { return opts_.workers; }

  /// The shard's client, or null while it is down/restarting. The returned
  /// pool stays valid for in-flight use even if the shard dies (requests on
  /// it fail fast).
  std::shared_ptr<HttpClient> client(std::size_t shard);

  CircuitBreaker& breaker(std::size_t shard);
  std::vector<ShardStatus> status() const;

  /// Request-level transport evidence from the gateway.
  void note_success(std::size_t shard);
  void note_failure(std::size_t shard);

  /// Pure backoff schedule (unit-tested): exponential from `initial_ms`
  /// doubling per `attempt` (0-based), multiplicative jitter in [0.5, 1.0]
  /// derived deterministically from (seed, shard, attempt), capped at
  /// `cap_ms`.
  static long long restart_backoff_ms(std::uint64_t attempt,
                                      long long initial_ms, long long cap_ms,
                                      std::uint64_t seed, std::size_t shard);

 private:
  struct Shard {
    explicit Shard(BreakerOptions breaker_opts) : breaker(breaker_opts) {}

    std::size_t index = 0;
    pid_t pid = -1;
    std::uint16_t port = 0;
    std::uint64_t generation = 0;
    std::uint64_t restarts = 0;
    std::uint64_t backoff_attempt = 0;
    ShardState state = ShardState::kStarting;
    std::shared_ptr<HttpClient> client;
    CircuitBreaker breaker;
    int probe_failures = 0;
    std::chrono::steady_clock::time_point respawn_due{};
    std::chrono::steady_clock::time_point up_since{};
  };

  std::string port_file(std::size_t shard, std::uint64_t generation) const;
  /// Forks+execs shard `i` at generation `gen`; returns the pid.
  pid_t spawn_process(std::size_t i, std::uint64_t gen);
  /// Polls the port file until non-empty or deadline; 0 on timeout.
  std::uint16_t await_port(const std::string& path, long long deadline_ms,
                           pid_t pid);
  /// Full bring-up of one shard (spawn + handshake). Returns success.
  bool bring_up(std::size_t i);
  void monitor_loop();
  void reap_children();

  WorkerSpec spec_;
  SupervisorOptions opts_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread monitor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  int sigchld_pipe_[2] = {-1, -1};
};

}  // namespace rca::fleet
