#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>

#include "support/json.hpp"

namespace rca::obs {

namespace {

/// Innermost open span per thread; parents are resolved through this stack,
/// so nested RAII spans on one thread link up without any caller plumbing.
thread_local std::vector<std::uint32_t> t_open_spans;

double us_since(std::chrono::steady_clock::time_point epoch) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// Power-of-two bucket index: 0 for values < 1, else 1+floor(log2(v)).
std::size_t bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN
  int exp = 0;
  (void)std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  return static_cast<std::size_t>(std::min(exp, 63));
}

void json_attr_value(JsonWriter& w, const AttrValue& a) {
  switch (a.kind) {
    case AttrValue::Kind::kInt:
      w.integer(a.i);
      return;
    case AttrValue::Kind::kDouble:
      w.number(a.d);
      return;
    case AttrValue::Kind::kString:
      w.string_value(a.s);
      return;
  }
}

}  // namespace

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  t_open_spans.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void Registry::counter_add(const std::string& name, std::uint64_t delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void Registry::gauge_set(const std::string& name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void Registry::histogram_record(const std::string& name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  HistogramData& h = histograms_[name];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  const std::size_t idx = bucket_index(value);
  if (h.buckets.size() <= idx) h.buckets.resize(idx + 1, 0);
  ++h.buckets[idx];
}

std::uint32_t Registry::begin_span(const std::string& name) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord rec;
  rec.id = static_cast<std::uint32_t>(spans_.size() + 1);
  rec.parent = t_open_spans.empty() ? 0 : t_open_spans.back();
  rec.name = name;
  rec.start_us = us_since(epoch_);
  spans_.push_back(std::move(rec));
  t_open_spans.push_back(spans_.back().id);
  return spans_.back().id;
}

void Registry::span_attr(std::uint32_t id, const std::string& key,
                         AttrValue value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(key, std::move(value));
}

void Registry::end_span(std::uint32_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  SpanRecord& rec = spans_[id - 1];
  if (rec.duration_us < 0.0) {
    rec.duration_us = us_since(epoch_) - rec.start_us;
  }
  // RAII guarantees LIFO per thread, but be defensive about stray ids.
  auto it = std::find(t_open_spans.begin(), t_open_spans.end(), id);
  if (it != t_open_spans.end()) t_open_spans.erase(it, t_open_spans.end());
}

std::uint64_t Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramData Registry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramData{} : it->second;
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanRecord> Registry::spans_named(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : spans_) {
    if (s.name == name && s.duration_us >= 0.0) out.push_back(s);
  }
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string_value("rca.metrics.v1");

  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : counters_) {
    w.key(name);
    w.integer(static_cast<long long>(value));
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : gauges_) {
    w.key(name);
    w.number(value);
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.integer(static_cast<long long>(h.count));
    w.key("sum");
    w.number(h.sum);
    w.key("min");
    w.number(h.min);
    w.key("max");
    w.number(h.max);
    w.key("mean");
    w.number(h.mean());
    // Nonzero power-of-two buckets as [upper_bound, count] pairs.
    w.key("buckets");
    w.begin_array();
    for (std::size_t k = 0; k < h.buckets.size(); ++k) {
      if (h.buckets[k] == 0) continue;
      w.begin_array();
      w.number(std::ldexp(1.0, static_cast<int>(k)));  // 2^k
      w.integer(static_cast<long long>(h.buckets[k]));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("spans");
  w.begin_array();
  for (const SpanRecord& s : spans_) {
    w.begin_object();
    w.key("id");
    w.integer(s.id);
    w.key("parent");
    w.integer(s.parent);
    w.key("name");
    w.string_value(s.name);
    w.key("start_us");
    w.number(s.start_us);
    w.key("duration_us");
    w.number(s.duration_us);
    w.key("attrs");
    w.begin_object();
    for (const auto& [key, value] : s.attrs) {
      w.key(key);
      json_attr_value(w, value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

void Registry::write_trace(std::ostream& out) const {
  std::vector<SpanRecord> all = spans();
  // children[i]: indices of spans whose parent is span id i+1 (0 = roots).
  std::vector<std::vector<std::size_t>> children(all.size() + 1);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::uint32_t p = all[i].parent <= all.size() ? all[i].parent : 0;
    children[p].push_back(i);
  }
  // Depth-first, creation order among siblings.
  struct Frame {
    std::size_t index;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const SpanRecord& s = all[f.index];
    for (int d = 0; d < f.depth; ++d) out << "  ";
    out << s.name << "  " << s.duration_us / 1000.0 << " ms";
    for (const auto& [key, value] : s.attrs) {
      out << "  " << key << "=";
      switch (value.kind) {
        case AttrValue::Kind::kInt: out << value.i; break;
        case AttrValue::Kind::kDouble: out << value.d; break;
        case AttrValue::Kind::kString: out << value.s; break;
      }
    }
    out << "\n";
    const auto& kids = children[s.id];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
}

Registry& global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Span::Span(const char* name) {
  Registry& r = global();
  if (!r.enabled()) return;
  reg_ = &r;
  id_ = r.begin_span(name);
}

Span::~Span() {
  if (reg_) reg_->end_span(id_);
}

void Span::end() {
  if (reg_) reg_->end_span(id_);
  reg_ = nullptr;
}

void Span::attr_int(const char* key, long long value) {
  if (reg_) reg_->span_attr(id_, key, AttrValue::of(value));
}
void Span::attr(const char* key, double value) {
  if (reg_) reg_->span_attr(id_, key, AttrValue::of(value));
}
void Span::attr(const char* key, const std::string& value) {
  if (reg_) reg_->span_attr(id_, key, AttrValue::of(value));
}
void Span::attr(const char* key, const char* value) {
  if (reg_) reg_->span_attr(id_, key, AttrValue::of(std::string(value)));
}
void Span::attr(const char* key, bool value) {
  if (reg_) reg_->span_attr(id_, key, AttrValue::of(static_cast<long long>(value)));
}

}  // namespace rca::obs
