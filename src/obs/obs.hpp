// Observability layer: hierarchical trace spans, counters/gauges/histograms
// and a registry that serializes everything to JSON (support/json).
//
// The paper's pipeline (ECT verdict -> variable selection -> backward slice
// -> Girvan-Newman refinement) hides wall-time and graph-size blowups inside
// individual stages — betweenness recomputation dominates (§5). Every hot
// path records into the process-wide registry so a run can emit a
// machine-readable metrics.json that CI diffs against a baseline.
//
// Overhead discipline: recording is OFF by default. Every entry point is a
// single relaxed atomic load + predicted branch when disabled, so the
// instrumented binary runs at uninstrumented speed with the sink off
// (verified by bench/pipeline_stats).
//
//   obs::global().set_enabled(true);
//   {
//     obs::Span span("slice");
//     span.attr("nodes", result.nodes.size());
//   }                       // duration recorded on scope exit
//   obs::count("model.runs");
//   obs::observe("graph.bfs.reached_nodes", reached);
//   std::string json = obs::global().to_json();
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace rca::obs {

/// Typed span attribute (int / double / string).
struct AttrValue {
  enum class Kind { kInt, kDouble, kString };
  Kind kind = Kind::kInt;
  long long i = 0;
  double d = 0.0;
  std::string s;

  static AttrValue of(long long v) { return {Kind::kInt, v, 0.0, {}}; }
  static AttrValue of(double v) { return {Kind::kDouble, 0, v, {}}; }
  static AttrValue of(std::string v) {
    return {Kind::kString, 0, 0.0, std::move(v)};
  }
};

/// One completed (or still-open) trace span. Ids are 1-based; parent 0 means
/// a root span. `start_us` is relative to the registry epoch.
struct SpanRecord {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;
  std::string name;
  double start_us = 0.0;
  double duration_us = -1.0;  // -1 while open
  std::vector<std::pair<std::string, AttrValue>> attrs;
};

/// Histogram aggregate with power-of-two buckets: bucket k counts values in
/// [2^(k-1), 2^k), bucket 0 counts values < 1.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  // sized on demand

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Process-wide metrics + trace sink. Thread-safe; all mutation is gated on
/// the enabled flag so a disabled registry costs one atomic load per call.
class Registry {
 public:
  Registry();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Drops all recorded spans and metrics (the enabled flag is kept).
  void reset();

  // -- metrics ------------------------------------------------------------
  void counter_add(const std::string& name, std::uint64_t delta = 1);
  void gauge_set(const std::string& name, double value);
  void histogram_record(const std::string& name, double value);

  // -- spans (normally driven by the Span RAII wrapper) -------------------
  /// Opens a span; the parent is the innermost open span on this thread.
  std::uint32_t begin_span(const std::string& name);
  void span_attr(std::uint32_t id, const std::string& key, AttrValue value);
  void end_span(std::uint32_t id);

  // -- introspection (tests, reports) -------------------------------------
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  HistogramData histogram(const std::string& name) const;
  std::vector<SpanRecord> spans() const;
  /// Completed spans with the given name.
  std::vector<SpanRecord> spans_named(const std::string& name) const;

  /// Serializes the whole registry (schema rca.metrics.v1). Deterministic
  /// member order: counters/gauges/histograms sorted by name, spans in
  /// creation order.
  std::string to_json() const;
  /// Human-readable span tree (for --trace).
  void write_trace(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> histograms_;
  std::vector<SpanRecord> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// The process-wide registry every instrumentation site records into.
Registry& global();

/// RAII trace span on the global registry. Construction is a no-op (null
/// registry pointer, no allocation) when recording is disabled.
class Span {
 public:
  explicit Span(const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attach a key/value attribute; no-op when the span is disabled.
  void attr(const char* key, double value);
  void attr(const char* key, const std::string& value);
  void attr(const char* key, const char* value);
  void attr(const char* key, bool value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void attr(const char* key, T value) {
    attr_int(key, static_cast<long long>(value));
  }

  /// Ends the span early (destructor then does nothing).
  void end();

  bool active() const { return reg_ != nullptr; }

 private:
  void attr_int(const char* key, long long value);

  Registry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

// -- global-registry conveniences; single branch when disabled -------------
inline void count(const char* name, std::uint64_t delta = 1) {
  Registry& r = global();
  if (r.enabled()) r.counter_add(name, delta);
}
inline void gauge(const char* name, double value) {
  Registry& r = global();
  if (r.enabled()) r.gauge_set(name, value);
}
inline void observe(const char* name, double value) {
  Registry& r = global();
  if (r.enabled()) r.histogram_record(name, value);
}

}  // namespace rca::obs
