#include "engine/refinement.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/bfs.hpp"
#include "graph/centrality.hpp"
#include "graph/girvan_newman.hpp"
#include "graph/louvain.hpp"
#include "graph/nonbacktracking.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace rca::engine {

using graph::NodeId;

// ---------------------------------------------------------------------------
// SimulatedSampler.
// ---------------------------------------------------------------------------

SimulatedSampler::SimulatedSampler(const meta::Metagraph& mg,
                                   const std::vector<NodeId>& bug_nodes) {
  influenced_.assign(mg.node_count(), false);
  bug_distance_.assign(mg.node_count(), graph::kUnreached);
  if (bug_nodes.empty()) return;
  bug_distance_ = graph::bfs_distances(mg.graph(), bug_nodes);
  for (NodeId v = 0; v < mg.node_count(); ++v) {
    if (bug_distance_[v] != graph::kUnreached) influenced_[v] = true;
  }
}

std::vector<NodeId> SimulatedSampler::detect_differences(
    const std::vector<NodeId>& sites) {
  std::vector<NodeId> differing;
  for (NodeId v : sites) {
    if (v < influenced_.size() && influenced_[v]) differing.push_back(v);
  }
  return differing;
}

std::vector<Difference> SimulatedSampler::detect_with_magnitudes(
    const std::vector<NodeId>& sites) {
  std::vector<Difference> out;
  for (NodeId v : sites) {
    if (v < influenced_.size() && influenced_[v]) {
      out.push_back(Difference{
          v, 1.0 / (1.0 + static_cast<double>(bug_distance_[v]))});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// RuntimeSampler.
// ---------------------------------------------------------------------------

RuntimeSampler::RuntimeSampler(const meta::Metagraph& mg,
                               const model::CesmModel& control_model,
                               const model::CesmModel& experiment_model,
                               model::RunConfig control_config,
                               model::RunConfig experiment_config,
                               double rms_threshold)
    : mg_(mg),
      control_model_(control_model),
      experiment_model_(experiment_model),
      control_config_(std::move(control_config)),
      experiment_config_(std::move(experiment_config)),
      rms_threshold_(rms_threshold) {}

std::vector<NodeId> RuntimeSampler::detect_differences(
    const std::vector<NodeId>& sites) {
  std::vector<NodeId> out;
  for (const Difference& d : detect_with_magnitudes(sites)) {
    out.push_back(d.node);
  }
  return out;
}

std::vector<Difference> RuntimeSampler::detect_with_magnitudes(
    const std::vector<NodeId>& sites) {
  model::RunConfig control = control_config_;
  model::RunConfig experiment = experiment_config_;
  control.watches.clear();
  experiment.watches.clear();
  for (NodeId v : sites) {
    control.watches.push_back(mg_.watch_key(v));
    experiment.watches.push_back(mg_.watch_key(v));
  }
  const model::RunResult a = control_model_.run(control);
  const model::RunResult b = experiment_model_.run(experiment);

  std::vector<Difference> differing;
  for (NodeId v : sites) {
    const interp::WatchKey key = mg_.watch_key(v);
    auto ait = a.watch_stats.find(key);
    auto bit = b.watch_stats.find(key);
    if (ait == a.watch_stats.end() || bit == b.watch_stats.end()) continue;
    const double ra = ait->second.rms();
    const double rb = bit->second.rms();
    if (ait->second.count == 0 && bit->second.count == 0) continue;
    const double scale = std::max({std::abs(ra), std::abs(rb), 1e-300});
    const double rel = std::abs(ra - rb) / scale;
    if (rel > rms_threshold_ || ait->second.count != bit->second.count) {
      differing.push_back(Difference{v, rel});
    }
  }
  return differing;
}

// ---------------------------------------------------------------------------
// RefinementEngine.
// ---------------------------------------------------------------------------

namespace {

std::vector<double> compute_centrality(const graph::Digraph& g,
                                       CentralityKind kind) {
  switch (kind) {
    case CentralityKind::kEigenvector:
      return eigenvector_centrality(g, graph::Direction::kIn);
    case CentralityKind::kDegree:
      return degree_centrality(g, graph::Direction::kIn);
    case CentralityKind::kPageRank:
      return pagerank(g, graph::Direction::kIn);
    case CentralityKind::kKatz:
      return katz_centrality(g, graph::Direction::kIn);
    case CentralityKind::kNonBacktracking:
      return nonbacktracking_centrality(g, graph::Direction::kIn).centrality;
    case CentralityKind::kCloseness:
      return closeness_centrality(g, graph::Direction::kIn);
  }
  throw Error("unknown centrality kind");
}

std::vector<std::vector<NodeId>> detect_communities(
    const graph::Digraph& g, const RefinementOptions& opts) {
  if (opts.community_method == CommunityMethod::kLouvain) {
    graph::LouvainOptions lv;
    lv.min_community_size = opts.min_community_size;
    return louvain(g, lv).communities;
  }
  graph::GirvanNewmanOptions gn;
  gn.iterations = opts.gn_iterations;
  gn.min_community_size = opts.min_community_size;
  gn.budget_ms = opts.gn_budget_ms;
  gn.betweenness_samples = opts.betweenness_samples;
  gn.betweenness_seed = opts.betweenness_seed;
  gn.pool = opts.pool;
  return graph::communities_with_budget(g, gn).communities;
}

}  // namespace

RefinementEngine::RefinementEngine(const meta::Metagraph& mg, Sampler& sampler,
                                   const RefinementOptions& opts)
    : mg_(mg), sampler_(sampler), opts_(opts) {}

RefinementResult RefinementEngine::run(
    const std::vector<NodeId>& slice_nodes,
    const std::vector<NodeId>& bug_nodes,
    const std::vector<NodeId>& excluded_sites) {
  RCA_CHECK_MSG(!slice_nodes.empty(), "refinement needs a non-empty slice");
  RefinementResult result;

  std::vector<bool> is_bug(mg_.node_count(), false);
  for (NodeId v : bug_nodes) is_bug[v] = true;
  std::vector<bool> is_excluded(mg_.node_count(), false);
  for (NodeId v : excluded_sites) is_excluded[v] = true;

  std::vector<NodeId> current = slice_nodes;
  std::sort(current.begin(), current.end());

  for (std::size_t iter = 1; iter <= opts_.max_iterations; ++iter) {
    if (current.size() <= opts_.small_enough) break;
    obs::Span iter_span("refinement.iteration");
    obs::count("refinement.iterations");
    iter_span.attr("iteration", iter);

    // Induce the working subgraph; local ids index into `current`.
    graph::Digraph sub = induced_subgraph(mg_.graph(), current, nullptr);

    IterationReport report;
    report.subgraph_nodes = sub.node_count();
    report.subgraph_edges = sub.edge_count();
    iter_span.attr("subgraph_nodes", report.subgraph_nodes);
    iter_span.attr("subgraph_edges", report.subgraph_edges);

    // Step 5: community detection on the weakly connected (undirected)
    // view — Girvan-Newman by default, Louvain optionally.
    struct {
      std::vector<std::vector<NodeId>> communities;
    } communities{detect_communities(sub, opts_)};
    if (communities.communities.empty()) {
      // Paper's issue 2: increasingly disconnected subgraphs eventually
      // yield no communities; the remaining nodes go to manual analysis.
      result.iterations.push_back(std::move(report));
      if (opts_.on_iteration &&
          !opts_.on_iteration(result.iterations.back(), current)) {
        result.cancelled = true;
      }
      break;
    }

    // Step 6: eigenvector in-centrality per community, top-m sites.
    // Step 7: sample each community independently (parallel tasks).
    iter_span.attr("communities", communities.communities.size());
    for (const auto& comm : communities.communities) {
      obs::observe("refinement.community_size",
                   static_cast<double>(comm.size()));
    }
    report.communities.resize(communities.communities.size());
    auto sample_community = [&](std::size_t c) {
      const std::vector<NodeId>& members_local = communities.communities[c];
      graph::Digraph comm_graph =
          induced_subgraph(sub, members_local, nullptr);
      const std::vector<double> centrality =
          compute_centrality(comm_graph, opts_.centrality);
      // Rank everything, then take the top m sampleable (non-excluded) sites.
      const std::vector<NodeId> ranked =
          graph::top_k(centrality, centrality.size());
      CommunityReport& cr = report.communities[c];
      for (NodeId local : members_local) cr.members.push_back(current[local]);
      for (NodeId t : ranked) {
        if (cr.sampled.size() >= opts_.samples_per_community) break;
        const NodeId full = current[members_local[t]];
        if (is_excluded[full]) continue;
        cr.sampled.push_back(full);
        cr.sampled_centrality.push_back(centrality[t]);
      }
      for (const Difference& d : sampler_.detect_with_magnitudes(cr.sampled)) {
        cr.differing.push_back(d.node);
        cr.difference_magnitudes.push_back(d.magnitude);
      }
    };
    if (opts_.pool && opts_.pool->size() > 1) {
      opts_.pool->parallel_for(report.communities.size(), sample_community);
    } else {
      for (std::size_t c = 0; c < report.communities.size(); ++c) {
        sample_community(c);
      }
    }

    // Bookkeeping for evaluation.
    std::vector<NodeId> all_sampled_local;
    std::vector<NodeId> all_differing_local;
    std::vector<double> all_magnitudes;
    std::unordered_map<NodeId, NodeId> to_local;
    for (NodeId local = 0; local < current.size(); ++local) {
      to_local[current[local]] = local;
    }
    for (const CommunityReport& cr : report.communities) {
      for (NodeId full : cr.sampled) {
        all_sampled_local.push_back(to_local.at(full));
        if (is_bug[full] && result.bug_instrumented_at == 0) {
          result.bug_instrumented_at = iter;
        }
      }
      for (std::size_t d = 0; d < cr.differing.size(); ++d) {
        all_differing_local.push_back(to_local.at(cr.differing[d]));
        all_magnitudes.push_back(cr.difference_magnitudes[d]);
      }
    }
    report.detected = !all_differing_local.empty();
    if (report.detected && result.first_detection_at == 0) {
      result.first_detection_at = iter;
    }
    iter_span.attr("sampled_sites", all_sampled_local.size());
    iter_span.attr("differing_sites", all_differing_local.size());
    obs::count("refinement.sampled_sites", all_sampled_local.size());
    obs::count("refinement.differing_sites", all_differing_local.size());

    // Step 8.
    std::vector<NodeId> next;
    if (all_differing_local.empty()) {
      // 8a: drop every node on BFS shortest paths terminating on the
      // sampled (silent) sites — i.e. their ancestors within G.
      report.applied_8a = true;
      std::vector<NodeId> remove_local =
          graph::ancestors_of(sub, all_sampled_local);
      std::vector<bool> removed(current.size(), false);
      for (NodeId local : remove_local) removed[local] = true;
      for (NodeId local = 0; local < current.size(); ++local) {
        if (!removed[local]) next.push_back(current[local]);
      }
    } else {
      // 8b: keep only nodes on BFS shortest paths terminating on the
      // differing sites.
      std::vector<NodeId> keep_local =
          graph::ancestors_of(sub, all_differing_local);
      std::sort(keep_local.begin(), keep_local.end());
      for (NodeId local : keep_local) next.push_back(current[local]);
    }

    bool unchanged = next == current;
    if (unchanged && opts_.rank_differences_on_stall &&
        !all_differing_local.empty()) {
      // Paper §6.3 future work: rank the differences and refine on the
      // single most-affected site.
      std::size_t best = 0;
      for (std::size_t d = 1; d < all_magnitudes.size(); ++d) {
        if (all_magnitudes[d] > all_magnitudes[best]) best = d;
      }
      std::vector<NodeId> keep_local =
          graph::ancestors_of(sub, {all_differing_local[best]});
      std::sort(keep_local.begin(), keep_local.end());
      next.clear();
      for (NodeId local : keep_local) next.push_back(current[local]);
      unchanged = next == current;
      report.stall_broken = !unchanged;
      if (report.stall_broken) obs::count("refinement.stall_breaks");
    }
    result.iterations.push_back(std::move(report));
    if (opts_.on_iteration &&
        !opts_.on_iteration(result.iterations.back(), next)) {
      result.cancelled = true;
      if (!next.empty() && next != current) current = std::move(next);
      break;
    }
    if (next.empty()) {
      current.clear();
      break;
    }
    if (unchanged) {
      // Paper's issue 1: the induced subgraph equals the previous one; no
      // further static refinement is possible without value magnitudes.
      result.stalled = true;
      break;
    }
    current = std::move(next);
  }

  result.final_nodes = std::move(current);
  return result;
}

}  // namespace rca::engine
