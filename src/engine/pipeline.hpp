// End-to-end pipeline (Figure 1 of the paper): model runs -> UF-ECT ->
// variable selection -> output-to-internal mapping -> backward slice ->
// iterative refinement. Shared by the benchmark harnesses, examples and
// integration tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cov/coverage_filter.hpp"
#include "ect/ect.hpp"
#include "engine/refinement.hpp"
#include "meta/metagraph.hpp"
#include "model/experiments.hpp"
#include "model/model.hpp"
#include "model/scenario.hpp"
#include "slice/slicer.hpp"
#include "stats/selection.hpp"

namespace rca::engine {

struct PipelineConfig {
  model::CorpusSpec corpus;             // control corpus
  model::RunConfig base_run;            // ensemble-member template
  std::size_t ensemble_members = 40;
  std::size_t experimental_runs = 12;   // set used for lasso selection
  ect::EctOptions ect;
  std::size_t lasso_target = 5;         // paper tunes to ~5 variables
  bool restrict_to_cam = true;          // paper restricts subgraphs to CAM
  std::size_t drop_small_components = 4;
  RefinementOptions refinement;
  /// Worker threads for the parallel front end (corpus parse, metagraph
  /// build, multi-target slice) plus per-community sampling and parallel
  /// betweenness (Algorithm 5.4's "performed in parallel"). 0 = serial.
  std::size_t threads = 0;
  /// Metagraph snapshot-cache directory. Non-empty enables the cache: the
  /// coverage run + metagraph build are skipped when a snapshot keyed on the
  /// corpus content already exists (meta.snapshot.hits counter; the loaded
  /// graph is byte-identical to a fresh build). Empty disables caching.
  std::string snapshot_dir;
  /// Forwarded to BuilderOptions::prune_dead_stores: drop assignments the
  /// liveness analysis (src/analysis) proves dead before they add edges.
  /// Part of the snapshot key, so pruned and unpruned graphs never collide
  /// in the cache.
  bool prune_dead_stores = false;

  PipelineConfig() {
    ect.num_pcs = 10;
    ect.sigma_multiplier = 3.29;
    ect.min_failing_pcs = 3;
  }
};

/// Everything one experiment produced, for reporting.
struct ExperimentOutcome {
  const model::ExperimentSpec* spec = nullptr;
  ect::Verdict verdict;
  /// Variables most affected, by both §3 methods.
  std::vector<std::string> lasso_selected;
  std::vector<stats::RankedVariable> median_ranked;
  /// Output labels used as slicing criteria (lasso set, or median top-k as
  /// fallback) and their internal canonical names.
  std::vector<std::string> criteria_outputs;
  std::vector<std::string> internal_names;
  slice::SliceResult slice;
  /// Ground-truth bug nodes in the metagraph (for evaluation/plots).
  std::vector<graph::NodeId> bug_nodes;
  RefinementResult refinement;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }
  const model::CesmModel& control_model() const { return *control_; }
  /// Coverage-filtered metagraph of the control corpus.
  const meta::Metagraph& metagraph() const { return mg_; }
  const interp::CoverageRecorder& coverage() const { return coverage_; }
  const ect::EnsembleConsistencyTest& ect() const { return *ect_; }
  const std::vector<std::string>& output_names() const { return names_; }
  const stats::Matrix& ensemble() const { return ensemble_; }

  /// Bug-node ground truth for an experiment (static sites, PRNG-influence
  /// set for RAND-MT, KGen-flagged variables for AVX2).
  std::vector<graph::NodeId> bug_nodes(const model::ExperimentSpec& spec);

  /// Full §6-style experiment: verdict, selection, slice, refinement with
  /// the simulated sampler (the paper's mode).
  ExperimentOutcome run_experiment(model::ExperimentId id);

  /// Same, but with real runtime sampling through the interpreter.
  ExperimentOutcome run_experiment_runtime_sampling(model::ExperimentId id);

  /// Full pipeline for a library scenario (model/scenario.hpp): ECT ->
  /// selection -> slice -> refinement, scored against the scenario's planted
  /// sites. `ExperimentOutcome::spec` stays null — the scenario drives the
  /// corpus and run configuration instead of the experiment registry.
  ExperimentOutcome run_scenario(const model::ScenarioSpec& s,
                                 bool runtime_sampling = false);

  /// Planted ground-truth nodes for a scenario on this pipeline's graph.
  std::vector<graph::NodeId> scenario_planted_nodes(
      const model::ScenarioSpec& s);

  /// The experiment's model (control for runtime-config experiments, a
  /// bug-injected corpus otherwise). Owned by the pipeline; stable.
  const model::CesmModel& experiment_model(const model::ExperimentSpec& spec);

  /// Model for a bug-injected corpus (the control model for kNone); built
  /// once per BugId and cached.
  const model::CesmModel& bug_model(model::BugId bug);

 private:
  ExperimentOutcome run_common(model::ExperimentId id, bool runtime_sampling);
  ExperimentOutcome run_core(const std::string& name,
                             const model::CesmModel& exp_model,
                             const model::RunConfig& exp_config,
                             std::vector<graph::NodeId> planted,
                             bool runtime_sampling);

  PipelineConfig config_;
  std::unique_ptr<model::CesmModel> control_;
  interp::CoverageRecorder coverage_;
  cov::CoverageFilter filter_;
  meta::Metagraph mg_;
  std::vector<std::string> names_;
  stats::Matrix ensemble_;
  std::unique_ptr<ect::EnsembleConsistencyTest> ect_;
  std::vector<std::unique_ptr<model::CesmModel>> bug_models_;
  std::vector<model::BugId> bug_model_ids_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace rca::engine
