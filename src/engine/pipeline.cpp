#include "engine/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "fault/fault.hpp"
#include "meta/builder.hpp"
#include "meta/snapshot_cache.hpp"
#include "model/corpus.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace rca::engine {

using graph::NodeId;

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
  obs::Span span("pipeline.init");
  if (config_.threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
    config_.refinement.pool = pool_.get();
  }
  control_ = std::make_unique<model::CesmModel>(config_.corpus, pool_.get());
  RCA_CHECK_MSG(control_->parse_failures() == 0,
                "control corpus failed to parse");

  // Snapshot cache key: the exact inputs that determine the coverage-filtered
  // metagraph — every corpus file's (path, text), the compiled-module list
  // and the coverage configuration. Any touched source changes the key.
  constexpr int kCoverageTimesteps = 2;
  std::optional<meta::SnapshotCache> cache;
  meta::SnapshotKey key;
  if (!config_.snapshot_dir.empty()) {
    cache.emplace(config_.snapshot_dir);
    key.add("rca-pipeline-snapshot-v2");
    key.add_u64(static_cast<std::uint64_t>(kCoverageTimesteps));
    key.add_u64(config_.prune_dead_stores ? 1 : 0);
    for (const auto& name : control_->corpus().compiled_modules) {
      key.add(name);
    }
    for (const model::GeneratedFile& file : control_->corpus().files) {
      key.add(file.path);
      key.add(file.text);
    }
  }

  bool cache_hit = false;
  if (cache) {
    if (std::optional<meta::Metagraph> snap = cache->try_load(key)) {
      mg_ = std::move(*snap);
      cache_hit = true;
    }
  }
  if (!cache_hit) {
    // Coverage run (time step 2, like the paper) and filtered metagraph.
    coverage_ = control_->coverage_run(kCoverageTimesteps);
    filter_ = cov::CoverageFilter(coverage_, &control_->compiled_modules());
    meta::BuilderOptions builder_opts;
    builder_opts.module_filter = filter_.module_predicate();
    builder_opts.subprogram_filter = filter_.subprogram_predicate();
    builder_opts.pool = pool_.get();
    builder_opts.prune_dead_stores = config_.prune_dead_stores;
    mg_ = meta::build_metagraph(control_->compiled_modules(), builder_opts);
    if (cache) cache->store(key, mg_);
  }
  span.attr("snapshot_cache_hit", cache_hit);
  if (config_.prune_dead_stores) {
    span.attr("dead_stores_pruned", mg_.dead_stores_pruned);
    obs::count("meta.dead_stores_pruned", mg_.dead_stores_pruned);
  }

  // Accepted ensemble.
  ensemble_ = model::ensemble_matrix(*control_, config_.base_run,
                                     config_.ensemble_members, &names_, 1);
  ect_ = std::make_unique<ect::EnsembleConsistencyTest>(ensemble_, names_,
                                                        config_.ect);
  span.attr("graph_nodes", mg_.node_count());
  span.attr("graph_edges", mg_.graph().edge_count());
  span.attr("ensemble_members", config_.ensemble_members);
  obs::gauge("pipeline.graph_nodes", static_cast<double>(mg_.node_count()));
  obs::gauge("pipeline.graph_edges",
             static_cast<double>(mg_.graph().edge_count()));
}

const model::CesmModel& Pipeline::experiment_model(
    const model::ExperimentSpec& spec) {
  return bug_model(spec.bug);
}

const model::CesmModel& Pipeline::bug_model(model::BugId bug) {
  if (bug == model::BugId::kNone) return *control_;
  for (std::size_t i = 0; i < bug_model_ids_.size(); ++i) {
    if (bug_model_ids_[i] == bug) return *bug_models_[i];
  }
  model::CorpusSpec corpus_spec = config_.corpus;
  corpus_spec.bug = bug;
  bug_models_.push_back(
      std::make_unique<model::CesmModel>(corpus_spec, pool_.get()));
  bug_model_ids_.push_back(bug);
  RCA_CHECK_MSG(bug_models_.back()->parse_failures() == 0,
                "bug corpus failed to parse");
  return *bug_models_.back();
}

std::vector<NodeId> Pipeline::bug_nodes(const model::ExperimentSpec& spec) {
  std::vector<NodeId> nodes;
  if (spec.id == model::ExperimentId::kRandMt) {
    return model::prng_influenced_nodes(mg_);
  }
  if (spec.id == model::ExperimentId::kAvx2) {
    for (const interp::WatchKey& key :
         model::kgen_flagged_variables(*control_, mg_)) {
      const NodeId v = mg_.find(key.module, key.subprogram, key.name);
      if (v != graph::kInvalidNode) nodes.push_back(v);
    }
    return nodes;
  }
  for (const interp::WatchKey& key : spec.bug_sites) {
    const NodeId v = mg_.find(key.module, key.subprogram, key.name);
    if (v != graph::kInvalidNode) nodes.push_back(v);
  }
  return nodes;
}

ExperimentOutcome Pipeline::run_experiment(model::ExperimentId id) {
  return run_common(id, /*runtime_sampling=*/false);
}

ExperimentOutcome Pipeline::run_experiment_runtime_sampling(
    model::ExperimentId id) {
  return run_common(id, /*runtime_sampling=*/true);
}

ExperimentOutcome Pipeline::run_common(model::ExperimentId id,
                                       bool runtime_sampling) {
  const model::ExperimentSpec& spec = model::experiment(id);
  ExperimentOutcome outcome =
      run_core(spec.name, experiment_model(spec),
               model::experiment_run_config(spec, config_.base_run),
               bug_nodes(spec), runtime_sampling);
  outcome.spec = &spec;
  return outcome;
}

std::vector<NodeId> Pipeline::scenario_planted_nodes(
    const model::ScenarioSpec& s) {
  return model::scenario_planted_nodes(s, mg_, control_->compiled_modules());
}

ExperimentOutcome Pipeline::run_scenario(const model::ScenarioSpec& s,
                                         bool runtime_sampling) {
  return run_core(s.name, bug_model(s.bug),
                  model::scenario_run_config(s, config_.base_run),
                  scenario_planted_nodes(s), runtime_sampling);
}

ExperimentOutcome Pipeline::run_core(const std::string& name,
                                     const model::CesmModel& exp_model,
                                     const model::RunConfig& exp_config,
                                     std::vector<NodeId> planted,
                                     bool runtime_sampling) {
  ExperimentOutcome outcome;
  obs::Span experiment_span("experiment");
  experiment_span.attr("name", name);
  experiment_span.attr("runtime_sampling", runtime_sampling);

  // Stage-boundary fault sites: chaos tests prove a failure inside one
  // stage surfaces as a clean error from run_experiment(), never a crash or
  // a half-written outcome.
  // 0. UF-ECT verdict on a 3-run experimental set.
  {
    obs::Span span("ect");
    RCA_FAULT_POINT("engine.ect");
    const auto verdict_runs =
        model::experiment_set(exp_model, exp_config, 3, 5000, names_);
    outcome.verdict = ect_->evaluate(verdict_runs);
    span.attr("pass", outcome.verdict.pass);
    span.attr("failing_pcs", outcome.verdict.failing_pcs.size());
  }

  // 1. Variable selection (§3): both methods reported; lasso drives the
  //    slice (falling back to median ranking if lasso selects nothing).
  obs::Span selection_span("selection");
  RCA_FAULT_POINT("engine.selection");
  const auto exp_runs = model::experiment_set(
      exp_model, exp_config, config_.experimental_runs, 6000, names_);
  stats::Matrix exp_matrix(exp_runs.size(), names_.size());
  for (std::size_t i = 0; i < exp_runs.size(); ++i) {
    for (std::size_t j = 0; j < names_.size(); ++j) {
      exp_matrix.at(i, j) = exp_runs[i][j];
    }
  }
  outcome.lasso_selected = stats::lasso_selection(
      ensemble_, exp_matrix, names_, config_.lasso_target);
  outcome.median_ranked =
      stats::median_distance_ranking(ensemble_, exp_matrix, names_);

  // WSUBBUG-style dominance (§6.1): when the top median-distance variable
  // dwarfs the runner-up by >1000x and its IQR is disjoint, it alone is the
  // slicing criterion. Otherwise the lasso set drives the slice, with the
  // median ranking as fallback.
  const bool dominant =
      outcome.median_ranked.size() >= 2 &&
      outcome.median_ranked[0].iqr_disjoint &&
      outcome.median_ranked[0].median_distance >
          1000.0 * std::max(outcome.median_ranked[1].median_distance, 1e-300);
  if (dominant) {
    outcome.criteria_outputs = {outcome.median_ranked[0].name};
  } else {
    outcome.criteria_outputs = outcome.lasso_selected;
  }
  if (outcome.criteria_outputs.empty()) {
    for (std::size_t k = 0;
         k < config_.lasso_target && k < outcome.median_ranked.size(); ++k) {
      outcome.criteria_outputs.push_back(outcome.median_ranked[k].name);
    }
  }

  // 2. Output label -> internal canonical names (instrumented I/O map).
  for (const std::string& label : outcome.criteria_outputs) {
    for (const std::string& internal :
         slice::internal_names_for_output(mg_, label)) {
      if (std::find(outcome.internal_names.begin(),
                    outcome.internal_names.end(),
                    internal) == outcome.internal_names.end()) {
        outcome.internal_names.push_back(internal);
      }
    }
  }
  RCA_CHECK_MSG(!outcome.internal_names.empty(),
                "no internal names resolved for selected outputs");
  selection_span.attr("criteria", outcome.criteria_outputs.size());
  selection_span.attr("internal_names", outcome.internal_names.size());
  selection_span.attr("lasso_selected", outcome.lasso_selected.size());
  selection_span.end();

  // 3-4. Backward slice and induced subgraph.
  obs::Span slice_span("slice");
  RCA_FAULT_POINT("engine.slice");
  slice::SliceOptions slice_opts;
  if (config_.restrict_to_cam) {
    slice_opts.module_filter = [](const std::string& m) {
      return model::is_cam_module(m);
    };
  }
  slice_opts.drop_components_smaller_than = config_.drop_small_components;
  slice_opts.pool = pool_.get();
  outcome.slice = slice::backward_slice(mg_, outcome.internal_names,
                                        slice_opts);
  slice_span.attr("nodes", outcome.slice.nodes.size());
  slice_span.attr("edges", outcome.slice.subgraph.edge_count());
  obs::gauge("pipeline.slice_nodes",
             static_cast<double>(outcome.slice.nodes.size()));
  obs::gauge("pipeline.slice_edges",
             static_cast<double>(outcome.slice.subgraph.edge_count()));
  slice_span.end();

  // 5-9. Iterative refinement.
  obs::Span refinement_span("refinement");
  RCA_FAULT_POINT("engine.refinement");
  outcome.bug_nodes = std::move(planted);
  std::unique_ptr<Sampler> sampler;
  if (runtime_sampling) {
    model::RunConfig control_config = config_.base_run;
    control_config.member_seed = 31;  // one accepted member
    model::RunConfig experiment_config = exp_config;
    experiment_config.member_seed = 31;
    sampler = std::make_unique<RuntimeSampler>(mg_, *control_, exp_model,
                                               control_config,
                                               experiment_config);
  } else {
    sampler = std::make_unique<SimulatedSampler>(mg_, outcome.bug_nodes);
  }
  RefinementEngine engine(mg_, *sampler, config_.refinement);
  outcome.refinement = engine.run(outcome.slice.nodes, outcome.bug_nodes,
                                  outcome.slice.targets);
  refinement_span.attr("iterations", outcome.refinement.iterations.size());
  refinement_span.attr("final_nodes", outcome.refinement.final_nodes.size());
  refinement_span.attr("stalled", outcome.refinement.stalled);
  return outcome;
}

}  // namespace rca::engine
