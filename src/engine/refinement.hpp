// Algorithm 5.4: the iterative refinement procedure (the paper's primary
// contribution).
//
//   1-4. variable selection -> internal names -> backward slice -> induced
//        subgraph G (done by the caller via src/stats + src/slice);
//   5.   Girvan-Newman communities of undirected G (one split iteration,
//        communities below the size threshold omitted);
//   6.   eigenvector in-centrality per community; top-m nodes per community
//        become sampling sites;
//   7.   instrument the sites for an ensemble and an experimental run — one
//        task per community, executed on a thread pool ("the procedure can
//        be performed in parallel");
//   8a.  no differences seen: drop everything on BFS paths terminating on
//        the sampled nodes;
//   8b.  differences seen: keep only nodes on BFS paths terminating on the
//        differing sites;
//   9.   repeat until the subgraph is small enough for manual analysis, the
//        bug sites are instrumented, or refinement stalls (the paper's
//        "issue 1": 8b can reproduce the same subgraph).
//
// Sampling is pluggable: SimulatedSampler reproduces the paper's evaluation
// mode (differences deduced from directed reachability from known bug
// sites); RuntimeSampler actually executes the model with watchpoints —
// the "challenging undertaking that remains to be done" of the paper's
// conclusion, which our interpreter substrate makes possible.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "meta/metagraph.hpp"
#include "model/model.hpp"
#include "support/thread_pool.hpp"

namespace rca::engine {

/// One detected value difference at a sampled site.
struct Difference {
  graph::NodeId node = graph::kInvalidNode;
  /// Relative magnitude of the difference (sampler-specific scale); used by
  /// the stall-breaking "rank the differences" extension (paper §6.3
  /// future work).
  double magnitude = 1.0;
};

/// Pluggable "step 7" instrumentation.
class Sampler {
 public:
  virtual ~Sampler() = default;
  /// Returns the subset of `sites` (full-metagraph node ids) whose runtime
  /// values differ between the ensemble and the experimental run.
  virtual std::vector<graph::NodeId> detect_differences(
      const std::vector<graph::NodeId>& sites) = 0;

  /// Differences with magnitudes; the default adapter assigns magnitude 1.
  virtual std::vector<Difference> detect_with_magnitudes(
      const std::vector<graph::NodeId>& sites) {
    std::vector<Difference> out;
    for (graph::NodeId v : detect_differences(sites)) {
      out.push_back(Difference{v, 1.0});
    }
    return out;
  }
};

/// Paper evaluation mode: a site takes different values iff it is reachable
/// from a known bug node in the full digraph (paper §5.2: "Given our
/// knowledge of directed paths' connectivity from known bug sources ... we
/// can deduce whether a difference can be detected").
class SimulatedSampler : public Sampler {
 public:
  SimulatedSampler(const meta::Metagraph& mg,
                   const std::vector<graph::NodeId>& bug_nodes);
  std::vector<graph::NodeId> detect_differences(
      const std::vector<graph::NodeId>& sites) override;
  /// Magnitude surrogate: 1 / (1 + hops from the nearest bug node) — sites
  /// closer to the source are "most affected".
  std::vector<Difference> detect_with_magnitudes(
      const std::vector<graph::NodeId>& sites) override;

 private:
  std::vector<bool> influenced_;            // bug node or descendant of one
  std::vector<std::uint32_t> bug_distance_; // hops from the bug set
};

/// Real runtime sampling: watch the sites in one control run and one
/// experimental run and compare per-variable normalized RMS (the KGen
/// criterion, threshold 1e-12).
class RuntimeSampler : public Sampler {
 public:
  RuntimeSampler(const meta::Metagraph& mg,
                 const model::CesmModel& control_model,
                 const model::CesmModel& experiment_model,
                 model::RunConfig control_config,
                 model::RunConfig experiment_config,
                 double rms_threshold = 1e-12);
  std::vector<graph::NodeId> detect_differences(
      const std::vector<graph::NodeId>& sites) override;
  /// Magnitude = relative normalized-RMS difference.
  std::vector<Difference> detect_with_magnitudes(
      const std::vector<graph::NodeId>& sites) override;

 private:
  const meta::Metagraph& mg_;
  const model::CesmModel& control_model_;
  const model::CesmModel& experiment_model_;
  model::RunConfig control_config_;
  model::RunConfig experiment_config_;
  double rms_threshold_;
};

/// Which centrality ranks sampling sites (paper: eigenvector; the rest feed
/// bench/ablation_centrality).
enum class CentralityKind {
  kEigenvector,
  kDegree,
  kPageRank,
  kKatz,
  kNonBacktracking,
  kCloseness,
};

/// Which community detector partitions the subgraph (paper: Girvan-Newman;
/// Louvain is the near-linear alternative for large slices).
enum class CommunityMethod { kGirvanNewman, kLouvain };

struct IterationReport;

struct RefinementOptions {
  int gn_iterations = 1;              // paper default
  /// Wall-clock budget per Girvan–Newman run; 0 = unlimited. Over budget
  /// the iteration degrades to Louvain (counter: community.fallback) —
  /// refinement keeps moving instead of stalling on one partition.
  long long gn_budget_ms = 0;
  /// Pivot-sample size for each betweenness computation inside
  /// Girvan–Newman; 0 = exact. Large slices become tractable interactively
  /// at the cost of a seeded, reproducible approximation (see
  /// graph::BetweennessOptions::samples).
  std::size_t betweenness_samples = 0;
  /// Seed for betweenness pivot sampling.
  std::uint64_t betweenness_seed = 2019;
  std::size_t min_community_size = 4; // paper omits clusters < 4 nodes
  std::size_t samples_per_community = 10;
  std::size_t max_iterations = 8;
  /// Stop when the subgraph is at most this many nodes ("small enough for
  /// manual analysis").
  std::size_t small_enough = 10;
  CentralityKind centrality = CentralityKind::kEigenvector;
  CommunityMethod community_method = CommunityMethod::kGirvanNewman;
  /// Paper §6.3 future work: when step 8b reproduces the same subgraph,
  /// rank the sampled differences by magnitude and re-slice on the single
  /// most-affected site.
  bool rank_differences_on_stall = false;
  ThreadPool* pool = nullptr;
  /// Observer invoked after every recorded iteration with the report just
  /// produced and the node set refinement will continue from. Returning
  /// false cancels the run: the loop stops where it is and
  /// RefinementResult::cancelled is set. Long-lived campaigns use this for
  /// progress streaming and cooperative cancellation.
  std::function<bool(const IterationReport&,
                     const std::vector<graph::NodeId>& remaining)>
      on_iteration;
};

struct CommunityReport {
  std::vector<graph::NodeId> members;    // full-graph ids
  std::vector<graph::NodeId> sampled;    // chosen sites, centrality order
  std::vector<double> sampled_centrality;
  std::vector<graph::NodeId> differing;  // sites with value differences
  std::vector<double> difference_magnitudes;  // aligned with `differing`
};

struct IterationReport {
  std::size_t subgraph_nodes = 0;
  std::size_t subgraph_edges = 0;
  std::vector<CommunityReport> communities;
  bool detected = false;   // any differing site this iteration
  bool applied_8a = false; // shrink by removing silent-site ancestors
  /// 8b reproduced the subgraph but the magnitude-ranked re-slice broke the
  /// stall (only with RefinementOptions::rank_differences_on_stall).
  bool stall_broken = false;
};

struct RefinementResult {
  std::vector<IterationReport> iterations;
  /// Final subgraph nodes (full-graph ids).
  std::vector<graph::NodeId> final_nodes;
  /// True when refinement ended because the subgraph reproduced itself
  /// (paper's issue 1) rather than shrinking below the threshold.
  bool stalled = false;
  /// True when RefinementOptions::on_iteration asked the run to stop.
  bool cancelled = false;
  /// Evaluation: iteration (1-based) at which a known bug node was inside
  /// the sampled set, 0 if never (filled when bug nodes are supplied).
  std::size_t bug_instrumented_at = 0;
  /// Evaluation: iteration at which a difference was first detected.
  std::size_t first_detection_at = 0;
};

class RefinementEngine {
 public:
  RefinementEngine(const meta::Metagraph& mg, Sampler& sampler,
                   const RefinementOptions& opts = {});

  /// Runs Algorithm 5.4 steps 5-9 starting from the slice node set
  /// (full-graph ids; produced by slice::backward_slice). `bug_nodes` is
  /// optional ground truth used only to fill the evaluation fields.
  /// `excluded_sites` are never chosen as sampling sites — by default the
  /// slicing-criterion nodes themselves, whose divergence is already
  /// established by the ECT; instrumenting them would localize nothing.
  RefinementResult run(const std::vector<graph::NodeId>& slice_nodes,
                       const std::vector<graph::NodeId>& bug_nodes = {},
                       const std::vector<graph::NodeId>& excluded_sites = {});

 private:
  const meta::Metagraph& mg_;
  Sampler& sampler_;
  RefinementOptions opts_;
};

}  // namespace rca::engine
