// Transport-independent request router for the RCA query service.
//
// A Request is (method, path, body); the Router produces a Response without
// knowing whether it arrived over loopback HTTP (http_server.hpp), the
// in-process load generator (bench/perf_service), or a test. JSON endpoints:
//
//   GET  /v1/health        fixed-key probe document: status, phase
//                          ("warming" until resume/pre-warm finishes,
//                          "ready" after), build_id, generation (fleet
//                          respawn count, 0 standalone), uptime_ms (0 under
//                          RouterOptions::stable_health for byte-stable
//                          goldens), sessions, resident_bytes,
//                          degraded_sessions, in_flight
//   GET  /v1/metrics       the full rca.metrics.v1 registry document
//   POST /v1/graph/build   {"src": DIR, "build_list": [..], "coverage": b,
//                           "coverage_steps": n, "prune_dead_stores": b,
//                           "summary_informed_pruning": b}
//                          -> {"session": KEY, "nodes": .., "edges": ..}
//   POST /v1/slice         {"session" | "src"+config, "targets": [..],
//                           "outputs": [..], "cam_only": b, "drop_small": n,
//                           "limit": n}
//   POST /v1/communities   {"session" | .., "method": "gn"|"louvain",
//                           "min_size": n, "iterations": n, "budget_ms": n}
//                          gn over budget falls back to louvain and says so
//                          ("fallback_from": "gn")
//   POST /v1/rank          {"session" | .., "kind": KIND, "top": n,
//                           "modules": b}
//   POST /v1/lint          {"session" | ..} -> rca.diagnostics.v1 embedded
//                          (interprocedural rules; "interprocedural": true)
//   POST /v1/session/patch {"session": KEY,
//                           "modules": [{"path": P, "src": TEXT}, ..],
//                           "remove": [P, ..]}
//                          incremental update of a resident session: only the
//                          changed files are re-parsed and re-walked, yet the
//                          committed graph is byte-identical to a cold build
//                          of the edited corpus. Answers
//                          {"session": NEWKEY, "base_session": KEY,
//                           "generation": n, "rebuilt_modules": n,
//                           "reused_fragments": n, "spliced_nodes": n,
//                           "full_rewalk": b, "rolled_back": b,
//                           "nodes": n, "edges": n}; on a parse failure or
//                          injected fault the patch rolls back atomically —
//                          "rolled_back": true, "errors": [{"path","message"}]
//                          and the base session stays resident, unchanged.
//
// Execution model: health/metrics answer inline (they must work when the
// pool is saturated — that is their job); everything else is parsed on the
// transport thread, then executed on the request ThreadPool with a
// per-request deadline (body field "deadline_ms", default
// RouterOptions::default_deadline_ms). The router waits for the worker up
// to the deadline and answers 504 on expiry — the worker finishes in the
// background and still counts against capacity. When in-flight work reaches
// RouterOptions::max_in_flight, new requests are rejected with 429 and a
// structured error body instead of queueing without bound.
//
// Every error response has the shape
//   {"error": {"code": "...", "message": "..."}, "status": N}
// and every request records service.* counters plus a latency histogram.
//
// Degradation: when the front end skipped unparsable modules, every
// session-carrying response additionally reports "degraded": true plus the
// "skipped" source paths — a partial answer is distinguishable from a full
// one without an extra round trip.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "service/session_store.hpp"
#include "support/json.hpp"

namespace rca {
class ThreadPool;
}

namespace rca::service {

struct Request {
  std::string method;  // "GET" | "POST"
  std::string path;    // "/v1/slice"
  std::string body;    // JSON or empty
};

struct Response {
  int status = 200;
  std::string body;
  std::string content_type = "application/json";
  /// When > 0 the HTTP transport adds a `Retry-After: <seconds>` header —
  /// set on retriable errors (429 backpressure, transient-I/O 500s) so
  /// clients can back off sanely.
  int retry_after = 0;
};

/// Throwing this from a route handler (built-in or registered via
/// Router::add_route) produces the structured error response with the given
/// status; `retriable` additionally marks the body `"retriable": true` and
/// sets Retry-After.
struct HandlerError {
  int status;
  std::string code;
  std::string message;
  bool retriable = false;
  int retry_after = 0;
};

struct RouterOptions {
  /// Requests allowed in flight (queued + executing) before 429; 0 = no cap.
  std::size_t max_in_flight = 64;
  /// Default per-request deadline; a request body may lower/raise its own
  /// via "deadline_ms".
  long long default_deadline_ms = 30000;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  /// Default wall-clock budget for Girvan–Newman community requests; on
  /// expiry the request falls back to Louvain (counter: community.fallback)
  /// and the response says so. A body may override via "budget_ms".
  /// 0 = unlimited.
  long long gn_budget_ms = 10000;
  /// Worker pool requests execute on. Must stay distinct from the session
  /// store's build pool — a request task blocking on parallel_for of its own
  /// pool would deadlock. Null runs requests inline (tests).
  ThreadPool* pool = nullptr;
  /// Registers POST /v1/_test/sleep {"ms": n} — deterministic latency for
  /// backpressure/timeout tests and the load bench. Never enable in serve.
  bool enable_test_routes = false;
  /// Worker generation reported by /v1/health. The fleet supervisor bumps
  /// it on every respawn (`rca-tool serve --generation N`), so a probe can
  /// tell a freshly restarted worker from one that never died. 0 for a
  /// standalone daemon.
  long long generation = 0;
  /// Suppress wall-clock health fields (uptime_ms reports 0) so tests can
  /// pin byte-stable /v1/health goldens.
  bool stable_health = false;
};

class Router {
 public:
  using RouteHandler =
      std::function<Response(const Request& req, const JsonValue& body)>;

  Router(SessionStore* store, RouterOptions opts);

  /// Thread-safe; blocks until the response is ready or the deadline passes.
  Response handle(const Request& req);

  /// Registers an extra endpoint, dispatched exactly like the built-ins
  /// (worker pool, per-request deadline, backpressure, error mapping; throw
  /// HandlerError for a structured error status). Registration is not
  /// thread-safe: add every route before serving. The campaign module uses
  /// this for /v1/refine*.
  void add_route(const std::string& method, const std::string& path,
                 RouteHandler handler);

  /// Requests currently queued or executing (excludes health/metrics).
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Health "phase": a worker that is still resuming journaled campaigns or
  /// pre-warming sessions reports "warming"; probes treat it as alive but
  /// not yet routable. Thread-safe.
  void set_warming(bool warming) {
    warming_.store(warming, std::memory_order_relaxed);
  }

  SessionStore& store() { return *store_; }
  const RouterOptions& options() const { return opts_; }

  /// Shared request-body session resolution ("session" key lookup -> 404, or
  /// "src" + config -> get_or_build). Public for registered route handlers.
  std::shared_ptr<const Session> resolve_session(const JsonValue& body);

 private:
  Response dispatch(const Request& req, const JsonValue& body);
  Response handle_health() const;
  Response handle_metrics() const;
  Response handle_build(const JsonValue& body);
  Response handle_slice(const JsonValue& body);
  Response handle_communities(const JsonValue& body);
  Response handle_rank(const JsonValue& body);
  Response handle_lint(const JsonValue& body);
  Response handle_patch(const JsonValue& body);

  SessionStore* store_;
  RouterOptions opts_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> warming_{false};
  /// Process-lifetime anchor for /v1/health uptime_ms.
  std::chrono::steady_clock::time_point started_at_;
  /// path -> method -> handler, for add_route endpoints.
  std::map<std::string, std::map<std::string, RouteHandler>> routes_;
};

/// Structured error response ({"error":{"code","message"},"status"}).
Response error_response(int status, const std::string& code,
                        const std::string& message);

/// Same, marked retriable: the body gains `"retriable": true` and the
/// response carries Retry-After (seconds) for the HTTP transport to emit.
Response retriable_error_response(int status, const std::string& code,
                                  const std::string& message,
                                  int retry_after_s = 1);

}  // namespace rca::service
