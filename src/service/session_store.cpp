#include "service/session_store.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "analysis/summaries.hpp"
#include "fault/fault.hpp"
#include "interp/interpreter.hpp"
#include "meta/builder.hpp"
#include "obs/obs.hpp"
#include "service/front_end.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace rca::service {

namespace {

bool in_build_list(const std::vector<std::string>& build_list,
                   const std::string& module) {
  if (build_list.empty()) return true;
  return std::find(build_list.begin(), build_list.end(), module) !=
         build_list.end();
}

std::size_t approx_graph_bytes(const meta::Metagraph& mg) {
  std::size_t bytes =
      mg.graph().edge_count() * 16 + mg.node_count() * 64;
  for (const auto& info : mg.all_info()) {
    bytes += info.unique_name.size() + info.canonical_name.size() +
             info.module.size() + info.subprogram.size();
  }
  for (const auto& [label, nodes] : mg.io_map()) {
    bytes += label.size() + nodes.size() * 8;
  }
  return bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(std::string key, SessionConfig config, SourceList sources)
    : key_(std::move(key)),
      config_(std::move(config)),
      sources_(std::move(sources)) {}

void Session::finalize_bytes() {
  bytes_ = approx_graph_bytes(*mg_);
  for (const auto& [path, text] : sources_) {
    bytes_ += path.size() + text.size();
  }
  if (txn_state_) {
    // Fragment op logs are retained for incremental patching; account for
    // them so the LRU budget stays honest. Shared fragments are charged to
    // every generation holding them — deliberately conservative.
    for (const auto& e : txn_state_->entries) {
      if (!e.frag) continue;
      bytes_ += e.frag->ops.size() * sizeof(meta::Fragment::Op);
      for (const auto& k : e.frag->keys) {
        bytes_ += k.module.size() + k.subprogram.size() + k.canonical.size() +
                  16;
      }
    }
  }
}

void Session::ensure_parsed(ThreadPool* pool) const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (parsed_) return;
  obs::count("service.session.parses");
  std::vector<lang::SourceFile> parsed =
      parse_sources(sources_, pool, &parse_errors_);
  files_.reserve(parsed.size());
  for (auto& f : parsed) {
    files_.push_back(std::make_shared<const lang::SourceFile>(std::move(f)));
  }
  for (const auto& f : files_) {
    for (const auto& m : f->modules) {
      if (in_build_list(config_.build_list, m.name)) modules_.push_back(&m);
    }
  }
  parsed_ = true;
}

std::vector<std::string> Session::skipped_modules() const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  // A session that never parsed (warm snapshot start) built its graph from a
  // corpus that parsed cleanly when the snapshot was written — it is not
  // degraded, and reporting so must not force a parse (the warm tier's whole
  // point is skipping that cost).
  if (!parsed_) return {};
  std::vector<std::string> skipped;
  skipped.reserve(parse_errors_.size());
  for (const auto& [path, message] : parse_errors_) skipped.push_back(path);
  return skipped;
}

const std::vector<const lang::Module*>& Session::modules() const {
  ensure_parsed(parse_pool_);
  return modules_;
}

const std::vector<std::pair<std::string, std::string>>& Session::parse_errors()
    const {
  // Force the parse first (like lint() does): once parsed_ is set the vector
  // is never mutated again, so the returned reference cannot race a
  // concurrent ensure_parsed() on another thread.
  ensure_parsed(parse_pool_);
  return parse_errors_;
}

std::optional<std::vector<analysis::Diagnostic>> Session::cached_lint_diags()
    const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (!lint_) return std::nullopt;
  return lint_->diagnostics;
}

std::shared_ptr<const analysis::ProgramSummaries> Session::cached_lint_summaries()
    const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (!lint_) return nullptr;
  return lint_->summaries;
}

const analysis::AnalysisResult& Session::lint() const {
  ensure_parsed(parse_pool_);
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (!lint_) {
    analysis::PassManager pm = analysis::PassManager::default_passes();
    analysis::AnalysisResult result;
    if (lint_seed_ && lint_seed_->dirty.size() == modules_.size()) {
      // Incremental: run dataflow + passes only for modules whose files
      // changed, then merge the diagnostics the base already computed for
      // the clean ones. Exact because the seed is only installed when the
      // patch's transaction saw every interface signature unchanged — and,
      // interprocedurally, because the summary baseline widens the dirty set
      // by the caller cone of every module whose summary signature changed
      // (result.analyzed is the widened mask; carried diagnostics of widened
      // modules are dropped in favor of their fresh recomputation).
      result = pm.run(modules_, lint_seed_->dirty, lint_seed_->baseline.get());
      std::unordered_set<std::string> widened;
      for (std::size_t i = 0; i < modules_.size(); ++i) {
        if (i < result.analyzed.size() && result.analyzed[i] &&
            !lint_seed_->dirty[i]) {
          widened.insert(modules_[i]->name);
        }
      }
      for (const analysis::Diagnostic& d : lint_seed_->carried) {
        if (widened.count(d.module) != 0) continue;
        result.diagnostics.push_back(d);
      }
      obs::count("service.patch.lint_reuse");
    } else {
      result = pm.run(modules_);
    }
    // A file the front end cannot parse is itself a finding; fold parse
    // failures into the diagnostic stream like `rca-tool lint` does.
    for (const auto& [path, message] : parse_errors_) {
      analysis::Diagnostic d;
      d.rule = "parse-error";
      d.severity = analysis::Severity::kError;
      d.file = path;
      d.message = message;
      result.diagnostics.push_back(std::move(d));
    }
    std::sort(result.diagnostics.begin(), result.diagnostics.end(),
              analysis::diagnostic_less);
    lint_ = std::move(result);
  }
  return *lint_;
}

// ---------------------------------------------------------------------------
// SessionStore
// ---------------------------------------------------------------------------

SessionStore::SessionStore(SessionStoreOptions opts) : opts_(std::move(opts)) {
  if (!opts_.snapshot_dir.empty()) cache_.emplace(opts_.snapshot_dir);
}

meta::SnapshotKey SessionStore::snapshot_key(const SessionConfig& config,
                                             const SourceList& sources) {
  meta::SnapshotKey key;
  key.add("rca-graph-snapshot-v3");  // shared with `rca-tool graph --snapshot`
  key.add_u64(config.coverage ? 1 : 0);
  key.add_u64(static_cast<std::uint64_t>(config.coverage_steps));
  key.add_u64(config.prune_dead_stores ? 1 : 0);
  key.add_u64(config.summary_informed_pruning ? 1 : 0);
  for (const auto& name : config.build_list) key.add(name);
  for (const auto& [path, text] : sources) {
    key.add(path);
    key.add(text);
  }
  return key;
}

std::string SessionStore::compute_key(const SessionConfig& config,
                                      const SourceList& sources) {
  return snapshot_key(config, sources).hex();
}

std::shared_ptr<const Session> SessionStore::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  obs::count("service.session.hits");
  return it->second.session;
}

std::shared_ptr<const Session> SessionStore::get_or_build(
    const SessionConfig& config, SourceList sources) {
  const std::string key = compute_key(config, sources);

  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    obs::count("service.session.hits");
    return it->second.session;
  }
  if (auto fit = building_.find(key); fit != building_.end()) {
    // Single-flight: somebody is already building this exact session — wait
    // for their result instead of duplicating the work.
    auto fut = fit->second;
    obs::count("service.session.singleflight");
    lock.unlock();
    return fut.get();  // rethrows the builder's error, if any
  }
  std::promise<std::shared_ptr<const Session>> promise;
  building_.emplace(key, promise.get_future().share());
  lock.unlock();

  std::shared_ptr<Session> session;
  try {
    session = build_session(key, config, std::move(sources));
  } catch (...) {
    auto err = std::current_exception();
    {
      std::lock_guard<std::mutex> relock(mu_);
      building_.erase(key);
    }
    promise.set_exception(err);
    throw;
  }
  {
    std::lock_guard<std::mutex> relock(mu_);
    insert_resident(key, session);
    building_.erase(key);
  }
  promise.set_value(session);
  return session;
}

std::shared_ptr<Session> SessionStore::build_session(const std::string& key,
                                                     const SessionConfig& config,
                                                     SourceList sources) {
  // Transient I/O (EINTR/EIO-class, surfaced as fault::TransientError) during
  // a cold build is retried with capped exponential backoff instead of
  // failing every coalesced single-flight waiter. Jitter is derived from
  // (key, attempt) so fault-injection runs replay byte-identically.
  SplitMix64 jitter(std::hash<std::string>{}(key) ^ 0x9e3779b97f4a7c15ull);
  for (int attempt = 0;; ++attempt) {
    try {
      return build_session_once(key, config, sources);
    } catch (const fault::TransientError&) {
      if (attempt >= opts_.build_retries) throw;
      obs::count("service.session.retries");
      int delay_ms = opts_.backoff_base_ms << attempt;
      if (delay_ms > opts_.backoff_cap_ms || delay_ms <= 0) {
        delay_ms = opts_.backoff_cap_ms;
      }
      const auto jitter_ms =
          static_cast<int>(jitter.uniform() * 0.5 * delay_ms);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(delay_ms + jitter_ms));
    }
  }
}

std::shared_ptr<Session> SessionStore::build_session_once(
    const std::string& key, const SessionConfig& config,
    const SourceList& sources) {
  obs::Span span("service.session.build");
  span.attr("key", key);
  RCA_FAULT_POINT("service.build.io");
  auto session = std::make_shared<Session>(key, config, sources);
  session->parse_pool_ = opts_.build_pool;

  // Warm tier: the on-disk snapshot cache holds the finished graph for this
  // exact content key — loading it skips parse+build entirely.
  const meta::SnapshotKey skey = snapshot_key(config, session->sources());
  if (cache_) {
    if (std::optional<meta::Metagraph> mg = cache_->try_load(skey)) {
      session->mg_ = std::make_shared<const meta::Metagraph>(std::move(*mg));
      session->warm_started_ = true;
      session->finalize_bytes();
      obs::count("service.session.builds");
      obs::count("service.session.snapshot_warm");
      obs::count("service.session.hits");
      span.attr("warm", true);
      return session;
    }
  }

  obs::count("service.session.misses");
  session->ensure_parsed(opts_.build_pool);

  meta::BuilderOptions opts;
  opts.pool = opts_.build_pool;
  opts.prune_dead_stores = config.prune_dead_stores;
  opts.summary_informed_pruning = config.summary_informed_pruning;
  std::unique_ptr<interp::Interpreter> cov_interp;
  interp::CoverageRecorder recorder;
  if (config.coverage) {
    // Instrumented short run: requires the corpus driver convention
    // (cam_driver::cam_init / cam_step), as `rca-tool generate` emits.
    const std::vector<const lang::Module*>& modules = session->modules_;
    cov_interp = std::make_unique<interp::Interpreter>(modules);
    cov_interp->call("cam_driver", "cam_init");
    for (int s = 0; s < config.coverage_steps; ++s) {
      cov_interp->call("cam_driver", "cam_step");
    }
    recorder = cov_interp->coverage();
    // Declaration-only modules are always kept (cannot register execution).
    opts.module_filter = [&recorder, &modules](const std::string& m) {
      if (recorder.module_executed(m)) return true;
      for (const lang::Module* mod : modules) {
        if (mod->name == m) return mod->subprograms.empty();
      }
      return false;
    };
    opts.subprogram_filter = [&recorder](const std::string& m,
                                         const std::string& s) {
      return recorder.subprogram_executed(m, s);
    };
  }
  if (config.coverage) {
    // Coverage filters select nodes by runtime execution, which the
    // fragment transaction deliberately does not model — coverage sessions
    // build monolithically and patch via cold rebuild.
    session->mg_ = std::make_shared<const meta::Metagraph>(
        meta::build_metagraph(session->modules_, opts));
  } else {
    // Cold builds run through the transaction layer (all modules dirty, no
    // base) so every session is born with the fragment state that makes
    // later patches incremental. run_transaction replays fragments in the
    // same order build_metagraph walks them, so the graph is byte-identical.
    std::vector<meta::TxnInput> inputs;
    inputs.reserve(session->modules_.size());
    for (const auto& f : session->files_) {
      for (const auto& m : f->modules) {
        if (!in_build_list(config.build_list, m.name)) continue;
        inputs.push_back(meta::TxnInput{f->path, &m, /*dirty=*/true, f});
      }
    }
    meta::TxnResult txn = meta::run_transaction(inputs, nullptr, opts);
    session->mg_ = std::move(txn.mg);
    session->txn_state_ = std::move(txn.state);
  }
  session->finalize_bytes();
  if (cache_) cache_->store(skey, *session->mg_);
  obs::count("service.session.builds");
  span.attr("warm", false);
  span.attr("nodes", session->mg_->node_count());
  return session;
}

void SessionStore::insert_resident(const std::string& key,
                                   std::shared_ptr<const Session> session) {
  // Caller holds mu_.
  if (entries_.count(key) != 0) return;  // lost a race; keep the resident one
  lru_.push_front(key);
  total_bytes_ += session->bytes();
  entries_.emplace(key, Entry{std::move(session), lru_.begin()});
  // Evict least-recently-used entries over budget; the entry just inserted
  // is always kept (a session larger than the whole budget must still serve
  // the request that built it), and pinned entries are skipped — a patch in
  // flight must not have its base dropped out from under it.
  while (opts_.max_bytes != 0 && total_bytes_ > opts_.max_bytes &&
         lru_.size() > 1) {
    // Least-recently-used unpinned entry, excluding the front (just
    // inserted). If everything else is pinned there is nothing to evict.
    auto vit = lru_.end();
    for (auto it = std::prev(lru_.end()); it != lru_.begin(); --it) {
      if (pins_.find(*it) == pins_.end()) {
        vit = it;
        break;
      }
    }
    if (vit == lru_.end()) break;
    const std::string victim = *vit;
    lru_.erase(vit);
    auto it = entries_.find(victim);
    total_bytes_ -= it->second.session->bytes();
    entries_.erase(it);
    obs::count("service.session.evictions");
  }
  publish_gauges();
}

void SessionStore::pin(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[key];
}

void SessionStore::unpin(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(key);
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
}

bool SessionStore::pinned(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_.find(key) != pins_.end();
}

// ---------------------------------------------------------------------------
// Incremental patching
// ---------------------------------------------------------------------------

namespace {

/// Balances pin()/unpin() across every patch exit path (including throws).
class ScopedPin {
 public:
  ScopedPin(SessionStore& store, std::string key)
      : store_(store), key_(std::move(key)) {
    store_.pin(key_);
  }
  ~ScopedPin() { store_.unpin(key_); }
  ScopedPin(const ScopedPin&) = delete;
  ScopedPin& operator=(const ScopedPin&) = delete;

 private:
  SessionStore& store_;
  std::string key_;
};

}  // namespace

SessionStore::PatchResult SessionStore::patch(const std::string& base_key,
                                              const PatchEdit& edit) {
  obs::Span span("service.patch");
  span.attr("base", base_key);
  obs::count("service.patch.requests");

  std::shared_ptr<const Session> base = lookup(base_key);
  if (!base) throw Error("no resident session with key " + base_key);
  ScopedPin pin_guard(*this, base_key);

  // Apply the sparse edit to a copy of the base's sources. `changed` tracks
  // the paths whose bytes actually differ — a same-text upsert is a no-op.
  SourceList sources = base->sources();
  std::vector<std::string> changed;
  for (const auto& up : edit.upserts) {
    const std::string& path = up.first;
    bool found = false;
    for (auto& e : sources) {
      if (e.first != path) continue;
      found = true;
      if (e.second != up.second) {
        e.second = up.second;
        changed.push_back(path);
      }
      break;
    }
    if (!found) {
      auto pos = std::lower_bound(
          sources.begin(), sources.end(), path,
          [](const std::pair<std::string, std::string>& e,
             const std::string& p) { return e.first < p; });
      sources.insert(pos, {path, up.second});
      changed.push_back(path);
    }
  }
  for (const auto& path : edit.removes) {
    if (std::find(changed.begin(), changed.end(), path) != changed.end()) {
      throw Error("patch both upserts and removes '" + path + "'");
    }
    auto it = std::find_if(
        sources.begin(), sources.end(),
        [&](const std::pair<std::string, std::string>& e) {
          return e.first == path;
        });
    if (it == sources.end()) {
      throw Error("patch removes unknown path '" + path + "'");
    }
    sources.erase(it);
  }

  const std::string key = compute_key(base->config(), sources);
  if (key == base_key) {
    obs::count("service.patch.noops");
    PatchResult r;
    r.session = std::move(base);
    r.resident_hit = true;
    return r;
  }
  if (auto resident = lookup(key)) {
    obs::count("service.patch.noops");
    PatchResult r;
    r.session = std::move(resident);
    r.resident_hit = true;
    return r;
  }

  if (base->config().coverage) {
    // Coverage-filtered graphs depend on runtime execution, which the
    // fragment transaction does not model: rebuild from scratch instead.
    obs::count("service.patch.cold_fallback");
    PatchResult r;
    r.session = get_or_build(base->config(), std::move(sources));
    r.full_rewalk = true;
    return r;
  }

  try {
    return patch_build(base, key, std::move(sources), changed);
  } catch (const fault::FaultInjected& e) {
    // service.patch.parse or meta.txn.splice fired: nothing was published,
    // the base session is still resident at its prior generation.
    obs::count("service.patch.rollbacks");
    span.attr("rolled_back", true);
    PatchResult r;
    r.session = std::move(base);
    r.rolled_back = true;
    r.errors.emplace_back("", e.what());
    return r;
  }
}

SessionStore::PatchResult SessionStore::patch_build(
    const std::shared_ptr<const Session>& base, const std::string& key,
    SourceList sources, const std::vector<std::string>& changed) {
  obs::Span span("service.patch.build");
  span.attr("key", key);
  base->ensure_parsed(opts_.build_pool);

  // Snapshot the base's parsed state. Immutable once parsed_ is set; the
  // lock orders this read against a concurrent ensure_parsed().
  std::vector<std::shared_ptr<const lang::SourceFile>> base_files;
  std::vector<std::pair<std::string, std::string>> base_errors;
  {
    std::lock_guard<std::mutex> lock(base->lazy_mu_);
    base_files = base->files_;
    base_errors = base->parse_errors_;
  }

  const std::unordered_set<std::string> changed_set(changed.begin(),
                                                    changed.end());

  // Re-parse only the changed files; any failure rolls the whole patch back.
  SourceList changed_sources;
  for (const auto& e : sources) {
    if (changed_set.count(e.first) != 0) changed_sources.push_back(e);
  }
  RCA_FAULT_POINT("service.patch.parse");
  std::vector<std::pair<std::string, std::string>> parse_errors;
  std::vector<lang::SourceFile> fresh =
      parse_sources(changed_sources, opts_.build_pool, &parse_errors);
  if (!parse_errors.empty()) {
    obs::count("service.patch.rollbacks");
    span.attr("rolled_back", true);
    PatchResult r;
    r.session = base;
    r.rolled_back = true;
    r.errors = std::move(parse_errors);
    return r;
  }

  std::unordered_map<std::string, std::shared_ptr<const lang::SourceFile>>
      by_path;
  for (const auto& f : base_files) by_path.emplace(f->path, f);
  for (auto& f : fresh) {
    auto sp = std::make_shared<const lang::SourceFile>(std::move(f));
    by_path[sp->path] = sp;  // fresh parse wins over the base's AST
  }

  // Assemble the patched session in corpus (path-sorted) order: fresh parses
  // for changed files, the base's shared ASTs for the rest. A file the base
  // could not parse stays degraded with its original error record — exactly
  // what a from-scratch build of the edited corpus would produce.
  auto session =
      std::make_shared<Session>(key, base->config(), std::move(sources));
  session->parse_pool_ = opts_.build_pool;
  for (const auto& e : session->sources_) {
    auto it = by_path.find(e.first);
    if (it != by_path.end()) {
      session->files_.push_back(it->second);
      continue;
    }
    for (const auto& pe : base_errors) {
      if (pe.first == e.first) session->parse_errors_.push_back(pe);
    }
  }
  std::vector<meta::TxnInput> inputs;
  std::vector<bool> dirty_mask;
  for (const auto& f : session->files_) {
    const bool dirty = changed_set.count(f->path) != 0;
    for (const auto& m : f->modules) {
      if (!in_build_list(session->config_.build_list, m.name)) continue;
      session->modules_.push_back(&m);
      inputs.push_back(meta::TxnInput{f->path, &m, dirty, f});
      dirty_mask.push_back(dirty);
    }
  }
  session->parsed_ = true;

  meta::BuilderOptions bopts;
  bopts.pool = opts_.build_pool;
  bopts.prune_dead_stores = session->config_.prune_dead_stores;
  bopts.summary_informed_pruning = session->config_.summary_informed_pruning;
  // Throws fault::FaultInjected at meta.txn.splice; patch() maps that to a
  // rollback. Nothing has been published yet, so unwinding is the rollback.
  meta::TxnResult txn =
      meta::run_transaction(inputs, base->txn_state_.get(), bopts, base->mg_);

  session->mg_ = std::move(txn.mg);
  session->txn_state_ = std::move(txn.state);
  session->generation_ = base->generation_ + 1;

  // Seed an incremental lint when fragment reuse was sound (same condition:
  // every interface signature unchanged) and the base has lint results.
  if (!txn.stats.full_rewalk) {
    if (auto base_diags = base->cached_lint_diags()) {
      std::unordered_set<std::string> present;
      for (const auto& e : session->sources_) present.insert(e.first);
      Session::LintSeed seed;
      seed.dirty = dirty_mask;
      for (const auto& d : *base_diags) {
        if (d.rule == "parse-error") continue;  // re-folded by lint()
        if (changed_set.count(d.file) != 0) continue;  // recomputed
        if (present.count(d.file) == 0) continue;      // file removed
        seed.carried.push_back(d);
      }
      // Interprocedural invalidation seed: a body patch can change lint
      // results in its reverse caller cone even when every interface
      // signature is stable. The baseline lets the incremental run detect
      // summary changes and widen the recompute set accordingly.
      if (auto sums = base->cached_lint_summaries()) {
        seed.baseline = std::make_shared<const analysis::SummaryBaseline>(
            sums->to_baseline());
      }
      session->lint_seed_ = std::move(seed);
    }
  }
  session->finalize_bytes();

  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_resident(key, session);
  }
  if (cache_) {
    cache_->store(snapshot_key(session->config_, session->sources_),
                  *session->mg_);
  }
  obs::count("service.session.builds");
  obs::count("service.patch.commits");
  obs::count("service.patch.rebuilt_modules", txn.stats.rebuilt_modules);
  obs::count("service.patch.reused_fragments", txn.stats.reused_fragments);
  obs::count("service.patch.spliced_nodes", txn.stats.spliced_nodes);
  span.attr("rebuilt", txn.stats.rebuilt_modules);
  span.attr("full_rewalk", txn.stats.full_rewalk);

  PatchResult r;
  r.session = std::move(session);
  r.full_rewalk = txn.stats.full_rewalk;
  r.rebuilt_modules = txn.stats.rebuilt_modules;
  r.reused_fragments = txn.stats.reused_fragments;
  r.spliced_nodes = txn.stats.spliced_nodes;
  return r;
}

void SessionStore::publish_gauges() const {
  obs::gauge("service.session.count", static_cast<double>(entries_.size()));
  obs::gauge("service.session.bytes", static_cast<double>(total_bytes_));
}

std::size_t SessionStore::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t SessionStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

std::size_t SessionStore::degraded_session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t degraded = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry.session->skipped_modules().empty()) ++degraded;
  }
  return degraded;
}

std::vector<std::string> SessionStore::keys_by_recency() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {lru_.begin(), lru_.end()};
}

}  // namespace rca::service
