#include "service/session_store.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "interp/interpreter.hpp"
#include "meta/builder.hpp"
#include "obs/obs.hpp"
#include "service/front_end.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace rca::service {

namespace {

bool in_build_list(const std::vector<std::string>& build_list,
                   const std::string& module) {
  if (build_list.empty()) return true;
  return std::find(build_list.begin(), build_list.end(), module) !=
         build_list.end();
}

std::size_t approx_graph_bytes(const meta::Metagraph& mg) {
  std::size_t bytes =
      mg.graph().edge_count() * 16 + mg.node_count() * 64;
  for (const auto& info : mg.all_info()) {
    bytes += info.unique_name.size() + info.canonical_name.size() +
             info.module.size() + info.subprogram.size();
  }
  for (const auto& [label, nodes] : mg.io_map()) {
    bytes += label.size() + nodes.size() * 8;
  }
  return bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(std::string key, SessionConfig config, SourceList sources)
    : key_(std::move(key)),
      config_(std::move(config)),
      sources_(std::move(sources)) {}

void Session::finalize_bytes() {
  bytes_ = approx_graph_bytes(mg_);
  for (const auto& [path, text] : sources_) {
    bytes_ += path.size() + text.size();
  }
}

void Session::ensure_parsed(ThreadPool* pool) const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (parsed_) return;
  obs::count("service.session.parses");
  files_ = parse_sources(sources_, pool, &parse_errors_);
  for (const auto& f : files_) {
    for (const auto& m : f.modules) {
      if (in_build_list(config_.build_list, m.name)) modules_.push_back(&m);
    }
  }
  parsed_ = true;
}

std::vector<std::string> Session::skipped_modules() const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  // A session that never parsed (warm snapshot start) built its graph from a
  // corpus that parsed cleanly when the snapshot was written — it is not
  // degraded, and reporting so must not force a parse (the warm tier's whole
  // point is skipping that cost).
  if (!parsed_) return {};
  std::vector<std::string> skipped;
  skipped.reserve(parse_errors_.size());
  for (const auto& [path, message] : parse_errors_) skipped.push_back(path);
  return skipped;
}

const std::vector<std::pair<std::string, std::string>>& Session::parse_errors()
    const {
  // Force the parse first (like lint() does): once parsed_ is set the vector
  // is never mutated again, so the returned reference cannot race a
  // concurrent ensure_parsed() on another thread.
  ensure_parsed(parse_pool_);
  return parse_errors_;
}

const analysis::AnalysisResult& Session::lint() const {
  ensure_parsed(parse_pool_);
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (!lint_) {
    analysis::PassManager pm = analysis::PassManager::default_passes();
    analysis::AnalysisResult result = pm.run(modules_);
    // A file the front end cannot parse is itself a finding; fold parse
    // failures into the diagnostic stream like `rca-tool lint` does.
    for (const auto& [path, message] : parse_errors_) {
      analysis::Diagnostic d;
      d.rule = "parse-error";
      d.severity = analysis::Severity::kError;
      d.file = path;
      d.message = message;
      result.diagnostics.push_back(std::move(d));
    }
    std::sort(result.diagnostics.begin(), result.diagnostics.end(),
              analysis::diagnostic_less);
    lint_ = std::move(result);
  }
  return *lint_;
}

// ---------------------------------------------------------------------------
// SessionStore
// ---------------------------------------------------------------------------

SessionStore::SessionStore(SessionStoreOptions opts) : opts_(std::move(opts)) {
  if (!opts_.snapshot_dir.empty()) cache_.emplace(opts_.snapshot_dir);
}

meta::SnapshotKey SessionStore::snapshot_key(const SessionConfig& config,
                                             const SourceList& sources) {
  meta::SnapshotKey key;
  key.add("rca-graph-snapshot-v2");  // shared with `rca-tool graph --snapshot`
  key.add_u64(config.coverage ? 1 : 0);
  key.add_u64(static_cast<std::uint64_t>(config.coverage_steps));
  key.add_u64(config.prune_dead_stores ? 1 : 0);
  for (const auto& name : config.build_list) key.add(name);
  for (const auto& [path, text] : sources) {
    key.add(path);
    key.add(text);
  }
  return key;
}

std::string SessionStore::compute_key(const SessionConfig& config,
                                      const SourceList& sources) {
  return snapshot_key(config, sources).hex();
}

std::shared_ptr<const Session> SessionStore::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  obs::count("service.session.hits");
  return it->second.session;
}

std::shared_ptr<const Session> SessionStore::get_or_build(
    const SessionConfig& config, SourceList sources) {
  const std::string key = compute_key(config, sources);

  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    obs::count("service.session.hits");
    return it->second.session;
  }
  if (auto fit = building_.find(key); fit != building_.end()) {
    // Single-flight: somebody is already building this exact session — wait
    // for their result instead of duplicating the work.
    auto fut = fit->second;
    obs::count("service.session.singleflight");
    lock.unlock();
    return fut.get();  // rethrows the builder's error, if any
  }
  std::promise<std::shared_ptr<const Session>> promise;
  building_.emplace(key, promise.get_future().share());
  lock.unlock();

  std::shared_ptr<Session> session;
  try {
    session = build_session(key, config, std::move(sources));
  } catch (...) {
    auto err = std::current_exception();
    {
      std::lock_guard<std::mutex> relock(mu_);
      building_.erase(key);
    }
    promise.set_exception(err);
    throw;
  }
  {
    std::lock_guard<std::mutex> relock(mu_);
    insert_resident(key, session);
    building_.erase(key);
  }
  promise.set_value(session);
  return session;
}

std::shared_ptr<Session> SessionStore::build_session(const std::string& key,
                                                     const SessionConfig& config,
                                                     SourceList sources) {
  // Transient I/O (EINTR/EIO-class, surfaced as fault::TransientError) during
  // a cold build is retried with capped exponential backoff instead of
  // failing every coalesced single-flight waiter. Jitter is derived from
  // (key, attempt) so fault-injection runs replay byte-identically.
  SplitMix64 jitter(std::hash<std::string>{}(key) ^ 0x9e3779b97f4a7c15ull);
  for (int attempt = 0;; ++attempt) {
    try {
      return build_session_once(key, config, sources);
    } catch (const fault::TransientError&) {
      if (attempt >= opts_.build_retries) throw;
      obs::count("service.session.retries");
      int delay_ms = opts_.backoff_base_ms << attempt;
      if (delay_ms > opts_.backoff_cap_ms || delay_ms <= 0) {
        delay_ms = opts_.backoff_cap_ms;
      }
      const auto jitter_ms =
          static_cast<int>(jitter.uniform() * 0.5 * delay_ms);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(delay_ms + jitter_ms));
    }
  }
}

std::shared_ptr<Session> SessionStore::build_session_once(
    const std::string& key, const SessionConfig& config,
    const SourceList& sources) {
  obs::Span span("service.session.build");
  span.attr("key", key);
  RCA_FAULT_POINT("service.build.io");
  auto session = std::make_shared<Session>(key, config, sources);
  session->parse_pool_ = opts_.build_pool;

  // Warm tier: the on-disk snapshot cache holds the finished graph for this
  // exact content key — loading it skips parse+build entirely.
  const meta::SnapshotKey skey = snapshot_key(config, session->sources());
  if (cache_) {
    if (std::optional<meta::Metagraph> mg = cache_->try_load(skey)) {
      session->mg_ = std::move(*mg);
      session->warm_started_ = true;
      session->finalize_bytes();
      obs::count("service.session.builds");
      obs::count("service.session.snapshot_warm");
      obs::count("service.session.hits");
      span.attr("warm", true);
      return session;
    }
  }

  obs::count("service.session.misses");
  session->ensure_parsed(opts_.build_pool);

  meta::BuilderOptions opts;
  opts.pool = opts_.build_pool;
  opts.prune_dead_stores = config.prune_dead_stores;
  std::unique_ptr<interp::Interpreter> cov_interp;
  interp::CoverageRecorder recorder;
  if (config.coverage) {
    // Instrumented short run: requires the corpus driver convention
    // (cam_driver::cam_init / cam_step), as `rca-tool generate` emits.
    const std::vector<const lang::Module*>& modules = session->modules_;
    cov_interp = std::make_unique<interp::Interpreter>(modules);
    cov_interp->call("cam_driver", "cam_init");
    for (int s = 0; s < config.coverage_steps; ++s) {
      cov_interp->call("cam_driver", "cam_step");
    }
    recorder = cov_interp->coverage();
    // Declaration-only modules are always kept (cannot register execution).
    opts.module_filter = [&recorder, &modules](const std::string& m) {
      if (recorder.module_executed(m)) return true;
      for (const lang::Module* mod : modules) {
        if (mod->name == m) return mod->subprograms.empty();
      }
      return false;
    };
    opts.subprogram_filter = [&recorder](const std::string& m,
                                         const std::string& s) {
      return recorder.subprogram_executed(m, s);
    };
  }
  session->mg_ = meta::build_metagraph(session->modules_, opts);
  session->finalize_bytes();
  if (cache_) cache_->store(skey, session->mg_);
  obs::count("service.session.builds");
  span.attr("warm", false);
  span.attr("nodes", session->mg_.node_count());
  return session;
}

void SessionStore::insert_resident(const std::string& key,
                                   std::shared_ptr<const Session> session) {
  // Caller holds mu_.
  if (entries_.count(key) != 0) return;  // lost a race; keep the resident one
  lru_.push_front(key);
  total_bytes_ += session->bytes();
  entries_.emplace(key, Entry{std::move(session), lru_.begin()});
  // Evict least-recently-used entries over budget; the entry just inserted
  // is always kept (a session larger than the whole budget must still serve
  // the request that built it).
  while (opts_.max_bytes != 0 && total_bytes_ > opts_.max_bytes &&
         lru_.size() > 1) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    total_bytes_ -= it->second.session->bytes();
    entries_.erase(it);
    obs::count("service.session.evictions");
  }
  publish_gauges();
}

void SessionStore::publish_gauges() const {
  obs::gauge("service.session.count", static_cast<double>(entries_.size()));
  obs::gauge("service.session.bytes", static_cast<double>(total_bytes_));
}

std::size_t SessionStore::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t SessionStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

std::vector<std::string> SessionStore::keys_by_recency() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {lru_.begin(), lru_.end()};
}

}  // namespace rca::service
