#include "service/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::service {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Error";
  }
}

/// Reads from `fd` until `terminator` is seen or `limit` bytes accumulate.
/// Returns false on EOF/error/overflow before the terminator. Each recv is
/// capped to the bytes still within budget, so the buffer never grows past
/// limit + 1 (the +1 byte is what proves the head is oversized).
/// recv with EINTR retry (a signal mid-read must not kill the connection)
/// and the http.recv fault site: a delay action stalls inside the check,
/// an errno action reads as a hard socket error.
ssize_t recv_retry(int fd, char* chunk, std::size_t cap) {
  if (fault::Hit h = RCA_FAULT_CHECK("http.recv")) {
    if (h.action == fault::Action::kErrno) {
      errno = EIO;
      return -1;
    }
  }
  ssize_t n;
  do {
    n = ::recv(fd, chunk, cap, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

bool read_until(int fd, std::string& buf, const char* terminator,
                std::size_t limit) {
  char chunk[4096];
  for (;;) {
    if (buf.find(terminator) != std::string::npos) return true;
    if (buf.size() > limit) return false;
    const std::size_t cap = std::min(sizeof(chunk), limit + 1 - buf.size());
    const ssize_t n = recv_retry(fd, chunk, cap);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_all(int fd, const std::string& data) {
  std::size_t bytes = data.size();
  if (fault::Hit h = RCA_FAULT_CHECK("http.send")) {
    if (h.action == fault::Action::kErrno) return false;
    // Short-write fault: transmit half the response, then fail — models a
    // peer that vanished mid-reply. The daemon must just drop the socket.
    if (h.action == fault::Action::kShortWrite) bytes /= 2;
  }
  std::size_t off = 0;
  while (off < bytes) {
    ssize_t n;
    do {
      n = ::send(fd, data.data() + off, bytes - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return bytes == data.size();
}

/// False when the response could not be fully transmitted (the caller must
/// drop the connection regardless of `keep_alive`).
bool send_response(int fd, const Response& resp, bool keep_alive = false) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_text(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  if (resp.retry_after > 0) {
    out += "Retry-After: " + std::to_string(resp.retry_after) + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += resp.body;
  return write_all(fd, out);
}

/// Value of the first header named `name` (case-insensitive), trimmed and
/// lower-cased; empty when absent.
std::string header_value(const std::string& headers, const char* name) {
  for (const std::string& line : split(headers, '\n')) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (to_lower(trim(line.substr(0, colon))) != name) continue;
    return to_lower(trim(line.substr(colon + 1)));
  }
  return "";
}

/// HTTP/1.1 defaults to persistent connections, HTTP/1.0 to close; an
/// explicit Connection header overrides either way.
bool client_wants_close(const std::string& headers,
                        const std::string& version) {
  const std::string conn = header_value(headers, "connection");
  if (conn == "close") return true;
  if (conn == "keep-alive") return false;
  return version == "HTTP/1.0";
}

/// Parses "Header-Name: value" lines for Content-Length (case-insensitive
/// name, as HTTP requires). Returns -1 when absent, -2 on a malformed or
/// overflowing value (the caller answers 413 for -2 — a length too large to
/// represent is by definition over any body budget).
long long parse_content_length(const std::string& headers) {
  const std::string value = header_value(headers, "content-length");
  if (value.empty()) {
    // Distinguish "header absent" from "header present but empty".
    for (const std::string& line : split(headers, '\n')) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos &&
          to_lower(trim(line.substr(0, colon))) == "content-length") {
        return -2;
      }
    }
    return -1;
  }
  long long result = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return -2;
    const long long digit = c - '0';
    if (result > (std::numeric_limits<long long>::max() - digit) / 10) {
      return -2;
    }
    result = result * 10 + digit;
  }
  return result;
}

/// Pipe write end the installed signal handler pokes; handler-safe.
std::atomic<int> g_shutdown_fd{-1};

extern "C" void rca_serve_signal_handler(int /*signum*/) {
  const int fd = g_shutdown_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'q';
    // write(2) is async-signal-safe; the result is irrelevant (best effort).
    [[maybe_unused]] ssize_t rc = ::write(fd, &byte, 1);
  }
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions opts)
    : handler_(std::move(handler)), opts_(opts) {
  if (!handler_) throw Error("HttpServer requires a handler");
  if (::pipe(wake_pipe_) != 0) throw Error("pipe() failed");
}

HttpServer::HttpServer(Router* router, HttpServerOptions opts)
    : HttpServer(Handler([router](const Request& req) {
                   return router->handle(req);
                 }),
                 opts) {}

HttpServer::~HttpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) ::close(wake_pipe_[i]);
  }
}

void HttpServer::start() {
  // A client that closes mid-response must surface as an EPIPE send error,
  // never a process-killing signal. send() already passes MSG_NOSIGNAL, but
  // ignoring SIGPIPE process-wide also covers any future write path.
  ::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw Error("cannot bind 127.0.0.1:" + std::to_string(opts_.port) + ": " +
                std::strerror(errno));
  }
  if (::listen(listen_fd_, opts_.backlog) != 0) {
    throw Error(std::string("listen() failed: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

void HttpServer::request_shutdown() {
  const char byte = 'q';
  [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
}

void HttpServer::install_signal_handlers(HttpServer& server) {
  g_shutdown_fd.store(server.request_shutdown_fd(), std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = rca_serve_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll() must wake with EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

int HttpServer::serve_forever() {
  if (listen_fd_ < 0) throw Error("serve_forever() before start()");
  workers_.reserve(opts_.connection_threads);
  for (std::size_t i = 0; i < opts_.connection_threads; ++i) {
    workers_.emplace_back([this] { connection_worker(); });
  }

  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {wake_pipe_[0], POLLIN, 0};
  bool draining = false;
  while (!draining) {
    fds[0].revents = fds[1].revents = 0;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;  // handler already poked the pipe
      break;
    }
    if (fds[1].revents != 0) {
      draining = true;
      break;
    }
    if (fds[0].revents != 0) {
      int fd;
      do {
        fd = ::accept(listen_fd_, nullptr, nullptr);
      } while (fd < 0 && errno == EINTR);
      // Other transient accept failures (ECONNABORTED, EMFILE, ...) drop
      // this connection attempt but keep the accept loop alive.
      if (fd < 0) continue;
      timeval tv{};
      tv.tv_sec = opts_.io_timeout_ms / 1000;
      tv.tv_usec = (opts_.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      obs::count("service.http.connections");
      {
        std::lock_guard<std::mutex> lock(mu_);
        pending_.push_back(fd);
      }
      cv_.notify_one();
    }
  }

  // Graceful drain: stop accepting, flag keep-alive loops to close after
  // their in-flight request, then let every already-accepted connection
  // finish its request/response cycle before returning. Idle keep-alive
  // sockets notice the flag within one 250ms poll slice.
  ::close(listen_fd_);
  listen_fd_ = -1;
  draining_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  obs::count("service.http.graceful_shutdowns");
  return 0;
}

void HttpServer::connection_worker() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
      if (pending_.empty()) return;  // closed_ and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    // Nothing a single connection does may take down the daemon: the router
    // catches handler errors itself, so anything arriving here is a transport
    // or parse bug — answer 500 and keep serving.
    try {
      handle_connection(fd);
    } catch (const std::exception& e) {
      obs::count("service.http.worker_exceptions");
      send_response(fd, error_response(500, "internal", e.what()));
    } catch (...) {
      obs::count("service.http.worker_exceptions");
      send_response(fd, error_response(500, "internal", "unknown error"));
    }
    ::close(fd);
  }
}

bool HttpServer::wait_readable(int fd, int timeout_ms) const {
  long long remaining = timeout_ms;
  while (remaining > 0) {
    if (draining_.load(std::memory_order_relaxed)) return false;
    pollfd p{fd, POLLIN, 0};
    const int slice = static_cast<int>(std::min<long long>(remaining, 250));
    const int rc = ::poll(&p, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal storm must not time us out
      return false;
    }
    // Readable or HUP: either way recv() resolves it.
    if (rc > 0) return true;
    remaining -= slice;
  }
  return false;
}

void HttpServer::handle_connection(int fd) {
  // `buf` persists across keep-alive requests: bytes a pipelining client
  // sent past one request's body are the start of the next request, not
  // garbage to drop.
  std::string buf;
  std::size_t served = 0;
  for (;;) {
    if (buf.empty()) {
      // Between requests (or before the first): wait for the next request
      // head. An idle timeout or a drain closes the connection silently —
      // no request was in flight, so there is nothing to answer.
      const int budget = served == 0 ? opts_.io_timeout_ms
                                     : opts_.idle_timeout_ms;
      if (!wait_readable(fd, budget)) return;
    }
    if (!read_until(fd, buf, "\r\n\r\n", opts_.max_header_bytes)) {
      // A clean EOF between requests is a normal keep-alive close from the
      // peer; a partial head is a protocol error worth answering.
      if (!buf.empty()) {
        send_response(fd, error_response(400, "bad_request",
                                         "malformed or oversized request head"));
      }
      return;
    }
    const std::size_t head_end = buf.find("\r\n\r\n");
    const std::string head = buf.substr(0, head_end);

    // Request line: METHOD SP PATH SP HTTP/x.y
    const std::size_t line_end = head.find("\r\n");
    const std::string request_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const std::vector<std::string> parts = split_ws(request_line);
    if (parts.size() != 3 || !starts_with(parts[2], "HTTP/")) {
      send_response(fd, error_response(400, "bad_request",
                                       "malformed request line"));
      return;
    }
    Request req;
    req.method = parts[0];
    // Strip any query string; the service takes parameters in JSON bodies.
    const std::size_t query = parts[1].find('?');
    req.path =
        query == std::string::npos ? parts[1] : parts[1].substr(0, query);

    const std::string headers =
        line_end == std::string::npos ? "" : head.substr(line_end + 2);
    const long long content_length = parse_content_length(headers);
    if (content_length == -2 ||
        content_length > static_cast<long long>(opts_.max_body_bytes)) {
      send_response(fd, error_response(413, "body_too_large",
                                       "invalid or oversized Content-Length"));
      return;
    }
    const std::size_t body_start = head_end + 4;
    const std::size_t want =
        content_length > 0 ? static_cast<std::size_t>(content_length) : 0;
    while (buf.size() < body_start + want) {
      char chunk[4096];
      // Cap each recv at the bytes actually remaining so we never consume
      // data beyond this request's declared body.
      const std::size_t cap =
          std::min(sizeof(chunk), body_start + want - buf.size());
      const ssize_t n = recv_retry(fd, chunk, cap);
      if (n <= 0) {
        send_response(fd, error_response(400, "bad_request",
                                         "truncated request body"));
        return;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    req.body = buf.substr(body_start, want);

    ++served;
    const bool keep = opts_.keep_alive &&
                      !client_wants_close(headers, parts[2]) &&
                      served < opts_.max_requests_per_connection &&
                      !draining_.load(std::memory_order_relaxed);
    if (served > 1) obs::count("service.http.keepalive_reuses");
    if (!send_response(fd, handler_(req), keep)) return;
    if (!keep) return;
    buf.erase(0, body_start + want);
  }
}

}  // namespace rca::service
