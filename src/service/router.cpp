#include "service/router.hpp"

#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>
#include <utility>

#include "analysis/diagnostics.hpp"
#include "fault/fault.hpp"
#include "graph/betweenness.hpp"
#include "graph/centrality.hpp"
#include "graph/girvan_newman.hpp"
#include "graph/louvain.hpp"
#include "graph/nonbacktracking.hpp"
#include "model/corpus.hpp"
#include "obs/obs.hpp"
#include "service/build_info.hpp"
#include "service/front_end.hpp"
#include "slice/slicer.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace rca::service {

namespace {

[[noreturn]] void fail(int status, std::string code, std::string message) {
  throw HandlerError{status, std::move(code), std::move(message)};
}

/// Opens every session-carrying response: the session key, plus — when the
/// front end had to skip unparsable modules — "degraded": true and the
/// skipped paths, so clients can tell a partial answer from a full one.
/// Warm-started sessions report nothing (skipped_modules() never forces a
/// parse; see Session).
void write_session_header(JsonWriter& w, const Session& session) {
  w.key("session");
  w.string_value(session.key());
  const std::vector<std::string> skipped = session.skipped_modules();
  if (!skipped.empty()) {
    w.key("degraded");
    w.boolean(true);
    w.key("skipped");
    w.begin_array();
    for (const auto& path : skipped) w.string_value(path);
    w.end_array();
  }
}

}  // namespace

namespace {

Response make_error(int status, const std::string& code,
                    const std::string& message, bool retriable,
                    int retry_after_s) {
  JsonWriter w;
  w.begin_object();
  w.key("error");
  w.begin_object();
  w.key("code");
  w.string_value(code);
  w.key("message");
  w.string_value(message);
  w.end_object();
  w.key("status");
  w.integer(status);
  if (retriable) {
    w.key("retriable");
    w.boolean(true);
  }
  w.end_object();
  return Response{status, w.str() + "\n", "application/json",
                  retriable ? retry_after_s : 0};
}

}  // namespace

Response error_response(int status, const std::string& code,
                        const std::string& message) {
  return make_error(status, code, message, /*retriable=*/false, 0);
}

Response retriable_error_response(int status, const std::string& code,
                                  const std::string& message,
                                  int retry_after_s) {
  return make_error(status, code, message, /*retriable=*/true, retry_after_s);
}

Router::Router(SessionStore* store, RouterOptions opts)
    : store_(store),
      opts_(std::move(opts)),
      started_at_(std::chrono::steady_clock::now()) {}

void Router::add_route(const std::string& method, const std::string& path,
                       RouteHandler handler) {
  routes_[path][method] = std::move(handler);
}

Response Router::handle(const Request& req) {
  // Health and metrics answer inline: their whole point is to keep working
  // while the worker pool is saturated or draining.
  if (req.path == "/v1/health") return handle_health();
  if (req.path == "/v1/metrics") return handle_metrics();

  // Chaos site for the fleet: an armed fire here dies the way a real heap
  // corruption or OOM kill would — no unwinding, no response, no drain.
  // The supervisor must observe SIGABRT via SIGCHLD, not an error body.
  // Sits below health/metrics so supervisor probes never trip it — only
  // real proxied work does.
  if (RCA_FAULT_CHECK("fleet.worker.crash")) {
    std::abort();
  }

  obs::Span span("service.request");
  span.attr("path", req.path);
  const auto started = std::chrono::steady_clock::now();
  obs::count("service.requests");

  auto finish = [&span, started](Response resp) {
    span.attr("status", resp.status);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - started)
                          .count();
    obs::observe("service.request.latency_us", us);
    return resp;
  };

  if (req.body.size() > opts_.max_body_bytes) {
    return finish(error_response(413, "body_too_large",
                                 "request body exceeds " +
                                     std::to_string(opts_.max_body_bytes) +
                                     " bytes"));
  }
  // Parse the body on the transport thread: it is cheap (bounded by
  // max_body_bytes) and the per-request deadline lives in it.
  JsonValue body = JsonValue::make_object({});
  if (!req.body.empty()) {
    try {
      JsonParseOptions jopts;
      jopts.max_bytes = opts_.max_body_bytes;
      body = parse_json(req.body, jopts);
    } catch (const std::exception& e) {
      return finish(error_response(400, "bad_request", e.what()));
    }
  }

  // Pre-dispatch body accessors run on the transport thread, outside the
  // worker's try/catch — a mistyped field (e.g. {"deadline_ms":"abc"}) must
  // become a 400 here, never an exception escaping into the worker thread.
  long long deadline_ms = opts_.default_deadline_ms;
  try {
    deadline_ms = body.get_int("deadline_ms", opts_.default_deadline_ms);
  } catch (const std::exception& e) {
    return finish(error_response(400, "bad_request", e.what()));
  }
  if (deadline_ms <= 0) deadline_ms = opts_.default_deadline_ms;
  const auto deadline = started + std::chrono::milliseconds(deadline_ms);

  // Backpressure: bounded in-flight work, structured 429 beyond it.
  // Admission is atomic — reserve a slot first, then release it if over
  // budget — so N transport threads racing here can never all pass a
  // check-then-act window and exceed max_in_flight.
  const std::size_t prior = in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.max_in_flight != 0 && prior >= opts_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    obs::count("service.rejects");
    return finish(retriable_error_response(
        429, "over_capacity",
        "in-flight request budget (" + std::to_string(opts_.max_in_flight) +
            ") exhausted; retry later"));
  }
  obs::gauge("service.in_flight",
             static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
  auto work = [this, req, body = std::move(body)]() -> Response {
    Response resp;
    try {
      resp = dispatch(req, body);
    } catch (const HandlerError& e) {
      resp = e.retriable ? retriable_error_response(e.status, e.code,
                                                    e.message, e.retry_after)
                         : error_response(e.status, e.code, e.message);
    } catch (const fault::TransientError& e) {
      // Retries exhausted upstream: the request failed on our side, not the
      // client's — 5xx marked retriable, so callers know to back off and
      // try again rather than treat it as permanent.
      resp = retriable_error_response(500, "transient_io", e.what());
    } catch (const fault::FaultInjected& e) {
      resp = error_response(500, "internal", e.what());
    } catch (const Error& e) {
      resp = error_response(400, "bad_request", e.what());
    } catch (const std::exception& e) {
      resp = error_response(500, "internal", e.what());
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return resp;
  };

  if (opts_.pool == nullptr) return finish(work());

  std::future<Response> fut = opts_.pool->submit(std::move(work));
  if (fut.wait_until(deadline) == std::future_status::timeout) {
    // The worker keeps running (and holding its in-flight slot) — the
    // transport answers now so the client is never stuck past its deadline.
    obs::count("service.timeouts");
    return finish(error_response(504, "deadline_exceeded",
                                 "request exceeded its deadline of " +
                                     std::to_string(deadline_ms) + " ms"));
  }
  return finish(fut.get());
}

Response Router::dispatch(const Request& req, const JsonValue& body) {
  if (req.path == "/v1/graph/build") {
    if (req.method != "POST") fail(405, "method_not_allowed", "POST only");
    return handle_build(body);
  }
  if (req.path == "/v1/slice") {
    if (req.method != "POST") fail(405, "method_not_allowed", "POST only");
    return handle_slice(body);
  }
  if (req.path == "/v1/communities") {
    if (req.method != "POST") fail(405, "method_not_allowed", "POST only");
    return handle_communities(body);
  }
  if (req.path == "/v1/rank") {
    if (req.method != "POST") fail(405, "method_not_allowed", "POST only");
    return handle_rank(body);
  }
  if (req.path == "/v1/lint") {
    if (req.method != "POST") fail(405, "method_not_allowed", "POST only");
    return handle_lint(body);
  }
  if (req.path == "/v1/session/patch") {
    if (req.method != "POST") fail(405, "method_not_allowed", "POST only");
    return handle_patch(body);
  }
  if (auto pit = routes_.find(req.path); pit != routes_.end()) {
    auto mit = pit->second.find(req.method);
    if (mit == pit->second.end()) {
      fail(405, "method_not_allowed", "unsupported method for " + req.path);
    }
    return mit->second(req, body);
  }
  if (opts_.enable_test_routes && req.path == "/v1/_test/sleep") {
    const long long ms = body.get_int("ms", 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    JsonWriter w;
    w.begin_object();
    w.key("slept_ms");
    w.integer(ms);
    w.end_object();
    return Response{200, w.str() + "\n"};
  }
  fail(404, "not_found", "unknown endpoint " + req.path);
}

Response Router::handle_health() const {
  // Fixed key set and order — fleet probes and golden tests parse this by
  // position. Wall-clock-dependent values (uptime_ms) report 0 under
  // stable_health so test-mode documents stay byte-identical.
  JsonWriter w;
  w.begin_object();
  w.key("status");
  w.string_value("ok");
  w.key("phase");
  w.string_value(warming_.load(std::memory_order_relaxed) ? "warming"
                                                          : "ready");
  w.key("build_id");
  w.string_value(build_id());
  w.key("generation");
  w.integer(opts_.generation);
  w.key("uptime_ms");
  if (opts_.stable_health) {
    w.integer(0);
  } else {
    w.integer(std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - started_at_)
                  .count());
  }
  w.key("sessions");
  w.integer(static_cast<long long>(store_->session_count()));
  w.key("resident_bytes");
  w.integer(static_cast<long long>(store_->resident_bytes()));
  w.key("degraded_sessions");
  w.integer(static_cast<long long>(store_->degraded_session_count()));
  w.key("in_flight");
  w.integer(static_cast<long long>(in_flight()));
  w.end_object();
  return Response{200, w.str() + "\n"};
}

Response Router::handle_metrics() const {
  return Response{200, obs::global().to_json() + "\n"};
}

std::shared_ptr<const Session> Router::resolve_session(const JsonValue& body) {
  if (const JsonValue* s = body.get("session")) {
    std::shared_ptr<const Session> session = store_->lookup(s->as_string());
    if (session == nullptr) {
      fail(404, "session_not_found",
           "no resident session " + s->as_string() +
               " (build it via /v1/graph/build)");
    }
    return session;
  }
  if (body.get("src") != nullptr) {
    SessionConfig config;
    config.build_list = body.get_string_array("build_list");
    config.coverage = body.get_bool("coverage", false);
    config.coverage_steps =
        static_cast<int>(body.get_int("coverage_steps", 2));
    config.prune_dead_stores = body.get_bool("prune_dead_stores", false);
    config.summary_informed_pruning =
        body.get_bool("summary_informed_pruning", false);
    SourceList sources = collect_fortran_sources(body.get_string("src"));
    if (sources.empty()) {
      fail(400, "bad_request",
           "no Fortran sources under " + body.get_string("src"));
    }
    return store_->get_or_build(config, std::move(sources));
  }
  fail(400, "bad_request", "request needs \"session\" or \"src\"");
}

Response Router::handle_build(const JsonValue& body) {
  if (body.get("session") != nullptr && body.get("src") == nullptr) {
    fail(400, "bad_request", "/v1/graph/build takes \"src\", not \"session\"");
  }
  std::shared_ptr<const Session> session = resolve_session(body);
  const meta::Metagraph& mg = session->metagraph();
  JsonWriter w;
  w.begin_object();
  write_session_header(w, *session);
  w.key("nodes");
  w.integer(static_cast<long long>(mg.node_count()));
  w.key("edges");
  w.integer(static_cast<long long>(mg.graph().edge_count()));
  w.key("io_labels");
  w.integer(static_cast<long long>(mg.io_map().size()));
  w.key("modules");
  w.integer(static_cast<long long>(mg.modules().size()));
  w.key("bytes");
  w.integer(static_cast<long long>(session->bytes()));
  w.key("warm");
  w.boolean(session->warm_started());
  w.end_object();
  return Response{200, w.str() + "\n"};
}

Response Router::handle_slice(const JsonValue& body) {
  std::shared_ptr<const Session> session = resolve_session(body);
  const meta::Metagraph& mg = session->metagraph();

  std::vector<std::string> targets = body.get_string_array("targets");
  const std::vector<std::string> outputs = body.get_string_array("outputs");
  for (const std::string& label : outputs) {
    for (const auto& name : slice::internal_names_for_output(mg, label)) {
      targets.push_back(name);
    }
  }
  if (targets.empty()) {
    if (!outputs.empty()) {
      fail(404, "unknown_output",
           "no I/O label in this graph matches the requested outputs");
    }
    fail(400, "bad_request", "need \"targets\" or \"outputs\"");
  }

  slice::SliceOptions opts;
  if (body.get_bool("cam_only", false)) {
    opts.module_filter = [](const std::string& m) {
      return model::is_cam_module(m);
    };
  }
  opts.drop_components_smaller_than =
      static_cast<std::size_t>(body.get_int("drop_small", 0));
  slice::SliceResult result = slice::backward_slice(mg, targets, opts);

  const std::size_t limit =
      static_cast<std::size_t>(body.get_int("limit", 20));
  JsonWriter w;
  w.begin_object();
  write_session_header(w, *session);
  w.key("criteria");
  w.begin_array();
  for (const auto& t : targets) w.string_value(t);
  w.end_array();
  w.key("nodes");
  w.integer(static_cast<long long>(result.nodes.size()));
  w.key("edges");
  w.integer(static_cast<long long>(result.subgraph.edge_count()));
  w.key("graph_nodes");
  w.integer(static_cast<long long>(mg.node_count()));
  w.key("shown");
  w.begin_array();
  for (std::size_t i = 0; i < result.nodes.size() && i < limit; ++i) {
    const auto& info = mg.info(result.nodes[i]);
    w.begin_object();
    w.key("name");
    w.string_value(info.unique_name);
    w.key("module");
    w.string_value(info.module);
    w.key("line");
    w.integer(info.line);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return Response{200, w.str() + "\n"};
}

Response Router::handle_communities(const JsonValue& body) {
  std::shared_ptr<const Session> session = resolve_session(body);
  const meta::Metagraph& mg = session->metagraph();
  const std::string method = body.get_string("method", "gn");
  const std::size_t min_size =
      static_cast<std::size_t>(body.get_int("min_size", 3));

  std::vector<std::vector<graph::NodeId>> communities;
  JsonWriter w;
  w.begin_object();
  write_session_header(w, *session);
  if (method == "louvain") {
    graph::LouvainOptions opts;
    opts.min_community_size = min_size;
    auto result = louvain(mg.graph(), opts);
    communities = std::move(result.communities);
    w.key("method");
    w.string_value("louvain");
    w.key("modularity");
    w.number(result.modularity);
  } else if (method == "gn") {
    graph::GirvanNewmanOptions opts;
    opts.iterations = static_cast<int>(body.get_int("iterations", 1));
    opts.min_community_size = min_size;
    // Wall-clock budget: GN's per-removal betweenness recompute is the
    // service's slowest operation. On expiry the request still answers —
    // with Louvain's partition — instead of timing out.
    opts.budget_ms = body.get_int("budget_ms", opts_.gn_budget_ms);
    // Pivot sampling trades exact betweenness for a seeded estimate so big
    // sessions can answer inside the budget instead of falling back.
    const long long samples = body.get_int("samples", 0);
    if (samples < 0) fail(400, "bad_request", "samples must be >= 0");
    opts.betweenness_samples = static_cast<std::size_t>(samples);
    opts.betweenness_seed =
        static_cast<std::uint64_t>(body.get_int("seed", 2019));
    auto result = graph::communities_with_budget(mg.graph(), opts);
    communities = std::move(result.communities);
    w.key("method");
    w.string_value(result.fell_back ? "louvain" : "gn");
    if (opts.betweenness_samples > 0) {
      w.key("betweenness_samples");
      w.integer(static_cast<long long>(opts.betweenness_samples));
    }
    if (result.fell_back) {
      w.key("fallback_from");
      w.string_value("gn");
      w.key("modularity");
      w.number(result.modularity);
    }
    w.key("edges_removed");
    w.integer(static_cast<long long>(result.edges_removed));
  } else {
    fail(400, "bad_request", "unknown method '" + method + "' (gn|louvain)");
  }
  w.key("communities");
  w.begin_array();
  for (const auto& community : communities) {
    w.begin_object();
    w.key("size");
    w.integer(static_cast<long long>(community.size()));
    w.key("sample");
    w.begin_array();
    for (std::size_t k = 0; k < community.size() && k < 5; ++k) {
      w.string_value(mg.info(community[k]).unique_name);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return Response{200, w.str() + "\n"};
}

Response Router::handle_rank(const JsonValue& body) {
  std::shared_ptr<const Session> session = resolve_session(body);
  const meta::Metagraph& mg = session->metagraph();
  const std::string kind = body.get_string("kind", "eigenvector");
  const std::size_t top = static_cast<std::size_t>(body.get_int("top", 15));

  const graph::Digraph* g = &mg.graph();
  graph::Digraph quotient;
  std::vector<std::string> names;
  if (body.get_bool("modules", false)) {
    quotient = graph::quotient_graph(mg.graph(), mg.module_classes(),
                                     mg.modules().size());
    g = &quotient;
    names = mg.modules();
  } else {
    for (graph::NodeId v = 0; v < mg.node_count(); ++v) {
      names.push_back(mg.info(v).unique_name);
    }
  }

  std::vector<double> scores;
  if (kind == "eigenvector") {
    scores = eigenvector_centrality(*g, graph::Direction::kIn);
  } else if (kind == "degree") {
    scores = degree_centrality(*g, graph::Direction::kIn);
  } else if (kind == "pagerank") {
    scores = pagerank(*g, graph::Direction::kIn);
  } else if (kind == "katz") {
    scores = katz_centrality(*g, graph::Direction::kIn);
  } else if (kind == "closeness") {
    scores = closeness_centrality(*g, graph::Direction::kIn);
  } else if (kind == "nonbacktracking") {
    scores = nonbacktracking_centrality(*g, graph::Direction::kIn).centrality;
  } else if (kind == "betweenness") {
    // O(V·E) exact — "samples" caps the Brandes sweeps (seeded pivots) so
    // the endpoint stays interactive on full sessions.
    graph::BetweennessOptions opts;
    const long long samples = body.get_int("samples", 0);
    if (samples < 0) fail(400, "bad_request", "samples must be >= 0");
    opts.samples = static_cast<std::size_t>(samples);
    opts.seed = static_cast<std::uint64_t>(body.get_int("seed", 2019));
    scores = node_betweenness(*g, opts);
  } else if (kind == "inout-eigenvector") {
    const auto cin = eigenvector_centrality(*g, graph::Direction::kIn);
    const auto cout = eigenvector_centrality(*g, graph::Direction::kOut);
    scores.resize(cin.size());
    for (std::size_t i = 0; i < cin.size(); ++i) scores[i] = cin[i] + cout[i];
  } else {
    fail(400, "bad_request", "unknown centrality kind '" + kind + "'");
  }

  JsonWriter w;
  w.begin_object();
  write_session_header(w, *session);
  w.key("kind");
  w.string_value(kind);
  w.key("ranking");
  w.begin_array();
  long long rank = 1;
  for (graph::NodeId v : graph::top_k(scores, top)) {
    w.begin_object();
    w.key("rank");
    w.integer(rank++);
    w.key("name");
    w.string_value(names[v]);
    w.key("score");
    w.number(scores[v]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return Response{200, w.str() + "\n"};
}

Response Router::handle_patch(const JsonValue& body) {
  const JsonValue* s = body.get("session");
  if (s == nullptr) {
    fail(400, "bad_request", "/v1/session/patch needs \"session\"");
  }
  const std::string base_key = s->as_string();

  SessionStore::PatchEdit edit;
  if (const JsonValue* mods = body.get("modules")) {
    for (const JsonValue& m : mods->items()) {
      const std::string path = m.get_string("path");
      if (path.empty()) {
        fail(400, "bad_request", "each modules[] entry needs a \"path\"");
      }
      if (m.get("src") == nullptr) {
        fail(400, "bad_request",
             "modules[] entry '" + path + "' needs \"src\" text");
      }
      edit.upserts.emplace_back(path, m.get("src")->as_string());
    }
  }
  edit.removes = body.get_string_array("remove");
  if (edit.upserts.empty() && edit.removes.empty()) {
    fail(400, "bad_request", "patch needs \"modules\" and/or \"remove\"");
  }

  SessionStore::PatchResult result;
  try {
    result = store_->patch(base_key, edit);
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.find("no resident session") != std::string::npos) {
      fail(404, "session_not_found",
           what + " (build it via /v1/graph/build)");
    }
    fail(400, "bad_request", what);
  }

  const meta::Metagraph& mg = result.session->metagraph();
  JsonWriter w;
  w.begin_object();
  write_session_header(w, *result.session);
  w.key("base_session");
  w.string_value(base_key);
  w.key("generation");
  w.integer(static_cast<long long>(result.session->generation()));
  w.key("rolled_back");
  w.boolean(result.rolled_back);
  w.key("resident_hit");
  w.boolean(result.resident_hit);
  w.key("full_rewalk");
  w.boolean(result.full_rewalk);
  w.key("rebuilt_modules");
  w.integer(static_cast<long long>(result.rebuilt_modules));
  w.key("reused_fragments");
  w.integer(static_cast<long long>(result.reused_fragments));
  w.key("spliced_nodes");
  w.integer(static_cast<long long>(result.spliced_nodes));
  w.key("nodes");
  w.integer(static_cast<long long>(mg.node_count()));
  w.key("edges");
  w.integer(static_cast<long long>(mg.graph().edge_count()));
  if (!result.errors.empty()) {
    w.key("errors");
    w.begin_array();
    for (const auto& [path, message] : result.errors) {
      w.begin_object();
      w.key("path");
      w.string_value(path);
      w.key("message");
      w.string_value(message);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  // A rolled-back patch is still a well-formed answer (the base session is
  // intact and reported); 409 signals the edit itself was rejected.
  return Response{result.rolled_back ? 409 : 200, w.str() + "\n"};
}

Response Router::handle_lint(const JsonValue& body) {
  std::shared_ptr<const Session> session = resolve_session(body);
  const analysis::AnalysisResult& result = session->lint();
  JsonWriter w;
  w.begin_object();
  write_session_header(w, *session);
  w.key("errors");
  w.integer(static_cast<long long>(result.count(analysis::Severity::kError)));
  w.key("warnings");
  w.integer(
      static_cast<long long>(result.count(analysis::Severity::kWarning)));
  w.key("modules");
  w.integer(static_cast<long long>(result.modules));
  w.key("subprograms");
  w.integer(static_cast<long long>(result.subprograms));
  // The service always lints with the default (interprocedural) passes; the
  // flag tells clients which rule set produced the report.
  w.key("interprocedural");
  w.boolean(true);
  w.key("report");
  // Full rca.diagnostics.v1 document, embedded as produced by the emitter.
  w.raw_value(analysis::diagnostics_to_json(result.diagnostics));
  w.end_object();
  return Response{200, w.str() + "\n"};
}

}  // namespace rca::service
