// Resident session store for the RCA query service.
//
// A *session* is a parsed corpus plus its built metagraph, keyed by a
// content hash over the exact inputs that determine the graph (same recipe
// as the on-disk SnapshotCache): every (path, text) source pair plus the
// build configuration. The store keeps sessions hot so repeated slice/
// community/rank/lint queries never re-pay process startup or graph
// materialization — the cost the paper's whole design fights.
//
// Behaviour:
//   * LRU eviction under a configurable byte budget (sources + graph
//     estimate, accounted at insertion);
//   * single-flight deduplication: N concurrent identical build requests do
//     ONE build, the rest wait on the first builder's result;
//   * warm start from an existing SnapshotCache directory: a snapshot hit
//     skips parse+build entirely (the session lazily re-parses only if a
//     lint query later needs ASTs).
//
// Counters (obs registry):
//   service.session.hits        requests served without a parse+build
//                               (resident hit, or snapshot warm start)
//   service.session.misses      requests that paid a full parse+build
//   service.session.builds      sessions constructed (warm or cold)
//   service.session.snapshot_warm  subset of hits warm-started from disk
//   service.session.singleflight   waiters coalesced onto an in-progress build
//   service.session.evictions   LRU evictions
//   service.session.parses      corpus parses performed (front end runs)
//   service.session.retries     cold builds retried after transient I/O
//   service.patch.requests      patch() calls
//   service.patch.commits       patches committed (new generation published)
//   service.patch.rollbacks     patches rolled back (parse error or fault);
//                               the base session is untouched
//   service.patch.noops         patches whose edited corpus hashed to an
//                               already-resident session
//   service.patch.cold_fallback coverage-filtered bases rebuilt from scratch
// Gauges: service.session.count, service.session.bytes.
//
// Incremental sessions: patch() takes a resident base session plus a sparse
// edit (upserted/removed files), re-parses only the changed files, and runs a
// meta::run_transaction to splice cached fragments with fresh ones — the
// committed graph is byte-identical to a from-scratch build of the edited
// corpus (pinned by tests/incremental_test.cpp). The base session is pinned
// against LRU eviction for the duration and is never mutated: a failed patch
// (parse error, injected fault at service.patch.parse or meta.txn.splice)
// rolls back by simply not publishing, leaving the base resident at its
// prior generation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/passes.hpp"
#include "lang/ast.hpp"
#include "meta/metagraph.hpp"
#include "meta/snapshot_cache.hpp"
#include "meta/transaction.hpp"

namespace rca {
class ThreadPool;
}

namespace rca::service {

/// Build configuration for one session (mirrors `rca-tool graph` flags).
struct SessionConfig {
  std::vector<std::string> build_list;  // empty = every module
  bool coverage = false;                // interpreter-driven coverage filter
  int coverage_steps = 2;
  bool prune_dead_stores = false;
  /// Sharpen dead-store pruning with interprocedural mod/ref summaries
  /// (meta::BuilderOptions::summary_informed_pruning). Forces patches into a
  /// full re-walk — fragments depend on other modules' bodies under it.
  bool summary_informed_pruning = false;
};

using SourceList = std::vector<std::pair<std::string, std::string>>;

/// One resident corpus + metagraph. Immutable after construction except for
/// the lazily computed AST/lint caches (guarded internally; thread-safe).
class Session {
 public:
  Session(std::string key, SessionConfig config, SourceList sources);

  const std::string& key() const { return key_; }
  const SessionConfig& config() const { return config_; }
  const SourceList& sources() const { return sources_; }
  const meta::Metagraph& metagraph() const { return *mg_; }
  /// True when the graph came from the snapshot cache (no parse happened).
  bool warm_started() const { return warm_started_; }
  /// Approximate resident footprint, fixed at build time (LRU accounting).
  std::size_t bytes() const { return bytes_; }
  /// 0 for cold/warm-started sessions; each committed patch publishes a new
  /// session at the base's generation + 1.
  std::uint64_t generation() const { return generation_; }
  /// Per-module fragment state for incremental patching; null when the
  /// session was warm-started from a snapshot or built under a coverage
  /// filter (such sessions patch via cold rebuild).
  const std::shared_ptr<const meta::TxnState>& txn_state() const {
    return txn_state_;
  }
  /// Parse failures from the front end run. Forces a parse if none has
  /// happened yet (warm-started sessions), so the reference is stable.
  const std::vector<std::pair<std::string, std::string>>& parse_errors() const;

  /// Parsed modules (build-list filtered). Forces a parse like
  /// parse_errors(); the reference is stable afterwards. Campaigns use this
  /// to mine scenario ground-truth sites from the session's own ASTs.
  const std::vector<const lang::Module*>& modules() const;

  /// Source paths the front end could not parse — the session serves a
  /// *partial* corpus and responses must say so ("degraded": true). Unlike
  /// parse_errors() this never forces a parse: a warm-started session whose
  /// snapshot built cleanly is not degraded, and asking must stay free.
  std::vector<std::string> skipped_modules() const;

  /// Lint result over the session's modules, computed once and cached.
  /// Forces a parse when the session was warm-started from a snapshot.
  const analysis::AnalysisResult& lint() const;

 private:
  friend class SessionStore;

  /// Parses sources_ into files_/modules_ if not done yet (thread-safe);
  /// counts service.session.parses when a parse actually runs.
  void ensure_parsed(ThreadPool* pool) const;
  void finalize_bytes();
  /// Lint diagnostics if lint() already ran, else nullopt (never forces).
  std::optional<std::vector<analysis::Diagnostic>> cached_lint_diags() const;
  /// The lint run's program summaries if lint() already ran (null otherwise
  /// or in intraprocedural runs); seeds the incremental summary baseline.
  std::shared_ptr<const analysis::ProgramSummaries> cached_lint_summaries()
      const;

  /// Seed for an incremental lint of a patched session: diagnostics carried
  /// from the base for unchanged modules, plus the mask of modules whose
  /// files changed (parallel to modules_). Only set when the transaction did
  /// not escalate to a full re-walk — the same interface-stability condition
  /// that makes per-module pass reuse exact.
  struct LintSeed {
    std::vector<analysis::Diagnostic> carried;
    std::vector<bool> dirty;
    /// Base lint run's summary baseline: modules whose summary signature
    /// changed widen the dirty set by their caller cone, and the widened
    /// modules' carried diagnostics are dropped (recomputed fresh).
    std::shared_ptr<const analysis::SummaryBaseline> baseline;
  };

  std::string key_;
  SessionConfig config_;
  SourceList sources_;
  // Shared so a touch-edit patch whose transaction proved the graph
  // unchanged can alias the base session's graph (meta::TxnResult::mg).
  std::shared_ptr<const meta::Metagraph> mg_;
  bool warm_started_ = false;
  std::size_t bytes_ = 0;
  std::uint64_t generation_ = 0;
  std::shared_ptr<const meta::TxnState> txn_state_;

  mutable std::mutex lazy_mu_;
  mutable bool parsed_ = false;
  // shared_ptr so a patched session can alias the base's unchanged ASTs
  // instead of re-parsing them (ASTs are move-only unique_ptr trees).
  mutable std::vector<std::shared_ptr<const lang::SourceFile>> files_;
  mutable std::vector<const lang::Module*> modules_;  // build-list filtered
  mutable std::vector<std::pair<std::string, std::string>> parse_errors_;
  mutable std::optional<analysis::AnalysisResult> lint_;
  mutable std::optional<LintSeed> lint_seed_;
  mutable ThreadPool* parse_pool_ = nullptr;  // set by the store
};

struct SessionStoreOptions {
  /// Resident byte budget across all sessions; the newest session is always
  /// kept even if it alone exceeds the budget. 0 = unlimited.
  std::size_t max_bytes = 512ull * 1024 * 1024;
  /// Snapshot-cache directory for warm starts and build persistence; empty
  /// disables the disk tier.
  std::string snapshot_dir;
  /// Pool for the parallel front end (parse + metagraph build). May be null.
  ThreadPool* build_pool = nullptr;
  /// Transient-I/O retries for a cold build (single-flight holder only;
  /// waiters coalesce onto whatever the holder's retries produce). Backoff
  /// is exponential from backoff_base_ms, deterministically jittered per
  /// (key, attempt), capped at backoff_cap_ms. Counter:
  /// service.session.retries.
  int build_retries = 3;
  int backoff_base_ms = 10;
  int backoff_cap_ms = 200;
};

class SessionStore {
 public:
  explicit SessionStore(SessionStoreOptions opts);

  /// Content hash for (config, sources) — the session identity. Exposed so
  /// clients and tests can predict keys. Deliberately the same recipe as
  /// `rca-tool graph --snapshot`, so a CLI-populated snapshot directory
  /// warm-starts the daemon (and vice versa).
  static meta::SnapshotKey snapshot_key(const SessionConfig& config,
                                        const SourceList& sources);
  static std::string compute_key(const SessionConfig& config,
                                 const SourceList& sources);

  /// Returns the resident session for the key, or builds it (single-flight:
  /// concurrent callers with the same key coalesce onto one build). Throws
  /// rca::Error on build failure (every coalesced waiter sees the error).
  std::shared_ptr<const Session> get_or_build(const SessionConfig& config,
                                              SourceList sources);

  /// Resident lookup by session key; null when not resident (the caller
  /// decides whether that is a 404 or a rebuild).
  std::shared_ptr<const Session> lookup(const std::string& key);

  /// Sparse edit applied to a resident base session's sources.
  struct PatchEdit {
    /// (path, new text) — replaces the file if present, inserts it (sorted
    /// by path) otherwise. Upserts whose text matches the current file are
    /// ignored.
    SourceList upserts;
    /// Paths to delete; removing an unknown path is an error.
    std::vector<std::string> removes;
  };

  struct PatchResult {
    /// The committed session — or the untouched base when rolled_back.
    std::shared_ptr<const Session> session;
    bool rolled_back = false;
    /// True when the edited corpus hashed to an already-resident session
    /// (including the no-op edit) — nothing was parsed or built.
    bool resident_hit = false;
    bool full_rewalk = false;
    std::size_t rebuilt_modules = 0;
    std::size_t reused_fragments = 0;
    std::size_t spliced_nodes = 0;
    /// (path, message) parse failures that forced the rollback; a fault
    /// injected mid-splice reports one entry with an empty path.
    std::vector<std::pair<std::string, std::string>> errors;
  };

  /// Applies `edit` to the resident session `base_key` and publishes the
  /// result as a new resident session at generation + 1 (also persisted to
  /// the snapshot tier). Only the changed files are re-parsed and re-walked;
  /// the committed graph is byte-identical to a cold build of the edited
  /// corpus. If any changed file fails to parse — or a fault fires at
  /// service.patch.parse / meta.txn.splice — the patch rolls back: the base
  /// session stays resident and unchanged and the result carries the errors.
  /// Throws rca::Error when base_key is not resident (the caller's 404).
  /// No single-flight: concurrent identical patches race benignly (same key,
  /// first insert wins).
  PatchResult patch(const std::string& base_key, const PatchEdit& edit);

  /// Generation pin: while held, `key` is exempt from LRU eviction (patch()
  /// pins its base for the transaction's duration). Recursive; unpin() must
  /// balance pin().
  void pin(const std::string& key);
  void unpin(const std::string& key);
  bool pinned(const std::string& key) const;

  // Introspection (health endpoint, tests).
  std::size_t session_count() const;
  std::size_t resident_bytes() const;
  /// Resident sessions serving a partial corpus (skipped modules). Never
  /// forces a parse — see Session::skipped_modules().
  std::size_t degraded_session_count() const;
  /// Resident keys in LRU order, most recently used first.
  std::vector<std::string> keys_by_recency() const;

  const SessionStoreOptions& options() const { return opts_; }

 private:
  /// Retry shell around build_session_once: fault::TransientError is retried
  /// up to opts_.build_retries times with jittered capped backoff.
  std::shared_ptr<Session> build_session(const std::string& key,
                                         const SessionConfig& config,
                                         SourceList sources);
  std::shared_ptr<Session> build_session_once(const std::string& key,
                                              const SessionConfig& config,
                                              const SourceList& sources);
  /// The incremental core of patch(): parse changed files, run the
  /// transaction, assemble + publish the patched session. Throws
  /// fault::FaultInjected / rca::Error on rollback paths (patch() catches).
  PatchResult patch_build(const std::shared_ptr<const Session>& base,
                          const std::string& key, SourceList sources,
                          const std::vector<std::string>& changed);
  void insert_resident(const std::string& key,
                       std::shared_ptr<const Session> session);
  void publish_gauges() const;

  SessionStoreOptions opts_;
  std::optional<meta::SnapshotCache> cache_;

  mutable std::mutex mu_;
  struct Entry {
    std::shared_ptr<const Session> session;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, int> pins_;  // key -> pin refcount
  std::size_t total_bytes_ = 0;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const Session>>>
      building_;
};

}  // namespace rca::service
