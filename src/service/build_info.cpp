#include "service/build_info.hpp"

namespace rca::service {

#ifndef RCA_GIT_SHA
#define RCA_GIT_SHA "unknown"
#endif

const char* version() { return "0.4.0"; }

std::string build_id() { return std::string(version()) + "+" + RCA_GIT_SHA; }

}  // namespace rca::service
