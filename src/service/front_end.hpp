// Shared corpus front-end helpers: on-disk source collection and (optionally
// parallel) parsing. Factored out of apps/rca_tool.cpp so the CLI's graph/
// lint subcommands and the resident service's session store run the exact
// same front end — same file ordering, same failure folding.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lang/ast.hpp"

namespace rca {
class ThreadPool;
}

namespace rca::service {

/// Every Fortran-ish file (.f90/.f/.f95, case-insensitive) under `src_dir`
/// as (path, text), in sorted path order — directory iteration order is
/// filesystem-dependent, and node ids / diagnostic order must not depend on
/// it. Throws rca::Error when the directory cannot be read.
std::vector<std::pair<std::string, std::string>> collect_fortran_sources(
    const std::string& src_dir);

/// The same file set as collect_fortran_sources, paths only (sorted), no
/// file contents read — the watch loop stats these every tick and reads
/// only files whose mtime moved.
std::vector<std::string> collect_fortran_paths(const std::string& src_dir);

/// Parses sources into file-order slots (independent per file, so the pool
/// can schedule them freely without changing the result). Parse failures
/// land in `errors` by index, paired with their source path. `pool` may be
/// null for a serial parse.
std::vector<lang::SourceFile> parse_sources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    ThreadPool* pool, std::vector<std::pair<std::string, std::string>>* errors);

}  // namespace rca::service
