#include "service/front_end.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "fault/fault.hpp"
#include "lang/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace fs = std::filesystem;

namespace rca::service {

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<std::pair<std::string, std::string>> collect_fortran_sources(
    const std::string& src_dir) {
  std::vector<std::pair<std::string, std::string>> sources;
  for (const std::string& path : collect_fortran_paths(src_dir)) {
    sources.emplace_back(path, read_file(path));
  }
  return sources;
}

std::vector<std::string> collect_fortran_paths(const std::string& src_dir) {
  std::error_code ec;
  fs::recursive_directory_iterator it(src_dir, ec);
  if (ec) throw Error("cannot read source directory " + src_dir);
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = to_lower(entry.path().extension().string());
    if (ext != ".f90" && ext != ".f" && ext != ".f95") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<lang::SourceFile> parse_sources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    ThreadPool* pool,
    std::vector<std::pair<std::string, std::string>>* errors) {
  std::vector<std::optional<lang::SourceFile>> slots(sources.size());
  std::vector<std::string> messages(sources.size());
  auto parse_one = [&sources, &slots, &messages](std::size_t i) {
    try {
      RCA_FAULT_POINT("service.parse");
      lang::Parser parser(sources[i].first, sources[i].second);
      slots[i] = parser.parse_file();
    } catch (const ParseError& e) {
      messages[i] = e.what();
    } catch (const std::exception& e) {
      // Fault isolation: any failure parsing one file — not just a clean
      // ParseError — is recorded against that file and the rest of the
      // corpus still builds. One poisoned module must degrade the session,
      // never kill it.
      messages[i] = std::string("parse failed: ") + e.what();
    }
  };
  if (pool != nullptr && sources.size() > 1) {
    pool->parallel_for(sources.size(), parse_one);
  } else {
    for (std::size_t i = 0; i < sources.size(); ++i) parse_one(i);
  }
  std::vector<lang::SourceFile> files;
  files.reserve(sources.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!messages[i].empty()) {
      errors->emplace_back(sources[i].first, messages[i]);
      continue;
    }
    if (slots[i]) files.push_back(std::move(*slots[i]));
  }
  return files;
}

}  // namespace rca::service
