// Build identity shared by `rca-tool --version` and the service's
// /v1/health payload, so a client can always tell which build answered.
#pragma once

#include <string>

namespace rca::service {

/// Semantic toolkit version (bumped per PR milestone).
const char* version();

/// "<version>+<git-sha>" — the sha is captured at configure time
/// (RCA_GIT_SHA compile definition) and falls back to "unknown" outside a
/// git checkout.
std::string build_id();

}  // namespace rca::service
