// Minimal HTTP/1.1 server over loopback TCP for the RCA query service.
//
// Scope is deliberately narrow: the daemon binds 127.0.0.1 only and speaks
// enough HTTP/1.1 for curl and simple clients — request line, headers,
// Content-Length bodies, and persistent connections (`Connection:
// keep-alive` honored with a bounded requests-per-connection budget and an
// idle timeout; `Connection: close` and HTTP/1.0 behave as before). Every
// request goes to a transport-independent handler — a Router by default,
// or any std::function (the fleet gateway reuses this transport with its
// own proxy handler). TLS and real fan-in belong in front of it.
//
// Lifecycle: start() binds and listens (port 0 picks an ephemeral port,
// readable via port()); serve_forever() accepts until a shutdown is
// requested, then *drains* — already-accepted connections finish their
// in-flight request/response cycle (idle keep-alive connections are closed
// within one 250ms poll slice) — and returns 0. request_shutdown_fd()
// exposes a write end an async-signal-safe SIGINT/SIGTERM handler can poke
// (see install_signal_handlers), which is how `rca-tool serve` exits 0 on
// Ctrl-C with zero dropped in-flight requests.
//
// Robustness: accept/recv/send/poll all retry on EINTR (a SIGCHLD-heavy
// supervisor parent must never kill a connection mid-read), SIGPIPE is
// ignored (sends use MSG_NOSIGNAL), and the transport carries `http.recv` /
// `http.send` fault-injection sites (src/fault) so chaos tests can model
// slow, failing, or truncating peers without real network trouble.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "service/router.hpp"

namespace rca::service {

struct HttpServerOptions {
  std::uint16_t port = 0;      // 0 = ephemeral
  int backlog = 64;
  std::size_t connection_threads = 8;
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  int io_timeout_ms = 10000;   // per-socket read/write timeout mid-request
  /// Persistent-connection policy. A connection is recycled after this many
  /// requests (the response carries `Connection: close`) so one chatty
  /// client cannot pin a worker thread forever.
  std::size_t max_requests_per_connection = 100;
  /// How long a keep-alive connection may sit idle between requests before
  /// the server closes it. Waited in <=250ms poll slices so a graceful
  /// drain never stalls behind an idle socket.
  int idle_timeout_ms = 15000;
  bool keep_alive = true;      // false restores one-request-per-connection
};

class HttpServer {
 public:
  /// Transport-independent request handler. Must be thread-safe: it is
  /// invoked concurrently from `connection_threads` workers.
  using Handler = std::function<Response(const Request&)>;

  HttpServer(Handler handler, HttpServerOptions opts);
  /// Convenience: serve a Router (the resident-service configuration).
  HttpServer(Router* router, HttpServerOptions opts);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:<port> and listens; throws rca::Error on failure.
  void start();
  /// Bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Accept loop; blocks until a shutdown is requested, drains in-flight
  /// connections, and returns 0 (graceful). start() must have been called.
  int serve_forever();

  /// Thread-safe shutdown trigger (also usable from a signal handler via
  /// request_shutdown_fd()).
  void request_shutdown();
  /// File descriptor a signal handler may write one byte to — equivalent to
  /// request_shutdown(), but async-signal-safe.
  int request_shutdown_fd() const { return wake_pipe_[1]; }

  /// Installs SIGINT/SIGTERM handlers that trigger this server's graceful
  /// drain. One server per process; later calls override earlier ones.
  static void install_signal_handlers(HttpServer& server);

 private:
  void connection_worker();
  void handle_connection(int fd);
  /// Waits for `fd` to become readable, polling in <=250ms slices so the
  /// wait notices a drain request promptly. False on timeout, drain, or a
  /// poll error.
  bool wait_readable(int fd, int timeout_ms) const;

  Handler handler_;
  HttpServerOptions opts_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted, not yet handled
  bool closed_ = false;      // no more connections will be queued
  std::atomic<bool> draining_{false};
  std::vector<std::thread> workers_;
};

}  // namespace rca::service
