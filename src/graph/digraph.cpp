#include "graph/digraph.hpp"

#include "graph/csr.hpp"
#include "support/error.hpp"

namespace rca::graph {

Digraph::Digraph() = default;

Digraph::Digraph(std::size_t node_count) { resize(node_count); }

Digraph::~Digraph() = default;

Digraph::Digraph(const Digraph& other)
    : out_(other.out_),
      in_(other.in_),
      edge_set_(other.edge_set_),
      edge_count_(other.edge_count_) {}

Digraph& Digraph::operator=(const Digraph& other) {
  if (this != &other) {
    out_ = other.out_;
    in_ = other.in_;
    edge_set_ = other.edge_set_;
    edge_count_ = other.edge_count_;
    invalidate_csr();
  }
  return *this;
}

Digraph::Digraph(Digraph&& other) noexcept
    : out_(std::move(other.out_)),
      in_(std::move(other.in_)),
      edge_set_(std::move(other.edge_set_)),
      edge_count_(other.edge_count_) {
  other.edge_count_ = 0;
  other.invalidate_csr();
}

Digraph& Digraph::operator=(Digraph&& other) noexcept {
  if (this != &other) {
    out_ = std::move(other.out_);
    in_ = std::move(other.in_);
    edge_set_ = std::move(other.edge_set_);
    edge_count_ = other.edge_count_;
    other.edge_count_ = 0;
    other.invalidate_csr();
    invalidate_csr();
  }
  return *this;
}

const DigraphCsr& Digraph::csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  const std::uint64_t now = mut_epoch_.load(std::memory_order_relaxed);
  if (!csr_ || built_epoch_ != now) {
    csr_ = std::make_unique<DigraphCsr>(*this);
    built_epoch_ = now;
    ++csr_builds_;
  }
  return *csr_;
}

std::size_t Digraph::csr_builds() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  return csr_builds_;
}

void Digraph::invalidate_csr() {
  // Epoch bump only: no lock, no deallocation. The stale snapshot (if any)
  // is replaced lazily on the next csr() call. Mutations are already
  // forbidden to race reads, so relaxed ordering suffices — the mutex in
  // csr() orders the epoch load against the rebuild.
  mut_epoch_.fetch_add(1, std::memory_order_relaxed);
}

NodeId Digraph::add_nodes(std::size_t count) {
  const NodeId first = static_cast<NodeId>(out_.size());
  out_.resize(out_.size() + count);
  in_.resize(in_.size() + count);
  invalidate_csr();
  return first;
}

void Digraph::resize(std::size_t node_count) {
  RCA_CHECK_MSG(node_count >= out_.size(), "Digraph::resize cannot shrink");
  out_.resize(node_count);
  in_.resize(node_count);
  invalidate_csr();
}

bool Digraph::add_edge(NodeId u, NodeId v) {
  RCA_CHECK_MSG(u < out_.size() && v < out_.size(), "edge endpoint out of range");
  if (u == v) return false;
  if (!edge_set_.insert(key(u, v)).second) return false;
  out_[u].push_back(v);
  in_[v].push_back(u);
  ++edge_count_;
  invalidate_csr();
  return true;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  if (u >= out_.size() || v >= out_.size()) return false;
  return edge_set_.count(key(u, v)) != 0;
}

Digraph Digraph::reversed() const {
  Digraph r(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : out_[u]) r.add_edge(v, u);
  }
  return r;
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : out_[u]) out.emplace_back(u, v);
  }
  return out;
}

Digraph induced_subgraph(const Digraph& g, const std::vector<NodeId>& nodes,
                         std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> map(g.node_count(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    RCA_CHECK_MSG(nodes[i] < g.node_count(), "subgraph node out of range");
    RCA_CHECK_MSG(map[nodes[i]] == kInvalidNode, "duplicate node in subgraph set");
    map[nodes[i]] = static_cast<NodeId>(i);
  }
  Digraph sub(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (NodeId v : g.out_neighbors(nodes[i])) {
      if (map[v] != kInvalidNode) {
        sub.add_edge(static_cast<NodeId>(i), map[v]);
      }
    }
  }
  if (old_to_new) *old_to_new = std::move(map);
  return sub;
}

Digraph quotient_graph(const Digraph& g, const std::vector<NodeId>& node_class,
                       std::size_t class_count) {
  RCA_CHECK_MSG(node_class.size() == g.node_count(),
                "node_class size mismatch");
  Digraph q(class_count);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    RCA_CHECK_MSG(node_class[u] < class_count, "class id out of range");
    for (NodeId v : g.out_neighbors(u)) {
      if (node_class[u] != node_class[v]) {
        q.add_edge(node_class[u], node_class[v]);  // merged by add_edge dedup
      }
    }
  }
  return q;
}

}  // namespace rca::graph
