#include "graph/degree_dist.hpp"

#include <algorithm>
#include <cmath>

namespace rca::graph {

DegreeDistribution degree_distribution(const Digraph& g,
                                       std::size_t fit_min_degree) {
  DegreeDistribution dist;
  const std::size_t n = g.node_count();
  if (n == 0) return dist;

  std::size_t max_deg = 0;
  double total = 0.0;
  std::vector<std::size_t> degrees(n);
  for (NodeId v = 0; v < n; ++v) {
    degrees[v] = g.degree(v);
    max_deg = std::max(max_deg, degrees[v]);
    total += static_cast<double>(degrees[v]);
  }
  dist.max_degree = max_deg;
  dist.mean_degree = total / static_cast<double>(n);
  dist.count.assign(max_deg + 1, 0);
  for (std::size_t d : degrees) ++dist.count[d];

  // Logarithmic binning with ratio 1.5 starting at degree 1.
  double lo = 1.0;
  while (lo <= static_cast<double>(max_deg)) {
    const double hi = std::max(lo * 1.5, lo + 1.0);
    std::size_t count = 0;
    for (std::size_t d = static_cast<std::size_t>(std::ceil(lo));
         d < static_cast<std::size_t>(std::ceil(hi)) && d <= max_deg; ++d) {
      count += dist.count[d];
    }
    if (count > 0) {
      const double center = std::sqrt(lo * (hi - 1.0 < lo ? lo : hi - 1.0));
      const double width = std::ceil(hi) - std::ceil(lo);
      dist.log_binned.emplace_back(
          center, static_cast<double>(count) / std::max(width, 1.0));
    }
    lo = hi;
  }

  // Least-squares fit on the log-binned points above the cutoff.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (const auto& [deg, freq] : dist.log_binned) {
    if (deg < static_cast<double>(fit_min_degree) || freq <= 0) continue;
    const double x = std::log10(deg);
    const double y = std::log10(freq);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  if (m >= 2) {
    const double denom = static_cast<double>(m) * sxx - sx * sx;
    if (std::abs(denom) > 1e-12) {
      dist.fitted_exponent = -((static_cast<double>(m) * sxy - sx * sy) / denom);
    }
  }

  // Discrete MLE over degrees >= fit_min_degree.
  double log_sum = 0.0;
  std::size_t mle_n = 0;
  const double dmin = static_cast<double>(std::max<std::size_t>(fit_min_degree, 1));
  for (std::size_t d : degrees) {
    if (static_cast<double>(d) >= dmin) {
      log_sum += std::log(static_cast<double>(d) / (dmin - 0.5));
      ++mle_n;
    }
  }
  if (mle_n > 0 && log_sum > 0.0) {
    dist.mle_exponent = 1.0 + static_cast<double>(mle_n) / log_sum;
  }
  return dist;
}

}  // namespace rca::graph
