// Graphviz DOT export for visual inspection of subgraphs and communities.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace rca::graph {

/// Renders `g` as DOT. `labels` (optional, per node) become node labels;
/// `node_class` (optional, per node) selects a fill color per class so
/// community structure is visible, mirroring the paper's colored figures.
std::string to_dot(const Digraph& g,
                   const std::vector<std::string>* labels = nullptr,
                   const std::vector<NodeId>* node_class = nullptr,
                   const std::string& graph_name = "cesm");

}  // namespace rca::graph
