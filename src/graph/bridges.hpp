// Bridge (cut-edge) detection on the undirected view — the structural
// notion Girvan–Newman exploits implicitly: the edges whose removal splits
// a component are exactly where G-N's betweenness peaks first. Exposed for
// diagnostics and for fast pre-splitting of slices.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/ugraph.hpp"

namespace rca::graph {

/// Edge ids (into `g`'s live edge set) whose removal would increase the
/// number of connected components. Iterative Tarjan low-link; O(V + E).
std::vector<EdgeId> find_bridges(const UGraph& g);

}  // namespace rca::graph
