// Compressed-sparse-row adjacency: the working-set layout for the hot graph
// kernels (Brandes betweenness, BFS, power iteration, the Girvan-Newman
// inner loop).
//
// The paper's call graphs are ~100k nodes; at that scale the per-node
// std::vector adjacency of Digraph/UGraph costs one pointer chase (and
// usually one cache miss) per visited node. CSR packs every neighbor list
// into one flat array indexed by an offsets table, so a BFS or a Brandes
// sweep streams memory instead of chasing it. The layout is built once per
// graph snapshot — Digraph caches it lazily and invalidates on mutation,
// UGraph builds it in its constructor (its topology is immutable; edge
// removal only flips a side-table flag).
//
// Neighbor order is preserved exactly from the source adjacency lists, so
// kernels routed through CSR visit nodes in the same order as the historic
// adjacency-list code paths and produce bit-identical floating-point
// results (pinned by tests/betweenness_csr_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rca::graph {

using NodeId = std::uint32_t;

class Digraph;

/// One direction of adjacency in CSR form: neighbors of u are
/// targets[offsets[u] .. offsets[u+1]).
struct Csr {
  std::vector<std::uint32_t> offsets;  // node_count + 1 entries
  std::vector<NodeId> targets;

  std::size_t node_count() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::span<const NodeId> neighbors(NodeId u) const {
    return {targets.data() + offsets[u], targets.data() + offsets[u + 1]};
  }
  std::size_t degree(NodeId u) const { return offsets[u + 1] - offsets[u]; }
};

/// Both directions of a Digraph, flattened. Built by Digraph::csr() (cached)
/// or directly for a snapshot the caller owns.
struct DigraphCsr {
  Csr out;
  Csr in;

  explicit DigraphCsr(const Digraph& g);
};

}  // namespace rca::graph
