#include "graph/scc.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rca::graph {

std::vector<std::vector<NodeId>> SccResult::members() const {
  std::vector<std::vector<NodeId>> out(count);
  for (NodeId v = 0; v < component.size(); ++v) {
    out[component[v]].push_back(v);
  }
  return out;
}

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.node_count();
  SccResult result;
  result.component.assign(n, kInvalidNode);

  // Iterative Tarjan with an explicit frame stack (the corpus graphs are
  // deep enough to overflow a recursive version).
  constexpr NodeId kUnvisited = kInvalidNode;
  std::vector<NodeId> index(n, kUnvisited);
  std::vector<NodeId> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  NodeId next_index = 0;

  struct Frame {
    NodeId v;
    std::size_t child = 0;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const NodeId v = frame.v;
      const auto& out = g.out_neighbors(v);
      if (frame.child < out.size()) {
        const NodeId w = out[frame.child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          // v roots a component: pop it off the node stack.
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = static_cast<NodeId>(result.count);
            if (w == v) break;
          }
          ++result.count;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const NodeId parent = frames.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

Digraph condensation(const Digraph& g, const SccResult& scc) {
  RCA_CHECK_MSG(scc.component.size() == g.node_count(), "SCC size mismatch");
  return quotient_graph(g, scc.component, scc.count);
}

}  // namespace rca::graph
