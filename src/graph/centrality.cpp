#include "graph/centrality.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/csr.hpp"
#include "support/error.hpp"

namespace rca::graph {

namespace {

/// One multiply: y = M x where M is A (kOut: score flows along out-edges
/// toward the node, i.e. x[u] contributes to y[v] for edge v->u) — concretely
/// for kIn we want  y[v] = sum over in-neighbors u of x[u].
///
/// Rows are independent gathers, so the pool shards them freely; each y[v]
/// is one worker's dot product in CSR neighbor order, making pooled output
/// bit-identical to the serial loop.
void apply(const Csr& adj, const std::vector<double>& x,
           std::vector<double>& y, ThreadPool* pool) {
  const std::size_t n = adj.node_count();
  auto row = [&adj, &x, &y](NodeId v) {
    double sum = 0.0;
    for (NodeId u : adj.neighbors(v)) sum += x[u];
    y[v] = sum;
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(n, [&row](std::size_t v) {
      row(static_cast<NodeId>(v));
    });
  } else {
    for (NodeId v = 0; v < n; ++v) row(v);
  }
}

const Csr& gather_adjacency(const Digraph& g, Direction dir) {
  return (dir == Direction::kIn) ? g.csr().in : g.csr().out;
}

double l2_norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

std::vector<double> eigenvector_centrality(const Digraph& g, Direction dir,
                                           const PowerIterationOptions& opts) {
  const std::size_t n = g.node_count();
  if (n == 0) return {};
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> y(n, 0.0);

  const Csr& adj = gather_adjacency(g, dir);
  // Below the threshold the parallel_for dispatch costs more than the whole
  // gather; fall back to the (bit-identical) serial apply.
  ThreadPool* pool = n >= opts.min_pool_nodes ? opts.pool : nullptr;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    apply(adj, x, y, pool);
    if (opts.regularization > 0.0) {
      for (double& v : y) v += opts.regularization;
    }
    const double norm = l2_norm(y);
    if (norm <= 0.0) {
      // No edges in this direction at all: centrality undefined; return the
      // uniform vector rather than NaNs.
      return std::vector<double>(n, 1.0 / std::sqrt(static_cast<double>(n)));
    }
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] /= norm;
      diff += std::abs(y[i] - x[i]);
    }
    x.swap(y);
    if (diff < opts.tolerance * static_cast<double>(n)) break;
  }
  return x;
}

std::vector<double> degree_centrality(const Digraph& g, Direction dir) {
  const std::size_t n = g.node_count();
  std::vector<double> c(n, 0.0);
  if (n <= 1) return c;
  const double scale = 1.0 / static_cast<double>(n - 1);
  for (NodeId v = 0; v < n; ++v) {
    c[v] = scale * static_cast<double>(dir == Direction::kIn ? g.in_degree(v)
                                                             : g.out_degree(v));
  }
  return c;
}

std::vector<double> pagerank(const Digraph& g, Direction dir, double damping,
                             std::size_t max_iterations, double tolerance) {
  const std::size_t n = g.node_count();
  if (n == 0) return {};
  RCA_CHECK_MSG(damping > 0.0 && damping < 1.0, "damping must be in (0,1)");

  // For kIn we walk edges forward (mass flows u -> v), ranking nodes that
  // accumulate influence; for kOut we walk reversed edges.
  const Csr& adj =
      (dir == Direction::kIn) ? g.csr().out : g.csr().in;
  std::vector<double> x(n, 1.0 / static_cast<double>(n)), y(n, 0.0);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const auto nbrs = adj.neighbors(u);
      if (nbrs.empty()) {
        dangling += x[u];
        continue;
      }
      const double share = x[u] / static_cast<double>(nbrs.size());
      for (NodeId v : nbrs) y[v] += share;
    }
    const double base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = base + damping * y[i];
      diff += std::abs(y[i] - x[i]);
    }
    x.swap(y);
    if (diff < tolerance * static_cast<double>(n)) break;
  }
  return x;
}

std::vector<double> katz_centrality(const Digraph& g, Direction dir,
                                    double alpha, double beta,
                                    std::size_t max_iterations,
                                    double tolerance) {
  const std::size_t n = g.node_count();
  std::vector<double> x(n, 0.0), y(n, 0.0);
  if (n == 0) return x;
  const Csr& adj = gather_adjacency(g, dir);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    apply(adj, x, y, nullptr);
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = alpha * y[i] + beta;
      diff += std::abs(y[i] - x[i]);
    }
    x.swap(y);
    if (diff < tolerance * static_cast<double>(std::max<std::size_t>(n, 1))) {
      break;
    }
  }
  const double norm = l2_norm(x);
  if (norm > 0.0) {
    for (double& v : x) v /= norm;
  }
  return x;
}

std::vector<double> closeness_centrality(const Digraph& g, Direction dir) {
  const std::size_t n = g.node_count();
  std::vector<double> c(n, 0.0);
  if (n <= 1) return c;
  const Csr& adj = gather_adjacency(g, dir);
  std::vector<std::uint32_t> dist(n);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    // BFS from s along the chosen direction; distance to s along in-edges
    // equals distance from s in the reversed graph.
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<std::uint32_t>::max());
    dist[s] = 0;
    queue.clear();
    queue.push_back(s);
    std::size_t head = 0;
    double total = 0.0;
    std::size_t reached = 0;
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      for (NodeId v : adj.neighbors(u)) {
        if (dist[v] == std::numeric_limits<std::uint32_t>::max()) {
          dist[v] = dist[u] + 1;
          total += dist[v];
          ++reached;
          queue.push_back(v);
        }
      }
    }
    if (reached > 0 && total > 0.0) {
      // Wasserman-Faust: scale by the reachable fraction.
      const double r = static_cast<double>(reached);
      c[s] = (r / static_cast<double>(n - 1)) * (r / total);
    }
  }
  return c;
}

std::vector<NodeId> top_k(const std::vector<double>& scores, std::size_t k) {
  std::vector<NodeId> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace rca::graph
