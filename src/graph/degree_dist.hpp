// Degree-distribution statistics (Figures 4, 9, 10): histogram, log-binned
// series, and a power-law exponent fit.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace rca::graph {

struct DegreeDistribution {
  /// count[d] = number of nodes with total (in+out) degree d.
  std::vector<std::size_t> count;
  /// Logarithmically binned (degree, frequency) points for plotting; degree
  /// is the geometric bin center, frequency the bin-width-normalized count.
  std::vector<std::pair<double, double>> log_binned;
  /// Least-squares slope of log10(freq) vs log10(degree) over bins with
  /// degree >= fit_min_degree; the power-law exponent estimate is -slope.
  double fitted_exponent = 0.0;
  /// Discrete maximum-likelihood (Clauset-style) exponent:
  /// alpha = 1 + n / sum(ln(d_i / (d_min - 0.5))).
  double mle_exponent = 0.0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
};

/// Computes the total-degree distribution. `fit_min_degree` bounds the
/// power-law fit region (degree-1 nodes dominate and flatten the fit).
DegreeDistribution degree_distribution(const Digraph& g,
                                       std::size_t fit_min_degree = 2);

}  // namespace rca::graph
