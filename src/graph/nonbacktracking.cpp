#include "graph/nonbacktracking.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

namespace rca::graph {

NonBacktrackingResult nonbacktracking_centrality(
    const Digraph& g, Direction dir, const PowerIterationOptions& opts) {
  NonBacktrackingResult result;
  const std::size_t n = g.node_count();
  result.centrality.assign(n, 0.0);
  if (n == 0) return result;

  // Work on the orientation in which we walk forward; kIn reverses edges.
  const Digraph reversed = (dir == Direction::kIn) ? g.reversed() : Digraph();
  const Digraph& fg = (dir == Direction::kIn) ? reversed : g;

  // Enumerate directed edges (u -> v) with dense ids.
  struct DirEdge {
    NodeId u, v;
  };
  std::vector<DirEdge> edges;
  std::vector<std::uint32_t> first_out(n + 1, 0);  // edges grouped by source
  for (NodeId u = 0; u < n; ++u) {
    first_out[u] = static_cast<std::uint32_t>(edges.size());
    for (NodeId v : fg.out_neighbors(u)) edges.push_back(DirEdge{u, v});
  }
  first_out[n] = static_cast<std::uint32_t>(edges.size());
  const std::size_t m = edges.size();
  result.hashimoto_size = m;
  if (m == 0) return result;

  // Power iteration: y[e=(u->v)] = sum over successors (v->w), w != u of x.
  std::vector<double> x(m, 1.0 / std::sqrt(static_cast<double>(m)));
  std::vector<double> y(m, 0.0);
  std::size_t iterations = 0;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    ++iterations;
    for (std::size_t e = 0; e < m; ++e) {
      const NodeId u = edges[e].u;
      const NodeId v = edges[e].v;
      double sum = 0.0;
      for (std::uint32_t f = first_out[v]; f < first_out[v + 1]; ++f) {
        if (edges[f].v != u) sum += x[f];  // non-backtracking constraint
      }
      y[e] = sum + opts.regularization;
    }
    const double norm = std::sqrt(
        std::inner_product(y.begin(), y.end(), y.begin(), 0.0));
    if (norm <= 0.0) break;
    double diff = 0.0;
    for (std::size_t e = 0; e < m; ++e) {
      y[e] /= norm;
      diff += std::abs(y[e] - x[e]);
    }
    x.swap(y);
    if (diff < opts.tolerance * static_cast<double>(m)) break;
  }
  result.iterations = iterations;

  // c_i = sum over edges leaving i (in the walking orientation) of v_(i->q).
  for (std::size_t e = 0; e < m; ++e) {
    result.centrality[edges[e].u] += x[e];
  }
  // Normalize like the eigenvector centrality for rank comparison.
  double norm = 0.0;
  for (double c : result.centrality) norm += c * c;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& c : result.centrality) c /= norm;
  }
  return result;
}

}  // namespace rca::graph
