#include "graph/betweenness.hpp"

#include <algorithm>

#include "graph/csr.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace rca::graph {

namespace {

/// Scratch buffers for one Brandes source sweep, reused across sources.
struct BrandesScratch {
  std::vector<std::int32_t> dist;
  std::vector<double> sigma;   // shortest-path counts
  std::vector<double> delta;   // accumulated dependencies
  std::vector<NodeId> order;   // BFS visitation order (stack substitute)

  explicit BrandesScratch(std::size_t n)
      : dist(n), sigma(n), delta(n) {
    order.reserve(n);
  }

  void reset() {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
  }
};

void brandes_edge_source(const UGraph& g, const std::uint8_t* removed,
                         NodeId s, BrandesScratch& scratch,
                         std::vector<double>& acc) {
  scratch.reset();
  auto& dist = scratch.dist;
  auto& sigma = scratch.sigma;
  auto& delta = scratch.delta;
  auto& order = scratch.order;

  dist[s] = 0;
  sigma[s] = 1.0;
  std::size_t head = 0;
  order.push_back(s);
  while (head < order.size()) {
    NodeId u = order[head++];
    for (const auto& [v, e] : g.incident(u)) {
      if (removed[e]) continue;
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        order.push_back(v);
      }
      if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
    }
  }
  // Backward pass in reverse BFS order: dependency of s on each edge.
  for (std::size_t i = order.size(); i-- > 1;) {
    NodeId w = order[i];
    const double coeff = (1.0 + delta[w]) / sigma[w];
    for (const auto& [v, e] : g.incident(w)) {
      if (removed[e]) continue;
      if (dist[v] == dist[w] - 1) {  // v is a predecessor of w
        const double c = sigma[v] * coeff;
        acc[e] += c;
        delta[v] += c;
      }
    }
  }
}

/// Draw k distinct pivots from `pool_set` via a partial Fisher–Yates shuffle
/// seeded from SplitMix64, then sort ascending so the sweep order (and hence
/// the fp accumulation order) is independent of the draw order.
std::vector<NodeId> sample_pivots(const std::vector<NodeId>& pool_set,
                                  std::size_t k, std::uint64_t seed) {
  std::vector<NodeId> items(pool_set);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next() % (items.size() - i));
    std::swap(items[i], items[j]);
  }
  items.resize(k);
  std::sort(items.begin(), items.end());
  return items;
}

/// Shard the source sweeps across the pool with per-shard accumulators, then
/// merge in shard-index order: for a fixed worker count the additions happen
/// in a fixed order, so the result is reproducible run to run.
template <typename SweepFn>
void sharded_accumulate(ThreadPool* pool, std::size_t source_count,
                        std::size_t value_count, SweepFn&& sweep,
                        std::vector<double>& result) {
  const std::size_t shards = pool->size();
  const std::size_t per = (source_count + shards - 1) / shards;
  std::vector<std::vector<double>> locals(shards);
  pool->parallel_for(shards, [&](std::size_t shard) {
    std::vector<double> local(value_count, 0.0);
    const std::size_t begin = shard * per;
    const std::size_t end = std::min(begin + per, source_count);
    sweep(begin, end, local);
    locals[shard] = std::move(local);
  });
  for (const auto& local : locals) {
    for (std::size_t i = 0; i < local.size(); ++i) result[i] += local[i];
  }
}

}  // namespace

std::vector<double> edge_betweenness(const UGraph& g,
                                     const BetweennessOptions& opts) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> all;
  const std::vector<NodeId>* sources = opts.sources;
  if (!sources) {
    all.resize(n);
    for (NodeId i = 0; i < n; ++i) all[i] = i;
    sources = &all;
  }
  std::vector<double> result(g.total_edges(), 0.0);
  if (n == 0 || sources->empty()) return result;

  const std::size_t total = sources->size();
  std::vector<NodeId> pivots;
  if (opts.samples > 0 && opts.samples < total) {
    pivots = sample_pivots(*sources, opts.samples, opts.seed);
    sources = &pivots;
    obs::count("graph.betweenness.sampled_calls");
  }
  obs::count("graph.betweenness.edge_calls");
  obs::count("graph.betweenness.sweeps", sources->size());
  obs::observe("graph.betweenness.sources",
               static_cast<double>(sources->size()));

  const std::uint8_t* removed = g.removed_mask().data();
  if (opts.pool && opts.pool->size() > 1) {
    sharded_accumulate(
        opts.pool, sources->size(), g.total_edges(),
        [&](std::size_t begin, std::size_t end, std::vector<double>& local) {
          BrandesScratch scratch(n);
          for (std::size_t i = begin; i < end; ++i) {
            brandes_edge_source(g, removed, (*sources)[i], scratch, local);
          }
        },
        result);
  } else {
    BrandesScratch scratch(n);
    for (NodeId s : *sources) {
      brandes_edge_source(g, removed, s, scratch, result);
    }
  }
  // Each unordered pair {s, t} is counted from both endpoints when all
  // sources run; halve to match the undirected single-count convention. A
  // sampled run additionally scales by total/k to stay an unbiased estimate.
  const bool sampled = sources == &pivots;
  const double scale =
      sampled ? 0.5 * (static_cast<double>(total) /
                       static_cast<double>(sources->size()))
              : 0.5;
  for (double& v : result) v *= scale;
  return result;
}

std::vector<double> edge_betweenness(const UGraph& g, ThreadPool* pool,
                                     const std::vector<NodeId>* sources) {
  BetweennessOptions opts;
  opts.pool = pool;
  opts.sources = sources;
  return edge_betweenness(g, opts);
}

std::vector<double> node_betweenness(const Digraph& g,
                                     const BetweennessOptions& opts) {
  const std::size_t n = g.node_count();
  std::vector<double> result(n, 0.0);
  if (n == 0) return result;
  const DigraphCsr& csr = g.csr();

  std::vector<NodeId> all;
  const std::vector<NodeId>* sources = opts.sources;
  if (!sources) {
    all.resize(n);
    for (NodeId i = 0; i < n; ++i) all[i] = i;
    sources = &all;
  }
  if (sources->empty()) return result;
  const std::size_t total = sources->size();
  std::vector<NodeId> pivots;
  if (opts.samples > 0 && opts.samples < total) {
    pivots = sample_pivots(*sources, opts.samples, opts.seed);
    sources = &pivots;
    obs::count("graph.betweenness.sampled_calls");
  }
  obs::count("graph.betweenness.node_calls");
  obs::count("graph.betweenness.sweeps", sources->size());

  auto run_source = [&csr, n](NodeId s, BrandesScratch& scratch,
                              std::vector<double>& acc) {
    scratch.reset();
    auto& dist = scratch.dist;
    auto& sigma = scratch.sigma;
    auto& delta = scratch.delta;
    auto& order = scratch.order;
    dist[s] = 0;
    sigma[s] = 1.0;
    std::size_t head = 0;
    order.push_back(s);
    while (head < order.size()) {
      NodeId u = order[head++];
      for (NodeId v : csr.out.neighbors(u)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          order.push_back(v);
        }
        if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
      }
    }
    for (std::size_t i = order.size(); i-- > 1;) {
      NodeId w = order[i];
      const double coeff = (1.0 + delta[w]) / sigma[w];
      for (NodeId v : csr.in.neighbors(w)) {
        if (dist[v] >= 0 && dist[v] == dist[w] - 1) {
          delta[v] += sigma[v] * coeff;
        }
      }
      if (w != s) acc[w] += delta[w];
    }
  };

  if (opts.pool && opts.pool->size() > 1) {
    sharded_accumulate(
        opts.pool, sources->size(), n,
        [&](std::size_t begin, std::size_t end, std::vector<double>& local) {
          BrandesScratch scratch(n);
          for (std::size_t i = begin; i < end; ++i) {
            run_source((*sources)[i], scratch, local);
          }
        },
        result);
  } else {
    BrandesScratch scratch(n);
    for (NodeId s : *sources) run_source(s, scratch, result);
  }
  if (sources == &pivots) {
    const double scale = static_cast<double>(total) /
                         static_cast<double>(sources->size());
    for (double& v : result) v *= scale;
  }
  return result;
}

std::vector<double> node_betweenness(const Digraph& g, ThreadPool* pool) {
  BetweennessOptions opts;
  opts.pool = pool;
  return node_betweenness(g, opts);
}

}  // namespace rca::graph
