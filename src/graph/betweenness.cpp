#include "graph/betweenness.hpp"

#include <algorithm>
#include <mutex>

#include "obs/obs.hpp"

namespace rca::graph {

namespace {

/// Scratch buffers for one Brandes source sweep, reused across sources.
struct BrandesScratch {
  std::vector<std::int32_t> dist;
  std::vector<double> sigma;   // shortest-path counts
  std::vector<double> delta;   // accumulated dependencies
  std::vector<NodeId> order;   // BFS visitation order (stack substitute)

  explicit BrandesScratch(std::size_t n)
      : dist(n), sigma(n), delta(n) {
    order.reserve(n);
  }

  void reset(std::size_t n) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    (void)n;
  }
};

void brandes_edge_source(const UGraph& g, NodeId s, BrandesScratch& scratch,
                         std::vector<double>& acc) {
  scratch.reset(g.node_count());
  auto& dist = scratch.dist;
  auto& sigma = scratch.sigma;
  auto& delta = scratch.delta;
  auto& order = scratch.order;

  dist[s] = 0;
  sigma[s] = 1.0;
  std::size_t head = 0;
  order.push_back(s);
  while (head < order.size()) {
    NodeId u = order[head++];
    for (const auto& [v, e] : g.incident(u)) {
      if (g.edge(e).removed) continue;
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        order.push_back(v);
      }
      if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
    }
  }
  // Backward pass in reverse BFS order: dependency of s on each edge.
  for (std::size_t i = order.size(); i-- > 1;) {
    NodeId w = order[i];
    const double coeff = (1.0 + delta[w]) / sigma[w];
    for (const auto& [v, e] : g.incident(w)) {
      if (g.edge(e).removed) continue;
      if (dist[v] == dist[w] - 1) {  // v is a predecessor of w
        const double c = sigma[v] * coeff;
        acc[e] += c;
        delta[v] += c;
      }
    }
  }
}

}  // namespace

std::vector<double> edge_betweenness(const UGraph& g, ThreadPool* pool,
                                     const std::vector<NodeId>* sources) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> all;
  if (!sources) {
    all.resize(n);
    for (NodeId i = 0; i < n; ++i) all[i] = i;
    sources = &all;
  }
  std::vector<double> result(g.total_edges(), 0.0);
  if (n == 0 || sources->empty()) return result;
  obs::count("graph.betweenness.edge_calls");
  obs::count("graph.betweenness.sweeps", sources->size());
  obs::observe("graph.betweenness.sources",
               static_cast<double>(sources->size()));

  if (pool && pool->size() > 1) {
    std::mutex merge_mutex;
    const std::size_t shards = pool->size();
    const std::size_t per = (sources->size() + shards - 1) / shards;
    pool->parallel_for(shards, [&](std::size_t shard) {
      BrandesScratch scratch(n);
      std::vector<double> local(g.total_edges(), 0.0);
      const std::size_t begin = shard * per;
      const std::size_t end = std::min(begin + per, sources->size());
      for (std::size_t i = begin; i < end; ++i) {
        brandes_edge_source(g, (*sources)[i], scratch, local);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (std::size_t e = 0; e < local.size(); ++e) result[e] += local[e];
    });
  } else {
    BrandesScratch scratch(n);
    for (NodeId s : *sources) brandes_edge_source(g, s, scratch, result);
  }
  // Each unordered pair {s, t} is counted from both endpoints when all
  // sources run; halve to match the undirected single-count convention.
  for (double& v : result) v *= 0.5;
  return result;
}

std::vector<double> node_betweenness(const Digraph& g, ThreadPool* pool) {
  const std::size_t n = g.node_count();
  std::vector<double> result(n, 0.0);
  if (n == 0) return result;
  obs::count("graph.betweenness.node_calls");
  obs::count("graph.betweenness.sweeps", n);

  auto run_source = [&g, n](NodeId s, BrandesScratch& scratch,
                            std::vector<double>& acc) {
    scratch.reset(n);
    auto& dist = scratch.dist;
    auto& sigma = scratch.sigma;
    auto& delta = scratch.delta;
    auto& order = scratch.order;
    dist[s] = 0;
    sigma[s] = 1.0;
    std::size_t head = 0;
    order.push_back(s);
    while (head < order.size()) {
      NodeId u = order[head++];
      for (NodeId v : g.out_neighbors(u)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          order.push_back(v);
        }
        if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
      }
    }
    for (std::size_t i = order.size(); i-- > 1;) {
      NodeId w = order[i];
      const double coeff = (1.0 + delta[w]) / sigma[w];
      for (NodeId v : g.in_neighbors(w)) {
        if (dist[v] >= 0 && dist[v] == dist[w] - 1) {
          delta[v] += sigma[v] * coeff;
        }
      }
      if (w != s) acc[w] += delta[w];
    }
  };

  if (pool && pool->size() > 1) {
    std::mutex merge_mutex;
    const std::size_t shards = pool->size();
    const std::size_t per = (n + shards - 1) / shards;
    pool->parallel_for(shards, [&](std::size_t shard) {
      BrandesScratch scratch(n);
      std::vector<double> local(n, 0.0);
      const std::size_t begin = shard * per;
      const std::size_t end = std::min(begin + per, n);
      for (std::size_t s = begin; s < end; ++s) {
        run_source(static_cast<NodeId>(s), scratch, local);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (std::size_t i = 0; i < n; ++i) result[i] += local[i];
    });
  } else {
    BrandesScratch scratch(n);
    for (NodeId s = 0; s < n; ++s) run_source(s, scratch, result);
  }
  return result;
}

}  // namespace rca::graph
