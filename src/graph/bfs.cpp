#include "graph/bfs.hpp"

#include <algorithm>
#include <deque>
#include <span>

#include "graph/csr.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace rca::graph {

namespace {

template <typename NeighborFn>
std::vector<std::uint32_t> bfs_impl(std::size_t n,
                                    const std::vector<NodeId>& starts,
                                    NeighborFn&& neighbors) {
  std::vector<std::uint32_t> dist(n, kUnreached);
  std::deque<NodeId> queue;
  for (NodeId s : starts) {
    RCA_CHECK_MSG(s < n, "BFS start node out of range");
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  if (obs::global().enabled()) {
    // Reconstruct per-level frontier sizes from the distance array; only
    // paid for when the metrics sink is live.
    std::vector<std::uint32_t> level_counts;
    std::uint32_t reached = 0;
    for (std::uint32_t d : dist) {
      if (d == kUnreached) continue;
      ++reached;
      if (level_counts.size() <= d) level_counts.resize(d + 1, 0);
      ++level_counts[d];
    }
    obs::count("graph.bfs.runs");
    obs::observe("graph.bfs.reached_nodes", static_cast<double>(reached));
    for (std::uint32_t frontier : level_counts) {
      obs::observe("graph.bfs.frontier_size", static_cast<double>(frontier));
    }
  }
  return dist;
}

std::vector<NodeId> reached_nodes(const std::vector<std::uint32_t>& dist) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < dist.size(); ++v) {
    if (dist[v] != kUnreached) out.push_back(v);
  }
  return out;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Digraph& g,
                                         const std::vector<NodeId>& sources) {
  // Stream the cached CSR snapshot rather than the per-node vectors: one
  // flat array scan per frontier instead of a pointer chase per node.
  const Csr& out = g.csr().out;
  return bfs_impl(g.node_count(), sources,
                  [&out](NodeId u) { return out.neighbors(u); });
}

std::vector<std::uint32_t> bfs_distances_to(const Digraph& g,
                                            const std::vector<NodeId>& targets) {
  const Csr& in = g.csr().in;
  return bfs_impl(g.node_count(), targets,
                  [&in](NodeId u) { return in.neighbors(u); });
}

std::vector<NodeId> ancestors_of(const Digraph& g,
                                 const std::vector<NodeId>& targets) {
  return reached_nodes(bfs_distances_to(g, targets));
}

std::vector<NodeId> descendants_of(const Digraph& g,
                                   const std::vector<NodeId>& sources) {
  return reached_nodes(bfs_distances(g, sources));
}

bool reaches_any(const Digraph& g, NodeId from, const std::vector<NodeId>& to) {
  std::vector<bool> is_target(g.node_count(), false);
  for (NodeId t : to) is_target[t] = true;
  auto dist = bfs_distances(g, {from});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (is_target[v] && dist[v] != kUnreached) return true;
  }
  return false;
}

std::vector<NodeId> weakly_connected_components(const Digraph& g,
                                                std::size_t* component_count) {
  const std::size_t n = g.node_count();
  const DigraphCsr& csr = g.csr();
  std::vector<NodeId> comp(n, kInvalidNode);
  NodeId next_id = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidNode) continue;
    comp[s] = next_id;
    queue.push_back(s);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      auto visit = [&](NodeId v) {
        if (comp[v] == kInvalidNode) {
          comp[v] = next_id;
          queue.push_back(v);
        }
      };
      for (NodeId v : csr.out.neighbors(u)) visit(v);
      for (NodeId v : csr.in.neighbors(u)) visit(v);
    }
    ++next_id;
  }
  if (component_count) *component_count = next_id;
  return comp;
}

}  // namespace rca::graph
