// Compact directed-graph container used for the CESM variable graph.
//
// Nodes are dense 32-bit ids; all labels/metadata live in the Metagraph layer
// (src/meta), keeping this container cache-friendly (Core Guidelines Per.16:
// compact data structures). Both out- and in-adjacency are stored so the
// backward slicer (reverse BFS) and in-centrality need no transposition pass.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace rca::graph {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct DigraphCsr;

class Digraph {
 public:
  // Default ctor and dtor are out of line: DigraphCsr is incomplete here and
  // the unique_ptr deleter must not be instantiated in this header.
  Digraph();
  explicit Digraph(std::size_t node_count);
  ~Digraph();

  // Copies/moves carry the adjacency but not the cached CSR snapshot (it is
  // rebuilt on first use; the mutex makes the class non-trivially copyable).
  Digraph(const Digraph& other);
  Digraph& operator=(const Digraph& other);
  Digraph(Digraph&& other) noexcept;
  Digraph& operator=(Digraph&& other) noexcept;

  /// Append `count` isolated nodes; returns the id of the first new node.
  NodeId add_nodes(std::size_t count = 1);

  void resize(std::size_t node_count);

  /// Insert edge u -> v. Parallel edges are collapsed; self-loops are
  /// rejected (a variable assigned from itself adds no dependency
  /// information). Returns true if the edge was new.
  bool add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  const std::vector<NodeId>& out_neighbors(NodeId u) const { return out_[u]; }
  const std::vector<NodeId>& in_neighbors(NodeId u) const { return in_[u]; }

  std::size_t out_degree(NodeId u) const { return out_[u].size(); }
  std::size_t in_degree(NodeId u) const { return in_[u].size(); }
  /// Total degree in the undirected (weakly connected) view; a node with
  /// both u->v and v->u counts that neighbor twice here, matching the
  /// digraph's edge multiset.
  std::size_t degree(NodeId u) const { return out_[u].size() + in_[u].size(); }

  /// Graph with every edge reversed (used for in-centralities).
  Digraph reversed() const;

  /// All edges as (u, v) pairs, ordered by u then insertion order.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// CSR snapshot of both adjacency directions, built lazily on first use
  /// and cached until the next mutation (add_nodes/resize/add_edge). Safe to
  /// call from concurrent readers; the returned reference stays valid as
  /// long as the graph is not mutated — the same contract every accessor on
  /// this class already has.
  ///
  /// Invalidation is epoch-granular: a mutation bumps a relaxed atomic
  /// counter (no lock, no deallocation) and the snapshot is rebuilt only
  /// when csr() observes a stale epoch. Bulk construction — the transaction
  /// layer replaying tens of thousands of add_edge calls — therefore pays
  /// one increment per mutation instead of a mutex acquire + delete, and
  /// rejected duplicates/self-loops never invalidate at all.
  const DigraphCsr& csr() const;

  /// CSR snapshots materialized so far (tests pin invalidation granularity:
  /// N reads between mutations must cost one build, not N).
  std::size_t csr_builds() const;

 private:
  static std::uint64_t key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void invalidate_csr();

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::unordered_set<std::uint64_t> edge_set_;
  std::size_t edge_count_ = 0;

  std::atomic<std::uint64_t> mut_epoch_{0};
  mutable std::mutex csr_mutex_;
  mutable std::unique_ptr<DigraphCsr> csr_;
  mutable std::uint64_t built_epoch_ = 0;  // guarded by csr_mutex_
  mutable std::size_t csr_builds_ = 0;     // guarded by csr_mutex_
};

/// Induced subgraph on `nodes` (order defines new ids). Returns the new graph
/// and fills `old_to_new` (size = g.node_count(), kInvalidNode when absent).
Digraph induced_subgraph(const Digraph& g, const std::vector<NodeId>& nodes,
                         std::vector<NodeId>* old_to_new = nullptr);

/// Quotient graph (graph minor) under the equivalence classes in
/// `node_class` (size = g.node_count(); class ids must be dense 0..k-1).
/// Self-loops produced by intra-class edges are dropped; parallel inter-class
/// edges are merged. This is the paper's §6.5 module-collapse operation.
Digraph quotient_graph(const Digraph& g, const std::vector<NodeId>& node_class,
                       std::size_t class_count);

}  // namespace rca::graph
