// Compact directed-graph container used for the CESM variable graph.
//
// Nodes are dense 32-bit ids; all labels/metadata live in the Metagraph layer
// (src/meta), keeping this container cache-friendly (Core Guidelines Per.16:
// compact data structures). Both out- and in-adjacency are stored so the
// backward slicer (reverse BFS) and in-centrality need no transposition pass.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace rca::graph {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count) { resize(node_count); }

  /// Append `count` isolated nodes; returns the id of the first new node.
  NodeId add_nodes(std::size_t count = 1);

  void resize(std::size_t node_count);

  /// Insert edge u -> v. Parallel edges are collapsed; self-loops are
  /// rejected (a variable assigned from itself adds no dependency
  /// information). Returns true if the edge was new.
  bool add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  const std::vector<NodeId>& out_neighbors(NodeId u) const { return out_[u]; }
  const std::vector<NodeId>& in_neighbors(NodeId u) const { return in_[u]; }

  std::size_t out_degree(NodeId u) const { return out_[u].size(); }
  std::size_t in_degree(NodeId u) const { return in_[u].size(); }
  /// Total degree in the undirected (weakly connected) view; a node with
  /// both u->v and v->u counts that neighbor twice here, matching the
  /// digraph's edge multiset.
  std::size_t degree(NodeId u) const { return out_[u].size() + in_[u].size(); }

  /// Graph with every edge reversed (used for in-centralities).
  Digraph reversed() const;

  /// All edges as (u, v) pairs, ordered by u then insertion order.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  static std::uint64_t key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::unordered_set<std::uint64_t> edge_set_;
  std::size_t edge_count_ = 0;
};

/// Induced subgraph on `nodes` (order defines new ids). Returns the new graph
/// and fills `old_to_new` (size = g.node_count(), kInvalidNode when absent).
Digraph induced_subgraph(const Digraph& g, const std::vector<NodeId>& nodes,
                         std::vector<NodeId>* old_to_new = nullptr);

/// Quotient graph (graph minor) under the equivalence classes in
/// `node_class` (size = g.node_count(); class ids must be dense 0..k-1).
/// Self-loops produced by intra-class edges are dropped; parallel inter-class
/// edges are merged. This is the paper's §6.5 module-collapse operation.
Digraph quotient_graph(const Digraph& g, const std::vector<NodeId>& node_class,
                       std::size_t class_count);

}  // namespace rca::graph
