// Brandes (2001) betweenness centrality for unweighted graphs.
//
// Girvan–Newman needs *edge* betweenness on the undirected view; the source
// loop is embarrassingly parallel and is sharded across a thread pool with
// per-shard accumulators (no atomics on the hot path).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/ugraph.hpp"
#include "support/thread_pool.hpp"

namespace rca::graph {

/// Edge betweenness over live edges of `g`; removed edges get 0. When
/// `sources` is non-null only BFS trees rooted at those nodes contribute
/// (used for incremental recomputation inside one component). Undirected
/// pair dependencies are halved as in NetworkX so values match the
/// single-count convention.
std::vector<double> edge_betweenness(
    const UGraph& g, ThreadPool* pool = nullptr,
    const std::vector<NodeId>* sources = nullptr);

/// Node betweenness on a digraph (directed shortest paths), endpoints
/// excluded. Provided for analysis tooling and ablations.
std::vector<double> node_betweenness(const Digraph& g,
                                     ThreadPool* pool = nullptr);

}  // namespace rca::graph
