// Brandes (2001) betweenness centrality for unweighted graphs.
//
// Girvan–Newman needs *edge* betweenness on the undirected view; the source
// loop is embarrassingly parallel and is sharded across a thread pool with
// per-shard accumulators (no atomics on the hot path). Shard results are
// merged in shard-index order, so a given worker count always produces the
// same bits.
//
// Exact betweenness runs one Brandes sweep per node — O(V·E) — which is the
// kernel the paper's §5.2 clustering spends its time in. At CESM scale that
// is infeasible per Girvan–Newman step, so `BetweennessOptions::samples`
// enables pivot sampling (Brandes & Pich 2007): sweep only k seeded-random
// sources and scale contributions by |sources|/k. Rank order of the heavy
// edges is preserved (pinned by a Spearman test against exact values) at a
// fraction of the cost.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/ugraph.hpp"
#include "support/thread_pool.hpp"

namespace rca::graph {

struct BetweennessOptions {
  ThreadPool* pool = nullptr;
  /// 0 = exact (every source). Otherwise sweep `samples` pivot sources drawn
  /// without replacement from the source set and scale up; values are then
  /// unbiased estimates of the exact ones.
  std::size_t samples = 0;
  /// Pivot-selection seed; a fixed seed gives a fixed pivot set and (for a
  /// fixed worker count) bit-identical results.
  std::uint64_t seed = 2019;
  /// When non-null, only BFS trees rooted at these nodes contribute (used
  /// for incremental recomputation inside one component). Sampling draws
  /// pivots from this set.
  const std::vector<NodeId>* sources = nullptr;
};

/// Edge betweenness over live edges of `g`; removed edges get 0. Undirected
/// pair dependencies are halved as in NetworkX so values match the
/// single-count convention.
std::vector<double> edge_betweenness(const UGraph& g,
                                     const BetweennessOptions& opts);

/// Back-compat shim for the pre-sampling call sites.
std::vector<double> edge_betweenness(
    const UGraph& g, ThreadPool* pool = nullptr,
    const std::vector<NodeId>* sources = nullptr);

/// Node betweenness on a digraph (directed shortest paths), endpoints
/// excluded. Provided for analysis tooling and ablations.
std::vector<double> node_betweenness(const Digraph& g,
                                     const BetweennessOptions& opts);
std::vector<double> node_betweenness(const Digraph& g,
                                     ThreadPool* pool = nullptr);

}  // namespace rca::graph
