#include "graph/csr.hpp"

#include "graph/digraph.hpp"

namespace rca::graph {

namespace {

template <typename NeighborsOf>
Csr flatten(std::size_t n, const NeighborsOf& neighbors_of) {
  Csr csr;
  csr.offsets.resize(n + 1, 0);
  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    csr.offsets[u] = static_cast<std::uint32_t>(total);
    total += neighbors_of(u).size();
  }
  csr.offsets[n] = static_cast<std::uint32_t>(total);
  csr.targets.reserve(total);
  for (NodeId u = 0; u < n; ++u) {
    const auto& nbrs = neighbors_of(u);
    csr.targets.insert(csr.targets.end(), nbrs.begin(), nbrs.end());
  }
  return csr;
}

}  // namespace

DigraphCsr::DigraphCsr(const Digraph& g)
    : out(flatten(g.node_count(),
                  [&g](NodeId u) -> const std::vector<NodeId>& {
                    return g.out_neighbors(u);
                  })),
      in(flatten(g.node_count(), [&g](NodeId u) -> const std::vector<NodeId>& {
        return g.in_neighbors(u);
      })) {}

}  // namespace rca::graph
