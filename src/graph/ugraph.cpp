#include "graph/ugraph.hpp"

#include <deque>

#include "support/error.hpp"

namespace rca::graph {

UGraph::UGraph(const Digraph& g) {
  adj_.resize(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      // Deduplicate the undirected pair: keep the (min, max) orientation once.
      if (u < v || !g.has_edge(v, u)) {
        EdgeId id = static_cast<EdgeId>(edges_.size());
        edges_.push_back(Edge{u, v, false});
        adj_[u].emplace_back(v, id);
        adj_[v].emplace_back(u, id);
      }
    }
  }
  live_edges_ = edges_.size();
}

void UGraph::remove_edge(EdgeId e) {
  RCA_CHECK_MSG(e < edges_.size(), "edge id out of range");
  if (!edges_[e].removed) {
    edges_[e].removed = true;
    --live_edges_;
  }
}

std::size_t UGraph::degree(NodeId u) const {
  std::size_t d = 0;
  for (const auto& [v, e] : adj_[u]) {
    (void)v;
    if (!edges_[e].removed) ++d;
  }
  return d;
}

std::vector<NodeId> UGraph::components(std::size_t* count) const {
  std::vector<NodeId> comp(adj_.size(), kInvalidNode);
  NodeId next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < adj_.size(); ++s) {
    if (comp[s] != kInvalidNode) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (const auto& [v, e] : adj_[u]) {
        if (!edges_[e].removed && comp[v] == kInvalidNode) {
          comp[v] = next;
          queue.push_back(v);
        }
      }
    }
    ++next;
  }
  if (count) *count = next;
  return comp;
}

}  // namespace rca::graph
