#include "graph/ugraph.hpp"

#include "support/error.hpp"

namespace rca::graph {

UGraph::UGraph(const Digraph& g) {
  const std::size_t n = g.node_count();
  // Pass 1: enumerate undirected edges (deduplicating antiparallel pairs)
  // and count per-node incident arcs.
  std::vector<std::uint32_t> counts(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      // Deduplicate the undirected pair: keep the (min, max) orientation once.
      if (u < v || !g.has_edge(v, u)) {
        edges_.push_back(Edge{u, v});
        ++counts[u];
        ++counts[v];
      }
    }
  }
  removed_.assign(edges_.size(), 0);
  live_edges_ = edges_.size();

  // Pass 2: prefix-sum the counts into CSR offsets and scatter the arcs.
  // Scatter order follows edge id, which itself follows the digraph's
  // adjacency order — the same per-node neighbor order the historic
  // vector-of-vectors layout produced.
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + counts[u];
  }
  arcs_.resize(edges_.size() * 2);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const Edge& ed = edges_[e];
    arcs_[cursor[ed.u]++] = Arc{ed.v, e};
    arcs_[cursor[ed.v]++] = Arc{ed.u, e};
  }
}

void UGraph::remove_edge(EdgeId e) {
  RCA_CHECK_MSG(e < edges_.size(), "edge id out of range");
  if (!removed_[e]) {
    removed_[e] = 1;
    --live_edges_;
  }
}

std::size_t UGraph::degree(NodeId u) const {
  std::size_t d = 0;
  for (const Arc& arc : incident(u)) {
    if (!removed_[arc.e]) ++d;
  }
  return d;
}

std::vector<NodeId> UGraph::components(std::size_t* count) const {
  const std::size_t n = node_count();
  std::vector<NodeId> comp(n, kInvalidNode);
  NodeId next = 0;
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidNode) continue;
    comp[s] = next;
    queue.clear();
    queue.push_back(s);
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      for (const Arc& arc : incident(u)) {
        if (!removed_[arc.e] && comp[arc.v] == kInvalidNode) {
          comp[arc.v] = next;
          queue.push_back(arc.v);
        }
      }
    }
    ++next;
  }
  if (count) *count = next;
  return comp;
}

}  // namespace rca::graph
