// Girvan–Newman community detection (Girvan & Newman 2002, Newman & Girvan
// 2004) as the paper applies it (§5.2): one "iteration" removes the
// highest-edge-betweenness edge repeatedly until the number of connected
// components increases. Betweenness is recomputed after each removal, but
// only within the component that lost the edge — removals elsewhere cannot
// change other components' shortest paths.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/ugraph.hpp"
#include "support/thread_pool.hpp"

namespace rca::graph {

struct GirvanNewmanOptions {
  /// Number of split iterations (paper default: 1, "to avoid clustering the
  /// subgraphs far beyond the natural structure present in the code").
  int iterations = 1;
  /// Communities smaller than this are dropped from the result (the paper
  /// omits communities of fewer than 3–4 nodes).
  std::size_t min_community_size = 3;
  ThreadPool* pool = nullptr;
};

struct GirvanNewmanResult {
  /// Kept communities (each sorted by node id), largest first.
  std::vector<std::vector<NodeId>> communities;
  /// Edges removed across all iterations.
  std::size_t edges_removed = 0;
  /// Component count of the undirected view after the final iteration,
  /// including below-threshold components.
  std::size_t component_count = 0;
};

/// Runs G-N on the weakly connected (undirected) view of `g`.
GirvanNewmanResult girvan_newman(const Digraph& g,
                                 const GirvanNewmanOptions& opts = {});

/// One split step on an existing undirected graph; returns removed-edge
/// count. Exposed separately for tests and ablations.
std::size_t girvan_newman_step(UGraph& g, ThreadPool* pool = nullptr);

}  // namespace rca::graph
