// Girvan–Newman community detection (Girvan & Newman 2002, Newman & Girvan
// 2004) as the paper applies it (§5.2): one "iteration" removes the
// highest-edge-betweenness edge repeatedly until the number of connected
// components increases. Betweenness is recomputed after each removal, but
// only within the component that lost the edge — removals elsewhere cannot
// change other components' shortest paths.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/louvain.hpp"
#include "graph/ugraph.hpp"
#include "support/thread_pool.hpp"

namespace rca::graph {

struct GirvanNewmanOptions {
  /// Number of split iterations (paper default: 1, "to avoid clustering the
  /// subgraphs far beyond the natural structure present in the code").
  int iterations = 1;
  /// Communities smaller than this are dropped from the result (the paper
  /// omits communities of fewer than 3–4 nodes).
  std::size_t min_community_size = 3;
  /// Wall-clock budget for the removal loop; 0 = unlimited. When exceeded,
  /// the run stops early and the result carries budget_exceeded — callers
  /// that need an answer fall back to Louvain (communities_with_budget).
  long long budget_ms = 0;
  /// Pivot-sample size for each betweenness (re)computation; 0 = exact. At
  /// paper scale exact betweenness per removal is the whole cost of G-N, so
  /// interactive callers trade exactness for a seeded estimate (see
  /// BetweennessOptions::samples).
  std::size_t betweenness_samples = 0;
  /// Seed for pivot sampling; fixed seed = reproducible removal sequence.
  std::uint64_t betweenness_seed = 2019;
  ThreadPool* pool = nullptr;
};

struct GirvanNewmanResult {
  /// Kept communities (each sorted by node id), largest first.
  std::vector<std::vector<NodeId>> communities;
  /// Edges removed across all iterations.
  std::size_t edges_removed = 0;
  /// Component count of the undirected view after the final iteration,
  /// including below-threshold components.
  std::size_t component_count = 0;
  /// True when budget_ms expired before the removal loop finished; the
  /// communities reflect however far the run got.
  bool budget_exceeded = false;
};

/// Runs G-N on the weakly connected (undirected) view of `g`.
GirvanNewmanResult girvan_newman(const Digraph& g,
                                 const GirvanNewmanOptions& opts = {});

struct GnStepOptions {
  ThreadPool* pool = nullptr;
  /// See GirvanNewmanOptions::betweenness_samples / betweenness_seed.
  std::size_t betweenness_samples = 0;
  std::uint64_t betweenness_seed = 2019;
  /// Deadline (null = none), checked at the top of every removal, including
  /// the first; an expired step sets *budget_exceeded (if non-null) and
  /// returns early.
  const std::chrono::steady_clock::time_point* deadline = nullptr;
  bool* budget_exceeded = nullptr;
};

/// Betweenness carried between consecutive girvan_newman_step calls on the
/// SAME graph. A step that split a component only invalidated betweenness
/// inside that component; the next step refreshes those nodes (`dirty`)
/// instead of recomputing the whole graph. With exact betweenness the
/// refreshed values are bit-identical to a full recompute (absent sources
/// contribute exactly 0 to out-of-component edges), so the removal sequence
/// is unchanged — pinned by GirvanNewman.CarriedStateStepParity.
struct GnStepState {
  std::vector<double> bc;      // per-edge values, stale only on dirty nodes
  std::vector<NodeId> dirty;   // nodes whose component changed last step
  bool valid = false;
};

/// One split step on an existing undirected graph; returns removed-edge
/// count. Exposed separately for tests and ablations. `state` (optional)
/// carries betweenness across steps; pass the same object to every step on
/// one graph and the full step-entry recompute happens only once.
std::size_t girvan_newman_step(UGraph& g, const GnStepOptions& opts,
                               GnStepState* state = nullptr);

/// Back-compat shim for the pre-options call sites.
std::size_t girvan_newman_step(
    UGraph& g, ThreadPool* pool = nullptr,
    const std::chrono::steady_clock::time_point* deadline = nullptr,
    bool* budget_exceeded = nullptr);

/// Graceful degradation for interactive callers: Girvan–Newman under a
/// wall-clock budget, falling back to Louvain (counter: community.fallback)
/// when the budget expires — an approximate partition now beats an exact one
/// after the client gave up.
struct CommunityDetectionResult {
  std::vector<std::vector<NodeId>> communities;
  /// True when GN blew its budget and `communities` came from Louvain.
  bool fell_back = false;
  /// Edges the GN attempt removed (observability, even when fell_back).
  std::size_t edges_removed = 0;
  /// Louvain modularity; only meaningful when fell_back.
  double modularity = 0.0;
};

CommunityDetectionResult communities_with_budget(
    const Digraph& g, const GirvanNewmanOptions& gn_opts,
    const LouvainOptions& louvain_opts = {});

}  // namespace rca::graph
