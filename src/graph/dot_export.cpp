#include "graph/dot_export.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rca::graph {

std::string to_dot(const Digraph& g, const std::vector<std::string>* labels,
                   const std::vector<NodeId>* node_class,
                   const std::string& graph_name) {
  if (labels) RCA_CHECK_MSG(labels->size() == g.node_count(), "label count");
  if (node_class) {
    RCA_CHECK_MSG(node_class->size() == g.node_count(), "class count");
  }
  static const char* kPalette[] = {
      "#1f77b4", "#2ca02c", "#ff7f0e", "#d62728", "#9467bd",
      "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
  };
  constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

  std::string out = "digraph " + graph_name + " {\n";
  out += "  node [shape=circle, style=filled, fillcolor=\"#dddddd\"];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out += strfmt("  n%u", v);
    std::string attrs;
    if (labels) {
      attrs += "label=\"" + (*labels)[v] + "\"";
    }
    if (node_class) {
      if (!attrs.empty()) attrs += ", ";
      attrs += strfmt("fillcolor=\"%s\"",
                      kPalette[(*node_class)[v] % kPaletteSize]);
    }
    if (!attrs.empty()) out += " [" + attrs + "]";
    out += ";\n";
  }
  for (const auto& [u, v] : g.edges()) {
    out += strfmt("  n%u -> n%u;\n", u, v);
  }
  out += "}\n";
  return out;
}

}  // namespace rca::graph
