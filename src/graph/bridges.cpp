#include "graph/bridges.hpp"

#include <algorithm>

namespace rca::graph {

std::vector<EdgeId> find_bridges(const UGraph& g) {
  const std::size_t n = g.node_count();
  constexpr NodeId kUnvisited = kInvalidNode;
  std::vector<NodeId> disc(n, kUnvisited);
  std::vector<NodeId> low(n, 0);
  std::vector<EdgeId> bridges;
  NodeId timer = 0;

  struct Frame {
    NodeId v;
    EdgeId via_edge;      // edge taken to reach v (kInvalidNode for roots)
    std::size_t child = 0;
  };
  std::vector<Frame> stack;

  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    stack.push_back(Frame{root, kInvalidNode, 0});
    disc[root] = low[root] = timer++;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId v = frame.v;
      const auto& incident = g.incident(v);
      if (frame.child < incident.size()) {
        const auto [w, e] = incident[frame.child++];
        if (g.is_removed(e)) continue;
        if (e == frame.via_edge) continue;  // no immediate backtracking
        if (disc[w] == kUnvisited) {
          disc[w] = low[w] = timer++;
          stack.push_back(Frame{w, e, 0});
        } else {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        const EdgeId via = frame.via_edge;
        stack.pop_back();
        if (!stack.empty()) {
          const NodeId parent = stack.back().v;
          low[parent] = std::min(low[parent], low[v]);
          if (low[v] > disc[parent]) bridges.push_back(via);
        }
      }
    }
  }
  std::sort(bridges.begin(), bridges.end());
  return bridges;
}

}  // namespace rca::graph
