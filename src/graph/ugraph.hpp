// Mutable undirected view of a digraph, used by Girvan–Newman.
//
// The paper converts the directed subgraph into its weakly connected
// undirected form for community detection (§5.2): bug locations may sit
// anywhere, so no reachability assumption can be imposed while clustering.
//
// Storage is CSR from construction: the topology of the undirected view is
// immutable (only edge *removal* happens, and that flips a bit in a compact
// side table), so all incident lists live in one flat arc array indexed by
// an offsets table. The Brandes inner loop and the components BFS stream
// that array instead of chasing per-node vectors — the layout the paper's
// ~100k-node graphs need.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace rca::graph {

using EdgeId = std::uint32_t;

class UGraph {
 public:
  /// Undirected view: one edge {u, v} whenever u->v or v->u exists.
  explicit UGraph(const Digraph& g);

  struct Edge {
    NodeId u;
    NodeId v;
  };

  /// One CSR slot: neighbor plus the id of the edge reaching it.
  struct Arc {
    NodeId v;
    EdgeId e;
  };

  std::size_t node_count() const { return offsets_.size() - 1; }
  /// Number of live (non-removed) edges.
  std::size_t edge_count() const { return live_edges_; }
  std::size_t total_edges() const { return edges_.size(); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  bool is_removed(EdgeId e) const { return removed_[e] != 0; }
  /// Compact per-edge removal mask (1 = removed), for kernels that test it
  /// in a tight loop without touching the wider Edge records.
  const std::vector<std::uint8_t>& removed_mask() const { return removed_; }

  void remove_edge(EdgeId e);

  /// CSR slice of u's incident arcs, removed slots included; callers must
  /// test `is_removed(arc.e)`. Exposed raw for the hot Brandes loop.
  std::span<const Arc> incident(NodeId u) const {
    return {arcs_.data() + offsets_[u], arcs_.data() + offsets_[u + 1]};
  }

  /// Live degree of u.
  std::size_t degree(NodeId u) const;

  /// Connected components over live edges: per-node component id (dense) and
  /// the component count.
  std::vector<NodeId> components(std::size_t* count) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::uint8_t> removed_;     // parallel to edges_
  std::vector<std::uint32_t> offsets_;    // node_count + 1
  std::vector<Arc> arcs_;                 // flat incident lists
  std::size_t live_edges_ = 0;
};

}  // namespace rca::graph
