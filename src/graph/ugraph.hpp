// Mutable undirected view of a digraph, used by Girvan–Newman.
//
// The paper converts the directed subgraph into its weakly connected
// undirected form for community detection (§5.2): bug locations may sit
// anywhere, so no reachability assumption can be imposed while clustering.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace rca::graph {

using EdgeId = std::uint32_t;

class UGraph {
 public:
  /// Undirected view: one edge {u, v} whenever u->v or v->u exists.
  explicit UGraph(const Digraph& g);

  struct Edge {
    NodeId u;
    NodeId v;
    bool removed = false;
  };

  std::size_t node_count() const { return adj_.size(); }
  /// Number of live (non-removed) edges.
  std::size_t edge_count() const { return live_edges_; }
  std::size_t total_edges() const { return edges_.size(); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }

  void remove_edge(EdgeId e);

  /// Neighbor iteration including removed slots; callers must test
  /// `edge(e).removed`. Exposed raw for the hot Brandes loop.
  const std::vector<std::pair<NodeId, EdgeId>>& incident(NodeId u) const {
    return adj_[u];
  }

  /// Live degree of u.
  std::size_t degree(NodeId u) const;

  /// Connected components over live edges: per-node component id (dense) and
  /// the component count.
  std::vector<NodeId> components(std::size_t* count) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj_;
  std::size_t live_edges_ = 0;
};

}  // namespace rca::graph
