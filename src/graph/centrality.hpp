// Node centralities for sampling-site selection.
//
// The refinement engine ranks each community's nodes by eigenvector
// *in*-centrality (§5.3): sampling looks for information sinks, so the
// centrality is computed on reversed edges. Degree, PageRank and Katz are
// provided for the centrality ablation benches.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "support/thread_pool.hpp"

namespace rca::graph {

enum class Direction {
  kIn,   // rank by incoming influence (paper's choice for sampling)
  kOut,  // rank by outgoing influence
};

struct PowerIterationOptions {
  std::size_t max_iterations = 1000;
  double tolerance = 1e-10;
  /// Uniform additive teleport applied when plain power iteration stalls on
  /// reducible/bipartite structures; 0 disables. The CESM graphs are far
  /// from strongly connected, so a small regularization keeps the dominant
  /// eigenvector well-defined without materially changing the ranking.
  double regularization = 1e-4;
  /// Shards the matrix-apply across this pool when set. Each y[v] is a
  /// single node's dot product computed by exactly one worker in the same
  /// neighbor order as the serial loop, and the norm/convergence reductions
  /// stay serial — so pooled results are bit-identical to serial ones for
  /// any worker count (pinned by Centrality.PooledPowerIterationBitIdentical).
  ThreadPool* pool = nullptr;
  /// Node count below which the pool is ignored and the apply runs serially.
  /// The per-iteration dispatch overhead of parallel_for dominates the
  /// gather itself far beyond the paper-scale fixtures (BENCH_graph.json
  /// measured pooled 3-16x *slower* than serial at 1.5k and even 15.7k
  /// nodes), so the default only engages workers at ~100k+ nodes. Results
  /// are bit-identical either way; set to 0 to force the pooled path.
  std::size_t min_pool_nodes = 100000;
};

/// Eigenvector centrality by power iteration on A (kOut) or A^T (kIn),
/// L2-normalized, all entries non-negative. Isolated-in-direction nodes get
/// (near-)zero centrality.
std::vector<double> eigenvector_centrality(
    const Digraph& g, Direction dir, const PowerIterationOptions& opts = {});

/// In- or out-degree divided by (n - 1), NetworkX convention.
std::vector<double> degree_centrality(const Digraph& g, Direction dir);

/// PageRank with damping; kIn ranks sinks of influence like eigenvector
/// in-centrality (the paper notes the PageRank relationship).
std::vector<double> pagerank(const Digraph& g, Direction dir,
                             double damping = 0.85,
                             std::size_t max_iterations = 200,
                             double tolerance = 1e-12);

/// Katz centrality with attenuation alpha (must satisfy alpha < 1/lambda_max
/// for convergence; iteration aborts with best effort otherwise).
std::vector<double> katz_centrality(const Digraph& g, Direction dir,
                                    double alpha = 0.05, double beta = 1.0,
                                    std::size_t max_iterations = 1000,
                                    double tolerance = 1e-10);

/// Closeness centrality (Wasserman-Faust variant for disconnected graphs):
/// for kIn, distances are measured along incoming edges, ranking nodes that
/// are quickly reached *by* the rest of the graph. O(V(V+E)) via BFS.
std::vector<double> closeness_centrality(const Digraph& g, Direction dir);

/// Indices of the top-k values, ranked descending with deterministic
/// (lowest-id) tie-breaks.
std::vector<NodeId> top_k(const std::vector<double>& scores, std::size_t k);

}  // namespace rca::graph
