// Strongly connected components (Tarjan, iterative) and the condensation
// DAG. The CESM variable graph's cyclic cores (prognostic-state update
// loops) are exactly where eigenvector centrality mass concentrates; the
// condensation exposes them for analysis and is used by the engine's
// diagnostics.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace rca::graph {

struct SccResult {
  /// Per-node component id; ids are in reverse topological order of the
  /// condensation (a property of Tarjan's algorithm).
  std::vector<NodeId> component;
  std::size_t count = 0;

  /// Node lists per component.
  std::vector<std::vector<NodeId>> members() const;
};

SccResult strongly_connected_components(const Digraph& g);

/// Condensation: one node per SCC, edges between distinct components.
Digraph condensation(const Digraph& g, const SccResult& scc);

}  // namespace rca::graph
