// Breadth-first search primitives.
//
// The paper's hybrid backward slice (§5.1) takes, for each affected internal
// variable, "all shortest paths that terminate on" its canonical-name nodes
// and unions their node sets. The union of node sets over all BFS shortest
// paths from every source into a target set is exactly the backward-reachable
// (ancestor) set plus the targets, so the slicer is a multi-source reverse
// BFS — O(V + E) rather than all-pairs path enumeration.
#pragma once

#include <limits>
#include <vector>

#include "graph/digraph.hpp"

namespace rca::graph {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

/// BFS hop distances from `sources` following out-edges. dist[v] == kUnreached
/// when v is not reachable.
std::vector<std::uint32_t> bfs_distances(const Digraph& g,
                                         const std::vector<NodeId>& sources);

/// BFS hop distances to `targets` following in-edges (reverse BFS):
/// dist[v] = length of the shortest directed path v -> ... -> target.
std::vector<std::uint32_t> bfs_distances_to(const Digraph& g,
                                            const std::vector<NodeId>& targets);

/// Ancestors of `targets` (nodes with a directed path into the set), targets
/// included. This is the union of all BFS shortest-path node sets that
/// terminate on `targets` — the backward-slice node set.
std::vector<NodeId> ancestors_of(const Digraph& g,
                                 const std::vector<NodeId>& targets);

/// Descendants of `sources` (forward reachability), sources included.
std::vector<NodeId> descendants_of(const Digraph& g,
                                   const std::vector<NodeId>& sources);

/// True if any directed path leads from `from` to any node in `to`.
bool reaches_any(const Digraph& g, NodeId from, const std::vector<NodeId>& to);

/// Weakly connected components: returns component id per node and sets
/// `component_count`. Ids are dense and ordered by first-seen node.
std::vector<NodeId> weakly_connected_components(const Digraph& g,
                                                std::size_t* component_count);

}  // namespace rca::graph
