#include "graph/girvan_newman.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "graph/betweenness.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace rca::graph {

std::size_t girvan_newman_step(UGraph& g, const GnStepOptions& opts,
                               GnStepState* state) {
  if (g.edge_count() == 0) return 0;
  std::size_t before = 0;
  g.components(&before);

  BetweennessOptions bopts;
  bopts.pool = opts.pool;
  bopts.samples = opts.betweenness_samples;
  bopts.seed = opts.betweenness_seed;

  std::vector<double> bc;
  if (state != nullptr && state->valid &&
      state->bc.size() == g.total_edges()) {
    bc = std::move(state->bc);
    if (!state->dirty.empty()) {
      // Only the component the previous step split has stale values; refresh
      // it and keep everything else (same partial-recompute rule as the
      // in-step loop below).
      bopts.sources = &state->dirty;
      obs::count("graph.gn.betweenness_recomputes");
      std::vector<double> partial = edge_betweenness(g, bopts);
      std::vector<std::uint8_t> dirty_node(g.node_count(), 0);
      for (NodeId v : state->dirty) dirty_node[v] = 1;
      for (EdgeId e = 0; e < g.total_edges(); ++e) {
        if (!g.is_removed(e) && dirty_node[g.edge(e).u]) bc[e] = partial[e];
      }
      bopts.sources = nullptr;
    }
  } else {
    obs::count("graph.gn.betweenness_recomputes");
    bc = edge_betweenness(g, bopts);
  }
  if (state != nullptr) {
    state->valid = false;
    state->dirty.clear();
  }

  // Live-edge index, ascending by id. Scanning this instead of
  // [0, total_edges()) skips already-removed edges, which otherwise dominate
  // the max-scan late in a long removal run; ascending order + strict '>'
  // preserves the lowest-id tie-break of the full scan exactly.
  std::vector<EdgeId> live;
  live.reserve(g.edge_count());
  for (EdgeId e = 0; e < g.total_edges(); ++e) {
    if (!g.is_removed(e)) live.push_back(e);
  }

  std::size_t removed = 0;
  std::vector<NodeId> split_nodes;
  for (;;) {
    // Fault site (delay action): tests stretch individual steps to drive the
    // budget path deterministically. The deadline check runs BEFORE the
    // first removal, so an already-expired budget removes nothing.
    (void)RCA_FAULT_CHECK("graph.gn.step");
    if (opts.deadline != nullptr &&
        std::chrono::steady_clock::now() >= *opts.deadline) {
      if (opts.budget_exceeded != nullptr) *opts.budget_exceeded = true;
      break;
    }
    // Pick the live edge with maximum betweenness (ties: lowest id, for
    // determinism).
    EdgeId best = kInvalidNode;
    double best_val = -1.0;
    for (EdgeId e : live) {
      if (bc[e] > best_val) {
        best_val = bc[e];
        best = e;
      }
    }
    if (best == kInvalidNode) break;  // no edges left
    const NodeId eu = g.edge(best).u;
    const NodeId ev = g.edge(best).v;
    g.remove_edge(best);
    live.erase(std::lower_bound(live.begin(), live.end(), best));
    ++removed;

    std::size_t after = 0;
    std::vector<NodeId> comp = g.components(&after);
    if (after > before || g.edge_count() == 0) {
      // The split invalidates betweenness only inside the component that
      // broke apart — both halves carry comp ids of the removed edge's
      // endpoints. Hand that set to the next step via `state`.
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (comp[v] == comp[eu] || comp[v] == comp[ev]) {
          split_nodes.push_back(v);
        }
      }
      break;
    }

    // Recompute betweenness only inside the component that lost the edge;
    // all shortest paths elsewhere are untouched (paper step 3: "recalculate
    // betweenness for all edges affected by the removal").
    const NodeId affected = comp[eu];
    std::vector<NodeId> sources;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (comp[v] == affected) sources.push_back(v);
    }
    obs::count("graph.gn.betweenness_recomputes");
    bopts.sources = &sources;
    std::vector<double> partial = edge_betweenness(g, bopts);
    bopts.sources = nullptr;
    for (EdgeId e : live) {
      if (comp[g.edge(e).u] == affected) bc[e] = partial[e];
    }
  }
  if (state != nullptr) {
    state->bc = std::move(bc);
    state->dirty = std::move(split_nodes);
    state->valid = true;
  }
  obs::count("graph.gn.edges_removed", removed);
  return removed;
}

std::size_t girvan_newman_step(
    UGraph& g, ThreadPool* pool,
    const std::chrono::steady_clock::time_point* deadline,
    bool* budget_exceeded) {
  GnStepOptions opts;
  opts.pool = pool;
  opts.deadline = deadline;
  opts.budget_exceeded = budget_exceeded;
  return girvan_newman_step(g, opts, nullptr);
}

GirvanNewmanResult girvan_newman(const Digraph& g,
                                 const GirvanNewmanOptions& opts) {
  RCA_CHECK_MSG(opts.iterations >= 0, "negative G-N iteration count");
  obs::Span span("graph.girvan_newman");
  span.attr("nodes", g.node_count());
  span.attr("edges", g.edge_count());
  obs::count("graph.gn.runs");
  UGraph ug(g);
  GirvanNewmanResult result;
  std::chrono::steady_clock::time_point deadline;
  const bool budgeted = opts.budget_ms > 0;
  if (budgeted) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(opts.budget_ms);
  }
  GnStepOptions step_opts;
  step_opts.pool = opts.pool;
  step_opts.betweenness_samples = opts.betweenness_samples;
  step_opts.betweenness_seed = opts.betweenness_seed;
  step_opts.deadline = budgeted ? &deadline : nullptr;
  step_opts.budget_exceeded = &result.budget_exceeded;
  GnStepState state;
  for (int it = 0; it < opts.iterations; ++it) {
    obs::count("graph.gn.iterations");
    result.edges_removed += girvan_newman_step(ug, step_opts, &state);
    if (result.budget_exceeded) break;
  }

  std::size_t count = 0;
  std::vector<NodeId> comp = ug.components(&count);
  result.component_count = count;

  std::vector<std::vector<NodeId>> buckets(count);
  for (NodeId v = 0; v < comp.size(); ++v) buckets[comp[v]].push_back(v);
  for (auto& b : buckets) {
    if (b.size() >= opts.min_community_size) {
      result.communities.push_back(std::move(b));
    }
  }
  std::sort(result.communities.begin(), result.communities.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();  // deterministic tie-break
            });
  span.attr("edges_removed", result.edges_removed);
  span.attr("communities", result.communities.size());
  return result;
}

CommunityDetectionResult communities_with_budget(
    const Digraph& g, const GirvanNewmanOptions& gn_opts,
    const LouvainOptions& louvain_opts) {
  CommunityDetectionResult out;
  GirvanNewmanResult gn = girvan_newman(g, gn_opts);
  out.edges_removed = gn.edges_removed;
  if (!gn.budget_exceeded) {
    out.communities = std::move(gn.communities);
    return out;
  }
  obs::count("community.fallback");
  LouvainOptions lopts = louvain_opts;
  if (lopts.min_community_size < gn_opts.min_community_size) {
    lopts.min_community_size = gn_opts.min_community_size;
  }
  LouvainResult lv = louvain(g, lopts);
  out.communities = std::move(lv.communities);
  out.fell_back = true;
  out.modularity = lv.modularity;
  return out;
}

}  // namespace rca::graph
