#include "graph/louvain.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace rca::graph {

namespace {

/// Undirected weighted adjacency built by collapsing the digraph (parallel
/// and antiparallel edges merge with summed weight 1 each).
struct WeightedGraph {
  std::vector<std::vector<std::pair<NodeId, double>>> adj;
  std::vector<double> self_loop;  // aggregated intra-community weight
  double total_weight = 0.0;      // sum of edge weights (each edge once)

  std::size_t size() const { return adj.size(); }
};

WeightedGraph from_digraph(const Digraph& g) {
  WeightedGraph w;
  w.adj.resize(g.node_count());
  w.self_loop.assign(g.node_count(), 0.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      if (u < v || !g.has_edge(v, u)) {
        w.adj[u].emplace_back(v, 1.0);
        w.adj[v].emplace_back(u, 1.0);
        w.total_weight += 1.0;
      }
    }
  }
  return w;
}

/// Weighted degree (including self-loop counted twice, Louvain convention).
double weighted_degree(const WeightedGraph& g, NodeId v) {
  double d = 2.0 * g.self_loop[v];
  for (const auto& [u, w] : g.adj[v]) {
    (void)u;
    d += w;
  }
  return d;
}

/// One local-move phase; returns the per-node community assignment and the
/// achieved gain. Communities are renumbered densely on exit.
bool local_move(const WeightedGraph& g, std::vector<NodeId>* community,
                std::uint64_t seed, double min_gain) {
  const std::size_t n = g.size();
  std::vector<double> degree(n);
  double m2 = 2.0 * g.total_weight;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = weighted_degree(g, v);
    m2 += 2.0 * g.self_loop[v];
  }
  if (m2 <= 0.0) return false;

  // Community aggregate degree.
  std::vector<double> comm_degree(n, 0.0);
  for (NodeId v = 0; v < n; ++v) comm_degree[(*community)[v]] += degree[v];

  // Deterministic shuffled order.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  SplitMix64 rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next() % i]);
  }

  bool any_move = false;
  bool improved = true;
  std::unordered_map<NodeId, double> weight_to;
  while (improved) {
    improved = false;
    for (NodeId v : order) {
      const NodeId old_comm = (*community)[v];
      weight_to.clear();
      for (const auto& [u, w] : g.adj[v]) {
        if (u != v) weight_to[(*community)[u]] += w;
      }
      comm_degree[old_comm] -= degree[v];

      NodeId best_comm = old_comm;
      double best_gain = weight_to.count(old_comm)
                             ? weight_to[old_comm] -
                                   comm_degree[old_comm] * degree[v] / m2
                             : -comm_degree[old_comm] * degree[v] / m2;
      for (const auto& [c, w] : weight_to) {
        const double gain = w - comm_degree[c] * degree[v] / m2;
        if (gain > best_gain + min_gain) {
          best_gain = gain;
          best_comm = c;
        }
      }
      comm_degree[best_comm] += degree[v];
      if (best_comm != old_comm) {
        (*community)[v] = best_comm;
        improved = true;
        any_move = true;
      }
    }
  }
  return any_move;
}

/// Aggregates communities into super-nodes.
WeightedGraph aggregate(const WeightedGraph& g,
                        const std::vector<NodeId>& community,
                        std::size_t community_count) {
  WeightedGraph out;
  out.adj.resize(community_count);
  out.self_loop.assign(community_count, 0.0);
  std::unordered_map<std::uint64_t, double> edges;
  for (NodeId v = 0; v < g.size(); ++v) {
    out.self_loop[community[v]] += g.self_loop[v];
    for (const auto& [u, w] : g.adj[v]) {
      if (u < v) continue;  // each undirected edge once
      const NodeId a = community[v];
      const NodeId b = community[u];
      if (a == b) {
        out.self_loop[a] += w;
      } else {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
            std::max(a, b);
        edges[key] += w;
      }
    }
  }
  for (const auto& [key, w] : edges) {
    const NodeId a = static_cast<NodeId>(key >> 32);
    const NodeId b = static_cast<NodeId>(key & 0xffffffffu);
    out.adj[a].emplace_back(b, w);
    out.adj[b].emplace_back(a, w);
    out.total_weight += w;
  }
  return out;
}

std::size_t renumber(std::vector<NodeId>* community) {
  std::unordered_map<NodeId, NodeId> remap;
  for (NodeId& c : *community) {
    auto [it, inserted] = remap.emplace(c, static_cast<NodeId>(remap.size()));
    c = it->second;
  }
  return remap.size();
}

}  // namespace

double modularity(const Digraph& g, const std::vector<NodeId>& community) {
  RCA_CHECK_MSG(community.size() == g.node_count(), "partition size mismatch");
  WeightedGraph w = from_digraph(g);
  const double m2 = 2.0 * w.total_weight;
  if (m2 <= 0.0) return 0.0;

  std::unordered_map<NodeId, double> intra, comm_degree;
  for (NodeId v = 0; v < w.size(); ++v) {
    comm_degree[community[v]] += weighted_degree(w, v);
    for (const auto& [u, weight] : w.adj[v]) {
      if (u < v) continue;
      if (community[u] == community[v]) intra[community[u]] += weight;
    }
  }
  double q = 0.0;
  for (const auto& [c, deg] : comm_degree) {
    const double in = intra.count(c) ? intra.at(c) : 0.0;
    q += in / w.total_weight - (deg / m2) * (deg / m2);
  }
  return q;
}

LouvainResult louvain(const Digraph& g, const LouvainOptions& opts) {
  obs::Span span("graph.louvain");
  span.attr("nodes", g.node_count());
  span.attr("edges", g.edge_count());
  obs::count("graph.louvain.runs");
  LouvainResult result;
  const std::size_t n = g.node_count();
  result.assignment.resize(n);
  std::iota(result.assignment.begin(), result.assignment.end(), 0);
  if (n == 0) return result;

  WeightedGraph level_graph = from_digraph(g);
  // node -> community at the current level, composed down to original nodes.
  std::vector<NodeId> node_to_top(n);
  std::iota(node_to_top.begin(), node_to_top.end(), 0);

  for (std::size_t level = 0; level < opts.max_levels; ++level) {
    std::vector<NodeId> community(level_graph.size());
    std::iota(community.begin(), community.end(), 0);
    const bool moved =
        local_move(level_graph, &community, opts.seed + level, opts.min_gain);
    if (!moved) break;
    ++result.levels;
    const std::size_t count = renumber(&community);
    for (NodeId v = 0; v < n; ++v) {
      node_to_top[v] = community[node_to_top[v]];
    }
    if (count == level_graph.size()) break;
    level_graph = aggregate(level_graph, community, count);
  }

  result.assignment = node_to_top;
  renumber(&result.assignment);
  result.modularity = modularity(g, result.assignment);

  // Materialize community node lists.
  std::size_t count = 0;
  for (NodeId c : result.assignment) {
    count = std::max<std::size_t>(count, c + 1);
  }
  std::vector<std::vector<NodeId>> buckets(count);
  for (NodeId v = 0; v < n; ++v) buckets[result.assignment[v]].push_back(v);
  for (auto& b : buckets) {
    if (b.size() >= opts.min_community_size) {
      result.communities.push_back(std::move(b));
    }
  }
  std::sort(result.communities.begin(), result.communities.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();
            });
  obs::count("graph.louvain.levels", result.levels);
  span.attr("levels", result.levels);
  span.attr("communities", result.communities.size());
  span.attr("modularity", result.modularity);
  return result;
}

}  // namespace rca::graph
