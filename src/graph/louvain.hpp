// Louvain modularity optimization (Blondel et al. 2008) and the Newman
// modularity measure — an alternative community detector for the refinement
// engine. The paper uses Girvan-Newman; G-N's edge-betweenness recomputation
// is O(V·E) per removal, while Louvain is near-linear, so large slices favor
// it (paper §6.3 notes "numerous algorithms for graph partitioning which we
// could use"). bench/ablation_louvain compares both.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace rca::graph {

/// Newman modularity Q of a partition of the undirected (weakly connected)
/// view of `g`. `community` maps node -> community id (dense or sparse ids).
double modularity(const Digraph& g, const std::vector<NodeId>& community);

struct LouvainOptions {
  /// Maximum local-move + aggregate rounds.
  std::size_t max_levels = 10;
  /// Node visiting order is shuffled with this seed (deterministic).
  std::uint64_t seed = 1;
  /// Stop a local-move phase when a full sweep improves Q by less.
  double min_gain = 1e-9;
  /// Communities smaller than this are dropped from `communities` (kept in
  /// the per-node assignment).
  std::size_t min_community_size = 1;
};

struct LouvainResult {
  /// Per-node community id (dense, 0-based).
  std::vector<NodeId> assignment;
  /// Kept communities, largest first (node lists sorted ascending).
  std::vector<std::vector<NodeId>> communities;
  double modularity = 0.0;
  std::size_t levels = 0;
};

/// Runs Louvain on the undirected view of `g`.
LouvainResult louvain(const Digraph& g, const LouvainOptions& opts = {});

}  // namespace rca::graph
