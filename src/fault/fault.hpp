// Deterministic fault injection: named injection sites compiled into the
// production binary, zero-cost when disarmed.
//
// The paper's pitch is making RCA *feasible* on a production-scale code
// base; the resident service that grew out of it must therefore survive the
// failures production actually produces — torn snapshot files, partially
// unparsable corpora, slow stages, transient I/O errors — without dying or
// silently answering wrong. Like Causal Testing's perturb-and-observe loop,
// resilience is only trustworthy if the failures can be *injected* on
// demand, so CI tests degradation deterministically instead of assuming it.
//
// Usage: code under test marks its failure-capable points
//
//   RCA_FAULT_POINT("service.build.io");          // may throw / delay
//   fault::Hit h = RCA_FAULT_CHECK("http.send");  // caller interprets
//   if (h.action == fault::Action::kErrno) { errno = EIO; return false; }
//
// and a test (or `rca-tool serve --fault-spec` / the RCA_FAULTS env var)
// arms the process-wide registry with a spec string:
//
//   name:probability:action[:after_n[:max_fires]] [, ...]
//
//   name         injection-site name, e.g. meta.snapshot.write
//   probability  fire probability in [0,1], seed-deterministic per site
//   action       throw | errno | delay-<ms> | short-write
//   after_n      skip the first n hits of the site (default 0)
//   max_fires    fire at most this many times, 0 = unlimited (default 0)
//
// A `seed=N` entry anywhere in the list reseeds the per-site RNG streams
// (default seed 0); the same spec + seed always fires on the same hits.
// Every fire increments the obs counter `fault.injected.<name>` and the
// registry's own per-site tally (visible even when obs is disabled).
//
// Disarmed cost: one relaxed atomic load and a predicted branch per site —
// bench/perf_service gates that this stays under 1% of request p99.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "support/error.hpp"

namespace rca::fault {

enum class Action {
  kNone,        // site not armed / did not fire
  kThrow,       // throw FaultInjected (permanent failure)
  kErrno,       // transient I/O failure (TransientError or errno = EIO)
  kDelay,       // sleep delay_ms, then continue
  kShortWrite,  // write sites: truncate the write (torn file)
};

/// What a fault point should do on this hit.
struct Hit {
  Action action = Action::kNone;
  int delay_ms = 0;
  explicit operator bool() const { return action != Action::kNone; }
};

/// Permanent injected failure (action `throw`). Derives from rca::Error so
/// existing catch sites treat it like any other subsystem error.
class FaultInjected : public Error {
 public:
  using Error::Error;
};

/// Transient I/O failure (action `errno` at throwing sites): EINTR/EIO
/// class, safe to retry. The session store's cold-build retry loop catches
/// exactly this type.
class TransientError : public Error {
 public:
  using Error::Error;
};

/// Process-wide fault registry. Disarmed by default; arming is test/chaos
/// tooling only, so armed-path cost (one mutex) is irrelevant.
class FaultRegistry {
 public:
  static FaultRegistry& global();

  /// Parses and installs a spec string (grammar above); throws rca::Error
  /// on malformed specs. Replaces any previously armed spec.
  void arm(const std::string& spec);
  /// Disarms every site and clears per-site state.
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Consults the site's spec for this hit (after_n / max_fires /
  /// probability) and counts a fire on the obs registry and internally.
  /// Never throws and never sleeps — callers apply the action.
  Hit hit(const char* site);

  /// Times the site has actually fired since arm() (0 when unknown).
  std::uint64_t fires(const std::string& site) const;

 private:
  struct Site {
    double probability = 1.0;
    Action action = Action::kThrow;
    int delay_ms = 0;
    std::uint64_t after_n = 0;   // skip the first n hits
    std::uint64_t max_fires = 0; // 0 = unlimited
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
    std::uint64_t rng_state = 0; // SplitMix64 stream, seeded per (seed, name)
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
};

/// RCA_FAULT_POINT body: applies the hit — sleeps on kDelay, throws
/// FaultInjected on kThrow and TransientError on kErrno. Returns the hit so
/// write-capable sites can honor kShortWrite.
Hit point(const char* site);

/// RCA_FAULT_CHECK body: like point() but never throws — kDelay sleeps
/// inline, everything else is returned for the caller to interpret (errno
/// call sites fail with EIO instead of unwinding through C callers).
Hit check(const char* site);

}  // namespace rca::fault

/// Generic injection site: zero-cost when disarmed (relaxed load + branch).
/// May throw rca::fault::{FaultInjected,TransientError} or sleep when armed.
#define RCA_FAULT_POINT(site)                                  \
  do {                                                         \
    if (::rca::fault::FaultRegistry::global().armed()) {       \
      ::rca::fault::point(site);                               \
    }                                                          \
  } while (0)

/// Non-throwing injection site, for call sites with an errno/short-write
/// failure path of their own. Evaluates to a fault::Hit.
#define RCA_FAULT_CHECK(site)                            \
  (::rca::fault::FaultRegistry::global().armed()         \
       ? ::rca::fault::check(site)                       \
       : ::rca::fault::Hit{})
