#include "fault/fault.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "support/strings.hpp"

namespace rca::fault {

namespace {

/// SplitMix64 step (Steele et al.); inlined here so the registry can keep
/// raw state words per site without owning rng objects.
std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double splitmix64_uniform(std::uint64_t& state) {
  return static_cast<double>(splitmix64_next(state) >> 11) * 0x1.0p-53;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

double parse_probability(const std::string& field, const std::string& entry) {
  try {
    std::size_t pos = 0;
    const double p = std::stod(field, &pos);
    if (pos != field.size() || p < 0.0 || p > 1.0) {
      throw Error("probability out of range");
    }
    return p;
  } catch (const std::exception&) {
    throw Error("fault spec '" + entry + "': bad probability '" + field +
                "' (want a number in [0,1])");
  }
}

std::uint64_t parse_count(const std::string& field, const std::string& entry,
                          const char* what) {
  try {
    // stoull would silently wrap "-1"; counts are digit strings only.
    if (field.empty() ||
        field.find_first_not_of("0123456789") != std::string::npos) {
      throw Error("not a digit string");
    }
    std::size_t pos = 0;
    const unsigned long long n = std::stoull(field, &pos);
    if (pos != field.size()) throw Error("trailing junk");
    return n;
  } catch (const std::exception&) {
    throw Error("fault spec '" + entry + "': bad " + what + " '" + field +
                "'");
  }
}

}  // namespace

FaultRegistry& FaultRegistry::global() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(const std::string& spec) {
  std::unordered_map<std::string, Site> sites;
  std::uint64_t seed = 0;
  std::vector<std::string> names;  // reseed streams after the full parse

  for (const std::string& raw : split(spec, ',')) {
    const std::string entry{trim(raw)};
    if (entry.empty()) continue;
    if (starts_with(entry, "seed=")) {
      seed = parse_count(entry.substr(5), entry, "seed");
      continue;
    }
    // name:probability:action[:after_n[:max_fires]] — but the site name may
    // itself contain no ':' (names are dotted, e.g. meta.snapshot.write).
    const std::vector<std::string> fields = split(entry, ':');
    if (fields.size() < 3 || fields.size() > 5) {
      throw Error("fault spec '" + entry +
                  "': want name:probability:action[:after_n[:max_fires]]");
    }
    Site site;
    site.probability = parse_probability(fields[1], entry);
    const std::string& action = fields[2];
    if (action == "throw") {
      site.action = Action::kThrow;
    } else if (action == "errno") {
      site.action = Action::kErrno;
    } else if (action == "short-write") {
      site.action = Action::kShortWrite;
    } else if (starts_with(action, "delay-")) {
      site.action = Action::kDelay;
      site.delay_ms = static_cast<int>(
          parse_count(action.substr(6), entry, "delay milliseconds"));
    } else {
      throw Error("fault spec '" + entry + "': unknown action '" + action +
                  "' (throw|errno|delay-<ms>|short-write)");
    }
    if (fields.size() >= 4) {
      site.after_n = parse_count(fields[3], entry, "after_n");
    }
    if (fields.size() == 5) {
      site.max_fires = parse_count(fields[4], entry, "max_fires");
    }
    sites[fields[0]] = site;
    names.push_back(fields[0]);
  }
  if (sites.empty()) {
    throw Error("fault spec armed no sites: '" + spec + "'");
  }
  // Per-site streams derive from (seed, name), so adding a site to a spec
  // never shifts another site's firing pattern.
  for (const std::string& name : names) {
    sites[name].rng_state = seed ^ fnv1a64(name);
  }

  std::lock_guard<std::mutex> lock(mu_);
  sites_ = std::move(sites);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  sites_.clear();
}

Hit FaultRegistry::hit(const char* site) {
  Hit result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return result;
    Site& s = it->second;
    const std::uint64_t n = s.hits++;
    if (n < s.after_n) return result;
    if (s.max_fires != 0 && s.fired >= s.max_fires) return result;
    if (s.probability < 1.0 &&
        splitmix64_uniform(s.rng_state) >= s.probability) {
      return result;
    }
    ++s.fired;
    result.action = s.action;
    result.delay_ms = s.delay_ms;
  }
  // Counter outside the lock: obs takes its own mutex.
  obs::Registry& reg = obs::global();
  if (reg.enabled()) {
    reg.counter_add(std::string("fault.injected.") + site);
  }
  return result;
}

std::uint64_t FaultRegistry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

Hit point(const char* site) {
  const Hit h = check(site);
  if (h.action == Action::kThrow) {
    throw FaultInjected(std::string("injected fault at ") + site);
  }
  if (h.action == Action::kErrno) {
    throw TransientError(std::string("injected transient I/O error at ") +
                         site);
  }
  return h;
}

Hit check(const char* site) {
  const Hit h = FaultRegistry::global().hit(site);
  if (h.action == Action::kDelay && h.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(h.delay_ms));
  }
  return h;
}

}  // namespace rca::fault
