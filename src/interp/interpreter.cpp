#include "interp/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "interp/intrinsics.hpp"
#include "support/strings.hpp"

namespace rca::interp {

using lang::Expr;
using lang::ExprKind;
using lang::Module;
using lang::Op;
using lang::RefSegment;
using lang::Stmt;
using lang::StmtKind;
using lang::Subprogram;
using lang::TypeKind;
using lang::VarDecl;

double WatchStats::rms() const {
  if (count == 0) return 0.0;
  return std::sqrt(sum_sq / static_cast<double>(count));
}

double WatchStats::mean() const {
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

void CoverageRecorder::record(const std::string& module,
                              const std::string& subprogram) {
  modules_.insert(module);
  if (!subprogram.empty()) subprograms_.insert(module + "::" + subprogram);
}

bool CoverageRecorder::module_executed(const std::string& module) const {
  return modules_.count(module) != 0;
}

bool CoverageRecorder::subprogram_executed(const std::string& module,
                                           const std::string& sub) const {
  return subprograms_.count(module + "::" + sub) != 0;
}

void CoverageRecorder::clear() {
  modules_.clear();
  subprograms_.clear();
}

bool is_intrinsic_function(const std::string& name) {
  static const std::unordered_map<std::string, int> kSet = {
      {"abs", 0},   {"sqrt", 0},  {"exp", 0},    {"log", 0},  {"log10", 0},
      {"sin", 0},   {"cos", 0},   {"tan", 0},    {"tanh", 0}, {"min", 0},
      {"max", 0},   {"mod", 0},   {"sign", 0},   {"floor", 0}, {"nint", 0},
      {"aint", 0},  {"int", 0},   {"real", 0},   {"sum", 0},  {"minval", 0},
      {"maxval", 0}, {"size", 0}, {"merge", 0},
  };
  return kSet.count(name) != 0;
}

namespace {

enum class Flow { kNormal, kReturn, kExit, kCycle };

bool is_slice_marker(const Expr& e) {
  return e.is_ref() && e.segments.size() == 1 &&
         e.segments[0].name == "__slice__" && !e.segments[0].has_args;
}

[[noreturn]] void fail(const std::string& msg, int line = 0) {
  if (line > 0) throw EvalError(strfmt("line %d: %s", line, msg.c_str()));
  throw EvalError(msg);
}

}  // namespace

// ===========================================================================
// Impl
// ===========================================================================

struct Interpreter::Impl {
  struct ModuleCtx;

  struct Callable {
    const Subprogram* sp = nullptr;
    ModuleCtx* home = nullptr;
  };

  struct TypeEntry {
    const lang::DerivedTypeDef* def = nullptr;
    ModuleCtx* home = nullptr;
  };

  struct ImportedVar {
    ModuleCtx* home = nullptr;
    std::string remote_name;
  };

  struct ModuleCtx {
    const Module* ast = nullptr;
    bool fma = false;
    bool reassoc = false;
    std::unordered_map<std::string, ValueSlot> vars;
    std::unordered_map<std::string, Value> params;
    std::unordered_map<std::string, ImportedVar> imported_vars;
    std::unordered_map<std::string, std::vector<Callable>> callables;
    std::unordered_map<std::string, TypeEntry> types;
  };

  struct Frame {
    ModuleCtx* module = nullptr;
    const Subprogram* sub = nullptr;
    std::unordered_map<std::string, ValueSlot> locals;
  };

  explicit Impl(Interpreter* owner) : owner_(owner) {}

  Interpreter* owner_;
  std::vector<const Module*> module_asts_;
  std::unordered_map<std::string, std::unique_ptr<ModuleCtx>> modules_;
  std::unordered_map<std::string, BuiltinSubroutine> builtins_;
  bool any_watches_ = false;

  // -------------------------------------------------------------------------
  // Initialization.
  // -------------------------------------------------------------------------

  void load(std::vector<const Module*> mods) {
    module_asts_ = std::move(mods);
    // Pass 1: create contexts, register own subprograms/types.
    for (const Module* m : module_asts_) {
      if (modules_.count(m->name)) {
        fail("duplicate module '" + m->name + "'");
      }
      auto ctx = std::make_unique<ModuleCtx>();
      ctx->ast = m;
      for (const auto& sp : m->subprograms) {
        ctx->callables[sp.name].push_back(Callable{&sp, ctx.get()});
      }
      for (const auto& t : m->types) {
        ctx->types[t.name] = TypeEntry{&t, ctx.get()};
      }
      modules_[m->name] = std::move(ctx);
    }
    // Pass 1b: expand interface blocks (after own subprograms exist).
    for (const Module* m : module_asts_) {
      ModuleCtx* ctx = modules_[m->name].get();
      for (const auto& iface : m->interfaces) {
        for (const auto& proc : iface.procedures) {
          auto it = ctx->callables.find(proc);
          if (it == ctx->callables.end()) {
            fail("interface '" + iface.name + "' names unknown procedure '" +
                 proc + "' in module " + m->name);
          }
          for (const auto& c : it->second) {
            ctx->callables[iface.name].push_back(c);
          }
        }
      }
    }
    // Pass 2: resolve use-imports (module-level plus hoisted
    // subprogram-level uses; chained use is intentionally not followed,
    // matching the paper's §4.2 treatment).
    for (const Module* m : module_asts_) {
      ModuleCtx* ctx = modules_[m->name].get();
      auto process_use = [this, ctx, m](const lang::UseStmt& use) {
        auto src_it = modules_.find(use.module);
        if (src_it == modules_.end()) {
          fail("module '" + m->name + "' uses unknown module '" + use.module +
               "'", use.line);
        }
        ModuleCtx* src = src_it->second.get();
        if (use.has_only) {
          for (const auto& r : use.renames) {
            import_entity(ctx, src, r.local, r.remote, use.line);
          }
        } else {
          // Import-all: every declaration, subprogram, interface, type.
          for (const auto& d : src->ast->decls) {
            import_entity(ctx, src, d.name, d.name, use.line);
          }
          for (const auto& sp : src->ast->subprograms) {
            import_entity(ctx, src, sp.name, sp.name, use.line);
          }
          for (const auto& iface : src->ast->interfaces) {
            import_entity(ctx, src, iface.name, iface.name, use.line);
          }
          for (const auto& t : src->ast->types) {
            import_entity(ctx, src, t.name, t.name, use.line);
          }
        }
      };
      for (const auto& use : m->uses) process_use(use);
      for (const auto& sp : m->subprograms) {
        for (const auto& use : sp.uses) process_use(use);
      }
    }
    // Pass 3: evaluate parameter constants to a fixpoint (they may reference
    // imported parameters that are themselves not yet evaluated).
    for (;;) {
      bool progress = false;
      bool pending = false;
      for (const Module* m : module_asts_) {
        ModuleCtx* ctx = modules_[m->name].get();
        for (const auto& d : m->decls) {
          if (!d.is_parameter || ctx->params.count(d.name)) continue;
          if (!d.init) fail("parameter '" + d.name + "' lacks a value", d.line);
          Frame f;
          f.module = ctx;
          try {
            ctx->params[d.name] = eval(*d.init, f);
            progress = true;
          } catch (const EvalError&) {
            pending = true;  // dependency not ready yet; retry next round
          }
        }
      }
      if (!pending) break;
      if (!progress) fail("circular or unresolvable parameter definitions");
    }
    // Pass 4: allocate module variables.
    for (const Module* m : module_asts_) {
      ModuleCtx* ctx = modules_[m->name].get();
      Frame f;
      f.module = ctx;
      for (const auto& d : m->decls) {
        if (d.is_parameter) continue;
        ctx->vars[d.name] = std::make_shared<Value>(allocate(d, f));
      }
    }
  }

  void import_entity(ModuleCtx* dst, ModuleCtx* src, const std::string& local,
                     const std::string& remote, int line) {
    const lang::VarDecl* decl = src->ast->find_decl(remote);
    if (decl) {
      if (decl->is_parameter) {
        // Imported parameters are resolved lazily (pass 3 fixpoint) via the
        // imported_vars indirection as well; record both.
        dst->imported_vars[local] = ImportedVar{src, remote};
      } else {
        dst->imported_vars[local] = ImportedVar{src, remote};
      }
      return;
    }
    auto cit = src->callables.find(remote);
    if (cit != src->callables.end()) {
      auto& vec = dst->callables[local];
      vec.insert(vec.end(), cit->second.begin(), cit->second.end());
      return;
    }
    auto tit = src->types.find(remote);
    if (tit != src->types.end()) {
      dst->types[local] = tit->second;
      return;
    }
    fail("use of unknown entity '" + remote + "' from module '" +
         src->ast->name + "'", line);
  }

  /// Allocate a value per declaration, evaluating array extents in `frame`.
  Value allocate(const VarDecl& d, Frame& frame) {
    if (d.type.kind == TypeKind::kDerived) {
      auto tit = frame.module->types.find(d.type.derived_name);
      if (tit == frame.module->types.end()) {
        fail("unknown derived type '" + d.type.derived_name + "'", d.line);
      }
      Value v;
      v.kind = Value::Kind::kDerived;
      v.derived = std::make_shared<DerivedValue>();
      v.derived->type_name = d.type.derived_name;
      Frame type_frame;
      type_frame.module = tit->second.home;
      for (const auto& comp : tit->second.def->components) {
        v.derived->components[comp.name] =
            std::make_shared<Value>(allocate(comp, type_frame));
      }
      return v;
    }
    if (d.is_array()) {
      std::vector<long long> dims;
      for (const auto& dim : d.dims) {
        dims.push_back(eval(*dim, frame).as_int());
      }
      Value v = Value::make_array(std::move(dims));
      if (d.init) {
        const Value init = eval(*d.init, frame);
        std::fill(v.array.begin(), v.array.end(), init.as_real());
      }
      return v;
    }
    Value v;
    switch (d.type.kind) {
      case TypeKind::kReal: v = Value::make_real(0.0); break;
      case TypeKind::kInteger: v = Value::make_int(0); break;
      case TypeKind::kLogical: v = Value::make_logical(false); break;
      case TypeKind::kCharacter: v = Value::make_char(""); break;
      case TypeKind::kDerived: break;  // handled above
    }
    if (d.init) {
      const Value init = eval(*d.init, frame);
      switch (v.kind) {
        case Value::Kind::kReal: v.real = init.as_real(); break;
        case Value::Kind::kInt: v.integer = init.as_int(); break;
        case Value::Kind::kLogical: v.logical = init.as_logical(); break;
        case Value::Kind::kChar: v.chars = init.chars; break;
        default: break;
      }
    }
    return v;
  }

  // -------------------------------------------------------------------------
  // Name resolution.
  // -------------------------------------------------------------------------

  /// Variable slot for `name` in scope, or nullptr. Sets `owner_module` /
  /// `owner_sub` to the owning scope for watch identity.
  ValueSlot resolve_var(Frame& frame, const std::string& name,
                        std::string* owner_module = nullptr,
                        std::string* owner_sub = nullptr) {
    auto lit = frame.locals.find(name);
    if (lit != frame.locals.end()) {
      if (owner_module) *owner_module = frame.module->ast->name;
      if (owner_sub) *owner_sub = frame.sub ? frame.sub->name : "";
      return lit->second;
    }
    auto mit = frame.module->vars.find(name);
    if (mit != frame.module->vars.end()) {
      if (owner_module) *owner_module = frame.module->ast->name;
      if (owner_sub) owner_sub->clear();
      return mit->second;
    }
    auto iit = frame.module->imported_vars.find(name);
    if (iit != frame.module->imported_vars.end()) {
      ModuleCtx* home = iit->second.home;
      auto hit = home->vars.find(iit->second.remote_name);
      if (hit != home->vars.end()) {
        if (owner_module) *owner_module = home->ast->name;
        if (owner_sub) owner_sub->clear();
        return hit->second;
      }
      // Might be an imported parameter — expose as a temporary slot.
      auto pit = home->params.find(iit->second.remote_name);
      if (pit != home->params.end()) {
        if (owner_module) *owner_module = home->ast->name;
        if (owner_sub) owner_sub->clear();
        return std::make_shared<Value>(pit->second);
      }
    }
    auto pit = frame.module->params.find(name);
    if (pit != frame.module->params.end()) {
      if (owner_module) *owner_module = frame.module->ast->name;
      if (owner_sub) owner_sub->clear();
      return std::make_shared<Value>(pit->second);
    }
    return nullptr;
  }

  const std::vector<Callable>* resolve_callable(ModuleCtx* ctx,
                                                const std::string& name) {
    auto it = ctx->callables.find(name);
    if (it == ctx->callables.end()) return nullptr;
    return &it->second;
  }

  // -------------------------------------------------------------------------
  // Expression evaluation.
  // -------------------------------------------------------------------------

  Value eval(const Expr& e, Frame& frame) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return e.is_int ? Value::make_int(static_cast<long long>(e.number))
                        : Value::make_real(e.number);
      case ExprKind::kString:
        return Value::make_char(e.text);
      case ExprKind::kLogical:
        return Value::make_logical(e.bool_value);
      case ExprKind::kRef:
        return eval_ref(e, frame);
      case ExprKind::kUnary: {
        Value v = eval(*e.rhs, frame);
        return apply_unary(e.op, std::move(v), e.line);
      }
      case ExprKind::kBinary:
        return eval_binary(e, frame);
    }
    fail("unreachable expression kind", e.line);
  }

  Value eval_binary(const Expr& e, Frame& frame) {
    // FMA contraction: when the module is compiled with FMA enabled,
    // a*b + c (either order) and a*b - c are evaluated with one rounding,
    // as AVX2/FMA codegen would do.
    if (frame.module->fma && (e.op == Op::kAdd || e.op == Op::kSub)) {
      const Expr* mul = nullptr;
      const Expr* addend = nullptr;
      bool mul_on_left = false;
      if (e.lhs->kind == ExprKind::kBinary && e.lhs->op == Op::kMul) {
        mul = e.lhs.get();
        addend = e.rhs.get();
        mul_on_left = true;
      } else if (e.op == Op::kAdd && e.rhs->kind == ExprKind::kBinary &&
                 e.rhs->op == Op::kMul) {
        mul = e.rhs.get();
        addend = e.lhs.get();
      }
      if (mul) {
        Value a = eval(*mul->lhs, frame);
        Value b = eval(*mul->rhs, frame);
        Value c = eval(*addend, frame);
        // a*b + c ; a*b - c (mul left) ; c + a*b.
        const double sign = (e.op == Op::kSub && mul_on_left) ? -1.0 : 1.0;
        const double msign = 1.0;
        (void)msign;
        if (!a.is_array() && !b.is_array() && !c.is_array() &&
            (a.kind == Value::Kind::kReal || b.kind == Value::Kind::kReal ||
             c.kind == Value::Kind::kReal)) {
          return Value::make_real(std::fma(a.as_real(), b.as_real(),
                                           sign * c.as_real()));
        }
        if (a.is_array() || b.is_array() || c.is_array()) {
          return broadcast_fma(a, b, c, sign, e.line);
        }
        // Integer-only falls through to exact arithmetic below.
      }
    }

    // Reassociation: when the module is compiled with aggressive FP
    // reassociation, a left-associated chain of three or more +/- terms is
    // summed right-to-left instead of the source's left-to-right order —
    // the association change -Ofast-style codegen is allowed to make. Only
    // the left spine is flattened, matching analysis/fpsense's site shape;
    // operands are still evaluated in source order.
    if (frame.module->reassoc && (e.op == Op::kAdd || e.op == Op::kSub) &&
        e.lhs->kind == ExprKind::kBinary &&
        (e.lhs->op == Op::kAdd || e.lhs->op == Op::kSub)) {
      return eval_reassociated(e, frame);
    }

    Value lhs = eval(*e.lhs, frame);
    Value rhs = eval(*e.rhs, frame);
    return apply_binary(e.op, std::move(lhs), std::move(rhs), e.line);
  }

  // Collects the left-spine terms of a +/- chain in source order, with the
  // sign each term carries in the left-associated sum.
  static void flatten_sum(const Expr& e,
                          std::vector<std::pair<const Expr*, int>>* terms) {
    if (e.kind == ExprKind::kBinary && (e.op == Op::kAdd || e.op == Op::kSub)) {
      flatten_sum(*e.lhs, terms);
      terms->emplace_back(e.rhs.get(), e.op == Op::kSub ? -1 : 1);
      return;
    }
    terms->emplace_back(&e, 1);
  }

  Value eval_reassociated(const Expr& e, Frame& frame) {
    std::vector<std::pair<const Expr*, int>> terms;
    flatten_sum(e, &terms);
    // Evaluate every term in source order (left-to-right), then fold the
    // signed sum right-to-left: s0*v0 + (s1*v1 + (... + sn*vn)). Integer-only
    // chains are exact either way; FP chains round differently.
    std::vector<Value> values;
    values.reserve(terms.size());
    for (const auto& [expr, sign] : terms) {
      Value v = eval(*expr, frame);
      if (sign < 0) v = apply_unary(Op::kNeg, std::move(v), e.line);
      values.push_back(std::move(v));
    }
    Value acc = std::move(values.back());
    for (std::size_t i = values.size() - 1; i-- > 0;) {
      acc = apply_binary(Op::kAdd, std::move(values[i]), std::move(acc),
                         e.line);
    }
    return acc;
  }

  Value broadcast_fma(const Value& a, const Value& b, const Value& c,
                      double sign, int line) {
    const std::size_t n = std::max({a.is_array() ? a.array.size() : 0,
                                    b.is_array() ? b.array.size() : 0,
                                    c.is_array() ? c.array.size() : 0});
    auto at = [n, line](const Value& v, std::size_t i) {
      if (!v.is_array()) return v.as_real();
      if (v.array.size() != n) fail("array size mismatch in expression", line);
      return v.array[i];
    };
    Value out = Value::make_array({static_cast<long long>(n)});
    if (a.is_array()) out.dims = a.dims;
    else if (b.is_array()) out.dims = b.dims;
    else out.dims = c.dims;
    out.array.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.array[i] = std::fma(at(a, i), at(b, i), sign * at(c, i));
    }
    return out;
  }

  Value apply_unary(Op op, Value v, int line) {
    switch (op) {
      case Op::kNeg:
        if (v.is_array()) {
          for (double& x : v.array) x = -x;
          return v;
        }
        if (v.kind == Value::Kind::kInt) return Value::make_int(-v.integer);
        return Value::make_real(-v.as_real());
      case Op::kPlusSign:
        return v;
      case Op::kNot:
        return Value::make_logical(!v.as_logical());
      default:
        fail("bad unary operator", line);
    }
  }

  Value apply_binary(Op op, Value lhs, Value rhs, int line) {
    switch (op) {
      case Op::kAnd:
        return Value::make_logical(lhs.as_logical() && rhs.as_logical());
      case Op::kOr:
        return Value::make_logical(lhs.as_logical() || rhs.as_logical());
      default:
        break;
    }
    if (lhs.is_array() || rhs.is_array()) {
      return broadcast_arith(op, lhs, rhs, line);
    }
    const bool both_int =
        lhs.kind == Value::Kind::kInt && rhs.kind == Value::Kind::kInt;
    switch (op) {
      case Op::kAdd:
        return both_int ? Value::make_int(lhs.integer + rhs.integer)
                        : Value::make_real(lhs.as_real() + rhs.as_real());
      case Op::kSub:
        return both_int ? Value::make_int(lhs.integer - rhs.integer)
                        : Value::make_real(lhs.as_real() - rhs.as_real());
      case Op::kMul:
        return both_int ? Value::make_int(lhs.integer * rhs.integer)
                        : Value::make_real(lhs.as_real() * rhs.as_real());
      case Op::kDiv:
        if (both_int) {
          if (rhs.integer == 0) fail("integer division by zero", line);
          return Value::make_int(lhs.integer / rhs.integer);
        }
        return Value::make_real(lhs.as_real() / rhs.as_real());
      case Op::kPow:
        if (both_int && rhs.integer >= 0) {
          long long result = 1, base = lhs.integer, exp = rhs.integer;
          while (exp > 0) {
            if (exp & 1) result *= base;
            base *= base;
            exp >>= 1;
          }
          return Value::make_int(result);
        }
        return Value::make_real(std::pow(lhs.as_real(), rhs.as_real()));
      case Op::kEq:
        return Value::make_logical(lhs.as_real() == rhs.as_real());
      case Op::kNe:
        return Value::make_logical(lhs.as_real() != rhs.as_real());
      case Op::kLt:
        return Value::make_logical(lhs.as_real() < rhs.as_real());
      case Op::kLe:
        return Value::make_logical(lhs.as_real() <= rhs.as_real());
      case Op::kGt:
        return Value::make_logical(lhs.as_real() > rhs.as_real());
      case Op::kGe:
        return Value::make_logical(lhs.as_real() >= rhs.as_real());
      default:
        fail("bad binary operator", line);
    }
  }

  Value broadcast_arith(Op op, const Value& lhs, const Value& rhs, int line) {
    const Value* arr = lhs.is_array() ? &lhs : &rhs;
    const std::size_t n = arr->array.size();
    if (lhs.is_array() && rhs.is_array() &&
        lhs.array.size() != rhs.array.size()) {
      fail("array size mismatch in expression", line);
    }
    auto at = [](const Value& v, std::size_t i) {
      return v.is_array() ? v.array[i] : v.as_real();
    };
    Value out = *arr;  // copy shape
    for (std::size_t i = 0; i < n; ++i) {
      const double a = at(lhs, i);
      const double b = at(rhs, i);
      double r = 0.0;
      switch (op) {
        case Op::kAdd: r = a + b; break;
        case Op::kSub: r = a - b; break;
        case Op::kMul: r = a * b; break;
        case Op::kDiv: r = a / b; break;
        case Op::kPow: r = std::pow(a, b); break;
        default:
          fail("operator not supported on arrays", line);
      }
      out.array[i] = r;
    }
    return out;
  }

  // Reference evaluation: variable access, array element/slice, derived-type
  // chains, intrinsic calls and user function calls.
  Value eval_ref(const Expr& e, Frame& frame) {
    const RefSegment& head = e.segments.front();

    if (e.segments.size() == 1) {
      ValueSlot slot = resolve_var(frame, head.name);
      if (slot) {
        if (!head.has_args) return *slot;
        return index_or_slice(*slot, head.args, frame, e.line);
      }
      if (head.has_args) {
        const std::vector<Callable>* cands =
            resolve_callable(frame.module, head.name);
        if (cands) return call_function(*cands, head.args, frame, e.line);
        if (is_intrinsic_function(head.name)) {
          return call_intrinsic(head.name, head.args, frame, e.line);
        }
      }
      fail("unknown name '" + head.name + "' in module '" +
           frame.module->ast->name + "'", e.line);
    }

    // Derived-type chain: resolve through components.
    ValueSlot slot = resolve_component_slot(e, frame);
    const RefSegment& last = e.segments.back();
    if (!last.has_args) return *slot;
    return index_or_slice(*slot, last.args, frame, e.line);
  }

  /// Resolves a multi-segment reference chain down to the final component
  /// slot (not applying the last segment's indices).
  ValueSlot resolve_component_slot(const Expr& e, Frame& frame) {
    const RefSegment& head = e.segments.front();
    if (head.has_args) {
      fail("indexed derived-type bases are not supported ('" + head.name +
           "(...)%...')", e.line);
    }
    ValueSlot slot = resolve_var(frame, head.name);
    if (!slot) fail("unknown name '" + head.name + "'", e.line);
    for (std::size_t i = 1; i < e.segments.size(); ++i) {
      if (slot->kind != Value::Kind::kDerived) {
        fail("'%" + e.segments[i].name + "' applied to non-derived value",
             e.line);
      }
      auto cit = slot->derived->components.find(e.segments[i].name);
      if (cit == slot->derived->components.end()) {
        fail("derived type '" + slot->derived->type_name +
             "' has no component '" + e.segments[i].name + "'", e.line);
      }
      if (i + 1 < e.segments.size() && e.segments[i].has_args) {
        fail("indexed intermediate derived-type components are not supported",
             e.line);
      }
      slot = cit->second;
    }
    return slot;
  }

  Value index_or_slice(const Value& v,
                       const std::vector<lang::ExprPtr>& args, Frame& frame,
                       int line) {
    if (!v.is_array()) fail("subscripts applied to a scalar", line);
    // Full-slice / mixed-slice gather.
    bool any_slice = false;
    for (const auto& a : args) {
      if (is_slice_marker(*a)) any_slice = true;
    }
    if (!any_slice) {
      std::vector<long long> subs;
      subs.reserve(args.size());
      for (const auto& a : args) subs.push_back(eval(*a, frame).as_int());
      return Value::make_real(v.array[v.flat_index(subs)]);
    }
    if (args.size() != v.dims.size()) fail("rank mismatch in slice", line);
    // Gather over sliced dimensions.
    std::vector<long long> fixed(args.size(), -1);
    std::vector<std::size_t> slice_dims;
    for (std::size_t k = 0; k < args.size(); ++k) {
      if (is_slice_marker(*args[k])) {
        slice_dims.push_back(k);
      } else {
        fixed[k] = eval(*args[k], frame).as_int();
      }
    }
    long long total = 1;
    for (std::size_t k : slice_dims) total *= v.dims[k];
    Value out = Value::make_array({total});
    std::vector<long long> subs(args.size());
    for (long long flat = 0; flat < total; ++flat) {
      long long rem = flat;
      for (std::size_t si = slice_dims.size(); si-- > 0;) {
        const std::size_t k = slice_dims[si];
        subs[k] = rem % v.dims[k] + 1;
        rem /= v.dims[k];
      }
      for (std::size_t k = 0; k < args.size(); ++k) {
        if (fixed[k] >= 0) subs[k] = fixed[k];
      }
      out.array[static_cast<std::size_t>(flat)] = v.array[v.flat_index(subs)];
    }
    return out;
  }

  // -------------------------------------------------------------------------
  // Intrinsics.
  // -------------------------------------------------------------------------

  Value call_intrinsic(const std::string& name,
                       const std::vector<lang::ExprPtr>& arg_exprs,
                       Frame& frame, int line) {
    std::vector<Value> args;
    args.reserve(arg_exprs.size());
    for (const auto& a : arg_exprs) args.push_back(eval(*a, frame));
    auto need = [&](std::size_t n) {
      if (args.size() != n) {
        fail(strfmt("intrinsic %s expects %zu arguments", name.c_str(), n),
             line);
      }
    };
    auto elemental1 = [&](double (*fn)(double)) {
      need(1);
      if (args[0].is_array()) {
        Value out = args[0];
        for (double& x : out.array) x = fn(x);
        return out;
      }
      return Value::make_real(fn(args[0].as_real()));
    };

    if (name == "abs") {
      need(1);
      if (args[0].is_array()) {
        Value out = args[0];
        for (double& x : out.array) x = std::abs(x);
        return out;
      }
      if (args[0].kind == Value::Kind::kInt) {
        return Value::make_int(std::llabs(args[0].integer));
      }
      return Value::make_real(std::abs(args[0].as_real()));
    }
    if (name == "sqrt") return elemental1(+[](double x) { return std::sqrt(x); });
    if (name == "exp") return elemental1(+[](double x) { return std::exp(x); });
    if (name == "log") return elemental1(+[](double x) { return std::log(x); });
    if (name == "log10") return elemental1(+[](double x) { return std::log10(x); });
    if (name == "sin") return elemental1(+[](double x) { return std::sin(x); });
    if (name == "cos") return elemental1(+[](double x) { return std::cos(x); });
    if (name == "tan") return elemental1(+[](double x) { return std::tan(x); });
    if (name == "tanh") return elemental1(+[](double x) { return std::tanh(x); });
    if (name == "aint") return elemental1(+[](double x) { return std::trunc(x); });

    if (name == "min" || name == "max") {
      if (args.size() < 2) fail("min/max need at least 2 arguments", line);
      bool any_array = false;
      std::size_t n = 0;
      for (const auto& a : args) {
        if (a.is_array()) {
          any_array = true;
          n = a.array.size();
        }
      }
      const bool is_min = (name == "min");
      if (!any_array) {
        bool all_int = true;
        for (const auto& a : args) all_int &= (a.kind == Value::Kind::kInt);
        double best = args[0].as_real();
        for (const auto& a : args) {
          best = is_min ? std::min(best, a.as_real())
                        : std::max(best, a.as_real());
        }
        return all_int ? Value::make_int(static_cast<long long>(best))
                       : Value::make_real(best);
      }
      Value out = Value::make_array({static_cast<long long>(n)});
      for (const auto& a : args) {
        if (a.is_array()) {
          out.dims = a.dims;
          break;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        double best = args[0].is_array() ? args[0].array[i] : args[0].as_real();
        for (const auto& a : args) {
          const double x = a.is_array() ? a.array[i] : a.as_real();
          best = is_min ? std::min(best, x) : std::max(best, x);
        }
        out.array[i] = best;
      }
      return out;
    }
    if (name == "mod") {
      need(2);
      if (args[0].kind == Value::Kind::kInt &&
          args[1].kind == Value::Kind::kInt) {
        if (args[1].integer == 0) fail("mod by zero", line);
        return Value::make_int(args[0].integer % args[1].integer);
      }
      return Value::make_real(std::fmod(args[0].as_real(), args[1].as_real()));
    }
    if (name == "sign") {
      need(2);
      const double mag = std::abs(args[0].as_real());
      return Value::make_real(args[1].as_real() >= 0.0 ? mag : -mag);
    }
    if (name == "floor") {
      need(1);
      return Value::make_int(
          static_cast<long long>(std::floor(args[0].as_real())));
    }
    if (name == "nint") {
      need(1);
      return Value::make_int(std::llround(args[0].as_real()));
    }
    if (name == "int") {
      need(1);
      return Value::make_int(args[0].as_int());
    }
    if (name == "real") {
      need(1);
      return Value::make_real(args[0].as_real());
    }
    if (name == "sum") {
      need(1);
      if (!args[0].is_array()) return args[0];
      double s = 0.0;
      for (double x : args[0].array) s += x;
      return Value::make_real(s);
    }
    if (name == "minval" || name == "maxval") {
      need(1);
      if (!args[0].is_array() || args[0].array.empty()) {
        fail(name + " requires a non-empty array", line);
      }
      auto [mn, mx] =
          std::minmax_element(args[0].array.begin(), args[0].array.end());
      return Value::make_real(name == "minval" ? *mn : *mx);
    }
    if (name == "size") {
      need(1);
      if (!args[0].is_array()) return Value::make_int(1);
      return Value::make_int(static_cast<long long>(args[0].array.size()));
    }
    if (name == "merge") {
      need(3);
      return args[2].as_logical() ? args[0] : args[1];
    }
    fail("unknown intrinsic '" + name + "'", line);
  }

  // -------------------------------------------------------------------------
  // Calls.
  // -------------------------------------------------------------------------

  struct Binding {
    ValueSlot slot;
    // Copy-out target for array-element / slice / component-element actuals.
    const Expr* writeback = nullptr;
  };

  const Callable* pick_overload(const std::vector<Callable>& cands,
                                std::size_t nargs, int line) {
    for (const auto& c : cands) {
      if (c.sp->params.size() == nargs) return &c;
    }
    fail(strfmt("no procedure overload accepts %zu arguments", nargs), line);
  }

  Value call_function(const std::vector<Callable>& cands,
                      const std::vector<lang::ExprPtr>& args, Frame& frame,
                      int line) {
    const Callable* c = pick_overload(cands, args.size(), line);
    if (!c->sp->is_function()) {
      fail("subroutine '" + c->sp->name + "' used as a function", line);
    }
    ValueSlot result = invoke(*c, args, frame, line);
    return *result;
  }

  /// Invokes a callable with actual-argument expressions evaluated in
  /// `caller`. Returns the result slot (function) or empty slot.
  ValueSlot invoke(const Callable& c, const std::vector<lang::ExprPtr>& args,
                   Frame& caller, int line) {
    const Subprogram& sp = *c.sp;
    Frame frame;
    frame.module = c.home;
    frame.sub = &sp;

    owner_->coverage_.record(c.home->ast->name, sp.name);

    // Bind dummies.
    std::vector<Binding> bindings;
    bindings.reserve(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      bindings.push_back(bind_argument(*args[i], caller, line));
      frame.locals[sp.params[i]] = bindings.back().slot;
    }
    // Allocate locals (skip dummies; allocate the function result).
    for (const auto& d : sp.decls) {
      if (frame.locals.count(d.name)) continue;  // dummy argument
      if (d.is_parameter) {
        Frame pf;
        pf.module = c.home;
        frame.locals[d.name] = std::make_shared<Value>(Value());
        *frame.locals[d.name] = eval(*d.init, pf);
        continue;
      }
      frame.locals[d.name] = std::make_shared<Value>(allocate(d, frame));
    }
    if (sp.is_function() && !frame.locals.count(sp.result_name)) {
      frame.locals[sp.result_name] =
          std::make_shared<Value>(Value::make_real(0.0));
    }

    // Execute.
    for (const auto& st : sp.body) {
      if (exec(*st, frame) == Flow::kReturn) break;
    }

    // Copy-out for element/slice actuals.
    for (std::size_t i = 0; i < bindings.size(); ++i) {
      if (bindings[i].writeback) {
        assign_to_ref(*bindings[i].writeback, *bindings[i].slot, caller,
                      /*record_watch=*/false);
      }
    }
    if (sp.is_function()) return frame.locals[sp.result_name];
    return {};
  }

  /// Fortran-style argument association: whole variables (including derived
  /// components) alias; element/slice/expression actuals get a temp with
  /// copy-out for the writable cases.
  Binding bind_argument(const Expr& actual, Frame& caller, int line) {
    (void)line;
    if (actual.is_ref()) {
      const RefSegment& last = actual.segments.back();
      if (!last.has_args) {
        // Whole variable or whole derived component: alias directly.
        std::string om, os;
        ValueSlot slot;
        if (actual.segments.size() == 1) {
          slot = resolve_var(caller, actual.base_name(), &om, &os);
        } else {
          slot = resolve_component_slot(actual, caller);
        }
        if (slot) return Binding{slot, nullptr};
        // Fall through: may be a zero-arg function reference — treat as
        // expression below.
      } else if (actual.segments.size() > 1 ||
                 resolve_var(caller, actual.base_name())) {
        // Array element or slice of a real variable: copy-in/copy-out.
        Value v = eval(actual, caller);
        auto slot = std::make_shared<Value>(std::move(v));
        return Binding{slot, &actual};
      }
      // Otherwise `name(...)` is a function call: plain expression binding.
    }
    Value v = eval(actual, caller);
    return Binding{std::make_shared<Value>(std::move(v)), nullptr};
  }

  // -------------------------------------------------------------------------
  // Statements.
  // -------------------------------------------------------------------------

  Flow exec(const Stmt& s, Frame& frame) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        Value rhs = eval(*s.rhs, frame);
        assign_to_ref(*s.lhs, rhs, frame, /*record_watch=*/true);
        ++owner_->assignments_executed_;
        return Flow::kNormal;
      }
      case StmtKind::kCall:
        return exec_call(s, frame);
      case StmtKind::kIf: {
        if (eval(*s.cond, frame).as_logical()) {
          return exec_block(s.body, frame);
        }
        for (const auto& ei : s.elseifs) {
          if (eval(*ei.cond, frame).as_logical()) {
            return exec_block(ei.body, frame);
          }
        }
        return exec_block(s.else_body, frame);
      }
      case StmtKind::kDo: {
        const long long from = eval(*s.from, frame).as_int();
        const long long to = eval(*s.to, frame).as_int();
        const long long step = s.step ? eval(*s.step, frame).as_int() : 1;
        if (step == 0) fail("zero do-loop step", s.line);
        auto it = frame.locals.find(s.do_var);
        ValueSlot var;
        if (it != frame.locals.end()) {
          var = it->second;
        } else {
          var = resolve_var(frame, s.do_var);
          if (!var) fail("undeclared do variable '" + s.do_var + "'", s.line);
        }
        for (long long i = from; step > 0 ? i <= to : i >= to; i += step) {
          *var = Value::make_int(i);
          const Flow f = exec_block(s.body, frame);
          if (f == Flow::kReturn) return Flow::kReturn;
          if (f == Flow::kExit) break;
          // kCycle falls through to the next iteration.
        }
        return Flow::kNormal;
      }
      case StmtKind::kDoWhile: {
        std::uint64_t guard = 0;
        while (eval(*s.cond, frame).as_logical()) {
          if (++guard > 100000000ull) fail("runaway do-while loop", s.line);
          const Flow f = exec_block(s.body, frame);
          if (f == Flow::kReturn) return Flow::kReturn;
          if (f == Flow::kExit) break;
          // kCycle continues the loop.
        }
        return Flow::kNormal;
      }
      case StmtKind::kReturn:
        return Flow::kReturn;
      case StmtKind::kExit:
        return Flow::kExit;
      case StmtKind::kCycle:
        return Flow::kCycle;
    }
    return Flow::kNormal;
  }

  // Control flow (return/exit/cycle) propagates up through nested blocks;
  // only the enclosing loop consumes exit/cycle.
  Flow exec_block(const std::vector<lang::StmtPtr>& body, Frame& frame) {
    for (const auto& st : body) {
      const Flow f = exec(*st, frame);
      if (f != Flow::kNormal) return f;
    }
    return Flow::kNormal;
  }

  Flow exec_call(const Stmt& s, Frame& frame) {
    const std::vector<Callable>* cands =
        resolve_callable(frame.module, s.callee);
    if (cands) {
      invoke(*pick_overload(*cands, s.args.size(), s.line), s.args, frame,
             s.line);
      return Flow::kNormal;
    }
    auto bit = builtins_.find(s.callee);
    if (bit != builtins_.end()) {
      std::vector<ValueSlot> slots;
      std::vector<Binding> bindings;
      slots.reserve(s.args.size());
      for (const auto& a : s.args) {
        bindings.push_back(bind_argument(*a, frame, s.line));
        slots.push_back(bindings.back().slot);
      }
      bit->second(slots);
      for (auto& b : bindings) {
        if (b.writeback) {
          assign_to_ref(*b.writeback, *b.slot, frame, /*record_watch=*/false);
        }
      }
      return Flow::kNormal;
    }
    fail("unknown subroutine '" + s.callee + "' called from module '" +
         frame.module->ast->name + "'", s.line);
  }

  // -------------------------------------------------------------------------
  // Assignment.
  // -------------------------------------------------------------------------

  void assign_to_ref(const Expr& lhs, const Value& rhs, Frame& frame,
                     bool record_watch) {
    std::string owner_module, owner_sub;
    ValueSlot slot;
    if (lhs.segments.size() == 1) {
      slot = resolve_var(frame, lhs.base_name(), &owner_module, &owner_sub);
      if (!slot) {
        fail("assignment to unknown variable '" + lhs.base_name() + "'",
             lhs.line);
      }
    } else {
      slot = resolve_component_slot(lhs, frame);
      // Derived components are watched at the site of assignment.
      owner_module = frame.module->ast->name;
      owner_sub = frame.sub ? frame.sub->name : "";
    }

    const RefSegment& last = lhs.segments.back();
    if (!last.has_args) {
      store_whole(*slot, rhs, lhs.line);
    } else {
      store_indexed(*slot, last.args, rhs, frame, lhs.line);
    }

    if (record_watch && owner_->record_assignments_) {
      owner_->assigned_keys_.insert(
          WatchKey{owner_module, owner_sub, lhs.canonical_name()});
    }
    if (record_watch && any_watches_) {
      WatchKey key{owner_module, owner_sub, lhs.canonical_name()};
      auto wit = owner_->watch_stats_.find(key);
      if (wit == owner_->watch_stats_.end() && !owner_sub.empty()) {
        // Module-level fallback (the metagraph keys module variables with an
        // empty subprogram).
        key.subprogram.clear();
        wit = owner_->watch_stats_.find(key);
      }
      if (wit != owner_->watch_stats_.end()) {
        if (rhs.is_array()) {
          for (double v : rhs.array) wit->second.record(v);
        } else if (rhs.is_numeric() || rhs.kind == Value::Kind::kLogical) {
          wit->second.record(rhs.as_real());
        }
      }
    }
  }

  void store_whole(Value& dst, const Value& rhs, int line) {
    switch (dst.kind) {
      case Value::Kind::kReal:
        if (rhs.is_array()) fail("cannot assign array to scalar", line);
        dst.real = rhs.as_real();
        return;
      case Value::Kind::kInt:
        dst.integer = rhs.as_int();
        return;
      case Value::Kind::kLogical:
        dst.logical = rhs.as_logical();
        return;
      case Value::Kind::kChar:
        if (rhs.kind != Value::Kind::kChar) fail("type mismatch", line);
        dst.chars = rhs.chars;
        return;
      case Value::Kind::kArray:
        if (rhs.is_array()) {
          if (rhs.array.size() != dst.array.size()) {
            fail("whole-array assignment size mismatch", line);
          }
          dst.array = rhs.array;
        } else {
          std::fill(dst.array.begin(), dst.array.end(), rhs.as_real());
        }
        return;
      case Value::Kind::kDerived:
        if (rhs.kind != Value::Kind::kDerived) {
          fail("cannot assign scalar to derived value", line);
        }
        // Component-wise deep copy.
        for (auto& [name, comp] : dst.derived->components) {
          auto sit = rhs.derived->components.find(name);
          if (sit != rhs.derived->components.end()) *comp = *sit->second;
        }
        return;
    }
  }

  void store_indexed(Value& dst, const std::vector<lang::ExprPtr>& args,
                     const Value& rhs, Frame& frame, int line) {
    if (!dst.is_array()) fail("subscripted assignment to scalar", line);
    bool any_slice = false;
    for (const auto& a : args) {
      if (is_slice_marker(*a)) any_slice = true;
    }
    if (!any_slice) {
      std::vector<long long> subs;
      for (const auto& a : args) subs.push_back(eval(*a, frame).as_int());
      dst.array[dst.flat_index(subs)] = rhs.as_real();
      return;
    }
    if (args.size() != dst.dims.size()) fail("rank mismatch in slice", line);
    std::vector<long long> fixed(args.size(), -1);
    std::vector<std::size_t> slice_dims;
    for (std::size_t k = 0; k < args.size(); ++k) {
      if (is_slice_marker(*args[k])) {
        slice_dims.push_back(k);
      } else {
        fixed[k] = eval(*args[k], frame).as_int();
      }
    }
    long long total = 1;
    for (std::size_t k : slice_dims) total *= dst.dims[k];
    if (rhs.is_array() &&
        rhs.array.size() != static_cast<std::size_t>(total)) {
      fail("slice assignment size mismatch", line);
    }
    std::vector<long long> subs(args.size());
    for (long long flat = 0; flat < total; ++flat) {
      long long rem = flat;
      for (std::size_t si = slice_dims.size(); si-- > 0;) {
        const std::size_t k = slice_dims[si];
        subs[k] = rem % dst.dims[k] + 1;
        rem /= dst.dims[k];
      }
      for (std::size_t k = 0; k < args.size(); ++k) {
        if (fixed[k] >= 0) subs[k] = fixed[k];
      }
      dst.array[dst.flat_index(subs)] =
          rhs.is_array() ? rhs.array[static_cast<std::size_t>(flat)]
                         : rhs.as_real();
    }
  }
};

// ===========================================================================
// Public interface.
// ===========================================================================

Interpreter::Interpreter(std::vector<const Module*> modules)
    : impl_(std::make_unique<Impl>(this)), prng_(std::make_unique<KissRng>()) {
  impl_->load(std::move(modules));

  // Built-in: history-file output. `call outfld('LABEL', value)` records the
  // label (lower-cased) and the global mean of the value.
  register_builtin("outfld", [this](std::vector<ValueSlot>& args) {
    if (args.size() != 2 || args[0]->kind != Value::Kind::kChar) {
      throw EvalError("outfld expects (character label, value)");
    }
    const Value& v = *args[1];
    double mean = 0.0;
    if (v.is_array()) {
      if (!v.array.empty()) {
        double s = 0.0;
        for (double x : v.array) s += x;
        mean = s / static_cast<double>(v.array.size());
      }
    } else {
      mean = v.as_real();
    }
    outputs_.emplace_back(to_lower(args[0]->chars), mean);
  });

  // Built-in: PRNG fill. `call shr_rand_uniform(x)` fills a scalar or array
  // with uniform deviates from the configured generator (KISS by default;
  // the RAND-MT experiment swaps in the Mersenne Twister).
  register_builtin("shr_rand_uniform", [this](std::vector<ValueSlot>& args) {
    if (args.size() != 1) {
      throw EvalError("shr_rand_uniform expects one argument");
    }
    Value& v = *args[0];
    if (v.is_array()) {
      for (double& x : v.array) x = prng_->uniform();
    } else {
      v.kind = Value::Kind::kReal;
      v.real = prng_->uniform();
    }
  });
}

Interpreter::~Interpreter() = default;

void Interpreter::set_fma(const std::string& module, bool enabled) {
  auto it = impl_->modules_.find(module);
  if (it == impl_->modules_.end()) {
    throw EvalError("set_fma: unknown module '" + module + "'");
  }
  it->second->fma = enabled;
}

void Interpreter::set_fma_all(bool enabled) {
  for (auto& [name, ctx] : impl_->modules_) {
    (void)name;
    ctx->fma = enabled;
  }
}

void Interpreter::set_reassoc(const std::string& module, bool enabled) {
  auto it = impl_->modules_.find(module);
  if (it == impl_->modules_.end()) {
    throw EvalError("set_reassoc: unknown module '" + module + "'");
  }
  it->second->reassoc = enabled;
}

void Interpreter::set_reassoc_all(bool enabled) {
  for (auto& [name, ctx] : impl_->modules_) {
    (void)name;
    ctx->reassoc = enabled;
  }
}

void Interpreter::register_builtin(const std::string& name,
                                   BuiltinSubroutine fn) {
  impl_->builtins_[name] = std::move(fn);
}

void Interpreter::set_prng(std::unique_ptr<Prng> prng) {
  prng_ = std::move(prng);
}

void Interpreter::add_watch(const WatchKey& key) {
  watch_stats_.emplace(key, WatchStats{});
  impl_->any_watches_ = true;
}

void Interpreter::clear_watches() {
  watch_stats_.clear();
  impl_->any_watches_ = false;
}

ValueSlot Interpreter::call(const std::string& module,
                            const std::string& subprogram,
                            std::vector<Value> args) {
  auto it = impl_->modules_.find(module);
  if (it == impl_->modules_.end()) {
    throw EvalError("call: unknown module '" + module + "'");
  }
  const auto* cands = impl_->resolve_callable(it->second.get(), subprogram);
  if (!cands) {
    throw EvalError("call: unknown subprogram '" + subprogram +
                    "' in module '" + module + "'");
  }
  // Wrap by-value arguments as literal-expression bindings.
  std::vector<lang::ExprPtr> arg_exprs;
  Impl::Frame frame;
  frame.module = it->second.get();
  // Bind values through temporary slots directly.
  const Impl::Callable* c =
      impl_->pick_overload(*cands, args.size(), 0);
  Impl::Frame callee;
  callee.module = c->home;
  callee.sub = c->sp;
  coverage_.record(c->home->ast->name, c->sp->name);
  for (std::size_t i = 0; i < args.size(); ++i) {
    callee.locals[c->sp->params[i]] =
        std::make_shared<Value>(std::move(args[i]));
  }
  for (const auto& d : c->sp->decls) {
    if (callee.locals.count(d.name)) continue;
    if (d.is_parameter) {
      Impl::Frame pf;
      pf.module = c->home;
      callee.locals[d.name] = std::make_shared<Value>(impl_->eval(*d.init, pf));
      continue;
    }
    callee.locals[d.name] =
        std::make_shared<Value>(impl_->allocate(d, callee));
  }
  if (c->sp->is_function() && !callee.locals.count(c->sp->result_name)) {
    callee.locals[c->sp->result_name] =
        std::make_shared<Value>(Value::make_real(0.0));
  }
  for (const auto& st : c->sp->body) {
    if (impl_->exec(*st, callee) == Flow::kReturn) break;
  }
  if (c->sp->is_function()) return callee.locals[c->sp->result_name];
  return {};
}

ValueSlot Interpreter::module_var(const std::string& module,
                                  const std::string& name) {
  auto it = impl_->modules_.find(module);
  if (it == impl_->modules_.end()) {
    throw EvalError("module_var: unknown module '" + module + "'");
  }
  auto vit = it->second->vars.find(name);
  if (vit == it->second->vars.end()) {
    throw EvalError("module_var: unknown variable '" + name + "' in '" +
                    module + "'");
  }
  return vit->second;
}

}  // namespace rca::interp
