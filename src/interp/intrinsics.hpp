// Fortran intrinsic procedures recognized by both the interpreter and the
// metagraph builder (which localizes them to their call site, §4.2).
#pragma once

#include <string>

namespace rca::interp {

/// True for intrinsic *functions* usable in expressions (min, max, abs, ...).
bool is_intrinsic_function(const std::string& name);

}  // namespace rca::interp
