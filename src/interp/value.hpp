// Runtime values for the Fortran-subset interpreter.
//
// Reals are IEEE doubles; arrays are 1-D double buffers (the corpus models
// CAM's column arrays); derived types are component maps holding shared
// slots so dummy-argument aliasing works like Fortran's pass-by-reference.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace rca::interp {

struct Value;
using ValueSlot = std::shared_ptr<Value>;

struct DerivedValue {
  std::string type_name;
  std::map<std::string, ValueSlot> components;
};

struct Value {
  enum class Kind { kReal, kInt, kLogical, kChar, kArray, kDerived };

  Kind kind = Kind::kReal;
  double real = 0.0;
  long long integer = 0;
  bool logical = false;
  std::string chars;
  std::vector<double> array;  // flattened row-major
  std::vector<long long> dims;
  std::shared_ptr<DerivedValue> derived;

  static Value make_real(double v) {
    Value out;
    out.kind = Kind::kReal;
    out.real = v;
    return out;
  }
  static Value make_int(long long v) {
    Value out;
    out.kind = Kind::kInt;
    out.integer = v;
    return out;
  }
  static Value make_logical(bool v) {
    Value out;
    out.kind = Kind::kLogical;
    out.logical = v;
    return out;
  }
  static Value make_char(std::string v) {
    Value out;
    out.kind = Kind::kChar;
    out.chars = std::move(v);
    return out;
  }
  static Value make_array(std::vector<long long> dims_in);

  bool is_numeric() const { return kind == Kind::kReal || kind == Kind::kInt; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Numeric scalar as double; throws EvalError otherwise.
  double as_real() const;
  long long as_int() const;
  bool as_logical() const;

  std::size_t element_count() const { return array.size(); }

  /// Row-major flat index from 1-based Fortran subscripts.
  std::size_t flat_index(const std::vector<long long>& subscripts) const;
};

}  // namespace rca::interp
