#include "interp/value.hpp"

#include "support/strings.hpp"

namespace rca::interp {

Value Value::make_array(std::vector<long long> dims_in) {
  Value out;
  out.kind = Kind::kArray;
  long long total = 1;
  for (long long d : dims_in) {
    RCA_CHECK_MSG(d >= 0, "negative array extent");
    total *= d;
  }
  out.dims = std::move(dims_in);
  out.array.assign(static_cast<std::size_t>(total), 0.0);
  return out;
}

double Value::as_real() const {
  switch (kind) {
    case Kind::kReal: return real;
    case Kind::kInt: return static_cast<double>(integer);
    case Kind::kLogical: return logical ? 1.0 : 0.0;
    default:
      throw EvalError("expected a numeric scalar value");
  }
}

long long Value::as_int() const {
  switch (kind) {
    case Kind::kInt: return integer;
    case Kind::kReal: return static_cast<long long>(real);
    case Kind::kLogical: return logical ? 1 : 0;
    default:
      throw EvalError("expected an integer value");
  }
}

bool Value::as_logical() const {
  switch (kind) {
    case Kind::kLogical: return logical;
    case Kind::kInt: return integer != 0;
    default:
      throw EvalError("expected a logical value");
  }
}

std::size_t Value::flat_index(const std::vector<long long>& subscripts) const {
  if (subscripts.size() != dims.size()) {
    throw EvalError(strfmt("rank mismatch: %zu subscripts for rank-%zu array",
                           subscripts.size(), dims.size()));
  }
  std::size_t idx = 0;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    const long long s = subscripts[k];
    if (s < 1 || s > dims[k]) {
      throw EvalError(strfmt("subscript %lld out of bounds [1, %lld]", s,
                             dims[k]));
    }
    idx = idx * static_cast<std::size_t>(dims[k]) +
          static_cast<std::size_t>(s - 1);
  }
  return idx;
}

}  // namespace rca::interp
