// Tree-walking interpreter for the Fortran subset.
//
// This is the stand-in for "running CESM": the same source corpus that the
// metagraph builder turns into a dependency digraph is *executed* here, so
// runtime sampling, coverage, output statistics and hardware-style (FMA)
// sensitivity all come from genuinely running the analyzed code.
//
// Key capabilities used by the reproduction:
//   * per-module FMA contraction mode — `a*b + c` evaluated with std::fma
//     (single rounding) when enabled, mirroring AVX2/FMA codegen differences
//     that the paper's Table 1 manipulates per module;
//   * watchpoints on (module, subprogram, variable) — every assignment to a
//     watched variable feeds running statistics, the runtime-sampling
//     mechanism of Algorithm 5.4 step 7;
//   * coverage recording at module/subprogram granularity (the paper's
//     codecov substitute);
//   * `call outfld('LABEL', field)` output capture — the CAM history-file
//     stand-in, recording per-field global means the ECT consumes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "interp/value.hpp"
#include "lang/ast.hpp"
#include "support/rng.hpp"

namespace rca::interp {

/// Identity of a watchable variable; matches metagraph node identity.
struct WatchKey {
  std::string module;
  std::string subprogram;  // empty for module-level variables
  std::string name;

  bool operator==(const WatchKey& o) const {
    return module == o.module && subprogram == o.subprogram && name == o.name;
  }
};

struct WatchKeyHash {
  std::size_t operator()(const WatchKey& k) const {
    std::hash<std::string> h;
    return h(k.module) * 1000003u ^ h(k.subprogram) * 10007u ^ h(k.name);
  }
};

/// Running statistics over every element assigned to a watched variable.
struct WatchStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double last = 0.0;

  void record(double v) {
    ++count;
    sum += v;
    sum_sq += v * v;
    last = v;
  }

  /// Root mean square of observed values (KGen compares normalized RMS).
  double rms() const;
  double mean() const;
};

/// Module/subprogram execution coverage (the codecov substitute).
class CoverageRecorder {
 public:
  void record(const std::string& module, const std::string& subprogram);
  bool module_executed(const std::string& module) const;
  bool subprogram_executed(const std::string& module,
                           const std::string& subprogram) const;
  const std::unordered_set<std::string>& modules() const { return modules_; }
  const std::unordered_set<std::string>& subprograms() const {
    return subprograms_;  // keys are "module::subprogram"
  }
  void clear();

 private:
  std::unordered_set<std::string> modules_;
  std::unordered_set<std::string> subprograms_;
};

/// Host-provided subroutine (PRNG fill, outfld, ...). Receives argument
/// slots; may mutate them (pass-by-reference semantics).
using BuiltinSubroutine = std::function<void(std::vector<ValueSlot>&)>;

class Interpreter {
 public:
  /// Loads a corpus: registers modules, resolves use-imports, evaluates
  /// parameters, and allocates module variables. Module ASTs must outlive
  /// the interpreter. Throws EvalError on unresolved names.
  explicit Interpreter(std::vector<const lang::Module*> modules);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // -- configuration ---------------------------------------------------------

  /// Enable FMA contraction for one module (throws for unknown modules).
  void set_fma(const std::string& module, bool enabled);
  void set_fma_all(bool enabled);

  /// Enable FP reassociation: +/- chains of three or more terms are summed
  /// right-to-left instead of the source's left-to-right association (the
  /// -Ofast-style perturbation behind the reassociation scenario).
  void set_reassoc(const std::string& module, bool enabled);
  void set_reassoc_all(bool enabled);

  /// Register/replace a builtin subroutine visible from every module.
  void register_builtin(const std::string& name, BuiltinSubroutine fn);

  /// Install the PRNG backing the built-in `shr_rand_uniform` subroutine.
  void set_prng(std::unique_ptr<Prng> prng);
  Prng* prng() { return prng_.get(); }

  // -- instrumentation -------------------------------------------------------

  void add_watch(const WatchKey& key);
  void clear_watches();
  const std::unordered_map<WatchKey, WatchStats, WatchKeyHash>& watch_stats()
      const {
    return watch_stats_;
  }

  /// When enabled, every executed assignment's (module, subprogram,
  /// canonical-name) identity is recorded — the dynamic counterpart of the
  /// metagraph's node set, used to validate that the static graph covers
  /// everything that actually runs.
  void set_record_assignments(bool enabled) { record_assignments_ = enabled; }
  const std::unordered_set<WatchKey, WatchKeyHash>& assigned_keys() const {
    return assigned_keys_;
  }

  CoverageRecorder& coverage() { return coverage_; }
  const CoverageRecorder& coverage() const { return coverage_; }

  /// Output fields recorded via `call outfld('LABEL', value)`, in call
  /// order: (label lower-cased, global mean of the written value).
  const std::vector<std::pair<std::string, double>>& outputs() const {
    return outputs_;
  }
  void clear_outputs() { outputs_.clear(); }

  // -- execution -------------------------------------------------------------

  /// Call `subprogram` in `module` with the given by-value arguments.
  /// Returns the function result, or an empty slot for subroutines.
  ValueSlot call(const std::string& module, const std::string& subprogram,
                 std::vector<Value> args = {});

  /// Direct access to a module variable slot (drivers and tests).
  ValueSlot module_var(const std::string& module, const std::string& name);

  /// Number of assignment statements executed since construction.
  std::uint64_t assignments_executed() const { return assignments_executed_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  // Shared with Impl.
  std::unordered_map<WatchKey, WatchStats, WatchKeyHash> watch_stats_;
  std::unordered_set<WatchKey, WatchKeyHash> assigned_keys_;
  bool record_assignments_ = false;
  CoverageRecorder coverage_;
  std::vector<std::pair<std::string, double>> outputs_;
  std::unique_ptr<Prng> prng_;
  std::uint64_t assignments_executed_ = 0;
};

}  // namespace rca::interp
