#include "slice/slicer.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "analysis/summaries.hpp"
#include "graph/bfs.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace rca::slice {

using graph::NodeId;

std::vector<std::string> internal_names_for_output(const meta::Metagraph& mg,
                                                   const std::string& label) {
  std::vector<std::string> names;
  auto it = mg.io_map().find(label);
  if (it == mg.io_map().end()) return names;
  for (NodeId v : it->second) {
    const std::string& canon = mg.info(v).canonical_name;
    if (std::find(names.begin(), names.end(), canon) == names.end()) {
      names.push_back(canon);
    }
  }
  return names;
}

namespace {

SliceResult finish_slice(const meta::Metagraph& mg,
                         std::vector<NodeId> admitted,
                         std::vector<NodeId> targets,
                         const SliceOptions& opts) {
  std::sort(admitted.begin(), admitted.end());
  admitted.erase(std::unique(admitted.begin(), admitted.end()),
                 admitted.end());

  SliceResult result;
  result.targets = std::move(targets);
  result.subgraph = induced_subgraph(mg.graph(), admitted, nullptr);
  result.nodes = std::move(admitted);

  if (opts.drop_components_smaller_than > 1 && !result.nodes.empty()) {
    std::size_t count = 0;
    auto comp = graph::weakly_connected_components(result.subgraph, &count);
    std::vector<std::size_t> sizes(count, 0);
    for (NodeId v = 0; v < comp.size(); ++v) ++sizes[comp[v]];
    std::vector<NodeId> kept;
    kept.reserve(result.nodes.size());
    for (NodeId v = 0; v < comp.size(); ++v) {
      if (sizes[comp[v]] >= opts.drop_components_smaller_than) {
        kept.push_back(result.nodes[v]);
      }
    }
    result.subgraph = induced_subgraph(mg.graph(), kept, nullptr);
    result.nodes = std::move(kept);
  }
  return result;
}

}  // namespace

SliceResult backward_slice_nodes(const meta::Metagraph& mg,
                                 const std::vector<NodeId>& targets,
                                 const SliceOptions& opts) {
  RCA_CHECK_MSG(!targets.empty(), "backward slice needs at least one target");
  obs::Span span("slice.backward");
  span.attr("targets", targets.size());
  obs::count("slice.runs");
  // Union of all BFS shortest-path node sets terminating on the targets ==
  // ancestors(targets) ∪ targets (reverse BFS).
  std::vector<NodeId> reach;
  if (opts.pool != nullptr && targets.size() > 1) {
    // One reverse BFS per target on the pool; sort+unique makes the union
    // independent of completion order and equal to the multi-source set.
    const std::vector<std::vector<NodeId>> per_target =
        opts.pool->parallel_map<std::vector<NodeId>>(
            targets.size(), [&mg, &targets](std::size_t i) {
              return graph::ancestors_of(mg.graph(), {targets[i]});
            });
    for (const auto& part : per_target) {
      reach.insert(reach.end(), part.begin(), part.end());
    }
    std::sort(reach.begin(), reach.end());
    reach.erase(std::unique(reach.begin(), reach.end()), reach.end());
  } else {
    reach = graph::ancestors_of(mg.graph(), targets);
  }
  std::vector<NodeId> admitted;
  admitted.reserve(reach.size());
  std::size_t filtered_out = 0;
  for (NodeId v : reach) {
    if (!opts.module_filter || opts.module_filter(mg.info(v).module)) {
      admitted.push_back(v);
    } else {
      ++filtered_out;
    }
  }
  span.attr("reached", reach.size());
  span.attr("module_filtered", filtered_out);
  obs::observe("slice.module_filtered", static_cast<double>(filtered_out));
  SliceResult result = finish_slice(mg, std::move(admitted),
                                    std::vector<NodeId>(targets), opts);
  span.attr("nodes", result.nodes.size());
  span.attr("edges", result.subgraph.edge_count());
  obs::observe("slice.nodes", static_cast<double>(result.nodes.size()));
  obs::observe("slice.edges",
               static_cast<double>(result.subgraph.edge_count()));
  return result;
}

std::function<bool(const std::string&)> impure_module_filter(
    const analysis::ProgramSummaries& summaries) {
  // Captured by value in shared sets so the filter outlives the summaries'
  // AST pointers (SliceOptions may be stored).
  auto with_procs = std::make_shared<std::unordered_set<std::string>>();
  auto impure = std::make_shared<std::unordered_set<std::string>>();
  for (const analysis::ProcSummary& p : summaries.procs) {
    with_procs->insert(p.module);
    if (!p.pure) impure->insert(p.module);
  }
  return [with_procs, impure](const std::string& m) {
    return with_procs->count(m) == 0 || impure->count(m) != 0;
  };
}

SliceResult backward_slice(const meta::Metagraph& mg,
                           const std::vector<std::string>& canonical_targets,
                           const SliceOptions& opts) {
  std::vector<NodeId> targets;
  std::unordered_set<NodeId> seen;
  for (const std::string& name : canonical_targets) {
    for (NodeId v : mg.by_canonical(name)) {
      if (seen.insert(v).second) targets.push_back(v);
    }
  }
  RCA_CHECK_MSG(!targets.empty(),
                "no metagraph nodes match the slicing criteria");
  return backward_slice_nodes(mg, targets, opts);
}

}  // namespace rca::slice
