// Hybrid static backward slicer (paper §5.1).
//
// Given the CAM output variables most affected by a discrepancy, the slicer
// maps them to internal canonical names (through the instrumented I/O map),
// finds every node on any BFS shortest path terminating on those canonical
// names — equivalently, the backward-reachable ancestor set — and induces
// the subgraph containing the discrepancy causes. Coverage information
// already pruned the graph at build time; control flow is ignored, so the
// slice over-approximates (static) but execution-grounded (hybrid).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "meta/metagraph.hpp"

namespace rca {
class ThreadPool;
}

namespace rca::analysis {
struct ProgramSummaries;
}

namespace rca::slice {

struct SliceOptions {
  /// Restrict admitted nodes to modules satisfying this predicate (the
  /// paper's experiments restrict to CAM modules). Null admits everything.
  std::function<bool(const std::string& module)> module_filter;
  /// Drop weakly connected components smaller than this from the result
  /// (the paper removes residual clusters of fewer than 4 nodes for plot
  /// clarity; 0/1 keeps everything).
  std::size_t drop_components_smaller_than = 0;
  /// When set and the criterion has several targets, run one reverse BFS per
  /// target concurrently and take the deterministic union — identical
  /// node-for-node to the serial multi-source traversal (the ancestor set of
  /// a target union is the union of per-target ancestor sets).
  rca::ThreadPool* pool = nullptr;
};

struct SliceResult {
  /// Slice nodes as ids in the full metagraph, sorted ascending.
  std::vector<graph::NodeId> nodes;
  /// Induced subgraph; node i corresponds to nodes[i].
  graph::Digraph subgraph;
  /// Resolved slicing-criterion nodes (full-graph ids).
  std::vector<graph::NodeId> targets;
};

/// Canonical internal names for a CAM output label, via the instrumented I/O
/// map (Table 2's output->internal mapping; e.g. output "flds" -> internal
/// "flwds").
std::vector<std::string> internal_names_for_output(const meta::Metagraph& mg,
                                                   const std::string& label);

/// Backward slice terminating on every node whose canonical name is in
/// `canonical_targets`.
SliceResult backward_slice(const meta::Metagraph& mg,
                           const std::vector<std::string>& canonical_targets,
                           const SliceOptions& opts = {});

/// Backward slice from full-graph target node ids (used by the refinement
/// engine's steps 8a/8b, which re-slice on sampled nodes).
SliceResult backward_slice_nodes(const meta::Metagraph& mg,
                                 const std::vector<graph::NodeId>& targets,
                                 const SliceOptions& opts = {});

/// Summary-driven module filter for SliceOptions: admits modules that own
/// persistent state or can change it — declaration-only modules, and modules
/// with at least one impure procedure per the interprocedural mod/ref
/// summaries (analysis/summaries.hpp). Modules whose every procedure is pure
/// are dropped. Like the paper's CAM-only filter this is a lossy focus
/// heuristic: it shrinks the candidate set to where state mutates. Unknown
/// modules are admitted (conservative).
std::function<bool(const std::string& module)> impure_module_filter(
    const analysis::ProgramSummaries& summaries);

}  // namespace rca::slice
