#include "campaign/score.hpp"

#include <algorithm>
#include <cstdio>

#include "graph/centrality.hpp"
#include "model/scenario.hpp"
#include "obs/obs.hpp"
#include "support/json.hpp"

namespace rca::campaign {

using graph::NodeId;

namespace {

/// Best planted rank under eigenvector in-centrality over the subgraph
/// induced on `nodes` (full-graph ids). SIZE_MAX when unranked.
std::size_t centrality_rank(const graph::Digraph& full,
                            const std::vector<NodeId>& nodes,
                            const std::vector<NodeId>& planted) {
  if (nodes.empty()) return SIZE_MAX;
  const graph::Digraph sub = graph::induced_subgraph(full, nodes);
  const std::vector<double> scores =
      graph::eigenvector_centrality(sub, graph::Direction::kIn);
  std::vector<NodeId> ranked;
  ranked.reserve(nodes.size());
  for (NodeId local : graph::top_k(scores, nodes.size())) {
    ranked.push_back(nodes[local]);
  }
  return model::best_rank(ranked, planted);
}

bool is_fp_kind(const std::string& kind) {
  return kind == "fp-contraction" || kind == "fp-reassociation";
}

}  // namespace

Scoreboard score_scenarios(const ScoreOptions& opts) {
  engine::Pipeline pipeline(opts.pipeline);
  Scoreboard board;
  board.top_m = opts.top_m;
  for (const model::ScenarioSpec& s : model::scenario_library()) {
    if (!opts.only.empty() &&
        std::find(opts.only.begin(), opts.only.end(), s.name) ==
            opts.only.end()) {
      continue;
    }
    obs::Span span("campaign.score");
    span.attr("scenario", s.name);
    engine::ExperimentOutcome out =
        pipeline.run_scenario(s, opts.runtime_sampling);

    ScenarioScore score;
    score.name = s.name;
    score.kind = model::cause_kind_name(s.kind);
    score.planted_nodes = out.bug_nodes.size();
    score.ect_detected = !out.verdict.pass;
    score.slice_nodes = out.slice.nodes.size();
    score.final_nodes = out.refinement.final_nodes.size();
    score.iterations = out.refinement.iterations.size();
    score.stalled = out.refinement.stalled;
    score.bug_in_final =
        model::contains_any(out.refinement.final_nodes, out.bug_nodes);
    score.bug_instrumented_at = out.refinement.bug_instrumented_at;
    score.baseline_rank = centrality_rank(pipeline.metagraph().graph(),
                                          out.slice.nodes, out.bug_nodes);
    score.refined_rank =
        centrality_rank(pipeline.metagraph().graph(),
                        out.refinement.final_nodes, out.bug_nodes);
    score.hit = score.refined_rank < opts.top_m;
    span.attr("hit", score.hit);
    board.scores.push_back(std::move(score));
  }
  for (const ScenarioScore& score : board.scores) {
    if (score.hit) ++board.hits;
    if (is_fp_kind(score.kind)) ++board.fp_scenarios;
  }
  board.hit_rate = board.scores.empty()
                       ? 0.0
                       : static_cast<double>(board.hits) /
                             static_cast<double>(board.scores.size());
  obs::gauge("campaign.score.hit_rate", board.hit_rate);
  return board;
}

std::string scoreboard_json(const Scoreboard& board) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string_value("rca.campaign.score.v1");
  w.key("top_m");
  w.integer(static_cast<long long>(board.top_m));
  w.key("scenarios");
  w.begin_array();
  for (const ScenarioScore& s : board.scores) {
    w.begin_object();
    w.key("name");
    w.string_value(s.name);
    w.key("kind");
    w.string_value(s.kind);
    w.key("planted");
    w.integer(static_cast<long long>(s.planted_nodes));
    w.key("ect_detected");
    w.boolean(s.ect_detected);
    w.key("slice_nodes");
    w.integer(static_cast<long long>(s.slice_nodes));
    w.key("final_nodes");
    w.integer(static_cast<long long>(s.final_nodes));
    w.key("iterations");
    w.integer(static_cast<long long>(s.iterations));
    w.key("stalled");
    w.boolean(s.stalled);
    w.key("bug_in_final");
    w.boolean(s.bug_in_final);
    w.key("bug_instrumented_at");
    w.integer(static_cast<long long>(s.bug_instrumented_at));
    w.key("baseline_rank");
    w.integer(s.baseline_rank == SIZE_MAX
                  ? -1
                  : static_cast<long long>(s.baseline_rank));
    w.key("refined_rank");
    w.integer(s.refined_rank == SIZE_MAX
                  ? -1
                  : static_cast<long long>(s.refined_rank));
    w.key("hit");
    w.boolean(s.hit);
    w.end_object();
  }
  w.end_array();
  w.key("scored");
  w.integer(static_cast<long long>(board.scores.size()));
  w.key("hits");
  w.integer(static_cast<long long>(board.hits));
  w.key("fp_scenarios");
  w.integer(static_cast<long long>(board.fp_scenarios));
  w.key("hit_rate");
  w.number(board.hit_rate);
  w.end_object();
  return w.str() + "\n";
}

void print_scoreboard(const Scoreboard& board) {
  std::printf("%-16s %-18s %8s %6s %6s %5s %9s %8s %4s\n", "scenario", "kind",
              "slice", "final", "iters", "ect", "baseline", "refined", "hit");
  for (const ScenarioScore& s : board.scores) {
    char baseline[24];
    char refined[24];
    if (s.baseline_rank == SIZE_MAX) {
      std::snprintf(baseline, sizeof(baseline), "-");
    } else {
      std::snprintf(baseline, sizeof(baseline), "%zu", s.baseline_rank);
    }
    if (s.refined_rank == SIZE_MAX) {
      std::snprintf(refined, sizeof(refined), "-");
    } else {
      std::snprintf(refined, sizeof(refined), "%zu", s.refined_rank);
    }
    std::printf("%-16s %-18s %8zu %6zu %6zu %5s %9s %8s %4s\n", s.name.c_str(),
                s.kind.c_str(), s.slice_nodes, s.final_nodes, s.iterations,
                s.ect_detected ? "FAIL" : "pass", baseline, refined,
                s.hit ? "YES" : "no");
  }
  std::printf("top-m=%zu  hit-rate %zu/%zu (%.0f%%), %zu FP scenarios\n",
              board.top_m, board.hits, board.scores.size(),
              100.0 * board.hit_rate, board.fp_scenarios);
}

}  // namespace rca::campaign
