// Crash-durable campaign journals.
//
// A long refinement campaign must survive its worker process dying: the
// manager records each campaign under `<journal_dir>/<id>.journal` as JSON
// lines — one `start` record carrying the verbatim /v1/refine request body
// (everything that determines the run, seed included) plus the resolved
// session key, then one `iteration` record per committed IterationSnapshot.
// The journal is deleted the moment the campaign reaches a terminal state,
// so the set of `*.journal` files on disk IS the set of campaigns a
// respawned worker must resume.
//
// Durability protocol: the start record is published with
// atomic_write_file (temp + fsync + rename — a crash can never leave a
// half-written journal behind, only a `.tmp` that the next scan ignores and
// removes); iteration records are fsync'd appends, so a crash leaves at
// most one torn final line, which load_unfinished() tolerates by dropping
// it (the iteration simply replays).
//
// Resume model: refinement is deterministic given the start body, so the
// respawned worker re-executes the campaign under its original id and
// *verifies* each replayed iteration against the journaled checkpoint
// (counters campaign.checkpoint.replayed / campaign.checkpoint.mismatch)
// before continuing past the last checkpoint. Because rca.campaign.v1
// documents carry no ids and no timestamps, the resumed result is
// byte-identical to the uncrashed run's (pinned by tests/fleet_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace rca::campaign {

class CampaignJournal {
 public:
  /// `<dir>/<id>.journal`.
  static std::string path_for(const std::string& dir, const std::string& id);

  /// Publishes the start record atomically (creates `dir` if needed).
  /// `start_body` is the verbatim request JSON; `session_key` the resolved
  /// session at admission time.
  static void write_start(const std::string& dir, const std::string& id,
                          const std::string& start_body,
                          const std::string& session_key);

  /// Appends one fsync'd iteration checkpoint.
  static void append_iteration(const std::string& dir, const std::string& id,
                               const IterationSnapshot& snap);

  /// Removes the journal (terminal state reached). Missing file is fine.
  static void remove(const std::string& dir, const std::string& id);

  /// One resumable campaign as read back from disk.
  struct Unfinished {
    std::string id;
    std::string start_body;  // verbatim request JSON
    std::string session_key;
    std::vector<IterationSnapshot> checkpoints;
  };

  /// Scans `dir` for `*.journal` files, ordered by campaign id so resume
  /// order is deterministic. Journals with a malformed start record are
  /// skipped and deleted (unresumable); a torn final iteration line is
  /// dropped. Stray `*.journal.tmp` files are removed. An absent `dir`
  /// yields an empty list.
  static std::vector<Unfinished> load_unfinished(const std::string& dir);
};

}  // namespace rca::campaign
