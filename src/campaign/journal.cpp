#include "campaign/journal.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/fsio.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace rca::campaign {

namespace fs = std::filesystem;

std::string CampaignJournal::path_for(const std::string& dir,
                                      const std::string& id) {
  return (fs::path(dir) / (id + ".journal")).string();
}

void CampaignJournal::write_start(const std::string& dir,
                                  const std::string& id,
                                  const std::string& start_body,
                                  const std::string& session_key) {
  fs::create_directories(dir);
  JsonWriter w;
  w.begin_object();
  w.key("kind");
  w.string_value("start");
  w.key("id");
  w.string_value(id);
  w.key("session");
  w.string_value(session_key);
  w.key("body");
  w.raw_value(start_body);
  w.end_object();
  atomic_write_file(path_for(dir, id), w.str() + "\n");
}

void CampaignJournal::append_iteration(const std::string& dir,
                                       const std::string& id,
                                       const IterationSnapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.key("kind");
  w.string_value("iteration");
  w.key("iteration");
  w.integer(static_cast<long long>(snap.iteration));
  w.key("nodes");
  w.integer(static_cast<long long>(snap.nodes));
  w.key("edges");
  w.integer(static_cast<long long>(snap.edges));
  w.key("communities");
  w.integer(static_cast<long long>(snap.communities));
  w.key("sampled");
  w.integer(static_cast<long long>(snap.sampled_sites));
  w.key("differing");
  w.integer(static_cast<long long>(snap.differing_sites));
  w.key("detected");
  w.boolean(snap.detected);
  w.key("applied_8a");
  w.boolean(snap.applied_8a);
  w.key("stall_broken");
  w.boolean(snap.stall_broken);
  w.end_object();
  append_line_durable(path_for(dir, id), w.str());
}

void CampaignJournal::remove(const std::string& dir, const std::string& id) {
  std::error_code ec;
  fs::remove(path_for(dir, id), ec);  // best effort; absence is fine
}

namespace {

/// Numeric part of "cN" for deterministic resume ordering; 0 if malformed.
unsigned long long id_number(const std::string& id) {
  if (id.size() < 2 || id[0] != 'c') return 0;
  unsigned long long n = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    n = n * 10 + static_cast<unsigned long long>(id[i] - '0');
  }
  return n;
}

}  // namespace

std::vector<CampaignJournal::Unfinished> CampaignJournal::load_unfinished(
    const std::string& dir) {
  std::vector<Unfinished> out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return out;

  std::vector<fs::path> journals;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (ends_with(name, ".journal.tmp")) {
      // A crash between open() and rename(): never observable as a journal,
      // and must not accumulate.
      std::error_code rm;
      fs::remove(entry.path(), rm);
      continue;
    }
    if (ends_with(name, ".journal")) journals.push_back(entry.path());
  }
  std::sort(journals.begin(), journals.end(),
            [](const fs::path& a, const fs::path& b) {
              return id_number(a.stem().string()) <
                     id_number(b.stem().string());
            });

  for (const fs::path& path : journals) {
    std::ifstream in(path);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    Unfinished u;
    bool valid = false;
    for (const std::string& raw_line : split(text, '\n')) {
      const std::string line = std::string(trim(raw_line));
      if (line.empty()) continue;
      JsonValue rec;
      try {
        rec = parse_json(line);
      } catch (const Error&) {
        // Torn final line from a crash mid-append: the iteration it was
        // recording replays during resume. Anything after it is garbage.
        break;
      }
      const std::string kind = rec.get_string("kind");
      if (!valid) {
        if (kind != "start") break;  // malformed journal: no start record
        u.id = rec.get_string("id");
        u.session_key = rec.get_string("session");
        const JsonValue* body = rec.get("body");
        if (u.id.empty() || body == nullptr) break;
        u.start_body = to_json(*body);
        valid = true;
        continue;
      }
      if (kind != "iteration") break;
      IterationSnapshot snap;
      snap.iteration =
          static_cast<std::size_t>(rec.get_int("iteration", 0));
      snap.nodes = static_cast<std::size_t>(rec.get_int("nodes", 0));
      snap.edges = static_cast<std::size_t>(rec.get_int("edges", 0));
      snap.communities =
          static_cast<std::size_t>(rec.get_int("communities", 0));
      snap.sampled_sites =
          static_cast<std::size_t>(rec.get_int("sampled", 0));
      snap.differing_sites =
          static_cast<std::size_t>(rec.get_int("differing", 0));
      snap.detected = rec.get_bool("detected", false);
      snap.applied_8a = rec.get_bool("applied_8a", false);
      snap.stall_broken = rec.get_bool("stall_broken", false);
      u.checkpoints.push_back(snap);
    }
    if (valid) {
      out.push_back(std::move(u));
    } else {
      // No usable start record: nothing to resume, don't rescan forever.
      std::error_code rm;
      fs::remove(path, rm);
    }
  }
  return out;
}

}  // namespace rca::campaign
