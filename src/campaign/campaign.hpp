// Refinement campaigns as a service.
//
// A *campaign* is a long-lived, server-side run of Algorithm 5.4: it owns a
// pinned session (the LRU must not evict a graph mid-refinement), slices the
// session's metagraph on the requested criteria, then iterates 8a/8b
// re-induction on a dedicated engine thread pool, recording per-iteration
// progress (subgraph size, communities, sampled sites, differences,
// stall-breaking events). Campaigns are asynchronous: POST /v1/refine starts
// one and returns immediately; GET /v1/refine/status streams progress while
// it runs; GET /v1/refine/result answers the finished document; POST
// /v1/refine/cancel requests a cooperative stop at the next iteration
// boundary.
//
// Two flavours:
//   * session campaigns — the request names a resident session (or "src")
//     plus slicing criteria and ground-truth "bug" names for the simulated
//     sampler;
//   * scenario campaigns — the request names a planted root-cause scenario
//     from model/scenario.hpp: the control corpus is generated, built into a
//     session through the ordinary store (content-keyed, so it participates
//     in LRU/pinning like any other), and the scenario supplies the planted
//     ground truth and default criteria. "runtime": true samples by actually
//     executing ensemble-vs-experiment model runs through the interpreter
//     (RuntimeSampler) instead of reachability simulation.
//
// Progress and result documents use the `rca.campaign.v1` schema. They
// deliberately contain no campaign id and no timestamps: identical seeds
// must produce byte-identical documents (ids are transport-level, returned
// by POST /v1/refine and passed back in poll bodies).
//
// Observability: campaign.started/completed/cancelled/failed/rejected
// counters, campaign.iterations, a campaign.run span per campaign, and the
// campaign.step / campaign.sample fault sites (a fault mid-campaign fails
// that campaign cleanly — state "failed", session unpinned — and never
// wedges the store).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/refinement.hpp"
#include "model/scenario.hpp"
#include "service/router.hpp"
#include "service/session_store.hpp"
#include "support/thread_pool.hpp"

namespace rca::campaign {

enum class CampaignState { kPending, kRunning, kDone, kCancelled, kFailed };

const char* campaign_state_name(CampaignState s);

/// One recorded refinement iteration (the progress-log row).
struct IterationSnapshot {
  std::size_t iteration = 0;  // 1-based
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t communities = 0;
  std::size_t sampled_sites = 0;
  std::size_t differing_sites = 0;
  bool detected = false;
  bool applied_8a = false;
  bool stall_broken = false;
};

/// Final ranked site (eigenvector in-centrality over the final subgraph).
struct RankedSite {
  std::string unique_name;
  std::string module;
  double centrality = 0.0;
  bool planted = false;
};

/// Everything one campaign was asked to do (parsed out of the start body).
struct CampaignParams {
  std::string scenario;  // empty = session campaign
  std::uint64_t seed = 2019;
  bool runtime_sampling = false;
  std::vector<std::string> targets;  // canonical internal names
  std::vector<std::string> bug_names;  // session campaigns: ground truth
  bool cam_only = false;
  std::size_t drop_small = 0;
  engine::RefinementOptions refinement;
  std::size_t top = 10;  // ranked sites reported
  /// Verbatim /v1/refine request JSON. When non-empty and the manager has a
  /// journal_dir, the campaign is journaled for crash resume: the body is
  /// everything needed to deterministically re-execute the run.
  std::string start_body;
};

struct CampaignManagerOptions {
  /// Campaigns admitted concurrently (pending + running); one worker each.
  std::size_t max_running = 8;
  /// Threads in the shared engine pool campaigns sample communities on.
  std::size_t engine_threads = 2;
  /// Finished campaigns retained for result polling; the oldest finished
  /// ones are forgotten beyond this.
  std::size_t max_retained = 64;
  /// Directory for per-campaign crash journals (see campaign/journal.hpp);
  /// conventionally `<snapshot_dir>/campaigns`. Empty disables durability.
  std::string journal_dir;
};

class CampaignManager {
 public:
  CampaignManager(service::SessionStore* store, CampaignManagerOptions opts);
  ~CampaignManager();

  CampaignManager(const CampaignManager&) = delete;
  CampaignManager& operator=(const CampaignManager&) = delete;

  /// Registers POST /v1/refine, GET|POST /v1/refine/status,
  /// GET|POST /v1/refine/result and POST /v1/refine/cancel on the router.
  /// Call before serving. The router reference must outlive the manager's
  /// routes (`router` is captured for resolve_session on session campaigns).
  void install_routes(service::Router& router);

  /// Starts a campaign from parsed parameters and an already-resolved
  /// session; returns the campaign id ("c1", "c2", ...). Throws
  /// service::HandlerError (429, retriable) when max_running campaigns are
  /// already active. Programmatic entry for tests and the CLI.
  std::string start(CampaignParams params,
                    std::shared_ptr<const service::Session> session);

  /// Replays every unfinished journal in options().journal_dir: each is
  /// re-admitted under its original id (bypassing the max_running gate —
  /// these campaigns were already admitted once) and re-executed, verifying
  /// the journaled checkpoints along the way (counters
  /// campaign.checkpoint.replayed / .mismatch). Journals that cannot be
  /// resumed (e.g. a session campaign whose bare "session" key is no longer
  /// resident) are dropped with campaign.resume_failed. Call once at worker
  /// startup, after install_routes and before serving. Returns the number
  /// of campaigns resumed.
  std::size_t resume_unfinished(service::Router& router);

  /// rca.campaign.v1 progress document. Throws HandlerError(404) for an
  /// unknown id.
  std::string status_json(const std::string& id) const;

  /// rca.campaign.v1 result document. Throws HandlerError(404) for an
  /// unknown id and HandlerError(409, retriable) while still running.
  std::string result_json(const std::string& id) const;

  /// Requests a cooperative cancel; returns the state observed. Unknown id
  /// throws HandlerError(404). Idempotent; cancelling a finished campaign is
  /// a no-op.
  CampaignState cancel(const std::string& id);

  CampaignState state(const std::string& id) const;

  /// Blocks until the campaign leaves pending/running (test helper; the
  /// service polls instead).
  CampaignState wait(const std::string& id);

  /// Campaigns currently pending or running.
  std::size_t active() const;

  const CampaignManagerOptions& options() const { return opts_; }

 private:
  struct Campaign;

  std::shared_ptr<Campaign> find(const std::string& id) const;
  /// Shared admission path. `forced_id` non-empty = journal resume: reuse
  /// the id, seed checkpoint verification with `expected`, skip the
  /// capacity gate and the (already present) start record.
  std::string admit(CampaignParams params,
                    std::shared_ptr<const service::Session> session,
                    const std::string& forced_id,
                    std::vector<IterationSnapshot> expected,
                    bool bypass_capacity);
  void run(const std::shared_ptr<Campaign>& c);
  void write_progress(JsonWriter& w, const Campaign& c) const;
  /// Drops the oldest finished campaigns beyond max_retained (mu_ held).
  void prune_finished_locked();

  service::SessionStore* store_;
  CampaignManagerOptions opts_;
  /// Campaign bodies run here: one task per campaign, so max_running tasks.
  std::unique_ptr<ThreadPool> workers_;
  /// Shared sampling pool for RefinementOptions::pool ("performed in
  /// parallel") — distinct from workers_: a campaign blocking on a
  /// parallel_for of its own pool would deadlock.
  std::unique_ptr<ThreadPool> engine_pool_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Campaign>> campaigns_;
  std::vector<std::string> order_;  // insertion order, for pruning
  std::uint64_t next_id_ = 0;
};

/// Parses a /v1/refine request body into params + a resolved session.
/// Scenario campaigns generate their corpus and build the session through
/// `store` (get_or_build: content-keyed, single-flight, LRU-managed);
/// session campaigns resolve through `router.resolve_session`. Throws
/// service::HandlerError on bad input.
CampaignParams parse_campaign_request(
    const JsonValue& body, service::Router& router,
    std::shared_ptr<const service::Session>* session_out);

}  // namespace rca::campaign
