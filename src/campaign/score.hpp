// Scenario scoring harness: runs the full pipeline (ensemble -> UF-ECT ->
// variable selection -> backward slice -> iterative refinement) once per
// planted root-cause scenario (model/scenario.hpp) and reports whether the
// planted cause lands in the top-m ranked sites. Two ranks per scenario:
//
//   baseline — the planted node's best eigenvector in-centrality rank over
//              the raw backward slice (what a developer staring at the
//              slice would see);
//   refined  — the same rank over the refinement's final subgraph (what
//              Algorithm 5.4 leaves on the table).
//
// hit = refined rank < top_m. The scoreboard is seed-stable: identical
// seeds produce byte-identical scoreboard_json output (BENCH_campaign.json
// in the perf lane).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/pipeline.hpp"

namespace rca::campaign {

struct ScenarioScore {
  std::string name;
  std::string kind;  // cause_kind_name
  std::size_t planted_nodes = 0;
  /// UF-ECT verdict failed on the 3-run experimental set (discrepancy seen).
  bool ect_detected = false;
  std::size_t slice_nodes = 0;
  std::size_t final_nodes = 0;
  std::size_t iterations = 0;
  bool stalled = false;
  bool bug_in_final = false;
  /// Iteration (1-based) at which a planted node was sampled; 0 = never.
  std::size_t bug_instrumented_at = 0;
  /// SIZE_MAX when no planted node is ranked at all.
  std::size_t baseline_rank = SIZE_MAX;
  std::size_t refined_rank = SIZE_MAX;
  bool hit = false;
};

struct ScoreOptions {
  /// A planted site ranked strictly inside the top-m counts as a hit.
  std::size_t top_m = 15;
  /// Sample communities with real ensemble-vs-experiment model runs
  /// (RuntimeSampler) instead of reachability simulation.
  bool runtime_sampling = false;
  /// Restrict to these scenario names; empty scores the whole library.
  std::vector<std::string> only;
  /// Pipeline configuration (corpus scale, ensemble size, threads, ...).
  engine::PipelineConfig pipeline;
};

struct Scoreboard {
  std::vector<ScenarioScore> scores;
  std::size_t top_m = 15;
  std::size_t hits = 0;
  std::size_t fp_scenarios = 0;  // FP-perturbation scenarios scored
  double hit_rate = 0.0;
};

/// Runs every selected scenario through one shared Pipeline (bug corpora are
/// built once per BugId and cached) and scores it.
Scoreboard score_scenarios(const ScoreOptions& opts = {});

/// rca.campaign.score.v1 document (deterministic; unranked ranks emit -1).
std::string scoreboard_json(const Scoreboard& board);

/// Human-readable table on stdout.
void print_scoreboard(const Scoreboard& board);

}  // namespace rca::campaign
