#include "campaign/campaign.hpp"

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "campaign/journal.hpp"
#include "fault/fault.hpp"
#include "graph/centrality.hpp"
#include "model/corpus.hpp"
#include "obs/obs.hpp"
#include "slice/slicer.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace rca::campaign {

using graph::NodeId;
using service::HandlerError;

const char* campaign_state_name(CampaignState s) {
  switch (s) {
    case CampaignState::kPending: return "pending";
    case CampaignState::kRunning: return "running";
    case CampaignState::kDone: return "done";
    case CampaignState::kCancelled: return "cancelled";
    case CampaignState::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

/// Wraps the campaign's inner sampler with the campaign.sample fault site
/// and a sample counter. Called from the engine pool's community tasks; an
/// injected fault propagates out of RefinementEngine::run and fails the
/// campaign cleanly.
class FaultableSampler : public engine::Sampler {
 public:
  explicit FaultableSampler(engine::Sampler* inner) : inner_(inner) {}

  std::vector<NodeId> detect_differences(
      const std::vector<NodeId>& sites) override {
    RCA_FAULT_POINT("campaign.sample");
    obs::count("campaign.samples");
    return inner_->detect_differences(sites);
  }

  std::vector<engine::Difference> detect_with_magnitudes(
      const std::vector<NodeId>& sites) override {
    RCA_FAULT_POINT("campaign.sample");
    obs::count("campaign.samples");
    return inner_->detect_with_magnitudes(sites);
  }

 private:
  engine::Sampler* inner_;
};

void push_unique(std::vector<std::string>* names, const std::string& name) {
  if (std::find(names->begin(), names->end(), name) == names->end()) {
    names->push_back(name);
  }
}

/// Eigenvector in-centrality ranking of the final subgraph, flagged against
/// the planted ground truth — the campaign's actual answer.
std::vector<RankedSite> rank_final_nodes(const meta::Metagraph& mg,
                                         const std::vector<NodeId>& final_nodes,
                                         const std::vector<NodeId>& planted,
                                         std::size_t top) {
  std::vector<RankedSite> ranked;
  if (final_nodes.empty()) return ranked;
  const graph::Digraph sub = graph::induced_subgraph(mg.graph(), final_nodes);
  const std::vector<double> scores =
      graph::eigenvector_centrality(sub, graph::Direction::kIn);
  for (NodeId local : graph::top_k(scores, top)) {
    const NodeId global = final_nodes[local];
    const meta::NodeInfo& info = mg.info(global);
    RankedSite site;
    site.unique_name = info.unique_name;
    site.module = info.module;
    site.centrality = scores[local];
    site.planted = std::find(planted.begin(), planted.end(), global) !=
                   planted.end();
    ranked.push_back(std::move(site));
  }
  return ranked;
}

bool snapshots_equal(const IterationSnapshot& a, const IterationSnapshot& b) {
  return a.iteration == b.iteration && a.nodes == b.nodes &&
         a.edges == b.edges && a.communities == b.communities &&
         a.sampled_sites == b.sampled_sites &&
         a.differing_sites == b.differing_sites && a.detected == b.detected &&
         a.applied_8a == b.applied_8a && a.stall_broken == b.stall_broken;
}

std::string require_campaign_id(const JsonValue& body) {
  const std::string id = body.get_string("campaign");
  if (id.empty()) {
    throw HandlerError{400, "bad_request", "need \"campaign\" (the id from POST /v1/refine)"};
  }
  return id;
}

}  // namespace

struct CampaignManager::Campaign {
  std::string id;
  CampaignParams params;
  std::shared_ptr<const service::Session> session;
  const model::ScenarioSpec* scenario = nullptr;  // null = session campaign
  std::atomic<bool> cancel{false};
  /// Crash durability: true when this campaign has a journal on disk.
  bool journaled = false;
  /// Checkpoints read back from the journal on resume; the first
  /// expected.size() iterations replay deterministically and are verified
  /// against these instead of re-appended.
  std::vector<IterationSnapshot> expected;

  // Pin bookkeeping: held from admission until the run exits (any path), so
  // the LRU can never evict the session mid-refinement. The destructor is
  // the backstop for campaigns torn down before their worker ran.
  service::SessionStore* store = nullptr;
  std::atomic<bool> pin_held{false};
  void release_pin() {
    if (pin_held.exchange(false)) store->unpin(session->key());
  }
  ~Campaign() { release_pin(); }

  mutable std::mutex mu;
  std::condition_variable cv;
  CampaignState state = CampaignState::kPending;
  std::string error;
  std::vector<IterationSnapshot> progress;
  std::vector<std::string> targets;  // resolved slicing criteria
  std::size_t planted_count = 0;
  std::size_t slice_nodes = 0;
  std::size_t slice_edges = 0;
  // Result fields (valid in kDone/kCancelled).
  bool stalled = false;
  bool was_cancelled = false;
  std::size_t final_nodes = 0;
  std::size_t bug_instrumented_at = 0;
  std::size_t first_detection_at = 0;
  std::vector<RankedSite> ranked;
  bool hit = false;
};

CampaignManager::CampaignManager(service::SessionStore* store,
                                 CampaignManagerOptions opts)
    : store_(store), opts_(opts) {
  if (opts_.max_running == 0) opts_.max_running = 1;
  workers_ = std::make_unique<ThreadPool>(opts_.max_running);
  engine_pool_ = std::make_unique<ThreadPool>(
      opts_.engine_threads == 0 ? 1 : opts_.engine_threads);
}

CampaignManager::~CampaignManager() {
  // Cooperative drain: ask every live campaign to stop at its next
  // iteration boundary, then let the worker pool join.
  std::vector<std::shared_ptr<Campaign>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, c] : campaigns_) live.push_back(c);
  }
  for (auto& c : live) c->cancel.store(true, std::memory_order_relaxed);
  workers_.reset();  // joins after running tasks finish
  engine_pool_.reset();
}

std::shared_ptr<CampaignManager::Campaign> CampaignManager::find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw HandlerError{404, "campaign_not_found", "no campaign " + id};
  }
  return it->second;
}

std::string CampaignManager::start(
    CampaignParams params, std::shared_ptr<const service::Session> session) {
  return admit(std::move(params), std::move(session), /*forced_id=*/"", {},
               /*bypass_capacity=*/false);
}

std::string CampaignManager::admit(
    CampaignParams params, std::shared_ptr<const service::Session> session,
    const std::string& forced_id, std::vector<IterationSnapshot> expected,
    bool bypass_capacity) {
  RCA_CHECK_MSG(session != nullptr, "campaign needs a session");
  std::shared_ptr<Campaign> c;
  {
    std::lock_guard<std::mutex> lock(mu_);
    prune_finished_locked();
    if (!bypass_capacity) {
      std::size_t active = 0;
      for (auto& [id, existing] : campaigns_) {
        std::lock_guard<std::mutex> clock(existing->mu);
        if (existing->state == CampaignState::kPending ||
            existing->state == CampaignState::kRunning) {
          ++active;
        }
      }
      if (active >= opts_.max_running) {
        obs::count("campaign.rejected");
        throw HandlerError{429, "over_capacity",
                           "campaign capacity (" +
                               std::to_string(opts_.max_running) +
                               ") exhausted; retry later",
                           /*retriable=*/true, /*retry_after=*/1};
      }
    }
    c = std::make_shared<Campaign>();
    if (forced_id.empty()) {
      c->id = "c" + std::to_string(++next_id_);
    } else {
      // Journal resume: keep the transport-visible id, and make sure fresh
      // campaigns can never collide with a resumed one.
      c->id = forced_id;
      if (forced_id.size() > 1 && forced_id[0] == 'c') {
        std::uint64_t n = 0;
        bool numeric = true;
        for (std::size_t i = 1; i < forced_id.size(); ++i) {
          if (forced_id[i] < '0' || forced_id[i] > '9') {
            numeric = false;
            break;
          }
          n = n * 10 + static_cast<std::uint64_t>(forced_id[i] - '0');
        }
        if (numeric) next_id_ = std::max(next_id_, n);
      }
      RCA_CHECK_MSG(campaigns_.find(c->id) == campaigns_.end(),
                    "duplicate campaign id on resume");
    }
    c->params = std::move(params);
    c->session = std::move(session);
    c->expected = std::move(expected);
    if (!c->params.scenario.empty()) {
      c->scenario = model::find_scenario(c->params.scenario);
      RCA_CHECK_MSG(c->scenario != nullptr, "scenario vanished after parse");
    }
    c->store = store_;
    store_->pin(c->session->key());
    c->pin_held.store(true);
    campaigns_[c->id] = c;
    order_.push_back(c->id);
  }

  // Durability: publish the start record before the worker can produce any
  // checkpoint. A resumed campaign's journal already exists. A journal
  // write failure downgrades the campaign to non-durable instead of
  // failing it — durability is best-effort, the run itself is not.
  if (!opts_.journal_dir.empty() && !c->params.start_body.empty()) {
    if (forced_id.empty()) {
      try {
        CampaignJournal::write_start(opts_.journal_dir, c->id,
                                     c->params.start_body,
                                     c->session->key());
        c->journaled = true;
      } catch (const std::exception&) {
        obs::count("campaign.journal.errors");
      }
    } else {
      c->journaled = true;
    }
  }

  obs::count(forced_id.empty() ? "campaign.started" : "campaign.resumed");
  workers_->submit([this, c] { run(c); });
  return c->id;
}

std::size_t CampaignManager::resume_unfinished(service::Router& router) {
  if (opts_.journal_dir.empty()) return 0;
  std::size_t resumed = 0;
  for (CampaignJournal::Unfinished& u :
       CampaignJournal::load_unfinished(opts_.journal_dir)) {
    try {
      const JsonValue body = parse_json(u.start_body);
      std::shared_ptr<const service::Session> session;
      CampaignParams params = parse_campaign_request(body, router, &session);
      params.start_body = u.start_body;
      admit(std::move(params), std::move(session), u.id,
            std::move(u.checkpoints), /*bypass_capacity=*/true);
      ++resumed;
    } catch (const std::exception&) {
      // Unresumable (e.g. a bare "session" key that is no longer resident):
      // drop the journal so it does not shadow every future restart.
      obs::count("campaign.resume_failed");
      CampaignJournal::remove(opts_.journal_dir, u.id);
    }
  }
  return resumed;
}

void CampaignManager::prune_finished_locked() {
  while (campaigns_.size() > opts_.max_retained) {
    bool pruned = false;
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      auto cit = campaigns_.find(*it);
      if (cit == campaigns_.end()) {
        it = order_.erase(it);
        pruned = true;
        break;
      }
      std::lock_guard<std::mutex> clock(cit->second->mu);
      if (cit->second->state == CampaignState::kDone ||
          cit->second->state == CampaignState::kCancelled ||
          cit->second->state == CampaignState::kFailed) {
        campaigns_.erase(cit);
        order_.erase(it);
        pruned = true;
        break;
      }
    }
    if (!pruned) break;  // everything retained is still live
  }
}

void CampaignManager::run(const std::shared_ptr<Campaign>& c) {
  {
    std::lock_guard<std::mutex> lock(c->mu);
    c->state = CampaignState::kRunning;
  }
  obs::Span span("campaign.run");
  span.attr("scenario",
            c->params.scenario.empty() ? "-" : c->params.scenario.c_str());
  span.attr("runtime_sampling", c->params.runtime_sampling);
  try {
    const meta::Metagraph& mg = c->session->metagraph();

    // Ground truth: the scenario's planted nodes, or the request's named
    // bug variables resolved by canonical name.
    std::vector<NodeId> planted;
    if (c->scenario != nullptr) {
      planted =
          model::scenario_planted_nodes(*c->scenario, mg, c->session->modules());
    } else {
      for (const std::string& name : c->params.bug_names) {
        for (NodeId v : mg.by_canonical(name)) planted.push_back(v);
      }
      std::sort(planted.begin(), planted.end());
      planted.erase(std::unique(planted.begin(), planted.end()),
                    planted.end());
    }
    RCA_CHECK_MSG(!planted.empty(),
                  "no ground-truth nodes resolved for this campaign");

    // Criteria: explicit targets, or the outputs the planted cause can
    // actually reach (scenario default).
    std::vector<std::string> targets = c->params.targets;
    if (targets.empty()) {
      for (const std::string& label : model::affected_outputs(mg, planted)) {
        for (const std::string& name :
             slice::internal_names_for_output(mg, label)) {
          push_unique(&targets, name);
        }
      }
    }
    RCA_CHECK_MSG(!targets.empty(), "no slicing criteria resolved");
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->targets = targets;
      c->planted_count = planted.size();
    }

    slice::SliceOptions sopts;
    if (c->params.cam_only) {
      sopts.module_filter = [](const std::string& m) {
        return model::is_cam_module(m);
      };
    }
    sopts.drop_components_smaller_than = c->params.drop_small;
    const slice::SliceResult sl = slice::backward_slice(mg, targets, sopts);
    RCA_CHECK_MSG(!sl.nodes.empty(), "empty slice for the campaign criteria");
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->slice_nodes = sl.nodes.size();
      c->slice_edges = sl.subgraph.edge_count();
    }

    // Sampler: scenario campaigns may sample by actually running the model
    // (one accepted member vs. the scenario's perturbed configuration);
    // everything else deduces differences from planted-node reachability.
    std::unique_ptr<model::CesmModel> control;
    std::unique_ptr<model::CesmModel> experiment;
    std::unique_ptr<engine::Sampler> inner;
    if (c->params.runtime_sampling && c->scenario != nullptr) {
      model::CorpusSpec corpus;
      corpus.seed = c->params.seed;
      control =
          std::make_unique<model::CesmModel>(corpus, engine_pool_.get());
      experiment = std::make_unique<model::CesmModel>(
          model::scenario_corpus_spec(*c->scenario, corpus),
          engine_pool_.get());
      model::RunConfig control_config;
      control_config.member_seed = 31;  // one accepted member
      const model::RunConfig experiment_config =
          model::scenario_run_config(*c->scenario, control_config);
      inner = std::make_unique<engine::RuntimeSampler>(
          mg, *control, *experiment, control_config, experiment_config);
    } else {
      inner = std::make_unique<engine::SimulatedSampler>(mg, planted);
    }
    FaultableSampler sampler(inner.get());

    engine::RefinementOptions ropts = c->params.refinement;
    ropts.pool = engine_pool_.get();
    ropts.on_iteration = [this, c](const engine::IterationReport& report,
                                   const std::vector<NodeId>&) {
      RCA_FAULT_POINT("campaign.step");
      IterationSnapshot snap;
      snap.nodes = report.subgraph_nodes;
      snap.edges = report.subgraph_edges;
      snap.communities = report.communities.size();
      for (const engine::CommunityReport& comm : report.communities) {
        snap.sampled_sites += comm.sampled.size();
        snap.differing_sites += comm.differing.size();
      }
      snap.detected = report.detected;
      snap.applied_8a = report.applied_8a;
      snap.stall_broken = report.stall_broken;
      obs::count("campaign.iterations");
      bool append = false;
      {
        std::lock_guard<std::mutex> lock(c->mu);
        snap.iteration = c->progress.size() + 1;
        c->progress.push_back(snap);
        if (c->journaled) {
          if (snap.iteration <= c->expected.size()) {
            // Resume replay: this iteration is already on disk — verify the
            // deterministic re-execution reproduced it instead of
            // re-appending.
            obs::count(snapshots_equal(c->expected[snap.iteration - 1], snap)
                           ? "campaign.checkpoint.replayed"
                           : "campaign.checkpoint.mismatch");
          } else {
            append = true;
          }
        }
      }
      if (append) {
        try {
          CampaignJournal::append_iteration(opts_.journal_dir, c->id, snap);
        } catch (const std::exception&) {
          obs::count("campaign.journal.errors");
        }
      }
      return !c->cancel.load(std::memory_order_relaxed);
    };

    engine::RefinementEngine eng(mg, sampler, ropts);
    const engine::RefinementResult res =
        eng.run(sl.nodes, planted, sl.targets);

    std::vector<RankedSite> ranked =
        rank_final_nodes(mg, res.final_nodes, planted, c->params.top);
    bool hit = false;
    for (const RankedSite& site : ranked) hit = hit || site.planted;

    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->stalled = res.stalled;
      c->was_cancelled = res.cancelled;
      c->final_nodes = res.final_nodes.size();
      c->bug_instrumented_at = res.bug_instrumented_at;
      c->first_detection_at = res.first_detection_at;
      c->ranked = std::move(ranked);
      c->hit = hit;
      c->state =
          res.cancelled ? CampaignState::kCancelled : CampaignState::kDone;
    }
    obs::count(res.cancelled ? "campaign.cancelled" : "campaign.completed");
    span.attr("iterations", res.iterations.size());
    span.attr("final_nodes", res.final_nodes.size());
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->error = e.what();
      c->state = CampaignState::kFailed;
    }
    obs::count("campaign.failed");
  }
  c->release_pin();
  // Terminal state: the journal's job is done, whatever the outcome — only
  // campaigns that never finished are resumable.
  if (c->journaled) CampaignJournal::remove(opts_.journal_dir, c->id);
  {
    std::lock_guard<std::mutex> lock(c->mu);
    span.attr("state", campaign_state_name(c->state));
  }
  c->cv.notify_all();
}

void CampaignManager::write_progress(JsonWriter& w, const Campaign& c) const {
  // Caller holds c.mu. Deliberately no campaign id and no timestamps: the
  // document must be byte-identical across runs with identical seeds.
  if (!c.params.scenario.empty()) {
    w.key("scenario");
    w.string_value(c.params.scenario);
  }
  w.key("session");
  w.string_value(c.session->key());
  w.key("state");
  w.string_value(campaign_state_name(c.state));
  w.key("targets");
  w.begin_array();
  for (const std::string& t : c.targets) w.string_value(t);
  w.end_array();
  w.key("planted");
  w.integer(static_cast<long long>(c.planted_count));
  w.key("slice_nodes");
  w.integer(static_cast<long long>(c.slice_nodes));
  w.key("slice_edges");
  w.integer(static_cast<long long>(c.slice_edges));
  w.key("iterations");
  w.begin_array();
  for (const IterationSnapshot& s : c.progress) {
    w.begin_object();
    w.key("iteration");
    w.integer(static_cast<long long>(s.iteration));
    w.key("nodes");
    w.integer(static_cast<long long>(s.nodes));
    w.key("edges");
    w.integer(static_cast<long long>(s.edges));
    w.key("communities");
    w.integer(static_cast<long long>(s.communities));
    w.key("sampled");
    w.integer(static_cast<long long>(s.sampled_sites));
    w.key("differing");
    w.integer(static_cast<long long>(s.differing_sites));
    w.key("detected");
    w.boolean(s.detected);
    w.key("applied_8a");
    w.boolean(s.applied_8a);
    w.key("stall_broken");
    w.boolean(s.stall_broken);
    w.end_object();
  }
  w.end_array();
}

std::string CampaignManager::status_json(const std::string& id) const {
  const std::shared_ptr<Campaign> c = find(id);
  JsonWriter w;
  std::lock_guard<std::mutex> lock(c->mu);
  w.begin_object();
  w.key("schema");
  w.string_value("rca.campaign.v1");
  w.key("kind");
  w.string_value("status");
  write_progress(w, *c);
  w.end_object();
  return w.str() + "\n";
}

std::string CampaignManager::result_json(const std::string& id) const {
  const std::shared_ptr<Campaign> c = find(id);
  JsonWriter w;
  std::lock_guard<std::mutex> lock(c->mu);
  if (c->state == CampaignState::kPending ||
      c->state == CampaignState::kRunning) {
    throw HandlerError{409, "not_finished",
                       "campaign " + id +
                           " is still running; poll /v1/refine/status",
                       /*retriable=*/true, /*retry_after=*/1};
  }
  w.begin_object();
  w.key("schema");
  w.string_value("rca.campaign.v1");
  w.key("kind");
  w.string_value("result");
  write_progress(w, *c);
  if (c->state == CampaignState::kFailed) {
    w.key("error");
    w.string_value(c->error);
  } else {
    w.key("stalled");
    w.boolean(c->stalled);
    w.key("cancelled");
    w.boolean(c->was_cancelled);
    w.key("final_nodes");
    w.integer(static_cast<long long>(c->final_nodes));
    w.key("bug_instrumented_at");
    w.integer(static_cast<long long>(c->bug_instrumented_at));
    w.key("first_detection_at");
    w.integer(static_cast<long long>(c->first_detection_at));
    w.key("ranked");
    w.begin_array();
    for (const RankedSite& site : c->ranked) {
      w.begin_object();
      w.key("name");
      w.string_value(site.unique_name);
      w.key("module");
      w.string_value(site.module);
      w.key("centrality");
      w.number(site.centrality);
      w.key("planted");
      w.boolean(site.planted);
      w.end_object();
    }
    w.end_array();
    w.key("hit");
    w.boolean(c->hit);
  }
  w.end_object();
  return w.str() + "\n";
}

CampaignState CampaignManager::cancel(const std::string& id) {
  const std::shared_ptr<Campaign> c = find(id);
  c->cancel.store(true, std::memory_order_relaxed);
  obs::count("campaign.cancel_requests");
  std::lock_guard<std::mutex> lock(c->mu);
  return c->state;
}

CampaignState CampaignManager::state(const std::string& id) const {
  const std::shared_ptr<Campaign> c = find(id);
  std::lock_guard<std::mutex> lock(c->mu);
  return c->state;
}

CampaignState CampaignManager::wait(const std::string& id) {
  const std::shared_ptr<Campaign> c = find(id);
  std::unique_lock<std::mutex> lock(c->mu);
  c->cv.wait(lock, [&c] {
    return c->state != CampaignState::kPending &&
           c->state != CampaignState::kRunning;
  });
  return c->state;
}

std::size_t CampaignManager::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, c] : campaigns_) {
    std::lock_guard<std::mutex> clock(c->mu);
    if (c->state == CampaignState::kPending ||
        c->state == CampaignState::kRunning) {
      ++n;
    }
  }
  return n;
}

CampaignParams parse_campaign_request(
    const JsonValue& body, service::Router& router,
    std::shared_ptr<const service::Session>* session_out) {
  CampaignParams p;
  p.scenario = body.get_string("scenario");
  p.seed = static_cast<std::uint64_t>(body.get_int("seed", 2019));
  p.runtime_sampling = body.get_bool("runtime", false);
  p.top = static_cast<std::size_t>(body.get_int("top", 10));

  std::shared_ptr<const service::Session> session;
  if (!p.scenario.empty()) {
    if (model::find_scenario(p.scenario) == nullptr) {
      std::string names;
      for (const std::string& n : model::scenario_names()) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      throw HandlerError{404, "scenario_not_found",
                         "unknown scenario \"" + p.scenario + "\" (have: " +
                             names + ")"};
    }
    // The scenario's control corpus becomes an ordinary store session:
    // content-keyed, single-flight, LRU-managed and pinned for the
    // campaign's duration like any client-built graph.
    model::CorpusSpec corpus;
    corpus.seed = p.seed;
    model::GeneratedCorpus gen = model::generate_corpus(corpus);
    service::SessionConfig config;
    config.build_list = gen.compiled_modules;
    service::SourceList sources;
    sources.reserve(gen.files.size());
    for (model::GeneratedFile& f : gen.files) {
      sources.emplace_back(std::move(f.path), std::move(f.text));
    }
    session = router.store().get_or_build(config, std::move(sources));
    p.cam_only = body.get_bool("cam_only", true);
    p.drop_small = static_cast<std::size_t>(body.get_int("drop_small", 4));
  } else {
    if (p.runtime_sampling) {
      throw HandlerError{400, "bad_request",
                         "\"runtime\" sampling needs a \"scenario\""};
    }
    session = router.resolve_session(body);
    p.bug_names = body.get_string_array("bug");
    if (p.bug_names.empty()) {
      throw HandlerError{
          400, "bad_request",
          "session campaigns need \"bug\" ground-truth variable names "
          "(or start from a \"scenario\")"};
    }
    p.cam_only = body.get_bool("cam_only", false);
    p.drop_small = static_cast<std::size_t>(body.get_int("drop_small", 0));
  }

  p.targets = body.get_string_array("targets");
  for (const std::string& label : body.get_string_array("outputs")) {
    for (const std::string& name :
         slice::internal_names_for_output(session->metagraph(), label)) {
      push_unique(&p.targets, name);
    }
  }
  if (p.targets.empty() && p.scenario.empty()) {
    throw HandlerError{400, "bad_request", "need \"targets\" or \"outputs\""};
  }

  engine::RefinementOptions& r = p.refinement;
  r.max_iterations =
      static_cast<std::size_t>(body.get_int("max_iterations", 8));
  r.samples_per_community =
      static_cast<std::size_t>(body.get_int("samples", 10));
  r.min_community_size =
      static_cast<std::size_t>(body.get_int("min_size", 4));
  r.small_enough = static_cast<std::size_t>(body.get_int("small_enough", 10));
  r.rank_differences_on_stall = body.get_bool("rank_on_stall", true);
  r.gn_budget_ms = body.get_int("gn_budget_ms", 10000);
  const std::string method = body.get_string("method", "gn");
  if (method == "gn") {
    r.community_method = engine::CommunityMethod::kGirvanNewman;
  } else if (method == "louvain") {
    r.community_method = engine::CommunityMethod::kLouvain;
  } else {
    throw HandlerError{400, "bad_request",
                       "unknown community method \"" + method +
                           "\" (gn | louvain)"};
  }

  *session_out = std::move(session);
  return p;
}

void CampaignManager::install_routes(service::Router& router) {
  service::Router* rp = &router;
  router.add_route(
      "POST", "/v1/refine",
      [this, rp](const service::Request&, const JsonValue& body) {
        std::shared_ptr<const service::Session> session;
        CampaignParams params = parse_campaign_request(body, *rp, &session);
        // The verbatim body is the campaign's durable identity: everything
        // a respawned worker needs to re-execute the run is in it.
        params.start_body = to_json(body);
        const std::string scenario = params.scenario;
        const std::string session_key = session->key();
        const std::string id = start(std::move(params), std::move(session));
        JsonWriter w;
        w.begin_object();
        w.key("campaign");
        w.string_value(id);
        w.key("session");
        w.string_value(session_key);
        if (!scenario.empty()) {
          w.key("scenario");
          w.string_value(scenario);
        }
        w.key("state");
        w.string_value(campaign_state_name(state(id)));
        w.end_object();
        return service::Response{200, w.str() + "\n"};
      });
  const auto status_handler = [this](const service::Request&,
                                     const JsonValue& body) {
    return service::Response{200, status_json(require_campaign_id(body))};
  };
  const auto result_handler = [this](const service::Request&,
                                     const JsonValue& body) {
    return service::Response{200, result_json(require_campaign_id(body))};
  };
  // GET with a body works over the loopback transport (and matches the
  // read-only semantics); POST is registered too for strict clients.
  router.add_route("GET", "/v1/refine/status", status_handler);
  router.add_route("POST", "/v1/refine/status", status_handler);
  router.add_route("GET", "/v1/refine/result", result_handler);
  router.add_route("POST", "/v1/refine/result", result_handler);
  router.add_route(
      "POST", "/v1/refine/cancel",
      [this](const service::Request&, const JsonValue& body) {
        const std::string id = require_campaign_id(body);
        const CampaignState s = cancel(id);
        JsonWriter w;
        w.begin_object();
        w.key("campaign");
        w.string_value(id);
        w.key("state");
        w.string_value(campaign_state_name(s));
        w.key("cancel_requested");
        w.boolean(true);
        w.end_object();
        return service::Response{200, w.str() + "\n"};
      });
}

}  // namespace rca::campaign
