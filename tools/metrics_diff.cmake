# metrics_diff — compare two rca.metrics.v1 JSON files with tolerances.
#
# Usage:
#   cmake -DBASELINE=a.json -DCURRENT=b.json \
#         [-DCOUNTER_TOL_PERCENT=0] [-DSPAN_TOL_PERCENT=100] \
#         [-DIGNORE='regex'] \
#         -P tools/metrics_diff.cmake
#
# Counters are the deterministic part of a run (graph sizes, model runs,
# betweenness sweeps, refinement iterations): they must match within
# COUNTER_TOL_PERCENT (default 0 = exact). Span durations are wall-clock and
# noisy: per-name total duration must match within SPAN_TOL_PERCENT (default
# 100, i.e. no more than 2x slower). Exits fatally on the first violation —
# CI uses this as a perf-regression tripwire.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED BASELINE OR NOT DEFINED CURRENT)
  message(FATAL_ERROR "usage: cmake -DBASELINE=a.json -DCURRENT=b.json -P metrics_diff.cmake")
endif()
if(NOT DEFINED COUNTER_TOL_PERCENT)
  set(COUNTER_TOL_PERCENT 0)
endif()
if(NOT DEFINED SPAN_TOL_PERCENT)
  set(SPAN_TOL_PERCENT 100)
endif()

file(READ ${BASELINE} base_json)
file(READ ${CURRENT} cur_json)

string(JSON base_schema ERROR_VARIABLE base_err GET ${base_json} schema)
if(base_err OR NOT base_schema STREQUAL "rca.metrics.v1")
  message(FATAL_ERROR "metrics_diff: ${BASELINE} is not an rca.metrics.v1 document")
endif()
string(JSON cur_schema ERROR_VARIABLE cur_err GET ${cur_json} schema)
if(cur_err OR NOT cur_schema STREQUAL "rca.metrics.v1")
  message(FATAL_ERROR "metrics_diff: ${CURRENT} is not an rca.metrics.v1 document")
endif()

# Truncate a JSON number (possibly with fraction/exponent) to an integer
# CMake's math() can handle.
function(to_int value out)
  string(REGEX MATCH "^-?[0-9]+" int_part "${value}")
  if(int_part STREQUAL "")
    set(int_part 0)
  endif()
  set(${out} ${int_part} PARENT_SCOPE)
endfunction()

# |a - b| <= max(|a|, floor) * tol_percent / 100, integer arithmetic.
function(check_within a b tol_percent what)
  to_int("${a}" ia)
  to_int("${b}" ib)
  math(EXPR diff "${ia} - ${ib}")
  if(diff LESS 0)
    math(EXPR diff "0 - ${diff}")
  endif()
  set(mag ${ia})
  if(mag LESS 0)
    math(EXPR mag "0 - ${mag}")
  endif()
  math(EXPR allowed "(${mag} * ${tol_percent}) / 100")
  if(diff GREATER allowed)
    message(FATAL_ERROR
      "metrics_diff: ${what} drifted beyond ${tol_percent}%: "
      "baseline=${a} current=${b}")
  endif()
endfunction()

# ---------------------------------------------------------------------------
# Counters: every baseline counter must exist and match within tolerance.
# ---------------------------------------------------------------------------
string(JSON base_counters GET ${base_json} counters)
string(JSON cur_counters GET ${cur_json} counters)
string(JSON n_counters LENGTH ${base_counters})
set(checked 0)
if(n_counters GREATER 0)
  math(EXPR last "${n_counters} - 1")
  foreach(i RANGE ${last})
    string(JSON name MEMBER ${base_counters} ${i})
    if(DEFINED IGNORE AND name MATCHES "${IGNORE}")
      continue()
    endif()
    string(JSON base_val GET ${base_counters} ${name})
    string(JSON cur_val ERROR_VARIABLE err GET ${cur_counters} ${name})
    if(err)
      message(FATAL_ERROR "metrics_diff: counter '${name}' missing from ${CURRENT}")
    endif()
    check_within("${base_val}" "${cur_val}" ${COUNTER_TOL_PERCENT} "counter '${name}'")
    math(EXPR checked "${checked} + 1")
  endforeach()
endif()
message(STATUS "metrics_diff: ${checked} counters within ${COUNTER_TOL_PERCENT}%")

# ---------------------------------------------------------------------------
# Spans: total duration per span name, compared within SPAN_TOL_PERCENT.
# Duration regressions only trip when the current run is SLOWER.
# ---------------------------------------------------------------------------
function(sum_durations json out_names_var)
  string(JSON spans GET ${json} spans)
  string(JSON n LENGTH ${spans})
  set(names "")
  if(n GREATER 0)
    math(EXPR last "${n} - 1")
    foreach(i RANGE ${last})
      string(JSON name GET ${spans} ${i} name)
      string(JSON dur GET ${spans} ${i} duration_us)
      to_int("${dur}" idur)
      if(idur LESS 0)
        continue()  # still-open span
      endif()
      string(MAKE_C_IDENTIFIER "${name}" key)
      if(NOT DEFINED sum_${key})
        set(sum_${key} 0)
        list(APPEND names "${name}")
      endif()
      math(EXPR sum_${key} "${sum_${key}} + ${idur}")
    endforeach()
  endif()
  foreach(name IN LISTS names)
    string(MAKE_C_IDENTIFIER "${name}" key)
    set(${out_names_var}_${key} ${sum_${key}} PARENT_SCOPE)
  endforeach()
  set(${out_names_var} "${names}" PARENT_SCOPE)
endfunction()

sum_durations(${base_json} base_span)
sum_durations(${cur_json} cur_span)

set(span_checked 0)
foreach(name IN LISTS base_span)
  if(DEFINED IGNORE AND name MATCHES "${IGNORE}")
    continue()
  endif()
  string(MAKE_C_IDENTIFIER "${name}" key)
  if(NOT DEFINED cur_span_${key})
    message(FATAL_ERROR "metrics_diff: span '${name}' missing from ${CURRENT}")
  endif()
  # Only a slowdown is a regression; allow baseline * (100+tol)/100.
  math(EXPR allowed "(${base_span_${key}} * (100 + ${SPAN_TOL_PERCENT})) / 100")
  if(cur_span_${key} GREATER allowed)
    message(FATAL_ERROR
      "metrics_diff: span '${name}' slowed beyond ${SPAN_TOL_PERCENT}%: "
      "baseline=${base_span_${key}}us current=${cur_span_${key}}us")
  endif()
  math(EXPR span_checked "${span_checked} + 1")
endforeach()
message(STATUS "metrics_diff: ${span_checked} span groups within +${SPAN_TOL_PERCENT}%")
message(STATUS "metrics_diff: OK")
