# bench_diff — compare two rca.bench_graph.v1 JSON files (perf trajectory).
#
# Usage:
#   cmake -DBASELINE=BENCH_graph.json -DCURRENT=new.json \
#         [-DTOL_PERCENT=15] -P tools/bench_diff.cmake
#
# Every kernel in the baseline must exist in the current run, and its
# *normalized* median (median_ms / calibration_ms, both measured in the same
# process) must not be more than TOL_PERCENT slower. Normalization cancels
# absolute runner speed: a uniformly slow CI machine scales the calibration
# workload and the kernels alike, so only relative regressions of the graph
# kernels trip the gate. Speedups never fail — commit the regenerated JSON
# to ratchet the trajectory instead.
#
# The current run's self-gates (sampled-betweenness speedup and rank
# correlation) must also have passed.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED BASELINE OR NOT DEFINED CURRENT)
  message(FATAL_ERROR "usage: cmake -DBASELINE=a.json -DCURRENT=b.json -P bench_diff.cmake")
endif()
if(NOT DEFINED TOL_PERCENT)
  set(TOL_PERCENT 15)
endif()

file(READ ${BASELINE} base_json)
file(READ ${CURRENT} cur_json)

foreach(doc IN ITEMS base cur)
  string(JSON schema ERROR_VARIABLE err GET ${${doc}_json} schema)
  if(err OR NOT schema STREQUAL "rca.bench_graph.v1")
    message(FATAL_ERROR "bench_diff: ${doc} file is not an rca.bench_graph.v1 document")
  endif()
endforeach()

# Parse a JSON number (decimal, optional fraction/exponent from %.17g) into
# fixed-point micro-units (value * 1e6, truncated) so integer math() can
# compare it. Handles the value range this schema produces (~1e-3..1e4).
function(to_fixed value out)
  if(NOT "${value}" MATCHES "^(-?)([0-9]+)(\\.([0-9]+))?([eE]([+-]?[0-9]+))?$")
    message(FATAL_ERROR "bench_diff: cannot parse number '${value}'")
  endif()
  set(sign "${CMAKE_MATCH_1}")
  set(ip "${CMAKE_MATCH_2}")
  set(fp "${CMAKE_MATCH_4}")
  set(ex "${CMAKE_MATCH_6}")
  if(ex STREQUAL "")
    set(ex 0)
  endif()
  string(LENGTH "${fp}" fplen)
  # fixed = (ip.fp) * 10^ex * 1e6 = digits * 10^(6 + ex - len(fp))
  set(digits "${ip}${fp}")
  math(EXPR shift "6 + ${ex} - ${fplen}")
  if(shift GREATER_EQUAL 0)
    string(REPEAT "0" ${shift} zeros)
    set(digits "${digits}${zeros}")
  else()
    math(EXPR keep "0 - ${shift}")
    string(LENGTH "${digits}" dlen)
    math(EXPR keep "${dlen} - ${keep}")
    if(keep LESS_EQUAL 0)
      set(digits 0)
    else()
      string(SUBSTRING "${digits}" 0 ${keep} digits)
    endif()
  endif()
  # Strip leading zeros so math() cannot misread the literal.
  string(REGEX REPLACE "^0+([0-9])" "\\1" digits "${digits}")
  set(${out} "${sign}${digits}" PARENT_SCOPE)
endfunction()

# ---------------------------------------------------------------------------
# Self-gates of the current run must hold (speedup + rank correlation).
# ---------------------------------------------------------------------------
string(JSON gates_pass ERROR_VARIABLE err GET ${cur_json} gates pass)
if(err)
  message(FATAL_ERROR "bench_diff: ${CURRENT} has no gates.pass field")
endif()
if(NOT gates_pass STREQUAL "ON" AND NOT gates_pass STREQUAL "true")
  string(JSON sp GET ${cur_json} gates sampled_speedup)
  string(JSON rho GET ${cur_json} gates sampled_spearman)
  message(FATAL_ERROR "bench_diff: current run failed its self-gates "
          "(speedup=${sp}, spearman=${rho})")
endif()

# ---------------------------------------------------------------------------
# Per-kernel normalized medians: slower than baseline * (1 + tol) fails.
# ---------------------------------------------------------------------------
string(JSON base_kernels GET ${base_json} kernels)
string(JSON cur_kernels GET ${cur_json} kernels)
string(JSON n LENGTH ${base_kernels})
set(checked 0)
if(n GREATER 0)
  math(EXPR last "${n} - 1")
  foreach(i RANGE ${last})
    string(JSON name MEMBER ${base_kernels} ${i})
    string(JSON base_val GET ${base_kernels} ${name} normalized)
    string(JSON cur_val ERROR_VARIABLE err GET ${cur_kernels} ${name} normalized)
    if(err)
      message(FATAL_ERROR "bench_diff: kernel '${name}' missing from ${CURRENT}")
    endif()
    to_fixed("${base_val}" base_fixed)
    to_fixed("${cur_val}" cur_fixed)
    math(EXPR allowed "(${base_fixed} * (100 + ${TOL_PERCENT})) / 100")
    if(cur_fixed GREATER allowed)
      message(FATAL_ERROR
        "bench_diff: kernel '${name}' slowed beyond ${TOL_PERCENT}%: "
        "baseline normalized=${base_val} current=${cur_val}")
    endif()
    message(STATUS "bench_diff: ${name}: ${base_val} -> ${cur_val} ok")
    math(EXPR checked "${checked} + 1")
  endforeach()
endif()
message(STATUS "bench_diff: ${checked} kernels within +${TOL_PERCENT}%")
message(STATUS "bench_diff: OK")
