// rca-tool — command-line interface to the climate-rca pipeline.
//
//   rca-tool generate    --out DIR [--seed N] [--bug NAME] [--aux N]
//   rca-tool graph       --src DIR [--build-list FILE] [--coverage] --out FILE
//                        [--format v1|v2] [--jobs N] [--snapshot DIR]
//                        [--prune-dead-stores] [--summary-prune]
//   rca-tool lint        --src DIR [--build-list FILE] [--jobs N]
//                        [--json FILE] [--tsv FILE] [--fail-on error|warn|none]
//                        [--interprocedural | --no-interprocedural]
//                        [--summaries-out FILE] [--fpsense-out FILE]
//   rca-tool info        --graph FILE
//   rca-tool slice       --graph FILE (--target NAME | --output LABEL)...
//                        [--cam-only] [--drop-small N] [--dot FILE]
//   rca-tool communities --graph FILE [--method gn|louvain] [--min-size N]
//                        [--iterations N] [--samples N] [--seed N]
//                        [--budget-ms N] [--dot FILE]
//   rca-tool centrality  --graph FILE [--kind KIND] [--top N] [--modules]
//   rca-tool analyze     --experiment NAME [--runtime-sampling]
//                        [--members N] [--seed N] [--jobs N]
//                        [--snapshot DIR] [--graph-out FILE]
//                        [--prune-dead-stores]
//   rca-tool serve       [--port N] [--port-file FILE] [--snapshot DIR]
//                        [--jobs N] [--request-threads N]
//                        [--max-in-flight N] [--deadline-ms N]
//                        [--session-bytes N] [--campaigns N]
//                        [--campaign-threads N] [--generation N]
//                        [--stable-health]
//   rca-tool fleet       [--workers N] [--port N] [--port-file FILE]
//                        [--snapshot DIR] [--run-dir DIR]
//                        [--worker-binary PATH] [--gateway-threads N]
//                        [--probe-interval-ms N] [--probe-timeout-ms N]
//                        [--probe-strikes N] [--backoff-initial-ms N]
//                        [--backoff-cap-ms N] [--retry-attempts N]
//                        [--retry-base-ms N] [--retry-cap-ms N]
//                        (plus serve tuning flags, forwarded to workers)
//   rca-tool refine      (--scenario NAME [--seed N] [--runtime]
//                         | --src DIR --bug NAME...
//                           (--target NAME | --output LABEL)...)
//                        [--top N] [--max-iterations N] [--samples N]
//                        [--min-size N] [--small-enough N]
//                        [--method gn|louvain] [--cam-only] [--drop-small N]
//                        [--jobs N] [--json FILE]
//   rca-tool score       [--scenario NAME]... [--top N] [--runtime]
//                        [--members N] [--jobs N] [--json FILE]
//   rca-tool watch       --src DIR [--build-list FILE] [--prune-dead-stores]
//                        [--interval-ms N] [--iterations N] [--jobs N]
//                        [--snapshot DIR]
//
// `--jobs N` parses/builds on N worker threads (bit-identical to serial);
// `--snapshot DIR` caches built metagraphs keyed on source content, so an
// unchanged corpus skips parse+build (counter meta.snapshot.hits).
//
// `generate` writes a synthetic-CESM source tree; `graph` parses any
// directory of Fortran-subset files into a serialized metagraph; the rest
// operate on saved metagraphs — so the full §4-§5 workflow runs from a
// shell, like the paper's Python toolkit did.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/fpsense.hpp"
#include "analysis/passes.hpp"
#include "analysis/summaries.hpp"
#include "campaign/campaign.hpp"
#include "campaign/score.hpp"
#include "engine/pipeline.hpp"
#include "fault/fault.hpp"
#include "fleet/gateway.hpp"
#include "fleet/supervisor.hpp"
#include "graph/centrality.hpp"
#include "graph/degree_dist.hpp"
#include "graph/dot_export.hpp"
#include "graph/girvan_newman.hpp"
#include "graph/louvain.hpp"
#include "graph/nonbacktracking.hpp"
#include "lang/parser.hpp"
#include "meta/builder.hpp"
#include "meta/serialize.hpp"
#include "meta/snapshot_cache.hpp"
#include "model/corpus.hpp"
#include "model/model.hpp"
#include "obs/obs.hpp"
#include "service/build_info.hpp"
#include "service/front_end.hpp"
#include "service/http_server.hpp"
#include "service/router.hpp"
#include "service/session_store.hpp"
#include "slice/slicer.hpp"
#include "support/args.hpp"
#include "support/fsio.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace fs = std::filesystem;
using namespace rca;

namespace {

int usage() {
  std::cerr <<
      "rca-tool — root cause analysis for large Fortran-style code bases\n"
      "\n"
      "subcommands:\n"
      "  generate     write a synthetic-CESM corpus to disk\n"
      "  graph        parse sources into a serialized variable digraph\n"
      "  lint         run the dataflow lint passes, report diagnostics\n"
      "  info         summarize a saved graph\n"
      "  slice        backward slice from output labels / canonical names\n"
      "  communities  Girvan-Newman or Louvain partition of a slice\n"
      "  centrality   rank nodes or modules\n"
      "  analyze      run a full paper experiment on the synthetic model\n"
      "  serve        resident RCA query daemon (HTTP/JSON on 127.0.0.1)\n"
      "  fleet        supervised multi-process worker fleet behind one\n"
      "               loopback gateway (crash containment + warm restart)\n"
      "  refine       run one refinement campaign to completion, print the\n"
      "               rca.campaign.v1 progress + result documents\n"
      "  score        run the planted-scenario library through the full\n"
      "               pipeline, report top-m hit-rate\n"
      "  watch        keep a resident session patched as sources change\n"
      "\n"
      "refine options:\n"
      "  --scenario NAME      planted scenario (see `score`); generates the\n"
      "                       corpus and derives ground truth + criteria\n"
      "  --seed N             scenario corpus seed (default 2019)\n"
      "  --runtime            sample by real ensemble-vs-experiment runs\n"
      "  --src DIR            session campaign over an on-disk corpus\n"
      "  --bug NAME           ground-truth canonical name(s) (session mode)\n"
      "  --target/--output    slicing criteria (session mode)\n"
      "  --method gn|louvain  community detector (default gn)\n"
      "  --top N              ranked sites reported (default 10)\n"
      "  --json FILE          also write the result document to FILE\n"
      "\n"
      "score options:\n"
      "  --scenario NAME      restrict to named scenario(s); repeatable\n"
      "  --top N              hit threshold top-m (default 15)\n"
      "  --members N          ensemble members (default 40)\n"
      "  --runtime            RuntimeSampler instead of simulated sampling\n"
      "  --json FILE          write the rca.campaign.score.v1 scoreboard\n"
      "\n"
      "watch options:\n"
      "  --src DIR            source tree to watch (required)\n"
      "  --build-list FILE    build configuration (one module per line)\n"
      "  --prune-dead-stores  builder option, as in `graph`\n"
      "  --interval-ms N      poll interval (default 500)\n"
      "  --iterations N       stop after N polls (default 0 = run forever)\n"
      "  --jobs N             parse/build worker threads\n"
      "  --snapshot DIR       snapshot-cache dir (cold start + persistence)\n"
      "\n"
      "serve options:\n"
      "  --port N             listen port (default 0 = ephemeral)\n"
      "  --port-file FILE     write the chosen port to FILE after binding\n"
      "  --snapshot DIR       snapshot-cache dir for session warm starts\n"
      "  --jobs N             parse/build worker threads (default serial)\n"
      "  --request-threads N  request execution pool size (default 4)\n"
      "  --max-in-flight N    reject (429) past N queued+running requests\n"
      "  --deadline-ms N      default per-request deadline (default 30000)\n"
      "  --session-bytes N    resident session byte budget (LRU eviction)\n"
      "  --campaigns N        concurrent refinement campaigns (default 8)\n"
      "  --campaign-threads N campaign engine pool size (default 2)\n"
      "  --generation N       worker generation reported by /v1/health\n"
      "  --stable-health      byte-stable /v1/health (uptime_ms = 0)\n"
      "\n"
      "fleet options (serve tuning flags are forwarded to every worker):\n"
      "  --workers N          worker shard processes (default 4)\n"
      "  --run-dir DIR        port files + worker logs (default fleet-run)\n"
      "  --worker-binary P    worker executable (default /proc/self/exe)\n"
      "  --probe-interval-ms / --probe-timeout-ms / --probe-strikes\n"
      "                       health-probe cadence, timeout, kill threshold\n"
      "  --backoff-initial-ms / --backoff-cap-ms\n"
      "                       exponential jittered respawn backoff bounds\n"
      "  --retry-attempts / --retry-base-ms / --retry-cap-ms\n"
      "                       gateway per-request retry budget and backoff\n"
      "\n"
      "global options (any subcommand):\n"
      "  --metrics-out FILE   record spans/counters/histograms, write JSON\n"
      "  --trace              print the span tree to stderr on exit\n"
      "  --fault-spec SPEC    arm deterministic fault injection (also via\n"
      "                       RCA_FAULTS); SPEC is seed=N and comma-joined\n"
      "                       site:probability:action[:after_n[:max_fires]]\n"
      "                       entries, action throw|errno|delay-MS|short-write\n"
      "  --version            print the build id (shared with /v1/health)\n"
      "\n"
      "run `rca-tool <subcommand> --help` semantics are documented at the\n"
      "top of apps/rca_tool.cpp and in README.md.\n";
  return 2;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const fs::path& path, const std::string& text) {
  if (!path.parent_path().empty()) fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path.string());
  out << text;
}

model::BugId parse_bug(const std::string& name) {
  if (name.empty() || name == "none") return model::BugId::kNone;
  if (name == "wsub") return model::BugId::kWsub;
  if (name == "random") return model::BugId::kRandom;
  if (name == "dyn3") return model::BugId::kDyn3;
  if (name == "goffgratch") return model::BugId::kGoffGratch;
  throw Error("unknown --bug '" + name + "' (none|wsub|random|dyn3|goffgratch)");
}

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------

int cmd_generate(const Args& args) {
  const fs::path out_dir = args.get("out", "corpus");
  model::CorpusSpec spec;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 2019));
  spec.bug = parse_bug(args.get("bug"));
  if (args.has("aux")) {
    spec.total_aux_modules = static_cast<std::size_t>(args.get_int("aux", 180));
  }
  model::GeneratedCorpus corpus = model::generate_corpus(spec);
  for (const auto& file : corpus.files) {
    write_file(out_dir / file.path, file.text);
  }
  std::string build_list;
  for (const auto& name : corpus.compiled_modules) build_list += name + "\n";
  write_file(out_dir / "build_list.txt", build_list);
  std::printf("wrote %zu files (%zu modules, %zu in build configuration) to "
              "%s\n", corpus.files.size(), corpus.total_modules,
              corpus.compiled_modules.size(), out_dir.string().c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Shared front-end helpers (graph, lint). Source collection and parsing live
// in src/service/front_end.* so the CLI and the resident daemon run the
// exact same front end.
// ---------------------------------------------------------------------------

/// Optional build-configuration list (one module name per line).
std::vector<std::string> read_build_list(const Args& args) {
  std::vector<std::string> build_list;
  if (args.has("build-list")) {
    std::istringstream in(read_file(args.get("build-list")));
    std::string line;
    while (std::getline(in, line)) {
      const std::string name = std::string(trim(line));
      if (!name.empty()) build_list.push_back(name);
    }
  }
  return build_list;
}

// ---------------------------------------------------------------------------
// graph
// ---------------------------------------------------------------------------

int cmd_graph(const Args& args) {
  const fs::path src_dir = args.get("src");
  const fs::path out_path = args.get("out", "metagraph.tsv");
  if (src_dir.empty()) throw Error("graph: --src DIR is required");

  const std::string format_name = args.get("format", "v1");
  meta::SnapshotFormat format;
  if (format_name == "v1") {
    format = meta::SnapshotFormat::kV1Text;
  } else if (format_name == "v2") {
    format = meta::SnapshotFormat::kV2Binary;
  } else {
    throw Error("graph: unknown --format '" + format_name + "' (v1|v2)");
  }

  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  const std::vector<std::string> build_list = read_build_list(args);
  auto in_build = [&build_list](const std::string& module) {
    if (build_list.empty()) return true;
    for (const auto& name : build_list) {
      if (name == module) return true;
    }
    return false;
  };

  const std::vector<std::pair<std::string, std::string>> sources =
      service::collect_fortran_sources(src_dir.string());

  const bool coverage = args.has("coverage");
  const int cov_steps = static_cast<int>(args.get_int("coverage-steps", 2));
  // --summary-prune sharpens the liveness pruning with interprocedural
  // mod/ref summaries; it implies --prune-dead-stores.
  const bool summary_prune = args.has("summary-prune");
  const bool prune = args.has("prune-dead-stores") || summary_prune;

  // Snapshot cache key: every (path, text) pair plus the build/coverage/
  // pruning configuration. A hit skips parse+build entirely.
  std::optional<meta::SnapshotCache> cache;
  meta::SnapshotKey key;
  if (args.has("snapshot")) {
    cache.emplace(args.get("snapshot"));
    key.add("rca-graph-snapshot-v3");
    key.add_u64(coverage ? 1 : 0);
    key.add_u64(static_cast<std::uint64_t>(cov_steps));
    key.add_u64(prune ? 1 : 0);
    key.add_u64(summary_prune ? 1 : 0);
    for (const auto& name : build_list) key.add(name);
    for (const auto& [path, text] : sources) {
      key.add(path);
      key.add(text);
    }
  }

  std::optional<meta::Metagraph> mg;
  if (cache) mg = cache->try_load(key);
  if (mg) {
    std::printf("snapshot cache hit: skipping parse+build (%s)\n",
                cache->path_for(key).c_str());
  } else {
    std::vector<std::pair<std::string, std::string>> parse_errors;
    std::vector<lang::SourceFile> files =
        service::parse_sources(sources, pool.get(), &parse_errors);
    for (const auto& [path, message] : parse_errors) {
      (void)path;
      std::fprintf(stderr, "parse failure: %s\n", message.c_str());
    }
    const std::size_t parse_failures = parse_errors.size();
    std::vector<const lang::Module*> modules;
    for (const auto& f : files) {
      for (const auto& m : f.modules) {
        if (in_build(m.name)) modules.push_back(&m);
      }
    }
    std::printf("parsed %zu files (%zu failures), %zu modules in build "
                "configuration\n", files.size(), parse_failures,
                modules.size());

    meta::BuilderOptions opts;
    opts.pool = pool.get();
    opts.prune_dead_stores = prune;
    opts.summary_informed_pruning = summary_prune;
    std::unique_ptr<interp::Interpreter> cov_interp;
    interp::CoverageRecorder recorder;
    if (coverage) {
      // Instrumented short run: requires the corpus driver convention
      // (cam_driver::cam_init / cam_step), as `generate` emits.
      cov_interp = std::make_unique<interp::Interpreter>(modules);
      cov_interp->call("cam_driver", "cam_init");
      for (int s = 0; s < cov_steps; ++s) {
        cov_interp->call("cam_driver", "cam_step");
      }
      recorder = cov_interp->coverage();
      // Declaration-only modules are always kept (cannot register execution).
      opts.module_filter = [&recorder, &modules](const std::string& m) {
        if (recorder.module_executed(m)) return true;
        for (const lang::Module* mod : modules) {
          if (mod->name == m) return mod->subprograms.empty();
        }
        return false;
      };
      opts.subprogram_filter = [&recorder](const std::string& m,
                                           const std::string& s) {
        return recorder.subprogram_executed(m, s);
      };
    }

    mg = meta::build_metagraph(modules, opts);
    if (prune) {
      std::printf("dead stores pruned: %zu\n", mg->dead_stores_pruned);
    }
    if (cache) cache->store(key, *mg);
  }

  std::ofstream out(out_path, std::ios::binary);
  meta::save_metagraph(*mg, out, format);
  std::printf("metagraph: %zu nodes, %zu edges, %zu I/O labels -> %s\n",
              mg->node_count(), mg->graph().edge_count(), mg->io_map().size(),
              out_path.string().c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------------

int cmd_lint(const Args& args) {
  const fs::path src_dir = args.get("src");
  if (src_dir.empty()) throw Error("lint: --src DIR is required");
  const std::string fail_on = args.get("fail-on", "error");
  if (fail_on != "error" && fail_on != "warn" && fail_on != "none") {
    throw Error("lint: unknown --fail-on '" + fail_on +
                "' (error|warn|none)");
  }

  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  const std::vector<std::string> build_list = read_build_list(args);
  auto in_build = [&build_list](const std::string& module) {
    if (build_list.empty()) return true;
    for (const auto& name : build_list) {
      if (name == module) return true;
    }
    return false;
  };

  const std::vector<std::pair<std::string, std::string>> sources =
      service::collect_fortran_sources(src_dir.string());
  std::vector<std::pair<std::string, std::string>> parse_errors;
  std::vector<lang::SourceFile> files =
      service::parse_sources(sources, pool.get(), &parse_errors);
  std::vector<const lang::Module*> modules;
  for (const auto& f : files) {
    for (const auto& m : f.modules) {
      if (in_build(m.name)) modules.push_back(&m);
    }
  }

  // Interprocedural rules are the default; --no-interprocedural restores the
  // blanket-conservative call modelling (and computes no summaries).
  const bool interprocedural = !args.has("no-interprocedural");
  if (!interprocedural && (args.has("summaries-out") || args.has("fpsense-out"))) {
    throw Error(
        "lint: --summaries-out/--fpsense-out need interprocedural mode");
  }
  analysis::PassManager pm = interprocedural
                                 ? analysis::PassManager::default_passes()
                                 : analysis::PassManager::intraprocedural_passes();
  analysis::AnalysisResult result = pm.run(modules);
  // A file the front end cannot parse is itself a finding; fold parse
  // failures into the diagnostic stream so every emitter sees them.
  for (const auto& [path, message] : parse_errors) {
    analysis::Diagnostic d;
    d.rule = "parse-error";
    d.severity = analysis::Severity::kError;
    d.file = path;
    d.message = message;
    result.diagnostics.push_back(std::move(d));
  }
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            analysis::diagnostic_less);

  std::fputs(analysis::diagnostics_to_text(result.diagnostics).c_str(),
             stdout);
  const std::size_t errors = result.count(analysis::Severity::kError);
  const std::size_t warnings = result.count(analysis::Severity::kWarning);
  std::printf("lint: %zu error(s), %zu warning(s) in %zu modules / %zu "
              "subprograms\n",
              errors, warnings, result.modules, result.subprograms);

  if (args.has("json")) {
    write_file(args.get("json"),
               analysis::diagnostics_to_json(result.diagnostics) + "\n");
    std::printf("wrote JSON diagnostics to %s\n", args.get("json").c_str());
  }
  if (args.has("tsv")) {
    write_file(args.get("tsv"),
               analysis::diagnostics_to_tsv(result.diagnostics));
    std::printf("wrote TSV diagnostics to %s\n", args.get("tsv").c_str());
  }
  if (args.has("summaries-out") && result.summaries != nullptr) {
    write_file(args.get("summaries-out"),
               analysis::summaries_to_json(*result.summaries));
    std::printf("wrote mod/ref summaries to %s\n",
                args.get("summaries-out").c_str());
  }
  if (args.has("fpsense-out") && result.summaries != nullptr) {
    const analysis::ProgramSymbols symbols(modules);
    write_file(args.get("fpsense-out"),
               analysis::fpsense_report_json(modules, symbols,
                                             *result.summaries));
    std::printf("wrote FP-sensitivity report to %s\n",
                args.get("fpsense-out").c_str());
  }

  if (fail_on == "error") return errors > 0 ? 1 : 0;
  if (fail_on == "warn") return errors + warnings > 0 ? 1 : 0;
  return 0;
}

// ---------------------------------------------------------------------------
// Shared: load a saved metagraph.
// ---------------------------------------------------------------------------

meta::Metagraph load_graph(const Args& args) {
  const std::string path = args.get("graph");
  if (path.empty()) throw Error("--graph FILE is required");
  std::ifstream in(path, std::ios::binary);  // v2 payloads are binary
  if (!in) throw Error("cannot read " + path);
  return meta::load_metagraph(in);
}

int cmd_info(const Args& args) {
  meta::Metagraph mg = load_graph(args);
  const auto dist = graph::degree_distribution(mg.graph(), 2);
  std::printf("nodes: %zu\nedges: %zu\nmodules: %zu\nI/O labels: %zu\n",
              mg.node_count(), mg.graph().edge_count(), mg.modules().size(),
              mg.io_map().size());
  std::printf("mean degree: %.3f  max degree: %zu  power-law MLE: %.3f\n",
              dist.mean_degree, dist.max_degree, dist.mle_exponent);
  Table table("largest modules by node count");
  table.set_header({"module", "nodes"});
  std::vector<std::pair<std::size_t, std::string>> sizes;
  for (const auto& m : mg.modules()) {
    sizes.emplace_back(mg.by_module(m).size(), m);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  for (std::size_t i = 0; i < sizes.size() && i < 10; ++i) {
    table.add_row({sizes[i].second,
                   Table::integer(static_cast<long long>(sizes[i].first))});
  }
  table.print(std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// slice
// ---------------------------------------------------------------------------

int cmd_slice(const Args& args) {
  meta::Metagraph mg = load_graph(args);
  std::vector<std::string> targets = args.get_all("target");
  for (const std::string& label : args.get_all("output")) {
    for (const auto& name : slice::internal_names_for_output(mg, label)) {
      targets.push_back(name);
    }
  }
  if (targets.empty()) {
    throw Error("slice: need --target NAME or --output LABEL");
  }
  slice::SliceOptions opts;
  if (args.has("cam-only")) {
    opts.module_filter = [](const std::string& m) {
      return model::is_cam_module(m);
    };
  }
  opts.drop_components_smaller_than =
      static_cast<std::size_t>(args.get_int("drop-small", 0));
  slice::SliceResult result = slice::backward_slice(mg, targets, opts);
  std::printf("criteria:");
  for (const auto& t : targets) std::printf(" %s", t.c_str());
  std::printf("\nslice: %zu nodes / %zu edges (of %zu / %zu)\n",
              result.nodes.size(), result.subgraph.edge_count(),
              mg.node_count(), mg.graph().edge_count());
  const std::size_t show =
      static_cast<std::size_t>(args.get_int("show", 20));
  for (std::size_t i = 0; i < result.nodes.size() && i < show; ++i) {
    const auto& info = mg.info(result.nodes[i]);
    std::printf("  %-28s %s line %d\n", info.unique_name.c_str(),
                info.module.c_str(), info.line);
  }
  if (result.nodes.size() > show) {
    std::printf("  ... %zu more (raise --show)\n", result.nodes.size() - show);
  }
  if (args.has("dot")) {
    std::vector<std::string> labels;
    for (graph::NodeId v : result.nodes) {
      labels.push_back(mg.info(v).unique_name);
    }
    write_file(args.get("dot"), graph::to_dot(result.subgraph, &labels));
    std::printf("wrote DOT to %s\n", args.get("dot").c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// communities
// ---------------------------------------------------------------------------

int cmd_communities(const Args& args) {
  meta::Metagraph mg = load_graph(args);
  const std::string method = args.get("method", "gn");
  const std::size_t min_size =
      static_cast<std::size_t>(args.get_int("min-size", 3));

  std::vector<std::vector<graph::NodeId>> communities;
  if (method == "louvain") {
    graph::LouvainOptions opts;
    opts.min_community_size = min_size;
    auto result = louvain(mg.graph(), opts);
    communities = std::move(result.communities);
    std::printf("louvain: modularity %.4f\n", result.modularity);
  } else if (method == "gn") {
    graph::GirvanNewmanOptions opts;
    opts.iterations = static_cast<int>(args.get_int("iterations", 1));
    opts.min_community_size = min_size;
    // --samples N caps each betweenness pass at N seeded pivot sweeps;
    // 0 (default) keeps the exact computation.
    opts.betweenness_samples =
        static_cast<std::size_t>(args.get_int("samples", 0));
    opts.betweenness_seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2019));
    opts.budget_ms = args.get_int("budget-ms", 0);
    auto result = girvan_newman(mg.graph(), opts);
    communities = std::move(result.communities);
    std::printf("girvan-newman: removed %zu edges, %zu components%s\n",
                result.edges_removed, result.component_count,
                result.budget_exceeded ? " (budget exceeded)" : "");
  } else {
    throw Error("unknown --method '" + method + "' (gn|louvain)");
  }

  std::printf("%zu communities (>= %zu nodes):\n", communities.size(),
              min_size);
  for (std::size_t c = 0; c < communities.size(); ++c) {
    std::printf("  community %zu: %zu nodes, e.g.", c, communities[c].size());
    for (std::size_t k = 0; k < communities[c].size() && k < 5; ++k) {
      std::printf(" %s", mg.info(communities[c][k]).unique_name.c_str());
    }
    std::printf("\n");
  }
  if (args.has("dot")) {
    std::vector<graph::NodeId> classes(mg.node_count(), 0);
    for (std::size_t c = 0; c < communities.size(); ++c) {
      for (graph::NodeId v : communities[c]) {
        classes[v] = static_cast<graph::NodeId>(c + 1);
      }
    }
    std::vector<std::string> labels;
    for (graph::NodeId v = 0; v < mg.node_count(); ++v) {
      labels.push_back(mg.info(v).unique_name);
    }
    write_file(args.get("dot"), graph::to_dot(mg.graph(), &labels, &classes));
    std::printf("wrote DOT to %s\n", args.get("dot").c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// centrality
// ---------------------------------------------------------------------------

int cmd_centrality(const Args& args) {
  meta::Metagraph mg = load_graph(args);
  const std::string kind = args.get("kind", "eigenvector");
  const std::size_t top = static_cast<std::size_t>(args.get_int("top", 15));

  const graph::Digraph* g = &mg.graph();
  graph::Digraph quotient;
  std::vector<std::string> names;
  if (args.has("modules")) {
    quotient = graph::quotient_graph(mg.graph(), mg.module_classes(),
                                     mg.modules().size());
    g = &quotient;
    names = mg.modules();
  } else {
    for (graph::NodeId v = 0; v < mg.node_count(); ++v) {
      names.push_back(mg.info(v).unique_name);
    }
  }

  std::vector<double> scores;
  if (kind == "eigenvector") {
    scores = eigenvector_centrality(*g, graph::Direction::kIn);
  } else if (kind == "degree") {
    scores = degree_centrality(*g, graph::Direction::kIn);
  } else if (kind == "pagerank") {
    scores = pagerank(*g, graph::Direction::kIn);
  } else if (kind == "katz") {
    scores = katz_centrality(*g, graph::Direction::kIn);
  } else if (kind == "closeness") {
    scores = closeness_centrality(*g, graph::Direction::kIn);
  } else if (kind == "nonbacktracking") {
    scores = nonbacktracking_centrality(*g, graph::Direction::kIn).centrality;
  } else if (kind == "inout-eigenvector") {
    const auto cin = eigenvector_centrality(*g, graph::Direction::kIn);
    const auto cout = eigenvector_centrality(*g, graph::Direction::kOut);
    scores.resize(cin.size());
    for (std::size_t i = 0; i < cin.size(); ++i) scores[i] = cin[i] + cout[i];
  } else {
    throw Error("unknown --kind '" + kind + "'");
  }

  Table table(kind + " in-centrality, top " + std::to_string(top));
  table.set_header({"rank", "name", "score"});
  int rank = 1;
  for (graph::NodeId v : graph::top_k(scores, top)) {
    table.add_row({Table::integer(rank++), names[v],
                   Table::num(scores[v], 6)});
  }
  table.print(std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

int cmd_analyze(const Args& args) {
  const std::string name = to_lower(args.get("experiment", "goffgratch"));
  model::ExperimentId id;
  if (name == "wsubbug") id = model::ExperimentId::kWsubBug;
  else if (name == "rand-mt" || name == "randmt") id = model::ExperimentId::kRandMt;
  else if (name == "goffgratch") id = model::ExperimentId::kGoffGratch;
  else if (name == "avx2") id = model::ExperimentId::kAvx2;
  else if (name == "randombug") id = model::ExperimentId::kRandomBug;
  else if (name == "dyn3bug") id = model::ExperimentId::kDyn3Bug;
  else throw Error("unknown --experiment '" + name + "'");

  engine::PipelineConfig config;
  config.ensemble_members =
      static_cast<std::size_t>(args.get_int("members", 30));
  config.corpus.seed = static_cast<std::uint64_t>(args.get_int("seed", 2019));
  config.threads = static_cast<std::size_t>(args.get_int("jobs", 0));
  config.snapshot_dir = args.get("snapshot");
  config.prune_dead_stores = args.has("prune-dead-stores");
  engine::Pipeline pipe(std::move(config));
  if (args.has("graph-out")) {
    // The coverage-filtered metagraph as v1 text, so cold- and warm-cache
    // runs can be byte-compared.
    write_file(args.get("graph-out"),
               meta::save_metagraph_to_string(pipe.metagraph()));
  }
  engine::ExperimentOutcome outcome =
      args.has("runtime-sampling") ? pipe.run_experiment_runtime_sampling(id)
                                   : pipe.run_experiment(id);

  std::printf("experiment: %s\nUF-ECT: %s (%zu failing PCs)\n",
              outcome.spec->name, outcome.verdict.pass ? "PASS" : "FAIL",
              outcome.verdict.failing_pcs.size());
  std::printf("criteria:");
  for (const auto& c : outcome.criteria_outputs) std::printf(" %s", c.c_str());
  std::printf("\nslice: %zu nodes\n", outcome.slice.nodes.size());
  for (std::size_t i = 0; i < outcome.refinement.iterations.size(); ++i) {
    const auto& iter = outcome.refinement.iterations[i];
    std::printf("iteration %zu: %zu nodes, %zu communities, %s\n", i + 1,
                iter.subgraph_nodes, iter.communities.size(),
                iter.detected ? "DETECTED" : "no difference");
  }
  std::printf("final search space: %zu nodes%s\n",
              outcome.refinement.final_nodes.size(),
              outcome.refinement.stalled ? " (stalled)" : "");
  bool retained = false;
  for (graph::NodeId b : outcome.bug_nodes) {
    for (graph::NodeId n : outcome.refinement.final_nodes) {
      if (n == b) retained = true;
    }
  }
  std::printf("ground-truth bug retained: %s\n", retained ? "yes" : "NO");

  if (args.has("json")) {
    // Machine-readable report for downstream tooling / CI.
    JsonWriter w;
    w.begin_object();
    w.key("experiment");
    w.string_value(outcome.spec->name);
    w.key("ect_pass");
    w.boolean(outcome.verdict.pass);
    w.key("failing_pcs");
    w.integer(static_cast<long long>(outcome.verdict.failing_pcs.size()));
    w.key("criteria");
    w.begin_array();
    for (const auto& c : outcome.criteria_outputs) w.string_value(c);
    w.end_array();
    w.key("internal_names");
    w.begin_array();
    for (const auto& c : outcome.internal_names) w.string_value(c);
    w.end_array();
    w.key("slice_nodes");
    w.integer(static_cast<long long>(outcome.slice.nodes.size()));
    w.key("iterations");
    w.begin_array();
    for (const auto& iter : outcome.refinement.iterations) {
      w.begin_object();
      w.key("subgraph_nodes");
      w.integer(static_cast<long long>(iter.subgraph_nodes));
      w.key("communities");
      w.integer(static_cast<long long>(iter.communities.size()));
      w.key("detected");
      w.boolean(iter.detected);
      w.key("sampled");
      w.begin_array();
      for (const auto& comm : iter.communities) {
        for (graph::NodeId v : comm.sampled) {
          w.string_value(pipe.metagraph().info(v).unique_name);
        }
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("final_nodes");
    w.integer(static_cast<long long>(outcome.refinement.final_nodes.size()));
    w.key("stalled");
    w.boolean(outcome.refinement.stalled);
    w.key("bug_retained");
    w.boolean(retained);
    w.end_object();
    write_file(args.get("json"), w.str() + "\n");
    std::printf("wrote JSON report to %s\n", args.get("json").c_str());
  }
  return retained ? 0 : 1;
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

int cmd_serve(const Args& args) {
  // The daemon always runs with the metrics registry on: /v1/metrics is part
  // of its contract, unlike one-shot subcommands where observability is
  // opt-in via --metrics-out/--trace.
  obs::global().set_enabled(true);

  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
  std::unique_ptr<ThreadPool> build_pool;
  if (jobs > 1) build_pool = std::make_unique<ThreadPool>(jobs);

  service::SessionStoreOptions store_opts;
  store_opts.snapshot_dir = args.get("snapshot");
  store_opts.build_pool = build_pool.get();
  if (args.has("session-bytes")) {
    store_opts.max_bytes =
        static_cast<std::size_t>(args.get_int("session-bytes", 0));
  }
  service::SessionStore store(store_opts);

  // Requests execute on their own pool, distinct from the build pool — a
  // request blocking on parallel_for of its own pool would deadlock.
  const std::size_t request_threads =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_int("request-threads", 4)));
  ThreadPool request_pool(request_threads);

  service::RouterOptions router_opts;
  router_opts.pool = &request_pool;
  router_opts.max_in_flight =
      static_cast<std::size_t>(args.get_int("max-in-flight", 64));
  router_opts.default_deadline_ms = args.get_int("deadline-ms", 30000);
  router_opts.generation = args.get_int("generation", 0);
  router_opts.stable_health = args.has("stable-health");
  service::Router router(&store, router_opts);

  // Refinement campaigns: long-lived server-side runs behind /v1/refine*.
  campaign::CampaignManagerOptions campaign_opts;
  campaign_opts.max_running =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_int("campaigns", 8)));
  campaign_opts.engine_threads =
      static_cast<std::size_t>(args.get_int("campaign-threads", 2));
  if (!store_opts.snapshot_dir.empty()) {
    // Crash durability piggybacks on the snapshot dir: campaign journals
    // live next to the graphs their resumed runs warm-start from.
    campaign_opts.journal_dir =
        (fs::path(store_opts.snapshot_dir) / "campaigns").string();
  }
  campaign::CampaignManager campaigns(&store, campaign_opts);
  campaigns.install_routes(router);

  service::HttpServerOptions http_opts;
  http_opts.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  service::HttpServer server(&router, http_opts);
  server.start();
  if (args.has("port-file")) {
    // Atomic (temp + rename): the fleet supervisor polls this file and must
    // never observe a torn write.
    atomic_write_file(args.get("port-file"),
                      std::to_string(server.port()) + "\n");
  }
  std::printf("rca-serve listening on 127.0.0.1:%u (build %s)\n",
              static_cast<unsigned>(server.port()),
              service::build_id().c_str());
  std::fflush(stdout);  // port announcements must not sit in a pipe buffer

  // Resume any campaign whose journal survived a crash — after the port
  // handshake (the supervisor should not wait on re-execution) but before
  // serving; /v1/health reports "warming" while it runs.
  if (!campaign_opts.journal_dir.empty()) {
    router.set_warming(true);
    const std::size_t resumed = campaigns.resume_unfinished(router);
    router.set_warming(false);
    if (resumed > 0) {
      std::printf("rca-serve: resumed %zu journaled campaign(s)\n", resumed);
      std::fflush(stdout);
    }
  }

  service::HttpServer::install_signal_handlers(server);
  const int rc = server.serve_forever();
  std::printf("rca-serve: drained %zu sessions resident, exiting\n",
              store.session_count());
  return rc;
}

// ---------------------------------------------------------------------------
// fleet
// ---------------------------------------------------------------------------

int cmd_fleet(const Args& args) {
  obs::global().set_enabled(true);

  fleet::WorkerSpec spec;
  spec.binary = args.get("worker-binary", "/proc/self/exe");
  spec.run_dir = args.get("run-dir", "fleet-run");
  // Every worker shares the read-only snapshot dir — that is what makes a
  // respawn a warm start — plus the usual serve tuning flags.
  const std::string snapshot = args.get("snapshot");
  if (!snapshot.empty()) {
    spec.extra_args.push_back("--snapshot");
    spec.extra_args.push_back(snapshot);
  }
  for (const char* flag :
       {"jobs", "request-threads", "max-in-flight", "deadline-ms",
        "session-bytes", "campaigns", "campaign-threads"}) {
    if (args.has(flag)) {
      spec.extra_args.push_back(std::string("--") + flag);
      spec.extra_args.push_back(args.get(flag));
    }
  }
  if (args.has("stable-health")) spec.extra_args.push_back("--stable-health");

  fleet::SupervisorOptions sopts;
  sopts.workers = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_int("workers", 4)));
  sopts.spawn_deadline_ms = args.get_int("spawn-deadline-ms", 20000);
  sopts.probe_interval_ms = args.get_int("probe-interval-ms", 250);
  sopts.probe_timeout_ms =
      static_cast<int>(args.get_int("probe-timeout-ms", 2000));
  sopts.probe_failures_to_kill =
      static_cast<int>(args.get_int("probe-strikes", 2));
  sopts.restart_backoff_initial_ms = args.get_int("backoff-initial-ms", 50);
  sopts.restart_backoff_cap_ms = args.get_int("backoff-cap-ms", 2000);

  fleet::Supervisor supervisor(std::move(spec), sopts);
  supervisor.start();

  fleet::GatewayOptions gopts;
  gopts.max_attempts = static_cast<int>(args.get_int("retry-attempts", 10));
  gopts.retry_base_ms = args.get_int("retry-base-ms", 25);
  gopts.retry_cap_ms = args.get_int("retry-cap-ms", 500);
  fleet::Gateway gateway(&supervisor, gopts);

  service::HttpServerOptions http_opts;
  http_opts.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  // Proxied requests can sleep through worker respawns; give the gateway
  // threads headroom over a single worker's default.
  http_opts.connection_threads = std::max<std::size_t>(
      8, static_cast<std::size_t>(args.get_int("gateway-threads", 16)));
  service::HttpServer server(
      service::HttpServer::Handler(
          [&gateway](const service::Request& req) {
            return gateway.handle(req);
          }),
      http_opts);
  server.start();
  if (args.has("port-file")) {
    atomic_write_file(args.get("port-file"),
                      std::to_string(server.port()) + "\n");
  }
  std::printf(
      "rca-fleet gateway on 127.0.0.1:%u, %zu worker shard(s) (build %s)\n",
      static_cast<unsigned>(server.port()), supervisor.workers(),
      service::build_id().c_str());
  std::fflush(stdout);

  service::HttpServer::install_signal_handlers(server);
  const int rc = server.serve_forever();
  supervisor.shutdown();
  std::printf("rca-fleet: workers reaped, exiting\n");
  return rc;
}

// ---------------------------------------------------------------------------
// refine / score
// ---------------------------------------------------------------------------

/// Builds a /v1/refine-shaped body from the CLI flags, so the in-process
/// campaign goes through exactly the code path the service endpoint uses.
JsonValue refine_body_from_args(const Args& args) {
  std::vector<std::pair<std::string, JsonValue>> members;
  auto add_string = [&members](const char* key, const std::string& v) {
    members.emplace_back(key, JsonValue::make_string(v));
  };
  auto add_strings = [&members](const char* key,
                                const std::vector<std::string>& vs) {
    if (vs.empty()) return;
    std::vector<JsonValue> items;
    for (const std::string& v : vs) items.push_back(JsonValue::make_string(v));
    members.emplace_back(key, JsonValue::make_array(std::move(items)));
  };
  auto add_int = [&members, &args](const char* key, const char* flag,
                                   long long fallback) {
    members.emplace_back(
        key, JsonValue::make_number(
                 static_cast<double>(args.get_int(flag, fallback))));
  };
  if (args.has("scenario")) add_string("scenario", args.get("scenario"));
  if (args.has("src")) add_string("src", args.get("src"));
  add_strings("bug", args.get_all("bug"));
  add_strings("targets", args.get_all("target"));
  add_strings("outputs", args.get_all("output"));
  if (args.has("runtime")) {
    members.emplace_back("runtime", JsonValue::make_bool(true));
  }
  if (args.has("cam-only")) {
    members.emplace_back("cam_only", JsonValue::make_bool(true));
  }
  if (args.has("drop-small")) add_int("drop_small", "drop-small", 0);
  add_int("seed", "seed", 2019);
  add_int("top", "top", 10);
  add_int("max_iterations", "max-iterations", 8);
  add_int("samples", "samples", 10);
  add_int("min_size", "min-size", 4);
  add_int("small_enough", "small-enough", 10);
  add_string("method", args.get("method", "gn"));
  return JsonValue::make_object(std::move(members));
}

int cmd_refine(const Args& args) {
  if (!args.has("scenario") && !args.has("src")) {
    throw Error("refine needs --scenario NAME or --src DIR");
  }
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
  std::unique_ptr<ThreadPool> build_pool;
  if (jobs > 1) build_pool = std::make_unique<ThreadPool>(jobs);

  service::SessionStoreOptions store_opts;
  store_opts.snapshot_dir = args.get("snapshot");
  store_opts.build_pool = build_pool.get();
  service::SessionStore store(store_opts);
  service::RouterOptions router_opts;  // inline execution; no HTTP here
  service::Router router(&store, router_opts);

  campaign::CampaignManagerOptions manager_opts;
  manager_opts.max_running = 1;
  manager_opts.engine_threads = std::max<std::size_t>(1, jobs);
  campaign::CampaignManager manager(&store, manager_opts);

  const JsonValue body = refine_body_from_args(args);
  std::shared_ptr<const service::Session> session;
  campaign::CampaignParams params =
      campaign::parse_campaign_request(body, router, &session);
  std::printf("refine: session %.12s.. (%zu nodes)\n",
              session->key().c_str(), session->metagraph().node_count());
  std::fflush(stdout);
  const std::string id = manager.start(std::move(params), std::move(session));
  const campaign::CampaignState state = manager.wait(id);
  const std::string result = manager.result_json(id);
  std::fputs(result.c_str(), stdout);
  if (args.has("json")) write_file(args.get("json"), result);
  return state == campaign::CampaignState::kDone ? 0 : 1;
}

int cmd_score(const Args& args) {
  campaign::ScoreOptions opts;
  opts.top_m = static_cast<std::size_t>(args.get_int("top", 15));
  opts.runtime_sampling = args.has("runtime");
  opts.only = args.get_all("scenario");
  opts.pipeline.ensemble_members =
      static_cast<std::size_t>(args.get_int("members", 40));
  opts.pipeline.threads = static_cast<std::size_t>(args.get_int("jobs", 0));
  opts.pipeline.snapshot_dir = args.get("snapshot");
  opts.pipeline.refinement.rank_differences_on_stall = true;

  const campaign::Scoreboard board = campaign::score_scenarios(opts);
  campaign::print_scoreboard(board);
  if (args.has("json")) {
    write_file(args.get("json"), campaign::scoreboard_json(board));
    std::printf("wrote scoreboard to %s\n", args.get("json").c_str());
  }
  return board.scores.empty() ? 1 : 0;
}

// ---------------------------------------------------------------------------
// watch
// ---------------------------------------------------------------------------

int cmd_watch(const Args& args) {
  const std::string src_dir = args.get("src");
  if (src_dir.empty()) throw Error("watch needs --src DIR");
  const long long interval_ms = args.get_int("interval-ms", 500);
  const long long iterations = args.get_int("iterations", 0);  // 0 = forever
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  service::SessionStoreOptions store_opts;
  store_opts.snapshot_dir = args.get("snapshot");
  store_opts.build_pool = pool.get();
  service::SessionStore store(store_opts);

  service::SessionConfig config;
  config.build_list = read_build_list(args);
  config.prune_dead_stores = args.has("prune-dead-stores");

  // Baseline: one cold (or snapshot-warm) build plus the mtime of every
  // source file. Each tick stats the tree and reads only files whose mtime
  // moved — the stat sweep is the cheap pre-filter, the patch is the
  // incremental rebuild.
  std::unordered_map<std::string, fs::file_time_type> mtimes;
  for (const std::string& p : service::collect_fortran_paths(src_dir)) {
    std::error_code ec;
    const auto t = fs::last_write_time(p, ec);
    if (!ec) mtimes[p] = t;
  }
  std::shared_ptr<const service::Session> session =
      store.get_or_build(config, service::collect_fortran_sources(src_dir));
  std::string key = session->key();
  // Paths the *session* currently holds. The mtime baseline can drift ahead
  // of it after a rollback (e.g. a broken file appeared and vanished without
  // ever being committed) — removes must be validated against the session,
  // not the baseline.
  std::unordered_set<std::string> session_paths;
  for (const auto& e : session->sources()) session_paths.insert(e.first);
  std::printf("watch: session %.12s.. (%zu nodes, %zu edges) over %s\n",
              key.c_str(), session->metagraph().node_count(),
              session->metagraph().graph().edge_count(), src_dir.c_str());
  std::fflush(stdout);

  for (long long tick = 0; iterations == 0 || tick < iterations; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    service::SessionStore::PatchEdit edit;
    std::unordered_map<std::string, fs::file_time_type> now;
    for (const std::string& p : service::collect_fortran_paths(src_dir)) {
      std::error_code ec;
      const auto t = fs::last_write_time(p, ec);
      if (ec) continue;  // raced a delete; next tick sees the removal
      now[p] = t;
      auto it = mtimes.find(p);
      if (it != mtimes.end() && it->second == t) continue;
      edit.upserts.emplace_back(p, read_file(p));
    }
    for (const auto& [p, t] : mtimes) {
      (void)t;
      if (now.find(p) == now.end() && session_paths.count(p) != 0) {
        edit.removes.push_back(p);
      }
    }
    std::sort(edit.removes.begin(), edit.removes.end());
    mtimes = std::move(now);
    if (edit.upserts.empty() && edit.removes.empty()) continue;

    service::SessionStore::PatchResult result = store.patch(key, edit);
    if (result.rolled_back) {
      std::printf("watch: rolled back, session %.12s.. unchanged (%zu parse "
                  "error(s))\n", key.c_str(), result.errors.size());
      for (const auto& [path, message] : result.errors) {
        std::fprintf(stderr, "  %s: %s\n", path.c_str(), message.c_str());
      }
    } else if (result.resident_hit) {
      std::printf("watch: content unchanged (mtime-only touch)\n");
    } else {
      key = result.session->key();
      session_paths.clear();
      for (const auto& e : result.session->sources()) {
        session_paths.insert(e.first);
      }
      std::printf("watch: gen %llu session %.12s.. rebuilt=%zu reused=%zu "
                  "spliced=%zu%s\n",
                  static_cast<unsigned long long>(result.session->generation()),
                  key.c_str(), result.rebuilt_modules, result.reused_fragments,
                  result.spliced_nodes,
                  result.full_rewalk ? " (full re-walk)" : "");
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    if (args.has("version")) {
      // Same build id /v1/health reports, so a client can match a daemon to
      // the binary that spawned it.
      std::printf("rca-tool %s\n", service::build_id().c_str());
      return 0;
    }
    // Observability: --metrics-out FILE and/or --trace turn the global
    // metrics sink on for any subcommand.
    const bool want_metrics = args.has("metrics-out");
    const bool want_trace = args.has("trace");
    const std::string metrics_path = args.get("metrics-out");
    if (want_metrics && metrics_path.empty()) {
      throw Error("--metrics-out needs a file path");
    }
    if (want_metrics || want_trace) obs::global().set_enabled(true);

    // Fault injection: --fault-spec wins over the RCA_FAULTS environment
    // variable (CI arms whole smoke runs through the env without touching
    // each command line). Disarmed costs one predicted branch per site.
    std::string fault_spec = args.get("fault-spec");
    if (fault_spec.empty()) {
      if (const char* env = std::getenv("RCA_FAULTS")) fault_spec = env;
    }
    if (!fault_spec.empty()) {
      fault::FaultRegistry::global().arm(fault_spec);
      std::fprintf(stderr, "rca: fault injection armed: %s\n",
                   fault_spec.c_str());
    }

    int rc;
    if (args.command() == "generate") rc = cmd_generate(args);
    else if (args.command() == "graph") rc = cmd_graph(args);
    else if (args.command() == "lint") rc = cmd_lint(args);
    else if (args.command() == "info") rc = cmd_info(args);
    else if (args.command() == "slice") rc = cmd_slice(args);
    else if (args.command() == "communities") rc = cmd_communities(args);
    else if (args.command() == "centrality") rc = cmd_centrality(args);
    else if (args.command() == "analyze") rc = cmd_analyze(args);
    else if (args.command() == "serve") rc = cmd_serve(args);
    else if (args.command() == "fleet") rc = cmd_fleet(args);
    else if (args.command() == "refine") rc = cmd_refine(args);
    else if (args.command() == "score") rc = cmd_score(args);
    else if (args.command() == "watch") rc = cmd_watch(args);
    else return usage();
    for (const auto& key : args.unused_keys()) {
      std::fprintf(stderr, "warning: unused option --%s\n", key.c_str());
    }
    if (want_metrics) {
      write_file(metrics_path, obs::global().to_json() + "\n");
      std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    if (want_trace) {
      std::ostringstream trace;
      obs::global().write_trace(trace);
      std::fputs(trace.str().c_str(), stderr);
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
